//! E1 — end-to-end recovery of the paper's Example 1 (Figures 1–2):
//! the full engine run on the 9-row employee table with the demo's
//! attribute selections.

use charles_bench::engine_for;
use charles_core::CharlesConfig;
use charles_synth::example1;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scenario = example1();
    let mut group = c.benchmark_group("e1_example_recovery");
    group.sample_size(20);
    group.bench_function("full_run_fig1", |b| {
        b.iter(|| {
            let engine = engine_for(&scenario, CharlesConfig::default().with_threads(1))
                .with_condition_attrs(["edu", "exp", "gen"])
                .with_transform_attrs(["bonus", "salary"]);
            let result = engine.run().expect("run");
            black_box(result.summaries.len())
        })
    });
    group.bench_function("setup_assistant_only", |b| {
        let engine = engine_for(&scenario, CharlesConfig::default());
        b.iter(|| black_box(engine.setup().expect("setup").condition_candidates.len()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
