//! E2 — candidate evaluation and ranking (demo step 8): times the search
//! layer in isolation (candidate generation, parallel evaluation,
//! deduplication, ranking).

use charles_bench::pair_of;
use charles_core::{generate_candidates, run_search, CharlesConfig, SearchContext};
use charles_synth::employees;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scenario = employees(100, 7);
    let pair = pair_of(&scenario);
    let config = CharlesConfig::default().with_threads(1);
    let schema = pair.source().schema();
    let cond: Vec<_> = ["edu", "exp", "gen"]
        .iter()
        .map(|a| schema.attr_ref(a).expect("attr"))
        .collect();
    let tran_names = vec!["bonus".to_string(), "salary".to_string()];
    let tran: Vec<_> = tran_names
        .iter()
        .map(|a| schema.attr_ref(a).expect("attr"))
        .collect();

    let mut group = c.benchmark_group("e2_ranking");
    group.sample_size(20);
    group.bench_function("generate_candidates", |b| {
        b.iter(|| black_box(generate_candidates(&cond, &tran, &config).len()))
    });
    group.bench_function("evaluate_and_rank_n200", |b| {
        let ctx = SearchContext::new(&pair, "bonus", &tran_names, &config).expect("ctx");
        let candidates = generate_candidates(&cond, &tran, &config);
        b.iter(|| {
            let (ranked, stats) = run_search(&ctx, &candidates).expect("search");
            black_box((ranked.len(), stats.evaluated))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
