//! E3 — the α slider (demo step 6): full runs at the extremes and the
//! default, verifying α has no runtime cost (it only reweights scores).

use charles_bench::engine_for;
use charles_core::CharlesConfig;
use charles_synth::employees;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scenario = employees(100, 77);
    let mut group = c.benchmark_group("e3_alpha_tradeoff");
    group.sample_size(10);
    for alpha in [0.0, 0.5, 1.0] {
        group.bench_with_input(
            BenchmarkId::new("run_at_alpha", format!("{alpha:.1}")),
            &alpha,
            |b, &alpha| {
                b.iter(|| {
                    let engine = engine_for(&scenario, CharlesConfig::default().with_alpha(alpha));
                    black_box(engine.run().expect("run").summaries.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
