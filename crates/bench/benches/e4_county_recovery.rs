//! E4 — the Section-3 demo dataset: county payroll recovery at scale.

use charles_bench::engine_for;
use charles_core::CharlesConfig;
use charles_synth::county;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_county_recovery");
    group.sample_size(10);
    for n in [100usize, 250, 500] {
        let scenario = county(n, 42);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("full_run", n), &scenario, |b, scenario| {
            b.iter(|| {
                let engine = engine_for(scenario, CharlesConfig::default());
                black_box(engine.run().expect("run").summaries.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
