//! E5 — scalability: pipeline-stage costs as rows grow, and search-space
//! growth with (c, t).

use charles_bench::pair_of;
use charles_core::combi::bounded_subset_count;
use charles_core::partition::{cluster_residuals, induce_partitions};
use charles_core::CharlesConfig;
use charles_synth::county;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_stage_costs");
    group.sample_size(10);
    let config = CharlesConfig::default();
    for n in [1_000usize, 4_000, 16_000] {
        let scenario = county(n, 42);
        let pair = pair_of(&scenario);
        let y_new = pair.target_numeric_aligned("base_salary").expect("aligned");
        let y_old = pair.source().numeric("base_salary").expect("numeric");
        let residuals: Vec<f64> = y_new.iter().zip(y_old.iter()).map(|(a, b)| a - b).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::new("cluster_residuals_k4", n),
            &residuals,
            |b, residuals| {
                b.iter(|| black_box(cluster_residuals(residuals, 4, &config).expect("cluster")))
            },
        );
        let labels = cluster_residuals(&residuals, 4, &config).expect("cluster");
        let schema = pair.source().schema();
        let cond: Vec<_> = ["department", "grade"]
            .iter()
            .map(|a| schema.attr_ref(a).expect("attr"))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("induce_partitions", n),
            &labels,
            |b, labels| {
                b.iter(|| {
                    black_box(
                        induce_partitions(pair.source(), &cond, labels, &config)
                            .expect("induce")
                            .len(),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_search_space(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_search_space");
    // Pure counting: shows the combinatorial growth the paper warns about.
    group.bench_function("subset_counts_c4_t3", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for n_cond in 1..=8u64 {
                for c in 1..=4usize {
                    total += bounded_subset_count(n_cond as usize, c);
                }
            }
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_stages, bench_search_space);
criterion_main!(benches);
