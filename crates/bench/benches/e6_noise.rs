//! E6 — robustness: full runs under increasing out-of-policy noise.

use charles_bench::engine_for;
use charles_core::CharlesConfig;
use charles_synth::{employees, perturb, Scenario};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let base = employees(100, 23);
    let mut group = c.benchmark_group("e6_noise");
    group.sample_size(10);
    for frac in [0.0, 0.1, 0.4] {
        let noisy = perturb(&base.target, "bonus", frac, 0.5, 99)
            .expect("perturb")
            .table;
        let scenario = Scenario {
            name: format!("noise-{frac}"),
            source: base.source.clone(),
            target: noisy,
            target_attr: "bonus".into(),
            policy: base.policy.clone(),
        };
        group.bench_with_input(
            BenchmarkId::new("full_run_noise", format!("{:.0}%", frac * 100.0)),
            &scenario,
            |b, scenario| {
                b.iter(|| {
                    let engine = engine_for(scenario, CharlesConfig::default());
                    black_box(engine.run().expect("run").summaries.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
