//! E7 — baseline explainers: each must be dramatically cheaper than the
//! full search (they are single-model fits or raw diffs).

use charles_bench::pair_of;
use charles_core::CharlesConfig;
use charles_diff::{
    exhaustive_list_baseline, flat_delta_baseline, flat_ratio_baseline, global_regression_baseline,
    no_change_baseline, update_distance,
};
use charles_synth::county;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scenario = county(1_000, 42);
    let pair = pair_of(&scenario);
    let config = CharlesConfig::default();
    let mut group = c.benchmark_group("e7_baselines");
    group.sample_size(20);
    group.bench_function("exhaustive_list", |b| {
        b.iter(|| {
            black_box(
                exhaustive_list_baseline(&pair, "base_salary", &config)
                    .expect("baseline")
                    .explanation_units,
            )
        })
    });
    group.bench_function("global_regression", |b| {
        b.iter(|| {
            black_box(
                global_regression_baseline(&pair, "base_salary", &config)
                    .expect("baseline")
                    .scores
                    .accuracy,
            )
        })
    });
    group.bench_function("flat_ratio_r4", |b| {
        b.iter(|| {
            black_box(
                flat_ratio_baseline(&pair, "base_salary", &config)
                    .expect("baseline")
                    .scores
                    .score,
            )
        })
    });
    group.bench_function("flat_delta", |b| {
        b.iter(|| {
            black_box(
                flat_delta_baseline(&pair, "base_salary", &config)
                    .expect("baseline")
                    .scores
                    .score,
            )
        })
    });
    group.bench_function("no_change", |b| {
        b.iter(|| {
            black_box(
                no_change_baseline(&pair, "base_salary", &config)
                    .expect("baseline")
                    .scores
                    .score,
            )
        })
    });
    group.bench_function("update_distance", |b| {
        b.iter(|| {
            black_box(
                update_distance(&scenario.source, &scenario.target, "name")
                    .expect("distance")
                    .total(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
