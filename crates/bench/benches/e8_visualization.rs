//! E8 — presentation layer (demo steps 9–10): linear-model-tree and
//! partition-visualization construction plus rendering.

use charles_bench::engine_for;
use charles_core::{CharlesConfig, LinearModelTree, PartitionViz};
use charles_synth::county;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scenario = county(500, 42);
    let result = engine_for(&scenario, CharlesConfig::default())
        .run()
        .expect("run");
    let top = result.top().expect("summaries").clone();

    let mut group = c.benchmark_group("e8_visualization");
    group.bench_function("build_tree", |b| {
        b.iter(|| black_box(LinearModelTree::from_summary(&top).leaf_count()))
    });
    group.bench_function("render_tree", |b| {
        let tree = LinearModelTree::from_summary(&top);
        b.iter(|| black_box(tree.to_string().len()))
    });
    group.bench_function("build_viz", |b| {
        b.iter(|| black_box(PartitionViz::from_summary(&top).rects.len()))
    });
    group.bench_function("render_viz", |b| {
        let viz = PartitionViz::from_summary(&top);
        b.iter(|| black_box(viz.to_string().len()))
    });
    group.bench_function("render_summary_json", |b| {
        b.iter(|| black_box(charles_core::report::summary_to_json(&top).render().len()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
