//! E9 — ablations: partition-discovery method and constant snapping.

use charles_bench::engine_for;
use charles_core::{CharlesConfig, PartitionMethod};
use charles_synth::county;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scenario = county(200, 42);
    let mut group = c.benchmark_group("e9_ablations");
    group.sample_size(10);
    for (label, method) in [
        ("kmeans", PartitionMethod::ResidualKMeans),
        ("quantile", PartitionMethod::ResidualQuantile),
        ("dbscan", PartitionMethod::ResidualDbscan),
    ] {
        group.bench_with_input(
            BenchmarkId::new("partition_method", label),
            &method,
            |b, &method| {
                b.iter(|| {
                    let engine = engine_for(
                        &scenario,
                        CharlesConfig::default().with_partition_method(method),
                    );
                    black_box(engine.run().expect("run").summaries.len())
                })
            },
        );
    }
    for snap in [true, false] {
        group.bench_with_input(BenchmarkId::new("snapping", snap), &snap, |b, &snap| {
            b.iter(|| {
                let engine = engine_for(&scenario, CharlesConfig::default().with_snapping(snap));
                black_box(engine.run().expect("run").summaries.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
