//! A/B benchmark of the candidate-evaluation data plane, emitting
//! `BENCH_search.json`.
//!
//! Two paths evaluate the *same* candidates on the e5 scalability workload
//! (the county payroll scenario):
//!
//! - **naive** — the seed implementation's behaviour: every candidate
//!   re-extracts its columns from the table (string-keyed lookups plus
//!   full `Vec<f64>` copies) and refits the global regression
//!   ([`charles_core::search::evaluate_candidate_naive`]);
//! - **shared** — the zero-copy plane: one [`SearchContext`] holds
//!   `Arc`-shared column views and a global-fit memo keyed by interned
//!   attribute ids; candidates only read.
//!
//! Both paths produce identical summaries (asserted here and in the core
//! test suite); the JSON records the throughput of each plus the speedup,
//! seeding the perf trajectory for later PRs.
//!
//! A third section measures the **session** mode: a cold one-shot
//! `Charles::run` against a warm rerun of the identical query on a
//! long-lived [`charles_core::Session`] — the interactive reload path.
//! The binary asserts the warm rerun is ≥ 5× faster with byte-identical
//! ranked summaries, and records `session_warm_speedup`.
//!
//! A fourth section measures the **sharded** mode: a fresh
//! `Session::open_sharded(n)` (n from `CHARLES_BENCH_SHARDS` or the third
//! argument, default 2) against a fresh unsharded session on the identical
//! query. The binary *asserts* the sharded rankings are byte-identical to
//! the unsharded ones — the sharding exactness contract — and records both
//! throughputs side by side.
//!
//! A fifth section measures the **distributed** mode: the same query with
//! per-shard statistics served by real `charles-server` workers over the
//! wire protocol (`CHARLES_BENCH_WORKERS` in-process loopback workers,
//! default 2, or running `charles-worker` processes named by
//! `CHARLES_BENCH_WORKER_ADDRS`). The binary *asserts* the distributed
//! rankings and score bits are byte-identical to the local path and
//! records `distributed_run_seconds` / `distributed_vs_local_speedup`.
//!
//! Run: `cargo run --release -p charles-bench --bin bench_search [rows] [threads] [shards]`
//!
//! The parallel end-to-end section detects available parallelism
//! (`std::thread::available_parallelism`, cgroup-aware) unless a thread
//! count is forced via the second argument or `CHARLES_BENCH_THREADS`;
//! the JSON records the count the search *actually ran with*
//! ([`charles_core::SearchStats::threads_used`]), not the one requested.

use charles_bench::pair_of;
use charles_core::search::{
    evaluate_candidate, evaluate_candidate_naive, generate_candidates, run_search, SearchContext,
};
use charles_core::{Charles, CharlesConfig, ManagerConfig, Query, Session, SessionManager};
use charles_numerics::ols::{
    column_moments, column_moments_scalar, gram_partial, gram_partial_scalar,
};
use charles_server::{upload_csv, RemoteExecutor, Server, ServerConfig};
use charles_synth::county;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let rows: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4_000);
    // 0 = auto-detect (available_parallelism); override by arg or env.
    let threads: usize = std::env::args()
        .nth(2)
        .or_else(|| std::env::var("CHARLES_BENCH_THREADS").ok())
        .and_then(|a| a.parse().ok())
        .unwrap_or(0);
    let target = "base_salary";
    let scenario = county(rows, 42);
    let pair = pair_of(&scenario);
    let schema = pair.source().schema();
    let config = CharlesConfig::default().with_threads(1);

    let cond: Vec<_> = ["department", "grade", "division"]
        .iter()
        .map(|a| schema.attr_ref(a).expect("county attr"))
        .collect();
    let tran_names: Vec<String> = ["base_salary", "overtime_pay"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let tran: Vec<_> = tran_names
        .iter()
        .map(|a| schema.attr_ref(a).expect("county attr"))
        .collect();
    let candidates = generate_candidates(&cond, &tran, &config);
    eprintln!(
        "e5 workload: {rows} rows, {} candidates (c=department/grade/division, t=base_salary/overtime_pay)",
        candidates.len()
    );

    // Shared zero-copy plane: one context, candidates only read.
    let started = Instant::now();
    let ctx = SearchContext::new(&pair, target, &tran_names, &config).expect("context");
    let shared: Vec<_> = candidates
        .iter()
        .map(|c| evaluate_candidate(&ctx, c).expect("evaluate"))
        .collect();
    let shared_secs = started.elapsed().as_secs_f64();

    // Naive plane: per-candidate extraction + refit, as in the seed.
    let started = Instant::now();
    let naive: Vec<_> = candidates
        .iter()
        .map(|c| evaluate_candidate_naive(&pair, target, c, &config).expect("evaluate"))
        .collect();
    let naive_secs = started.elapsed().as_secs_f64();

    // The two planes must agree summary-for-summary.
    let mut produced = 0usize;
    for (i, (s, n)) in shared.iter().zip(naive.iter()).enumerate() {
        match (s, n) {
            (None, None) => {}
            (Some(s), Some(n)) => {
                assert_eq!(
                    s.signature(),
                    n.signature(),
                    "data planes disagree on candidate {i}"
                );
                produced += 1;
            }
            _ => panic!("data planes disagree on candidate {i} feasibility"),
        }
    }

    // Kernel microbench: the blocked statistics kernels (PR 6) against
    // their retained scalar references, on the same e5 design the search
    // evaluates (d = 3: intercept + base_salary + overtime_pay). Each
    // kernel runs enough repetitions to amortize timer noise; black_box
    // keeps the optimizer from hoisting the work out of the loop.
    let kviews: Vec<charles_relation::NumericView> = tran_names
        .iter()
        .map(|a| {
            pair.source()
                .column_by_name(a)
                .expect("predictor column")
                .numeric_view(a)
                .expect("numeric view")
        })
        .collect();
    let kcols: Vec<&[f64]> = kviews.iter().map(|v| v.as_slice()).collect();
    let ky_view = pair
        .target()
        .column_by_name(target)
        .expect("target column")
        .numeric_view(target)
        .expect("numeric view");
    let ky = ky_view.as_slice();
    let kscales = column_moments(&kcols, ky)
        .expect("moments")
        .validated_scales(kcols.len())
        .expect("scales");
    let reps = (2_000_000 / rows.max(1)).max(10);
    let time_reps = |f: &dyn Fn()| -> f64 {
        f(); // warm-up
        let started = Instant::now();
        for _ in 0..reps {
            f();
        }
        started.elapsed().as_secs_f64()
    };
    let gram_kernel_secs = time_reps(&|| {
        black_box(gram_partial(black_box(&kcols), black_box(ky), &kscales, 0));
    });
    let gram_scalar_secs = time_reps(&|| {
        black_box(gram_partial_scalar(
            black_box(&kcols),
            black_box(ky),
            &kscales,
            0,
        ));
    });
    let moments_kernel_secs = time_reps(&|| {
        black_box(column_moments(black_box(&kcols), black_box(ky)).expect("moments"));
    });
    let moments_scalar_secs = time_reps(&|| {
        black_box(column_moments_scalar(black_box(&kcols), black_box(ky)).expect("moments"));
    });
    let total_rows = (rows * reps) as f64;
    let gram_rows_per_sec = total_rows / gram_kernel_secs;
    let moments_rows_per_sec = total_rows / moments_kernel_secs;
    let kernel_vs_scalar_speedup = gram_scalar_secs / gram_kernel_secs.max(1e-12);
    let moments_vs_scalar_speedup = moments_scalar_secs / moments_kernel_secs.max(1e-12);
    eprintln!(
        "kernels ({reps} reps × {rows} rows, d={}): gram {gram_rows_per_sec:.0} rows/s \
         ({kernel_vs_scalar_speedup:.2}x vs scalar), moments {moments_rows_per_sec:.0} rows/s \
         ({moments_vs_scalar_speedup:.2}x vs scalar)",
        kcols.len() + 1,
    );

    // End-to-end parallel search wall time on the shared plane, for the
    // perf trajectory. `threads = 0` lets the engine detect available
    // parallelism; the JSON reports what the search actually used.
    let started = Instant::now();
    let par_config = CharlesConfig::default().with_threads(threads);
    let par_ctx = SearchContext::new(&pair, target, &tran_names, &par_config).expect("context");
    let (ranked, stats) = run_search(&par_ctx, &candidates).expect("search");
    let parallel_secs = started.elapsed().as_secs_f64();
    eprintln!(
        "parallel search: {} worker thread(s) (requested {}, detected {})",
        stats.threads_used,
        if threads == 0 {
            "auto".to_string()
        } else {
            threads.to_string()
        },
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );

    // Session mode: cold one-shot engine vs warm rerun of the identical
    // query on a long-lived session (the interactive reload path).
    let query = Query::new(target)
        .with_condition_attrs(["department", "grade", "division"])
        .with_transform_attrs(["base_salary", "overtime_pay"]);
    let started = Instant::now();
    let cold_engine = Charles::from_pair(pair.clone(), target)
        .expect("engine")
        .with_condition_attrs(["department", "grade", "division"])
        .with_transform_attrs(["base_salary", "overtime_pay"]);
    let cold_result = cold_engine.run().expect("cold run");
    let session_cold_secs = started.elapsed().as_secs_f64();

    let session = Session::open(pair.clone()).expect("session");
    let first = session.run(&query).expect("first session run");
    let fits_after_first = session.stats().global_fits_computed;
    let started = Instant::now();
    let warm_result = session.run(&query).expect("warm session run");
    let session_warm_secs = started.elapsed().as_secs_f64();
    let session_warm_speedup = session_cold_secs / session_warm_secs.max(1e-9);

    // Warm rerun must be pure cache hits and byte-identical — to the first
    // session run and to the cold one-shot engine.
    assert_eq!(
        session.stats().global_fits_computed,
        fits_after_first,
        "warm rerun performed new global fits"
    );
    let render = |s: &[charles_core::ChangeSummary]| -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    };
    assert_eq!(render(&first.summaries), render(&warm_result.summaries));
    assert_eq!(
        render(&cold_result.summaries),
        render(&warm_result.summaries),
        "session and one-shot engine disagree"
    );

    // Sharded mode: fresh sharded vs fresh unsharded session, same query.
    // The exactness contract makes "identical rankings" an assertion, not
    // a tolerance — see tests/shard_equivalence.rs for the property suite.
    let shards: usize = std::env::args()
        .nth(3)
        .or_else(|| std::env::var("CHARLES_BENCH_SHARDS").ok())
        .and_then(|a| a.parse().ok())
        .unwrap_or(2);
    let started = Instant::now();
    let unsharded_session = Session::open(pair.clone()).expect("unsharded session");
    let unsharded_result = unsharded_session.run(&query).expect("unsharded run");
    let unsharded_secs = started.elapsed().as_secs_f64();
    let started = Instant::now();
    let sharded_session = Session::open_sharded(pair.clone(), shards).expect("sharded session");
    let sharded_result = sharded_session.run(&query).expect("sharded run");
    let sharded_secs = started.elapsed().as_secs_f64();
    assert_eq!(
        render(&sharded_result.summaries),
        render(&unsharded_result.summaries),
        "sharded rankings must be byte-identical to unsharded"
    );
    let sharded_scores: Vec<u64> = sharded_result
        .summaries
        .iter()
        .map(|s| s.scores.score.to_bits())
        .collect();
    let unsharded_scores: Vec<u64> = unsharded_result
        .summaries
        .iter()
        .map(|s| s.scores.score.to_bits())
        .collect();
    assert_eq!(
        sharded_scores, unsharded_scores,
        "sharded score bits must be identical to unsharded"
    );
    let sharded_speedup = unsharded_secs / sharded_secs.max(1e-9);
    eprintln!(
        "sharded search ({shards} shards): {sharded_secs:.4}s vs unsharded {unsharded_secs:.4}s \
         ({sharded_speedup:.2}x), rankings byte-identical"
    );

    // Compressed (sealed) mode: the same pair with every column sealed
    // into per-block encodings (RLE/dictionary packing, delta/bitpack,
    // LZ'd dictionary payloads — see `charles_relation::compress`).
    // Resident bytes are measured on the freshly sealed pair, before any
    // decode cache fills; the ratio floor is a CI gate on the county
    // workload. Sealing is a layout choice, so rankings, score bits, and
    // α-sweeps must be byte-identical to the raw path at every shard
    // count — asserted for shards ∈ {1, 2, 3}.
    let sealed_pair = pair.sealed();
    let raw_plane_bytes = pair.source().approx_bytes() + pair.target().approx_bytes();
    let sealed_plane_bytes =
        sealed_pair.source().approx_bytes() + sealed_pair.target().approx_bytes();
    let compression_ratio = raw_plane_bytes as f64 / sealed_plane_bytes.max(1) as f64;
    let compressed_bytes_per_row = sealed_plane_bytes as f64 / (2 * rows.max(1)) as f64;

    // Zone-map pruning: probe the sealed source with predicates whose
    // literals sit inside, below, and above the data range, then read the
    // block skip/scan counters off the compressed columns.
    use charles_relation::{CmpOp, Predicate, Value};
    let probes = [
        Predicate::cmp("base_salary", CmpOp::Ge, Value::Float(0.0)),
        Predicate::cmp("base_salary", CmpOp::Gt, Value::Float(1e12)),
        Predicate::between("grade", Value::Int(12), Value::Int(18)),
        Predicate::cmp("overtime_pay", CmpOp::Le, Value::Float(2_500.0)),
    ];
    for probe in &probes {
        probe.eval_mask(sealed_pair.source()).expect("sealed probe");
    }
    let (mut blocks_skipped, mut blocks_scanned) = (0u64, 0u64);
    for col in sealed_pair.source().columns() {
        if let Some(data) = col.compressed_data() {
            let (skipped, scanned) = data.zone_stats();
            blocks_skipped += skipped;
            blocks_scanned += scanned;
        }
    }
    let zone_map_block_skip_frac =
        blocks_skipped as f64 / (blocks_skipped + blocks_scanned).max(1) as f64;

    let sweep_alphas = [0.25, 0.75];
    let base_sweep_bits: Vec<Vec<u64>> = unsharded_session
        .sweep_alpha(&unsharded_result, &sweep_alphas)
        .expect("raw sweep")
        .iter()
        .map(|r| r.summaries.iter().map(|s| s.scores.score.to_bits()).collect())
        .collect();
    let sealed_config = CharlesConfig::default().with_sealed_columns(true);
    let mut sealed_secs = 0.0f64;
    for sealed_shards in [1usize, 2, 3] {
        let started = Instant::now();
        let session = if sealed_shards == 1 {
            Session::open_with_config(pair.clone(), sealed_config.clone())
        } else {
            Session::open_sharded_with_config(pair.clone(), sealed_shards, sealed_config.clone())
        }
        .expect("sealed session");
        let result = session.run(&query).expect("sealed run");
        if sealed_shards == 1 {
            sealed_secs = started.elapsed().as_secs_f64();
        }
        assert_eq!(
            render(&result.summaries),
            render(&unsharded_result.summaries),
            "sealed rankings must be byte-identical to raw (shards={sealed_shards})"
        );
        let sealed_scores: Vec<u64> = result
            .summaries
            .iter()
            .map(|s| s.scores.score.to_bits())
            .collect();
        assert_eq!(
            sealed_scores, unsharded_scores,
            "sealed score bits must be identical to raw (shards={sealed_shards})"
        );
        let sweep_bits: Vec<Vec<u64>> = session
            .sweep_alpha(&result, &sweep_alphas)
            .expect("sealed sweep")
            .iter()
            .map(|r| r.summaries.iter().map(|s| s.scores.score.to_bits()).collect())
            .collect();
        assert_eq!(
            sweep_bits, base_sweep_bits,
            "sealed α-sweep bits must be identical to raw (shards={sealed_shards})"
        );
    }
    eprintln!(
        "compressed plane: {compressed_bytes_per_row:.1} B/row sealed vs \
         {:.1} B/row raw ({compression_ratio:.2}x), zone maps skipped \
         {blocks_skipped}/{} probed blocks; sealed rankings byte-identical \
         at shards 1/2/3",
        raw_plane_bytes as f64 / (2 * rows.max(1)) as f64,
        blocks_skipped + blocks_scanned,
    );

    // Distributed mode: the same query with per-shard statistics served
    // by real `charles-server` workers over the wire protocol. Workers
    // come from CHARLES_BENCH_WORKER_ADDRS (comma-separated addresses of
    // running `charles-worker` processes — the CI worker-smoke path) or
    // are spawned in-process on loopback (CHARLES_BENCH_WORKERS of them,
    // default 2). Everyone parses the same CSV text, so the assertion is
    // bit-exactness, not a tolerance.
    let mut source_csv = Vec::new();
    let mut target_csv = Vec::new();
    charles_relation::write_csv(pair.source(), &mut source_csv).expect("serialize source");
    charles_relation::write_csv(pair.target(), &mut target_csv).expect("serialize target");
    let source_csv = String::from_utf8(source_csv).expect("csv utf8");
    let target_csv = String::from_utf8(target_csv).expect("csv utf8");
    let canonical = charles_relation::SnapshotPair::align_on(
        charles_relation::read_csv(source_csv.as_bytes()).expect("reparse source"),
        charles_relation::read_csv(target_csv.as_bytes()).expect("reparse target"),
        "name",
    )
    .expect("canonical pair");

    let external: Vec<String> = std::env::var("CHARLES_BENCH_WORKER_ADDRS")
        .ok()
        .map(|s| {
            s.split(',')
                .map(str::trim)
                .filter(|a| !a.is_empty())
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default();
    let n_workers: usize = if external.is_empty() {
        std::env::var("CHARLES_BENCH_WORKERS")
            .ok()
            .and_then(|a| a.parse().ok())
            .unwrap_or(2)
            .max(1)
    } else {
        external.len()
    };
    let mut worker_servers: Vec<Server> = Vec::new();
    let worker_addrs: Vec<String> = if external.is_empty() {
        (0..n_workers)
            .map(|_| {
                let manager = Arc::new(SessionManager::new(ManagerConfig::default()));
                let server = Server::start(manager, ServerConfig::default().with_workers(2))
                    .expect("worker server starts");
                let addr = server.local_addr().to_string();
                worker_servers.push(server);
                addr
            })
            .collect()
    } else {
        external
    };
    for addr in &worker_addrs {
        upload_csv(addr, "county_bench", &source_csv, &target_csv, Some("name"))
            .expect("load dataset onto worker");
    }
    eprintln!(
        "distributed section: {n_workers} worker(s) at {worker_addrs:?} ({})",
        if worker_servers.is_empty() {
            "external processes"
        } else {
            "in-process loopback"
        }
    );

    let started = Instant::now();
    let local_session = Session::open(canonical.clone()).expect("local canonical session");
    let local_result = local_session.run(&query).expect("local canonical run");
    let local_secs = started.elapsed().as_secs_f64();

    let started = Instant::now();
    let executor = Arc::new(
        RemoteExecutor::connect("county_bench", &worker_addrs, canonical.len(), n_workers)
            .expect("remote executor"),
    );
    let dist_session = Session::open_distributed(canonical.clone(), executor.clone())
        .expect("distributed session");
    let dist_result = dist_session.run(&query).expect("distributed run");
    let distributed_secs = started.elapsed().as_secs_f64();

    assert_eq!(
        render(&dist_result.summaries),
        render(&local_result.summaries),
        "distributed rankings must be byte-identical to the local path"
    );
    let dist_scores: Vec<u64> = dist_result
        .summaries
        .iter()
        .map(|s| s.scores.score.to_bits())
        .collect();
    let local_scores: Vec<u64> = local_result
        .summaries
        .iter()
        .map(|s| s.scores.score.to_bits())
        .collect();
    assert_eq!(
        dist_scores, local_scores,
        "distributed score bits must be identical to the local path"
    );
    assert_eq!(
        executor.redispatches(),
        0,
        "healthy workers, no re-dispatch"
    );
    let distributed_speedup = local_secs / distributed_secs.max(1e-9);
    eprintln!(
        "distributed search ({n_workers} workers): {distributed_secs:.4}s vs local \
         {local_secs:.4}s ({distributed_speedup:.2}x), rankings byte-identical"
    );
    for server in &mut worker_servers {
        server.shutdown();
    }

    let n_cands = candidates.len() as f64;
    let shared_tput = n_cands / shared_secs;
    let naive_tput = n_cands / naive_secs;
    let speedup = shared_tput / naive_tput;
    let json = format!(
        "{{\n  \"workload\": \"e5_county_scalability\",\n  \"rows\": {rows},\n  \"candidates\": {},\n  \"summaries_produced\": {produced},\n  \"naive_seconds\": {naive_secs:.4},\n  \"shared_seconds\": {shared_secs:.4},\n  \"naive_candidates_per_sec\": {naive_tput:.2},\n  \"shared_candidates_per_sec\": {shared_tput:.2},\n  \"speedup\": {speedup:.2},\n  \"gram_rows_per_sec\": {gram_rows_per_sec:.0},\n  \"moments_rows_per_sec\": {moments_rows_per_sec:.0},\n  \"kernel_vs_scalar_speedup\": {kernel_vs_scalar_speedup:.2},\n  \"moments_vs_scalar_speedup\": {moments_vs_scalar_speedup:.2},\n  \"parallel_search_seconds\": {parallel_secs:.4},\n  \"parallel_threads\": {},\n  \"ranked_summaries\": {},\n  \"distinct_summaries\": {},\n  \"session_cold_seconds\": {session_cold_secs:.4},\n  \"session_warm_seconds\": {session_warm_secs:.6},\n  \"session_warm_speedup\": {session_warm_speedup:.2},\n  \"shards\": {shards},\n  \"unsharded_run_seconds\": {unsharded_secs:.4},\n  \"sharded_run_seconds\": {sharded_secs:.4},\n  \"sharded_vs_unsharded_speedup\": {sharded_speedup:.2},\n  \"sharded_rankings_identical\": true,\n  \"compressed_bytes_per_row\": {compressed_bytes_per_row:.2},\n  \"compression_ratio\": {compression_ratio:.2},\n  \"zone_map_block_skip_frac\": {zone_map_block_skip_frac:.3},\n  \"sealed_run_seconds\": {sealed_secs:.4},\n  \"sealed_rankings_identical\": true,\n  \"workers\": {n_workers},\n  \"local_run_seconds\": {local_secs:.4},\n  \"distributed_run_seconds\": {distributed_secs:.4},\n  \"distributed_vs_local_speedup\": {distributed_speedup:.2},\n  \"distributed_rankings_identical\": true\n}}\n",
        candidates.len(),
        stats.threads_used,
        ranked.len(),
        stats.distinct,
    );
    std::fs::write("BENCH_search.json", &json).expect("write BENCH_search.json");
    print!("{json}");
    eprintln!(
        "speedup (shared vs naive, single-threaded): {speedup:.2}x; \
         warm session rerun vs cold run: {session_warm_speedup:.2}x — wrote BENCH_search.json"
    );
    assert!(
        speedup >= 1.5,
        "shared data plane must be ≥ 1.5x the naive extraction path, got {speedup:.2}x"
    );
    assert!(
        session_warm_speedup >= 5.0,
        "warm session rerun must be ≥ 5x a cold run, got {session_warm_speedup:.2}x"
    );
    assert!(
        compression_ratio >= 3.0,
        "sealed county plane must be ≤ 1/3 of the raw plane's bytes, got \
         {compression_ratio:.2}x ({compressed_bytes_per_row:.1} B/row)"
    );
    assert!(
        zone_map_block_skip_frac > 0.0,
        "zone maps must skip at least one probed block"
    );
    assert!(
        kernel_vs_scalar_speedup >= 1.5,
        "blocked gram kernel must be ≥ 1.5x the scalar reference, got \
         {kernel_vs_scalar_speedup:.2}x"
    );
    // CI regression floor: fail if the kernel itself got slower than the
    // recorded baseline (rows/sec, set from a committed bench run).
    if let Some(floor) = std::env::var("CHARLES_BENCH_GRAM_FLOOR")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
    {
        assert!(
            gram_rows_per_sec >= floor,
            "gram_rows_per_sec {gram_rows_per_sec:.0} fell below the recorded floor {floor:.0}"
        );
    }
}
