//! Served-throughput benchmark for the multi-tenant serving layer,
//! emitting `BENCH_serve.json`.
//!
//! The workload is the e5 county payroll scenario served over real HTTP:
//! the dataset is registered as two CSV files on disk, the server runs
//! with its bounded worker pool, and a raw-TCP client measures full
//! request→response round-trips (HTTP parse + JSON decode + engine +
//! JSON encode) in two regimes:
//!
//! - **cold** — each request is preceded by `POST .../evict`, so the
//!   manager re-reads the CSVs, re-aligns the pair, reopens the session,
//!   and runs the search from nothing (the "dataset-open + query" cost a
//!   naive stateless service would pay per request);
//! - **warm** — the session stays resident and the client holds a
//!   **keep-alive** connection ([`charles_server::HttpClient`]), so each
//!   request rides the fully cached plane (PR 2's warm path) plus only
//!   the wire framing — no per-request TCP setup, isolating engine cost
//!   from connection cost.
//!
//! The same CSVs are also registered as a **sharded** dataset
//! (`DatasetSpec::sharded`, 2 row-range shards) and queried once: its
//! rankings are asserted byte-identical to the unsharded ones over the
//! wire — the sharding exactness contract, observed end-to-end.
//!
//! Cold and warm rankings are asserted byte-identical (modulo the
//! `elapsed_ms` timing field), and the binary asserts warm serving is
//! ≥ 50x cold on the full 4k-row workload (≥ 5x under `--smoke`, which
//! CI runs on a small row count).
//!
//! Run: `cargo run --release -p charles-bench --bin bench_serve [--smoke] [rows]`

use charles_core::{DatasetSpec, ManagerConfig, SessionManager};
use charles_server::{
    http_request, HttpClient, Json, Server, ServerConfig, WireQuery, PROTOCOL_VERSION,
};
use charles_synth::county;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let rows: usize = args
        .iter()
        .find_map(|a| a.parse().ok())
        .unwrap_or(if smoke { 600 } else { 4_000 });
    let (cold_requests, warm_requests) = if smoke { (1, 5) } else { (3, 25) };

    // Register the county dataset as CSVs on disk: the cold path then
    // exercises the whole ingest stack (read + type-sniff + align) on
    // every re-open, exactly what a stateless service would pay.
    let scenario = county(rows, 42);
    let dir = std::env::temp_dir().join(format!("charles_bench_serve_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let source_path = dir.join("county_v1.csv");
    let target_path = dir.join("county_v2.csv");
    charles_relation::write_csv_path(&scenario.source, &source_path).expect("write source CSV");
    charles_relation::write_csv_path(&scenario.target, &target_path).expect("write target CSV");

    let manager = Arc::new(SessionManager::new(
        ManagerConfig::default().with_max_sessions(4),
    ));
    manager.register_csv("county", &source_path, &target_path, Some("name".into()));
    // The same data served sharded: 2 row-range planes behind one name.
    let shards = 2usize;
    manager.register(
        "county_sharded",
        DatasetSpec::sharded(
            DatasetSpec::CsvPair {
                source: source_path.clone(),
                target: target_path.clone(),
                key: Some("name".into()),
            },
            shards,
        ),
    );
    let mut server = Server::start(
        Arc::clone(&manager),
        ServerConfig::default().with_workers(2),
    )
    .expect("server starts");
    let addr = server.local_addr();
    eprintln!("bench_serve: {rows} rows on http://{addr} (smoke={smoke})");

    // Smoke gate: the health probe and one query must round-trip 2xx.
    let health = http_request(addr, "GET", "/healthz", None).expect("healthz");
    assert!(health.is_success(), "healthz failed: {}", health.body);
    let mut query = WireQuery::new(&scenario.target_attr);
    query.condition_attrs = Some(vec!["department".into(), "grade".into(), "division".into()]);
    query.transform_attrs = Some(vec!["base_salary".into(), "overtime_pay".into()]);
    let body = query.to_json().encode();
    let first =
        http_request(addr, "POST", "/v1/datasets/county/query", Some(&body)).expect("first query");
    assert!(
        first.is_success(),
        "query round-trip failed ({}): {}",
        first.status,
        first.body
    );

    // Rankings only (timing stripped) for the identity assertions.
    let rankings = |body: &str| -> String {
        let mut doc = Json::parse(body).expect("response JSON");
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "elapsed_ms");
        }
        doc.encode()
    };
    let reference = rankings(&first.body);

    // Cold regime: evict, then pay open+query per request.
    let mut cold_total = 0.0f64;
    for i in 0..cold_requests {
        let evicted = http_request(addr, "POST", "/v1/datasets/county/evict", None).expect("evict");
        assert!(evicted.is_success(), "evict failed: {}", evicted.body);
        let started = Instant::now();
        let response = http_request(addr, "POST", "/v1/datasets/county/query", Some(&body))
            .expect("cold query");
        // lint:allow(float-fold-order: wall-clock accounting in the bench harness)
        cold_total += started.elapsed().as_secs_f64();
        assert!(response.is_success(), "cold query {i}: {}", response.body);
        assert_eq!(
            rankings(&response.body),
            reference,
            "cold request {i} diverged from the reference ranking"
        );
    }

    // Warm regime: the resident session serves every request, and the
    // client reuses ONE keep-alive connection for the whole loop —
    // engine + framing cost only, no per-request TCP setup.
    let warmup =
        http_request(addr, "POST", "/v1/datasets/county/query", Some(&body)).expect("warmup query");
    assert!(warmup.is_success());
    let mut client = HttpClient::connect(addr).expect("keep-alive connect");
    let mut warm_total = 0.0f64;
    for i in 0..warm_requests {
        let started = Instant::now();
        let response = client
            .request("POST", "/v1/datasets/county/query", Some(&body))
            .expect("warm keep-alive query");
        // lint:allow(float-fold-order: wall-clock accounting in the bench harness)
        warm_total += started.elapsed().as_secs_f64();
        assert!(response.is_success(), "warm query {i}: {}", response.body);
        assert!(
            !client.is_closed(),
            "server closed the keep-alive connection mid-bench"
        );
        assert_eq!(
            rankings(&response.body),
            reference,
            "warm request {i} diverged from the reference ranking"
        );
    }

    // Sharded serving: the 2-shard registration must answer the identical
    // bytes (modulo timing) over the wire.
    let sharded_response = client
        .request("POST", "/v1/datasets/county_sharded/query", Some(&body))
        .expect("sharded query");
    assert!(
        sharded_response.is_success(),
        "sharded query: {}",
        sharded_response.body
    );
    assert_eq!(
        rankings(&sharded_response.body),
        reference,
        "sharded dataset diverged from the unsharded ranking"
    );
    let sharded_stats = client
        .request("GET", "/v1/datasets/county_sharded/stats", None)
        .expect("sharded stats");
    let shards_on_wire = Json::parse(&sharded_stats.body)
        .expect("stats JSON")
        .get("shards")
        .and_then(Json::as_usize)
        .expect("shards field");
    assert_eq!(shards_on_wire, shards, "wire must expose the shard count");

    let cold_per_req = cold_total / cold_requests as f64;
    let warm_per_req = warm_total / warm_requests as f64;
    let cold_rps = 1.0 / cold_per_req.max(1e-9);
    let warm_rps = 1.0 / warm_per_req.max(1e-9);
    let speedup = cold_per_req / warm_per_req.max(1e-12);

    let stats = manager.dataset_stats("county").expect("county stats");
    let json = format!(
        "{{\n  \"workload\": \"e5_county_served\",\n  \"rows\": {rows},\n  \"protocol_version\": {PROTOCOL_VERSION},\n  \"server_workers\": 2,\n  \"smoke\": {smoke},\n  \"cold_requests\": {cold_requests},\n  \"warm_requests\": {warm_requests},\n  \"warm_keep_alive\": true,\n  \"cold_seconds_per_request\": {cold_per_req:.4},\n  \"warm_seconds_per_request\": {warm_per_req:.6},\n  \"cold_requests_per_sec\": {cold_rps:.2},\n  \"warm_requests_per_sec\": {warm_rps:.2},\n  \"served_warm_speedup\": {speedup:.2},\n  \"identical_rankings\": true,\n  \"sharded_dataset_shards\": {shards},\n  \"sharded_rankings_identical\": true,\n  \"dataset_opens\": {},\n  \"dataset_evictions\": {},\n  \"resident_bytes\": {}\n}}\n",
        stats.opens, stats.evictions, stats.approx_bytes,
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    print!("{json}");
    eprintln!(
        "cold {cold_per_req:.3}s/req ({cold_rps:.2} req/s) vs warm {warm_per_req:.5}s/req \
         ({warm_rps:.1} req/s): {speedup:.1}x — wrote BENCH_serve.json"
    );

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();

    let floor = if smoke { 5.0 } else { 50.0 };
    assert!(
        speedup >= floor,
        "warm served queries must be ≥ {floor}x cold open+query, got {speedup:.2}x"
    );
}
