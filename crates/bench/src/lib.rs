//! # charles-bench
//!
//! Shared harness for the ChARLES experiment suite (DESIGN.md §3).
//! The Criterion benches under `benches/` time the pipeline; the `repro`
//! binary (`cargo run --release -p charles-bench --bin repro`) regenerates
//! every experiment table recorded in `EXPERIMENTS.md`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use charles_core::{
    evaluate_recovery, Charles, CharlesConfig, RecoveryReport, RunResult, TruthRule,
};
use charles_relation::SnapshotPair;
use charles_synth::Scenario;

/// Convert a synthetic policy into recovery-metric truth rules.
pub fn truth_rules(scenario: &Scenario) -> Vec<TruthRule> {
    scenario
        .policy
        .rule_pairs()
        .into_iter()
        .map(|(condition, expr)| TruthRule { condition, expr })
        .collect()
}

/// Align a scenario's snapshots.
pub fn pair_of(scenario: &Scenario) -> SnapshotPair {
    SnapshotPair::align(scenario.source.clone(), scenario.target.clone())
        .expect("scenario snapshots align")
}

/// Build an engine for a scenario with a given config.
pub fn engine_for(scenario: &Scenario, config: CharlesConfig) -> Charles {
    Charles::from_pair(pair_of(scenario), &scenario.target_attr)
        .expect("valid scenario target")
        .with_config(config)
}

/// Open a long-lived session for a scenario with a given config, plus the
/// default query asking it the scenario's question.
pub fn session_for(
    scenario: &Scenario,
    config: CharlesConfig,
) -> (charles_core::Session, charles_core::Query) {
    let session =
        charles_core::Session::open_with_config(pair_of(scenario), config).expect("session opens");
    (session, charles_core::Query::new(&scenario.target_attr))
}

/// Run a scenario and evaluate the top summary against ground truth.
pub fn run_and_evaluate(scenario: &Scenario, config: CharlesConfig) -> (RunResult, RecoveryReport) {
    let pair = pair_of(scenario);
    let result = engine_for(scenario, config.clone())
        .run()
        .expect("engine runs");
    let top = result.top().expect("summaries produced");
    let report = evaluate_recovery(
        top,
        &pair,
        &scenario.target_attr,
        &truth_rules(scenario),
        &config,
    )
    .expect("recovery evaluates");
    (result, report)
}

/// Fixed-width experiment table printer (rows of pre-formatted cells).
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut line = String::from("|");
    for (h, w) in header.iter().zip(widths.iter()) {
        line.push_str(&format!(" {h:w$} |"));
    }
    println!("{line}");
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{:-<width$}|", "", width = w + 2));
    }
    println!("{sep}");
    for row in rows {
        let mut line = String::from("|");
        for (cell, w) in row.iter().zip(widths.iter()) {
            line.push_str(&format!(" {cell:w$} |"));
        }
        println!("{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_synth::example1;

    #[test]
    fn harness_runs_example1() {
        let scenario = example1();
        let (result, report) = run_and_evaluate(&scenario, CharlesConfig::default());
        assert!(!result.summaries.is_empty());
        assert!((-1.0..=1.0).contains(&report.ari));
    }

    #[test]
    fn table_printer_is_shape_safe() {
        print_table(
            "smoke",
            &["a", "long-header"],
            &[vec!["1".into(), "2".into()]],
        );
    }
}
