//! DBSCAN density clustering — used as the partition-discovery ablation
//! (experiment E9): an alternative to the paper's k-means step that needs
//! no `k` but is sensitive to density parameters.

use crate::error::{ClusterError, Result};

/// Label assigned to points in no cluster.
pub const NOISE: isize = -1;

/// DBSCAN result: cluster id per point (`NOISE` = -1 for outliers).
#[derive(Debug, Clone)]
pub struct DbscanResult {
    /// Cluster label per point; `-1` marks noise.
    pub labels: Vec<isize>,
    /// Number of clusters found.
    pub n_clusters: usize,
}

impl DbscanResult {
    /// Number of noise points.
    pub fn noise_count(&self) -> usize {
        self.labels.iter().filter(|&&l| l == NOISE).count()
    }

    /// Indices per cluster (noise excluded).
    pub fn cluster_members(&self) -> Vec<Vec<usize>> {
        let mut members = vec![Vec::new(); self.n_clusters];
        for (i, &l) in self.labels.iter().enumerate() {
            if l >= 0 {
                members[l as usize].push(i);
            }
        }
        members
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y) * (x - y))
        // lint:allow(float-fold-order: cluster-internal accumulation in fixed row order, coordinator-local)
        .sum()
}

/// Classic DBSCAN with Euclidean distance (exact neighbour scan, O(n²)).
///
/// `eps` is the neighbourhood radius; `min_points` the density threshold
/// (including the point itself).
pub fn dbscan(points: &[Vec<f64>], eps: f64, min_points: usize) -> Result<DbscanResult> {
    if eps <= 0.0 || !eps.is_finite() {
        return Err(ClusterError::InvalidParameter(format!(
            "eps must be positive and finite, got {eps}"
        )));
    }
    if min_points == 0 {
        return Err(ClusterError::InvalidParameter(
            "min_points must be ≥ 1".into(),
        ));
    }
    let n = points.len();
    if n > 0 {
        let dim = points[0].len();
        for p in points {
            if p.len() != dim {
                return Err(ClusterError::DimensionMismatch {
                    expected: dim,
                    found: p.len(),
                });
            }
            if p.iter().any(|v| !v.is_finite()) {
                return Err(ClusterError::NonFinite);
            }
        }
    }
    let eps_sq = eps * eps;
    let neighbours = |i: usize| -> Vec<usize> {
        (0..n)
            .filter(|&j| sq_dist(&points[i], &points[j]) <= eps_sq)
            .collect()
    };

    const UNVISITED: isize = -2;
    let mut labels = vec![UNVISITED; n];
    let mut cluster: isize = 0;
    for i in 0..n {
        if labels[i] != UNVISITED {
            continue;
        }
        let nbrs = neighbours(i);
        if nbrs.len() < min_points {
            labels[i] = NOISE;
            continue;
        }
        labels[i] = cluster;
        let mut frontier: Vec<usize> = nbrs;
        let mut cursor = 0;
        while cursor < frontier.len() {
            let j = frontier[cursor];
            cursor += 1;
            if labels[j] == NOISE {
                labels[j] = cluster; // border point
            }
            if labels[j] != UNVISITED {
                continue;
            }
            labels[j] = cluster;
            let jn = neighbours(j);
            if jn.len() >= min_points {
                frontier.extend(jn);
            }
        }
        cluster += 1;
    }
    Ok(DbscanResult {
        labels,
        n_clusters: cluster as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_dense_blobs_with_outlier() {
        let mut pts: Vec<Vec<f64>> = (0..10).map(|i| vec![0.0 + i as f64 * 0.05]).collect();
        pts.extend((0..10).map(|i| vec![10.0 + i as f64 * 0.05]));
        pts.push(vec![100.0]);
        let res = dbscan(&pts, 0.2, 3).unwrap();
        assert_eq!(res.n_clusters, 2);
        assert_eq!(res.noise_count(), 1);
        assert_eq!(res.labels[20], NOISE);
        assert!(res.labels[..10].iter().all(|&l| l == res.labels[0]));
        assert!(res.labels[10..20].iter().all(|&l| l == res.labels[10]));
        assert_ne!(res.labels[0], res.labels[10]);
    }

    #[test]
    fn all_noise_when_sparse() {
        let pts: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64 * 100.0]).collect();
        let res = dbscan(&pts, 1.0, 2).unwrap();
        assert_eq!(res.n_clusters, 0);
        assert_eq!(res.noise_count(), 5);
    }

    #[test]
    fn border_points_join_clusters() {
        // Chain where the middle point bridges: core at 0.0 and 0.1, border
        // at 0.25 reachable but not core.
        let pts = vec![vec![0.0], vec![0.1], vec![0.05], vec![0.25]];
        let res = dbscan(&pts, 0.15, 3).unwrap();
        assert_eq!(res.n_clusters, 1);
        assert_eq!(res.labels[3], 0, "border point should join the cluster");
    }

    #[test]
    fn empty_input() {
        let res = dbscan(&[], 1.0, 2).unwrap();
        assert_eq!(res.n_clusters, 0);
        assert!(res.labels.is_empty());
    }

    #[test]
    fn validation() {
        assert!(dbscan(&[vec![1.0]], 0.0, 2).is_err());
        assert!(dbscan(&[vec![1.0]], 1.0, 0).is_err());
        assert!(dbscan(&[vec![1.0], vec![1.0, 2.0]], 1.0, 2).is_err());
        assert!(dbscan(&[vec![f64::INFINITY]], 1.0, 1).is_err());
    }

    #[test]
    fn cluster_members_exclude_noise() {
        let pts = vec![vec![0.0], vec![0.05], vec![0.1], vec![50.0]];
        let res = dbscan(&pts, 0.2, 2).unwrap();
        let members = res.cluster_members();
        assert_eq!(members.len(), res.n_clusters);
        assert_eq!(members[0], vec![0, 1, 2]);
    }
}
