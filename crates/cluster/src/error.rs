//! Error types for clustering routines.

use std::fmt;

/// Errors produced by clustering algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// Fewer points than requested clusters.
    TooFewPoints {
        /// Number of points provided.
        points: usize,
        /// Number of clusters requested.
        k: usize,
    },
    /// `k = 0` or another degenerate parameter.
    InvalidParameter(String),
    /// Points have inconsistent dimensionality.
    DimensionMismatch {
        /// Expected dimensionality.
        expected: usize,
        /// Dimensionality found.
        found: usize,
    },
    /// Input contained NaN/infinite coordinates.
    NonFinite,
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::TooFewPoints { points, k } => {
                write!(f, "cannot form {k} clusters from {points} points")
            }
            ClusterError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            ClusterError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            ClusterError::NonFinite => write!(f, "non-finite coordinate in input"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Convenience result alias for the cluster crate.
pub type Result<T> = std::result::Result<T, ClusterError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(ClusterError::TooFewPoints { points: 2, k: 5 }
            .to_string()
            .contains("5 clusters from 2 points"));
        assert!(ClusterError::NonFinite.to_string().contains("non-finite"));
    }
}
