//! Lloyd's k-means with k-means++ seeding and restarts.

use crate::error::{ClusterError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A k-means clustering result.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster id (0..k) per input point.
    pub assignments: Vec<usize>,
    /// Cluster centroids, `k × dim`.
    pub centroids: Vec<Vec<f64>>,
    /// Total within-cluster sum of squared distances.
    pub inertia: f64,
    /// Lloyd iterations executed in the winning restart.
    pub iterations: usize,
}

impl KMeansResult {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Sizes of each cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }

    /// Row indices belonging to each cluster.
    pub fn cluster_members(&self) -> Vec<Vec<usize>> {
        let mut members = vec![Vec::new(); self.k()];
        for (i, &a) in self.assignments.iter().enumerate() {
            members[a].push(i);
        }
        members
    }
}

/// Configuration for [`kmeans`].
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations per restart.
    pub max_iterations: usize,
    /// Independent restarts (best inertia wins).
    pub restarts: usize,
    /// RNG seed for deterministic behaviour.
    pub seed: u64,
}

impl KMeansConfig {
    /// Standard configuration for `k` clusters.
    pub fn new(k: usize) -> Self {
        KMeansConfig {
            k,
            max_iterations: 100,
            restarts: 4,
            seed: 0x0C4A_71E5,
        }
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y) * (x - y))
        // lint:allow(float-fold-order: cluster-internal accumulation in fixed row order, coordinator-local)
        .sum()
}

fn validate(points: &[Vec<f64>], k: usize) -> Result<usize> {
    if k == 0 {
        return Err(ClusterError::InvalidParameter("k must be ≥ 1".into()));
    }
    if points.len() < k {
        return Err(ClusterError::TooFewPoints {
            points: points.len(),
            k,
        });
    }
    let dim = points[0].len();
    if dim == 0 {
        return Err(ClusterError::InvalidParameter(
            "points must have at least one dimension".into(),
        ));
    }
    for p in points {
        if p.len() != dim {
            return Err(ClusterError::DimensionMismatch {
                expected: dim,
                found: p.len(),
            });
        }
        if p.iter().any(|v| !v.is_finite()) {
            return Err(ClusterError::NonFinite);
        }
    }
    Ok(dim)
}

/// k-means++ seeding: first centroid uniform, then proportional to squared
/// distance from the nearest chosen centroid.
fn seed_centroids(points: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    let mut dists: Vec<f64> = points.iter().map(|p| sq_dist(p, &centroids[0])).collect();
    while centroids.len() < k {
        // lint:allow(float-fold-order: cluster-internal accumulation in fixed row order, coordinator-local)
        let total: f64 = dists.iter().sum();
        let next = if total <= 0.0 {
            // All residual mass is zero (duplicate points): pick uniformly.
            rng.gen_range(0..points.len())
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = points.len() - 1;
            for (i, &d) in dists.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.push(points[next].clone());
        for (d, p) in dists.iter_mut().zip(points.iter()) {
            let nd = sq_dist(p, centroids.last().expect("just pushed"));
            if nd < *d {
                *d = nd;
            }
        }
    }
    centroids
}

fn lloyd(
    points: &[Vec<f64>],
    mut centroids: Vec<Vec<f64>>,
    max_iterations: usize,
) -> (Vec<usize>, Vec<Vec<f64>>, f64, usize) {
    let n = points.len();
    let k = centroids.len();
    let dim = points[0].len();
    let mut assignments = vec![0usize; n];
    let mut iterations = 0;
    for it in 0..max_iterations {
        iterations = it + 1;
        // Assignment step.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d = sq_dist(p, centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        if !changed && it > 0 {
            break;
        }
        // Update step.
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(assignments.iter()) {
            counts[a] += 1;
            for (s, &v) in sums[a].iter_mut().zip(p.iter()) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Empty cluster: re-seed at the point farthest from its
                // centroid to keep k clusters alive.
                let (far_idx, _) = points
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (i, sq_dist(p, &centroids[assignments[i]])))
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("points non-empty");
                centroids[c] = points[far_idx].clone();
            } else {
                for (cc, s) in centroids[c].iter_mut().zip(sums[c].iter()) {
                    *cc = s / counts[c] as f64;
                }
            }
        }
    }
    let inertia = points
        .iter()
        .zip(assignments.iter())
        .map(|(p, &a)| sq_dist(p, &centroids[a]))
        // lint:allow(float-fold-order: cluster-internal accumulation in fixed row order, coordinator-local)
        .sum();
    (assignments, centroids, inertia, iterations)
}

/// Cluster `points` into `config.k` clusters.
pub fn kmeans(points: &[Vec<f64>], config: &KMeansConfig) -> Result<KMeansResult> {
    validate(points, config.k)?;
    let mut best: Option<KMeansResult> = None;
    for restart in 0..config.restarts.max(1) {
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(restart as u64));
        let seeds = seed_centroids(points, config.k, &mut rng);
        let (assignments, centroids, inertia, iterations) =
            lloyd(points, seeds, config.max_iterations);
        if best.as_ref().is_none_or(|b| inertia < b.inertia) {
            best = Some(KMeansResult {
                assignments,
                centroids,
                inertia,
                iterations,
            });
        }
    }
    Ok(best.expect("at least one restart"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..20 {
            pts.push(vec![
                0.0 + (i % 5) as f64 * 0.01,
                0.0 + (i / 5) as f64 * 0.01,
            ]);
        }
        for i in 0..20 {
            pts.push(vec![
                10.0 + (i % 5) as f64 * 0.01,
                10.0 + (i / 5) as f64 * 0.01,
            ]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let pts = two_blobs();
        let res = kmeans(&pts, &KMeansConfig::new(2)).unwrap();
        assert_eq!(res.k(), 2);
        let first = res.assignments[0];
        assert!(res.assignments[..20].iter().all(|&a| a == first));
        assert!(res.assignments[20..].iter().all(|&a| a != first));
        let sizes = res.cluster_sizes();
        assert_eq!(sizes, vec![20, 20]);
        assert!(res.inertia < 1.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let pts = two_blobs();
        let a = kmeans(&pts, &KMeansConfig::new(2).with_seed(7)).unwrap();
        let b = kmeans(&pts, &KMeansConfig::new(2).with_seed(7)).unwrap();
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let pts = vec![vec![1.0], vec![2.0], vec![3.0]];
        let res = kmeans(&pts, &KMeansConfig::new(3)).unwrap();
        assert!(res.inertia < 1e-20);
        let mut sorted = res.assignments.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn k_one_centroid_is_mean() {
        let pts = vec![vec![0.0], vec![4.0]];
        let res = kmeans(&pts, &KMeansConfig::new(1)).unwrap();
        assert!((res.centroids[0][0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_points_dont_crash() {
        let pts = vec![vec![1.0, 1.0]; 10];
        let res = kmeans(&pts, &KMeansConfig::new(3)).unwrap();
        assert_eq!(res.assignments.len(), 10);
        assert!(res.inertia < 1e-18);
    }

    #[test]
    fn input_validation() {
        assert!(kmeans(&[vec![1.0]], &KMeansConfig::new(0)).is_err());
        assert!(kmeans(&[vec![1.0]], &KMeansConfig::new(2)).is_err());
        assert!(kmeans(&[vec![1.0], vec![1.0, 2.0]], &KMeansConfig::new(1)).is_err());
        assert!(kmeans(&[vec![f64::NAN]], &KMeansConfig::new(1)).is_err());
        assert!(kmeans(&[vec![]], &KMeansConfig::new(1)).is_err());
    }

    #[test]
    fn cluster_members_partition_indices() {
        let pts = two_blobs();
        let res = kmeans(&pts, &KMeansConfig::new(2)).unwrap();
        let members = res.cluster_members();
        let total: usize = members.iter().map(Vec::len).sum();
        assert_eq!(total, pts.len());
        let mut all: Vec<usize> = members.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..pts.len()).collect::<Vec<_>>());
    }
}
