//! Exact 1-D k-means by dynamic programming.
//!
//! ChARLES clusters *residuals from a global regression fit* — a 1-D
//! problem — to find candidate partitions. In one dimension, optimal
//! k-means is solvable exactly in `O(k · n²)` with prefix sums over the
//! sorted values (the clusters of an optimal solution are contiguous in
//! sorted order). Exactness matters here: Lloyd's algorithm on residuals
//! can merge the small, semantically distinct residual groups that
//! correspond to different latent update rules.

use crate::error::{ClusterError, Result};
use crate::kmeans::KMeansResult;

/// Inputs longer than this are clustered via a quantile subsample (the DP
/// is O(k·n²)); the subsample of this size keeps boundaries within one
/// quantile step of optimal while making large-n clustering O(k·s²+n·k).
const MAX_EXACT_POINTS: usize = 2048;

/// Cluster scalar `values` into exactly `k` groups, minimizing
/// within-cluster sum of squared deviations. Exact (dynamic programming)
/// up to [`MAX_EXACT_POINTS`] inputs; above that, the optimal clustering
/// of an evenly-strided quantile subsample is extended to all points by
/// nearest-centroid assignment. Returns assignments aligned with the input
/// order and 1-D centroids.
pub fn kmeans_1d(values: &[f64], k: usize) -> Result<KMeansResult> {
    if values.len() > MAX_EXACT_POINTS && k >= 1 {
        return kmeans_1d_sampled(values, k);
    }
    kmeans_1d_exact(values, k)
}

/// Large-n path: exact DP on a sorted quantile subsample, then
/// nearest-centroid assignment of every point.
fn kmeans_1d_sampled(values: &[f64], k: usize) -> Result<KMeansResult> {
    if k == 0 {
        return Err(ClusterError::InvalidParameter("k must be ≥ 1".into()));
    }
    if values.iter().any(|v| !v.is_finite()) {
        return Err(ClusterError::NonFinite);
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let stride = sorted.len().div_ceil(MAX_EXACT_POINTS).max(1);
    let sample: Vec<f64> = sorted.iter().step_by(stride).copied().collect();
    let sub = kmeans_1d_exact(&sample, k.min(sample.len()))?;
    // Centroids are value-ordered; assign by nearest midpoint boundary.
    let centers: Vec<f64> = sub.centroids.iter().map(|c| c[0]).collect();
    let boundaries: Vec<f64> = centers.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect();
    let assign = |v: f64| -> usize { boundaries.iter().take_while(|&&b| v >= b).count() };
    let assignments: Vec<usize> = values.iter().map(|&v| assign(v)).collect();
    // Recompute centroids and inertia over the full data.
    let kk = centers.len();
    let mut sums = vec![0.0; kk];
    let mut counts = vec![0usize; kk];
    for (&v, &a) in values.iter().zip(assignments.iter()) {
        // lint:allow(float-fold-order: cluster-internal accumulation in fixed row order, coordinator-local)
        sums[a] += v;
        counts[a] += 1;
    }
    let centroids: Vec<Vec<f64>> = sums
        .iter()
        .zip(counts.iter())
        .zip(centers.iter())
        .map(|((&s, &c), &fallback)| vec![if c > 0 { s / c as f64 } else { fallback }])
        .collect();
    let inertia = values
        .iter()
        .zip(assignments.iter())
        .map(|(&v, &a)| (v - centroids[a][0]).powi(2))
        // lint:allow(float-fold-order: cluster-internal accumulation in fixed row order, coordinator-local)
        .sum();
    Ok(KMeansResult {
        assignments,
        centroids,
        inertia,
        iterations: 1,
    })
}

/// Exact DP (Wang & Song style) — optimal 1-D k-means.
fn kmeans_1d_exact(values: &[f64], k: usize) -> Result<KMeansResult> {
    if k == 0 {
        return Err(ClusterError::InvalidParameter("k must be ≥ 1".into()));
    }
    let n = values.len();
    if n < k {
        return Err(ClusterError::TooFewPoints { points: n, k });
    }
    if values.iter().any(|v| !v.is_finite()) {
        return Err(ClusterError::NonFinite);
    }

    // Sort, remembering original positions.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let sorted: Vec<f64> = order.iter().map(|&i| values[i]).collect();

    // Prefix sums for O(1) within-cluster cost of any range.
    let mut prefix = vec![0.0; n + 1];
    let mut prefix_sq = vec![0.0; n + 1];
    for (i, &v) in sorted.iter().enumerate() {
        prefix[i + 1] = prefix[i] + v;
        prefix_sq[i + 1] = prefix_sq[i] + v * v;
    }
    // Cost of clustering sorted[i..j] (exclusive j) into one cluster.
    let range_cost = |i: usize, j: usize| -> f64 {
        let len = (j - i) as f64;
        if len <= 0.0 {
            return 0.0;
        }
        let s = prefix[j] - prefix[i];
        let sq = prefix_sq[j] - prefix_sq[i];
        (sq - s * s / len).max(0.0)
    };

    // DP over (clusters used, prefix length): cost[c][j] = best cost of
    // clustering the first j sorted values into c clusters.
    let inf = f64::INFINITY;
    let mut cost = vec![vec![inf; n + 1]; k + 1];
    let mut split = vec![vec![0usize; n + 1]; k + 1];
    cost[0][0] = 0.0;
    for c in 1..=k {
        for j in c..=n {
            // Last cluster covers sorted[i..j]; i ranges over [c-1, j-1].
            for i in (c - 1)..j {
                if cost[c - 1][i] == inf {
                    continue;
                }
                let candidate = cost[c - 1][i] + range_cost(i, j);
                if candidate < cost[c][j] {
                    cost[c][j] = candidate;
                    split[c][j] = i;
                }
            }
        }
    }

    // Recover boundaries.
    let mut boundaries = vec![0usize; k + 1];
    boundaries[k] = n;
    let mut j = n;
    for c in (1..=k).rev() {
        let i = split[c][j];
        boundaries[c - 1] = i;
        j = i;
    }

    // Build assignments (cluster ids ordered by value) and centroids.
    let mut assignments = vec![0usize; n];
    let mut centroids = Vec::with_capacity(k);
    for c in 0..k {
        let (lo, hi) = (boundaries[c], boundaries[c + 1]);
        let len = (hi - lo).max(1) as f64;
        centroids.push(vec![(prefix[hi] - prefix[lo]) / len]);
        for &orig in &order[lo..hi] {
            assignments[orig] = c;
        }
    }
    Ok(KMeansResult {
        assignments,
        centroids,
        inertia: cost[k][n],
        iterations: 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_three_group_recovery() {
        // Three residual groups, like three latent update rules.
        let values = vec![0.01, 0.02, 0.0, 5.0, 5.1, 4.9, -3.0, -3.1, -2.9];
        let res = kmeans_1d(&values, 3).unwrap();
        assert_eq!(res.assignments[0], res.assignments[1]);
        assert_eq!(res.assignments[0], res.assignments[2]);
        assert_eq!(res.assignments[3], res.assignments[4]);
        assert_eq!(res.assignments[3], res.assignments[5]);
        assert_eq!(res.assignments[6], res.assignments[7]);
        assert_eq!(res.assignments[6], res.assignments[8]);
        // Clusters are ordered by value: negative group first.
        assert_eq!(res.assignments[6], 0);
        assert_eq!(res.assignments[0], 1);
        assert_eq!(res.assignments[3], 2);
        assert!(res.inertia < 0.1);
    }

    #[test]
    fn beats_or_matches_any_contiguous_split() {
        // Optimality sanity check on a small, awkward instance.
        let values = vec![1.0, 2.0, 3.0, 10.0, 11.0, 25.0];
        let res = kmeans_1d(&values, 2).unwrap();
        // Brute force all contiguous splits.
        let mut best = f64::INFINITY;
        for s in 1..values.len() {
            let cost = |xs: &[f64]| -> f64 {
                let m = xs.iter().sum::<f64>() / xs.len() as f64;
                xs.iter().map(|x| (x - m).powi(2)).sum()
            };
            best = best.min(cost(&values[..s]) + cost(&values[s..]));
        }
        assert!((res.inertia - best).abs() < 1e-9);
    }

    #[test]
    fn k_one_is_global_variance() {
        let values = vec![1.0, 3.0];
        let res = kmeans_1d(&values, 1).unwrap();
        assert_eq!(res.assignments, vec![0, 0]);
        assert!((res.inertia - 2.0).abs() < 1e-12);
        assert!((res.centroids[0][0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn k_equals_n_zero_cost() {
        let values = vec![5.0, -1.0, 3.0];
        let res = kmeans_1d(&values, 3).unwrap();
        assert!(res.inertia < 1e-18);
        // Cluster ids are value-ordered: -1 -> 0, 3 -> 1, 5 -> 2.
        assert_eq!(res.assignments, vec![2, 0, 1]);
    }

    #[test]
    fn duplicates_handled() {
        let values = vec![2.0, 2.0, 2.0, 2.0];
        let res = kmeans_1d(&values, 2).unwrap();
        assert_eq!(res.assignments.len(), 4);
        assert!(res.inertia < 1e-18);
    }

    #[test]
    fn validation() {
        assert!(kmeans_1d(&[1.0], 0).is_err());
        assert!(kmeans_1d(&[1.0], 2).is_err());
        assert!(kmeans_1d(&[f64::NAN, 1.0], 1).is_err());
    }

    #[test]
    fn unsorted_input_assignments_align_with_input_order() {
        let values = vec![100.0, 1.0, 101.0, 2.0];
        let res = kmeans_1d(&values, 2).unwrap();
        assert_eq!(res.assignments[0], res.assignments[2]);
        assert_eq!(res.assignments[1], res.assignments[3]);
        assert_ne!(res.assignments[0], res.assignments[1]);
    }
}
