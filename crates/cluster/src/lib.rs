//! # charles-cluster
//!
//! Clustering substrate for [ChARLES](https://arxiv.org/abs/2409.18386)
//! partition discovery.
//!
//! The paper's diff-discovery engine fits a global regression, then
//! clusters rows *by their distance from the regression line* to surface
//! candidate partitions. This crate provides:
//!
//! - exact 1-D k-means by dynamic programming ([`kmeans_1d`]) — the
//!   primary residual-clustering routine (deterministic and optimal, which
//!   Lloyd's algorithm on residuals is not),
//! - general k-dimensional k-means with k-means++ seeding ([`kmeans`]),
//! - silhouette scoring and automatic `k` selection ([`silhouette`],
//!   [`best_k`]), and
//! - DBSCAN ([`dbscan`]) as the partitioning ablation.
//!
//! ```
//! use charles_cluster::kmeans_1d;
//! // Residuals from two latent update rules cluster into two groups.
//! let residuals = [0.0, 0.1, -0.1, 1000.0, 1000.2, 999.9];
//! let res = kmeans_1d(&residuals, 2).unwrap();
//! assert_eq!(res.assignments[0], res.assignments[1]);
//! assert_ne!(res.assignments[0], res.assignments[3]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dbscan;
pub mod error;
pub mod kmeans;
pub mod kmeans1d;
pub mod select;
pub mod silhouette;

pub use dbscan::{dbscan, DbscanResult, NOISE};
pub use error::{ClusterError, Result};
pub use kmeans::{kmeans, KMeansConfig, KMeansResult};
pub use kmeans1d::kmeans_1d;
pub use select::{best_k, rank_k_choices, KCandidate};
pub use silhouette::{silhouette, silhouette_1d};
