//! Automatic selection of the number of clusters `k`.
//!
//! ChARLES enumerates candidate partitionings over a range of `k`; this
//! module scores each `k` by silhouette (subsampled for large inputs) so
//! the engine can prioritize promising partition counts.

use crate::error::Result;
use crate::kmeans1d::kmeans_1d;
use crate::silhouette::silhouette_1d;

/// Result of evaluating one candidate `k`.
#[derive(Debug, Clone)]
pub struct KCandidate {
    /// Number of clusters.
    pub k: usize,
    /// Mean silhouette of the clustering at this `k` (0.0 for k=1).
    pub silhouette: f64,
    /// Within-cluster sum of squares.
    pub inertia: f64,
}

/// Evaluate each `k` in `k_range` on scalar `values` using exact 1-D
/// k-means, returning candidates sorted by descending silhouette.
///
/// For inputs above `max_eval_points`, the silhouette is computed on an
/// evenly strided subsample (deterministic) to keep this O(n·k + s²).
pub fn rank_k_choices(
    values: &[f64],
    k_range: std::ops::RangeInclusive<usize>,
    max_eval_points: usize,
) -> Result<Vec<KCandidate>> {
    let mut out = Vec::new();
    for k in k_range {
        if k == 0 || k > values.len() {
            continue;
        }
        let res = kmeans_1d(values, k)?;
        let sil = if k == 1 {
            0.0
        } else if values.len() <= max_eval_points {
            silhouette_1d(values, &res.assignments)?
        } else {
            // Deterministic stride subsample keeping cluster proportions
            // roughly intact.
            let stride = values.len().div_ceil(max_eval_points);
            let sub_vals: Vec<f64> = values.iter().step_by(stride).copied().collect();
            let sub_asg: Vec<usize> = res.assignments.iter().step_by(stride).copied().collect();
            silhouette_1d(&sub_vals, &sub_asg)?
        };
        out.push(KCandidate {
            k,
            silhouette: sil,
            inertia: res.inertia,
        });
    }
    out.sort_by(|a, b| b.silhouette.total_cmp(&a.silhouette).then(a.k.cmp(&b.k)));
    Ok(out)
}

/// The single best `k` by silhouette (ties broken towards smaller `k`).
pub fn best_k(
    values: &[f64],
    k_range: std::ops::RangeInclusive<usize>,
    max_eval_points: usize,
) -> Result<usize> {
    let ranked = rank_k_choices(values, k_range, max_eval_points)?;
    Ok(ranked.first().map_or(1, |c| c.k))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_groups() -> Vec<f64> {
        let mut v = Vec::new();
        for i in 0..15 {
            v.push(0.0 + i as f64 * 0.01);
        }
        for i in 0..15 {
            v.push(5.0 + i as f64 * 0.01);
        }
        for i in 0..15 {
            v.push(-4.0 + i as f64 * 0.01);
        }
        v
    }

    #[test]
    fn picks_true_group_count() {
        let v = three_groups();
        let k = best_k(&v, 1..=6, 10_000).unwrap();
        assert_eq!(k, 3);
    }

    #[test]
    fn ranked_candidates_sorted_by_silhouette() {
        let v = three_groups();
        let ranked = rank_k_choices(&v, 1..=5, 10_000).unwrap();
        for w in ranked.windows(2) {
            assert!(w[0].silhouette >= w[1].silhouette);
        }
        assert_eq!(ranked.first().unwrap().k, 3);
    }

    #[test]
    fn k_beyond_n_skipped() {
        let v = vec![1.0, 2.0];
        let ranked = rank_k_choices(&v, 1..=5, 100).unwrap();
        assert!(ranked.iter().all(|c| c.k <= 2));
    }

    #[test]
    fn subsampling_still_reasonable() {
        let v = three_groups();
        // Force subsampling with a tiny cap.
        let k = best_k(&v, 2..=4, 12).unwrap();
        assert_eq!(k, 3);
    }

    #[test]
    fn degenerate_single_value() {
        let v = vec![7.0; 10];
        let k = best_k(&v, 1..=3, 100).unwrap();
        // No structure: k=1 wins (all silhouettes ≤ 0).
        assert_eq!(k, 1);
    }
}
