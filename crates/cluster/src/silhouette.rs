//! Silhouette coefficient: cluster-quality measure used for selecting `k`.

use crate::error::{ClusterError, Result};

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y) * (x - y))
        // lint:allow(float-fold-order: cluster-internal accumulation in fixed row order, coordinator-local)
        .sum()
}

/// Mean silhouette coefficient over all points, in [-1, 1].
///
/// For each point: `s = (b − a) / max(a, b)` where `a` is the mean distance
/// to its own cluster and `b` the smallest mean distance to another
/// cluster. Singleton clusters contribute `s = 0` (the standard
/// convention). Exact O(n²); callers should subsample above ~5k points.
pub fn silhouette(points: &[Vec<f64>], assignments: &[usize]) -> Result<f64> {
    let n = points.len();
    if n != assignments.len() {
        return Err(ClusterError::DimensionMismatch {
            expected: n,
            found: assignments.len(),
        });
    }
    if n == 0 {
        return Err(ClusterError::TooFewPoints { points: 0, k: 1 });
    }
    let k = assignments.iter().max().map_or(0, |&m| m + 1);
    if k < 2 {
        // A single cluster has no between-cluster structure to score.
        return Ok(0.0);
    }
    let mut sizes = vec![0usize; k];
    for &a in assignments {
        sizes[a] += 1;
    }

    let mut total = 0.0;
    for i in 0..n {
        let own = assignments[i];
        if sizes[own] <= 1 {
            continue; // s = 0 for singletons
        }
        // Mean distance to every cluster.
        let mut sums = vec![0.0; k];
        for j in 0..n {
            if i == j {
                continue;
            }
            // lint:allow(float-fold-order: cluster-internal accumulation in fixed row order, coordinator-local)
            sums[assignments[j]] += sq_dist(&points[i], &points[j]).sqrt();
        }
        let a = sums[own] / (sizes[own] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != own && sizes[c] > 0)
            .map(|c| sums[c] / sizes[c] as f64)
            // lint:allow(float-fold-order: cluster-internal accumulation in fixed row order, coordinator-local)
            .fold(f64::INFINITY, f64::min);
        if b.is_finite() {
            let denom = a.max(b);
            if denom > 0.0 {
                // lint:allow(float-fold-order: cluster-internal accumulation in fixed row order, coordinator-local)
                total += (b - a) / denom;
            }
        }
    }
    Ok(total / n as f64)
}

/// Silhouette for scalar values (convenience wrapper used on residuals).
pub fn silhouette_1d(values: &[f64], assignments: &[usize]) -> Result<f64> {
    let points: Vec<Vec<f64>> = values.iter().map(|&v| vec![v]).collect();
    silhouette(&points, assignments)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_separated_scores_high() {
        let points: Vec<Vec<f64>> = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2]
            .iter()
            .map(|&v| vec![v])
            .collect();
        let assignments = vec![0, 0, 0, 1, 1, 1];
        let s = silhouette(&points, &assignments).unwrap();
        assert!(s > 0.95, "s = {s}");
    }

    #[test]
    fn bad_clustering_scores_low() {
        let points: Vec<Vec<f64>> = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2]
            .iter()
            .map(|&v| vec![v])
            .collect();
        // Deliberately interleaved assignment.
        let assignments = vec![0, 1, 0, 1, 0, 1];
        let s = silhouette(&points, &assignments).unwrap();
        assert!(s < 0.2, "s = {s}");
    }

    #[test]
    fn single_cluster_is_zero() {
        let points = vec![vec![1.0], vec![2.0]];
        assert_eq!(silhouette(&points, &[0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn singleton_clusters_contribute_zero() {
        let points = vec![vec![0.0], vec![0.1], vec![99.0]];
        let s = silhouette(&points, &[0, 0, 1]).unwrap();
        // Two good points, one singleton with s=0.
        assert!(s > 0.6 && s < 1.0, "s = {s}");
    }

    #[test]
    fn validation() {
        assert!(silhouette(&[], &[]).is_err());
        assert!(silhouette(&[vec![1.0]], &[0, 1]).is_err());
    }

    #[test]
    fn wrapper_matches_multidim() {
        let vals = [0.0, 0.1, 5.0, 5.1];
        let asg = [0, 0, 1, 1];
        let a = silhouette_1d(&vals, &asg).unwrap();
        let pts: Vec<Vec<f64>> = vals.iter().map(|&v| vec![v]).collect();
        let b = silhouette(&pts, &asg).unwrap();
        assert_eq!(a, b);
    }
}
