//! Property-based tests for the clustering substrate.

use charles_cluster::{dbscan, kmeans, kmeans_1d, silhouette_1d, KMeansConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kmeans_1d_assignments_valid(
        values in proptest::collection::vec(-1e6f64..1e6, 1..60),
        k in 1usize..6,
    ) {
        prop_assume!(k <= values.len());
        let res = kmeans_1d(&values, k).unwrap();
        prop_assert_eq!(res.assignments.len(), values.len());
        prop_assert!(res.assignments.iter().all(|&a| a < k));
        prop_assert!(res.inertia >= 0.0);
        // Clusters are value-ordered intervals: if v1 < v2 then
        // cluster(v1) <= cluster(v2).
        let mut idx: Vec<usize> = (0..values.len()).collect();
        idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
        for w in idx.windows(2) {
            prop_assert!(res.assignments[w[0]] <= res.assignments[w[1]]);
        }
    }

    #[test]
    fn kmeans_1d_more_clusters_never_worse(
        values in proptest::collection::vec(-1e4f64..1e4, 4..40),
    ) {
        let r2 = kmeans_1d(&values, 2).unwrap();
        let r3 = kmeans_1d(&values, 3).unwrap();
        prop_assert!(r3.inertia <= r2.inertia + 1e-6 * (1.0 + r2.inertia));
    }

    #[test]
    fn kmeans_multidim_invariants(
        points in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0).prop_map(|(a, b)| vec![a, b]),
            2..40
        ),
        k in 1usize..4,
    ) {
        prop_assume!(k <= points.len());
        let res = kmeans(&points, &KMeansConfig::new(k)).unwrap();
        prop_assert_eq!(res.assignments.len(), points.len());
        prop_assert!(res.assignments.iter().all(|&a| a < k));
        prop_assert_eq!(res.centroids.len(), k);
        let sizes = res.cluster_sizes();
        prop_assert_eq!(sizes.iter().sum::<usize>(), points.len());
    }

    #[test]
    fn silhouette_bounded(
        values in proptest::collection::vec(-1e4f64..1e4, 2..40),
        k in 2usize..4,
    ) {
        prop_assume!(k <= values.len());
        let res = kmeans_1d(&values, k).unwrap();
        let s = silhouette_1d(&values, &res.assignments).unwrap();
        prop_assert!((-1.0..=1.0 + 1e-12).contains(&s), "silhouette {s}");
    }

    #[test]
    fn dbscan_labels_valid(
        values in proptest::collection::vec(-100.0f64..100.0, 0..40),
        eps in 0.1f64..20.0,
        min_pts in 1usize..5,
    ) {
        let points: Vec<Vec<f64>> = values.iter().map(|&v| vec![v]).collect();
        let res = dbscan(&points, eps, min_pts).unwrap();
        prop_assert_eq!(res.labels.len(), points.len());
        for &l in &res.labels {
            prop_assert!(l == -1 || (l as usize) < res.n_clusters);
        }
        // Every non-noise cluster id is actually used.
        for c in 0..res.n_clusters {
            prop_assert!(res.labels.contains(&(c as isize)));
        }
    }

    #[test]
    fn kmeans_1d_large_input_path(
        seed_vals in proptest::collection::vec(-1e3f64..1e3, 8..16),
    ) {
        // Exercise the sampled path (> 2048 points) against the exact path
        // on replicated data: both must separate two well-separated blobs.
        let mut values = Vec::with_capacity(4096);
        for i in 0..4096 {
            let base = if i % 2 == 0 { 0.0 } else { 10_000.0 };
            values.push(base + seed_vals[i % seed_vals.len()].abs() % 100.0);
        }
        let res = kmeans_1d(&values, 2).unwrap();
        prop_assert_eq!(res.assignments.len(), values.len());
        // All small values share a cluster, all large the other.
        let small = res.assignments[0];
        for (i, &a) in res.assignments.iter().enumerate() {
            if i % 2 == 0 {
                prop_assert_eq!(a, small);
            } else {
                prop_assert_ne!(a, small);
            }
        }
    }
}
