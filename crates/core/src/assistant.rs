//! The setup assistant: correlation-driven attribute shortlisting.
//!
//! For wide tables the space of candidate summaries explodes; the paper's
//! assistant estimates each attribute's influence on the target attribute
//! and presents ranked shortlists for *condition* attributes (categorical
//! or numeric; association measured against the observed change) and
//! *transformation* attributes (numeric; association measured against the
//! target's new values). Users can accept the defaults or override.

use crate::config::CharlesConfig;
use crate::error::{CharlesError, Result};
use charles_cluster::kmeans_1d;
use charles_numerics::corr::{correlation_ratio, pearson};
use charles_relation::{Column, DataType, SnapshotPair, Value};
use std::collections::BTreeMap;

/// One scored candidate attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeScore {
    /// Attribute name.
    pub attr: String,
    /// Association strength in [0, 1] (|Pearson| or correlation ratio η).
    pub correlation: f64,
    /// Whether the attribute is categorical (Utf8/Bool) or numeric.
    pub categorical: bool,
}

/// The assistant's output: ranked candidate lists.
#[derive(Debug, Clone, Default)]
pub struct SetupReport {
    /// Candidates for partitioning conditions, best first (`A_cond`).
    pub condition_candidates: Vec<AttributeScore>,
    /// Candidates for transformation models, best first (`A_tran`).
    pub transform_candidates: Vec<AttributeScore>,
}

impl SetupReport {
    /// The shortlisted condition attribute names, best first.
    pub fn condition_attrs(&self) -> Vec<String> {
        self.condition_candidates
            .iter()
            .map(|a| a.attr.clone())
            .collect()
    }

    /// The shortlisted transformation attribute names, best first.
    pub fn transform_attrs(&self) -> Vec<String> {
        self.transform_candidates
            .iter()
            .map(|a| a.attr.clone())
            .collect()
    }
}

/// Dictionary codes for a categorical column (Bool → 0/1; nulls get a
/// dedicated code so they group together).
fn category_codes(col: &Column) -> Vec<u32> {
    match col {
        Column::Utf8 {
            codes, validity, ..
        } => codes
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                if validity.as_ref().is_none_or(|m| m[i]) {
                    c + 1
                } else {
                    0
                }
            })
            .collect(),
        Column::Bool { values, validity } => values
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                if validity.as_ref().is_none_or(|m| m[i]) {
                    1 + u32::from(b)
                } else {
                    0
                }
            })
            .collect(),
        // Sealed columns decode to the same codes/values: recurse on the
        // raw representation instead of falling through to the wildcard,
        // which would collapse a compressed string column to one category.
        Column::Compressed { .. } => category_codes(&col.decompress()),
        _ => (0..col.len())
            .map(|i| if col.is_valid(i) { 1 } else { 0 })
            .collect(),
    }
}

/// Numeric values with nulls imputed to the column mean (screening only —
/// the engine itself refuses nulls in regression inputs).
fn numeric_or_imputed(col: &Column) -> Option<Vec<f64>> {
    if !col.dtype().is_numeric() {
        return None;
    }
    let mut vals = Vec::with_capacity(col.len());
    let mut sum = 0.0;
    let mut count = 0usize;
    for i in 0..col.len() {
        match col.get_f64(i) {
            Some(v) => {
                vals.push(Some(v));
                // lint:allow(float-fold-order: single-pass mean imputation in fixed row order)
                sum += v;
                count += 1;
            }
            None => vals.push(None),
        }
    }
    let mean = if count > 0 { sum / count as f64 } else { 0.0 };
    Some(vals.into_iter().map(|v| v.unwrap_or(mean)).collect())
}

fn gini_of(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / total as f64;
            p * p
        })
        // lint:allow(float-fold-order: Gini over a handful of label counts, fixed slice order)
        .sum::<f64>()
}

/// Weighted Gini impurity of label counts over a set of leaves.
fn leaves_impurity(leaves: &[Vec<usize>], labels: &[usize], n_labels: usize, n: usize) -> f64 {
    leaves
        .iter()
        .map(|rows| {
            let mut counts = vec![0usize; n_labels];
            for &r in rows {
                counts[labels[r]] += 1;
            }
            rows.len() as f64 / n as f64 * gini_of(&counts, rows.len())
        })
        .sum()
}

/// Split one leaf by an attribute: categorical attributes group by value;
/// numeric attributes use the best binary threshold for *this* leaf.
/// Returns `None` when the attribute cannot split the leaf.
fn split_leaf(
    col: &Column,
    rows: &[usize],
    labels: &[usize],
    n_labels: usize,
) -> Option<Vec<Vec<usize>>> {
    if rows.len() < 2 {
        return None;
    }
    if col.dtype().is_numeric() {
        let mut vals: Vec<(f64, usize)> = rows
            .iter()
            .filter_map(|&r| col.get_f64(r).map(|v| (v, r)))
            .collect();
        if vals.len() < rows.len() {
            return None; // nulls: skip
        }
        vals.sort_by(|a, b| a.0.total_cmp(&b.0));
        const MAX_THRESHOLDS: usize = 32;
        let step = (vals.len() / MAX_THRESHOLDS).max(1);
        let mut best: Option<(f64, usize)> = None;
        for i in (step..vals.len()).step_by(step) {
            if vals[i - 1].0 >= vals[i].0 {
                continue;
            }
            let left: Vec<usize> = vals[..i].iter().map(|&(_, r)| r).collect();
            let right: Vec<usize> = vals[i..].iter().map(|&(_, r)| r).collect();
            let child = leaves_impurity(&[left, right], labels, n_labels, rows.len());
            if best.as_ref().is_none_or(|&(b, _)| child < b) {
                best = Some((child, i));
            }
        }
        best.map(|(_, i)| {
            vec![
                vals[..i].iter().map(|&(_, r)| r).collect(),
                vals[i..].iter().map(|&(_, r)| r).collect(),
            ]
        })
    } else {
        // BTree-grouped so the emitted groups come out in `Value` order —
        // hash order here would make split enumeration (and any
        // score-tie winner downstream) vary run to run.
        let mut by_value: BTreeMap<Value, Vec<usize>> = BTreeMap::new();
        for &r in rows {
            by_value.entry(col.get(r)).or_default().push(r);
        }
        if by_value.len() < 2 || by_value.len() > 24 {
            return None;
        }
        Some(by_value.into_values().collect())
    }
}

/// Greedy forward selection of condition attributes against the
/// change-behaviour clusters.
///
/// Starting from one leaf holding all rows, repeatedly pick the attribute
/// whose per-leaf splits most reduce the weighted Gini impurity of the
/// cluster labels; its *relevance* is √(impurity reduction / root
/// impurity). This is the label-space analogue of a correlation ratio and,
/// crucially, it is **conditional**: an attribute like `grade` whose
/// marginal association is diluted still scores highly once `department`
/// has absorbed the clusters it cannot separate.
fn forward_condition_selection(
    candidates: &[(String, &Column)],
    labels: &[usize],
    n_labels: usize,
    accept_threshold: f64,
    cap: usize,
) -> Vec<(String, f64)> {
    let n = labels.len();
    if n < 2 || n_labels < 2 {
        return Vec::new();
    }
    let mut leaves: Vec<Vec<usize>> = vec![(0..n).collect()];
    let root = leaves_impurity(&leaves, labels, n_labels, n);
    if root <= 1e-12 {
        return Vec::new();
    }
    let mut current = root;
    let mut chosen: Vec<(String, f64)> = Vec::new();
    let mut remaining: Vec<usize> = (0..candidates.len()).collect();
    while chosen.len() < cap && current > 1e-12 {
        let mut best: Option<(usize, f64, Vec<Vec<usize>>)> = None;
        for &ci in &remaining {
            let (_, col) = &candidates[ci];
            let mut new_leaves: Vec<Vec<usize>> = Vec::new();
            for leaf in &leaves {
                match split_leaf(col, leaf, labels, n_labels) {
                    Some(parts) => new_leaves.extend(parts),
                    None => new_leaves.push(leaf.clone()),
                }
            }
            let impurity = leaves_impurity(&new_leaves, labels, n_labels, n);
            if best.as_ref().is_none_or(|&(_, b, _)| impurity < b) {
                best = Some((ci, impurity, new_leaves));
            }
        }
        let Some((ci, impurity, new_leaves)) = best else {
            break;
        };
        let relevance = ((current - impurity) / root).max(0.0).sqrt();
        if relevance < accept_threshold {
            break;
        }
        chosen.push((candidates[ci].0.clone(), relevance));
        remaining.retain(|&r| r != ci);
        leaves = new_leaves;
        current = impurity;
    }
    chosen
}

/// Run the assistant over an aligned snapshot pair.
///
/// Condition candidates are scored by the strongest of three association
/// measures with the observed change: correlation with the absolute delta,
/// correlation with the relative delta, and [`split_relevance`] against a
/// clustering of the relative delta (the latter captures attributes whose
/// split — not whose value — separates change behaviours). Transformation
/// candidates are scored against the *new* values, because that is what
/// the linear model must reproduce. The target's own old value is always a
/// transformation candidate (the paper's demo picks "bonus of the previous
/// year" first).
pub fn analyze(
    pair: &SnapshotPair,
    target_attr: &str,
    config: &CharlesConfig,
) -> Result<SetupReport> {
    let source = pair.source();
    let schema = source.schema();
    let target_idx = schema.index_of(target_attr)?;
    if !schema.fields()[target_idx].dtype().is_numeric() {
        return Err(CharlesError::BadTargetAttribute(format!(
            "{target_attr:?} must be numeric, found {}",
            schema.fields()[target_idx].dtype()
        )));
    }
    // Shared views: zero-copy for null-free Float64 columns (and, on
    // identity-aligned pairs, for the target side too).
    let y_new = pair.target_numeric_view(target_attr)?;
    let y_old = source
        .numeric_view(target_attr)
        .map_err(CharlesError::from)?;
    let delta: Vec<f64> = y_new.iter().zip(y_old.iter()).map(|(n, o)| n - o).collect();
    let rel_delta: Vec<f64> = y_new
        .iter()
        .zip(y_old.iter())
        .map(|(n, o)| (n - o) / o.abs().max(1.0))
        .collect();
    // One cheap clustering of the relative change drives split relevance.
    let labels: Option<(Vec<usize>, usize)> = {
        let k = config.k_max.clamp(2, 6).min(rel_delta.len());
        if rel_delta.len() >= 4 {
            kmeans_1d(&rel_delta, k).ok().map(|r| {
                let k = r.k();
                (r.assignments, k)
            })
        } else {
            None
        }
    };

    let mut transform_candidates = Vec::new();
    // (name, col, categorical, marginal association with the change)
    let mut cond_pool: Vec<(String, &Column, bool, f64)> = Vec::new();

    for (idx, field) in schema.fields().iter().enumerate() {
        let name = field.name();
        if Some(name) == pair.key_attr() {
            continue; // keys identify entities, they never explain change
        }
        let col = source.column(idx)?;
        // Skip free-text-like columns: a categorical attribute with
        // (almost) one distinct value per row cannot define a partition.
        let distinct = col.distinct_count();
        let is_categorical = matches!(field.dtype(), DataType::Utf8 | DataType::Bool);
        if is_categorical && distinct > (source.height() / 2).max(20) {
            continue;
        }

        // Condition candidacy: marginal association with the change Δ
        // (absolute or relative). The target attribute itself is excluded
        // — "bonus ≥ 20000 → new bonus = ..." is a circular description,
        // not an explanation of *why* the change happened.
        if name != target_attr {
            let marginal = if is_categorical {
                correlation_ratio(&category_codes(col), &delta)
                    .unwrap_or(0.0)
                    .max(correlation_ratio(&category_codes(col), &rel_delta).unwrap_or(0.0))
            } else {
                let x = numeric_or_imputed(col);
                let c1 = x
                    .as_ref()
                    .and_then(|x| pearson(x, &delta).ok())
                    .map_or(0.0, f64::abs);
                let c2 = x
                    .as_ref()
                    .and_then(|x| pearson(x, &rel_delta).ok())
                    .map_or(0.0, f64::abs);
                c1.max(c2)
            };
            cond_pool.push((name.to_string(), col, is_categorical, marginal));
        }

        // Transformation candidacy: numeric attributes, association with
        // the new values.
        if field.dtype().is_numeric() {
            if let Some(x) = numeric_or_imputed(col) {
                let corr = pearson(&x, &y_new).map_or(0.0, f64::abs);
                let passes = corr >= config.correlation_threshold || name == target_attr;
                if passes {
                    transform_candidates.push(AttributeScore {
                        attr: name.to_string(),
                        correlation: corr,
                        categorical: false,
                    });
                }
            }
        }
    }

    // Conditional relevance: greedy forward selection against the change
    // clusters, accepted at half the marginal threshold (it is a stricter,
    // conditional measure — see `forward_condition_selection`).
    let forward: Vec<(String, f64)> = match &labels {
        Some((l, k)) if *k >= 2 => {
            let refs: Vec<(String, &Column)> = cond_pool
                .iter()
                .map(|(name, col, _, _)| (name.clone(), *col))
                .collect();
            forward_condition_selection(
                &refs,
                l,
                *k,
                config.correlation_threshold / 2.0,
                config.max_candidate_condition_attrs,
            )
        }
        _ => Vec::new(),
    };

    let mut condition_candidates: Vec<AttributeScore> = Vec::new();
    for (name, _, categorical, marginal) in &cond_pool {
        let fwd = forward
            .iter()
            .find(|(f, _)| f == name)
            .map_or(0.0, |(_, r)| *r);
        let score = marginal.max(fwd);
        if *marginal >= config.correlation_threshold || fwd > 0.0 {
            condition_candidates.push(AttributeScore {
                attr: name.clone(),
                correlation: score,
                categorical: *categorical,
            });
        }
    }

    condition_candidates.sort_by(|a, b| {
        b.correlation
            .total_cmp(&a.correlation)
            .then_with(|| a.attr.cmp(&b.attr))
    });
    transform_candidates.sort_by(|a, b| {
        // The target's previous value first (the natural autoregressive
        // predictor), then by correlation.
        let a_is_target = a.attr == target_attr;
        let b_is_target = b.attr == target_attr;
        b_is_target
            .cmp(&a_is_target)
            .then(b.correlation.total_cmp(&a.correlation))
            .then_with(|| a.attr.cmp(&b.attr))
    });
    condition_candidates.truncate(config.max_candidate_condition_attrs);
    transform_candidates.truncate(config.max_candidate_transform_attrs);

    Ok(SetupReport {
        condition_candidates,
        transform_candidates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_relation::{
        apply_updates, ApplyMode, Expr, Predicate, TableBuilder, UpdateStatement,
    };

    /// Build a pair where edu drives the change and bonus/salary predict
    /// the new values, while `noise` is irrelevant.
    fn pair() -> SnapshotPair {
        let n = 40;
        let edu: Vec<&str> = (0..n)
            .map(|i| if i % 2 == 0 { "PhD" } else { "BS" })
            .collect();
        let salary: Vec<f64> = (0..n).map(|i| 100_000.0 + 1_000.0 * i as f64).collect();
        let bonus: Vec<f64> = salary.iter().map(|s| s * 0.1).collect();
        let noise: Vec<f64> = (0..n).map(|i| ((i * 7919) % 97) as f64).collect();
        let names: Vec<String> = (0..n).map(|i| format!("e{i}")).collect();
        let source = TableBuilder::new("s")
            .str_col("name", &names)
            .str_col("edu", &edu)
            .float_col("salary", &salary)
            .float_col("bonus", &bonus)
            .float_col("noise", &noise)
            .key("name")
            .build()
            .unwrap();
        let policy = [UpdateStatement::new(
            "bonus",
            Expr::affine("bonus", 1.10, 500.0),
            Predicate::eq("edu", "PhD"),
        )];
        let target = apply_updates(&source, &policy, ApplyMode::FirstMatch)
            .unwrap()
            .table;
        SnapshotPair::align(source, target).unwrap()
    }

    #[test]
    fn shortlists_informative_attributes() {
        let p = pair();
        let report = analyze(&p, "bonus", &CharlesConfig::default()).unwrap();
        let cond = report.condition_attrs();
        assert!(
            cond.contains(&"edu".to_string()),
            "edu should be a condition candidate, got {cond:?}"
        );
        let tran = report.transform_attrs();
        assert!(tran.contains(&"bonus".to_string()));
        assert!(tran.contains(&"salary".to_string()));
        // Old target value ranked first.
        assert_eq!(tran[0], "bonus");
    }

    #[test]
    fn irrelevant_attribute_excluded() {
        let p = pair();
        let report = analyze(&p, "bonus", &CharlesConfig::default()).unwrap();
        assert!(!report.condition_attrs().contains(&"noise".to_string()));
        assert!(!report.transform_attrs().contains(&"noise".to_string()));
    }

    #[test]
    fn key_attribute_never_candidate() {
        let p = pair();
        let report = analyze(&p, "bonus", &CharlesConfig::default()).unwrap();
        assert!(!report.condition_attrs().contains(&"name".to_string()));
    }

    #[test]
    fn non_numeric_target_rejected() {
        let p = pair();
        assert!(matches!(
            analyze(&p, "edu", &CharlesConfig::default()).unwrap_err(),
            CharlesError::BadTargetAttribute(_)
        ));
    }

    #[test]
    fn threshold_respected() {
        let p = pair();
        let strict = CharlesConfig {
            correlation_threshold: 0.999,
            ..CharlesConfig::default()
        };
        let report = analyze(&p, "bonus", &strict).unwrap();
        // Even with an impossible threshold, the old target value stays a
        // transformation candidate.
        assert_eq!(report.transform_attrs(), vec!["bonus".to_string()]);
    }

    #[test]
    fn caps_respected() {
        let p = pair();
        let capped = CharlesConfig {
            max_candidate_condition_attrs: 1,
            max_candidate_transform_attrs: 1,
            correlation_threshold: 0.0,
            ..CharlesConfig::default()
        };
        let report = analyze(&p, "bonus", &capped).unwrap();
        assert_eq!(report.condition_candidates.len(), 1);
        assert_eq!(report.transform_candidates.len(), 1);
    }
}
