//! Subset enumeration for the candidate search.

/// All non-empty subsets of `items` with size ≤ `max_len`, in deterministic
/// order (by size, then lexicographically by index).
///
/// The engine enumerates `C ⊆ A_cond, |C| ≤ c` and `T ⊆ A_tran, |T| ≤ t`
/// exactly as described in the paper ("all possible combinations of
/// attributes"). Shortlists are small (≤ ~6), so exhaustive enumeration is
/// cheap.
pub fn bounded_subsets<T: Clone>(items: &[T], max_len: usize) -> Vec<Vec<T>> {
    let n = items.len();
    let cap = max_len.min(n);
    let mut out = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    for size in 1..=cap {
        current.clear();
        emit_combinations(n, size, 0, &mut current, &mut |idx| {
            out.push(idx.iter().map(|&i| items[i].clone()).collect());
        });
    }
    out
}

/// Recursively emit all `size`-combinations of `0..n` starting at `from`.
fn emit_combinations(
    n: usize,
    size: usize,
    from: usize,
    current: &mut Vec<usize>,
    emit: &mut impl FnMut(&[usize]),
) {
    if current.len() == size {
        emit(current);
        return;
    }
    let remaining = size - current.len();
    // Enough indices must remain to complete the combination.
    for i in from..=(n - remaining) {
        current.push(i);
        emit_combinations(n, size, i + 1, current, emit);
        current.pop();
    }
}

/// Number of non-empty subsets of an `n`-element set with size ≤ `max_len`
/// (the search-space size reported by experiment E5).
pub fn bounded_subset_count(n: usize, max_len: usize) -> u64 {
    let cap = max_len.min(n);
    let mut total = 0u64;
    for size in 1..=cap {
        total += binomial(n as u64, size as u64);
    }
    total
}

fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result = 1u64;
    for i in 0..k {
        result = result * (n - i) / (i + 1);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_and_pairs() {
        let subs = bounded_subsets(&['a', 'b', 'c'], 2);
        assert_eq!(
            subs,
            vec![
                vec!['a'],
                vec!['b'],
                vec!['c'],
                vec!['a', 'b'],
                vec!['a', 'c'],
                vec!['b', 'c'],
            ]
        );
    }

    #[test]
    fn full_powerset_minus_empty() {
        let subs = bounded_subsets(&[1, 2, 3], 3);
        assert_eq!(subs.len(), 7);
        assert!(subs.contains(&vec![1, 2, 3]));
    }

    #[test]
    fn max_len_larger_than_n() {
        let subs = bounded_subsets(&[1], 5);
        assert_eq!(subs, vec![vec![1]]);
    }

    #[test]
    fn empty_items() {
        let subs: Vec<Vec<u8>> = bounded_subsets(&[], 3);
        assert!(subs.is_empty());
    }

    #[test]
    fn counts_match_enumeration() {
        for n in 0..=7usize {
            let items: Vec<usize> = (0..n).collect();
            for max_len in 0..=n {
                let enumerated = bounded_subsets(&items, max_len).len() as u64;
                assert_eq!(
                    enumerated,
                    bounded_subset_count(n, max_len),
                    "n={n}, max_len={max_len}"
                );
            }
        }
    }

    #[test]
    fn no_duplicate_subsets() {
        let subs = bounded_subsets(&[0, 1, 2, 3, 4], 3);
        let mut seen = std::collections::HashSet::new();
        for s in &subs {
            assert!(seen.insert(s.clone()), "duplicate subset {s:?}");
        }
    }

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(6, 3), 20);
    }

    #[test]
    fn deterministic_order() {
        let a = bounded_subsets(&["x", "y", "z", "w"], 3);
        let b = bounded_subsets(&["x", "y", "z", "w"], 3);
        assert_eq!(a, b);
    }
}
