//! The condition language: conjunctions of *descriptors*.
//!
//! A condition identifies a data partition ("employees with an MS and less
//! than 3 years of experience"). The paper's interpretability desiderata
//! apply directly here: fewer descriptors are simpler, round thresholds are
//! more normal, larger matched partitions cover more.

use charles_numerics::normality::roundness;
use charles_relation::{AttrRef, CmpOp, Predicate, Table, Value};
use std::fmt;

/// One atomic statement about an attribute.
///
/// Attributes are carried as [`AttrRef`] handles: engine-built descriptors
/// hold interned ids, so compiling and evaluating the condition never hashes
/// an attribute name; descriptors built from bare strings (tests, external
/// callers) behave identically through the by-name fallback.
#[derive(Debug, Clone, PartialEq)]
pub enum Descriptor {
    /// `attr = value` (categorical equality).
    Equals {
        /// Attribute handle.
        attr: AttrRef,
        /// Matched value.
        value: Value,
    },
    /// `attr ≠ value`.
    NotEquals {
        /// Attribute handle.
        attr: AttrRef,
        /// Excluded value.
        value: Value,
    },
    /// `attr ∈ {values}` (categorical membership).
    OneOf {
        /// Attribute handle.
        attr: AttrRef,
        /// Matched values (sorted).
        values: Vec<Value>,
    },
    /// `attr < threshold` (numeric).
    LessThan {
        /// Attribute handle.
        attr: AttrRef,
        /// Exclusive upper bound.
        threshold: f64,
    },
    /// `attr ≥ threshold` (numeric).
    AtLeast {
        /// Attribute handle.
        attr: AttrRef,
        /// Inclusive lower bound.
        threshold: f64,
    },
    /// `lo ≤ attr < hi` (numeric bin).
    InRange {
        /// Attribute handle.
        attr: AttrRef,
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
}

impl Descriptor {
    /// The name of the attribute this descriptor constrains.
    pub fn attr(&self) -> &str {
        self.attr_ref().name()
    }

    /// The attribute handle this descriptor constrains.
    pub fn attr_ref(&self) -> &AttrRef {
        match self {
            Descriptor::Equals { attr, .. }
            | Descriptor::NotEquals { attr, .. }
            | Descriptor::OneOf { attr, .. }
            | Descriptor::LessThan { attr, .. }
            | Descriptor::AtLeast { attr, .. }
            | Descriptor::InRange { attr, .. } => attr,
        }
    }

    /// Compile to a relation-engine predicate.
    pub fn to_predicate(&self) -> Predicate {
        match self {
            Descriptor::Equals { attr, value } => Predicate::eq(attr.clone(), value.clone()),
            Descriptor::NotEquals { attr, value } => {
                Predicate::cmp(attr.clone(), CmpOp::Ne, value.clone())
            }
            Descriptor::OneOf { attr, values } => {
                Predicate::in_set(attr.clone(), values.iter().cloned())
            }
            Descriptor::LessThan { attr, threshold } => {
                Predicate::cmp(attr.clone(), CmpOp::Lt, *threshold)
            }
            Descriptor::AtLeast { attr, threshold } => {
                Predicate::cmp(attr.clone(), CmpOp::Ge, *threshold)
            }
            Descriptor::InRange { attr, lo, hi } => Predicate::between(attr.clone(), *lo, *hi),
        }
    }

    /// Descriptor count for interpretability (value sets count per value;
    /// a range reads as two comparisons).
    pub fn complexity(&self) -> usize {
        match self {
            Descriptor::OneOf { values, .. } => values.len().max(1),
            Descriptor::InRange { .. } => 2,
            _ => 1,
        }
    }

    /// Numeric constants appearing in this descriptor (for normality).
    pub fn constants(&self) -> Vec<f64> {
        match self {
            Descriptor::LessThan { threshold, .. } | Descriptor::AtLeast { threshold, .. } => {
                vec![*threshold]
            }
            Descriptor::InRange { lo, hi, .. } => vec![*lo, *hi],
            Descriptor::Equals { value, .. } | Descriptor::NotEquals { value, .. } => {
                value.as_f64().map_or_else(Vec::new, |v| vec![v])
            }
            Descriptor::OneOf { values, .. } => values.iter().filter_map(Value::as_f64).collect(),
        }
    }

    /// The logical complement of this descriptor (used when walking the
    /// "NO" branch of a split).
    pub fn negate(&self) -> Descriptor {
        match self {
            Descriptor::Equals { attr, value } => Descriptor::NotEquals {
                attr: attr.clone(),
                value: value.clone(),
            },
            Descriptor::NotEquals { attr, value } => Descriptor::Equals {
                attr: attr.clone(),
                value: value.clone(),
            },
            Descriptor::LessThan { attr, threshold } => Descriptor::AtLeast {
                attr: attr.clone(),
                threshold: *threshold,
            },
            Descriptor::AtLeast { attr, threshold } => Descriptor::LessThan {
                attr: attr.clone(),
                threshold: *threshold,
            },
            // Complements of set/range descriptors have no direct
            // single-descriptor form; fall back to NOT via predicate when
            // evaluating. For rendering we keep a OneOf/InRange negation as
            // a best effort: it is only produced internally.
            Descriptor::OneOf { attr, values } => Descriptor::NotEquals {
                attr: attr.clone(),
                value: values.first().cloned().unwrap_or(Value::Null),
            },
            Descriptor::InRange { attr, lo, .. } => Descriptor::LessThan {
                attr: attr.clone(),
                threshold: *lo,
            },
        }
    }
}

impl fmt::Display for Descriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Descriptor::Equals { attr, value } => write!(f, "{attr} = {value}"),
            Descriptor::NotEquals { attr, value } => write!(f, "{attr} ≠ {value}"),
            Descriptor::OneOf { attr, values } => {
                write!(f, "{attr} ∈ {{")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
            Descriptor::LessThan { attr, threshold } => {
                write!(f, "{attr} < {}", fmt_num(*threshold))
            }
            Descriptor::AtLeast { attr, threshold } => {
                write!(f, "{attr} ≥ {}", fmt_num(*threshold))
            }
            Descriptor::InRange { attr, lo, hi } => {
                write!(f, "{} ≤ {attr} < {}", fmt_num(*lo), fmt_num(*hi))
            }
        }
    }
}

/// Render a float without a trailing `.0` when integral.
pub(crate) fn fmt_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// A conjunction of descriptors identifying one data partition.
///
/// The empty conjunction is the universal condition ("all rows").
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Condition {
    descriptors: Vec<Descriptor>,
}

impl Condition {
    /// The universal condition (matches every row).
    pub fn all() -> Self {
        Condition::default()
    }

    /// A condition from descriptors.
    pub fn new(descriptors: Vec<Descriptor>) -> Self {
        Condition { descriptors }
    }

    /// Extend with one more descriptor (consuming builder style).
    pub fn with(mut self, d: Descriptor) -> Self {
        self.descriptors.push(d);
        self
    }

    /// The descriptors in conjunction order.
    pub fn descriptors(&self) -> &[Descriptor] {
        &self.descriptors
    }

    /// Whether this is the universal condition.
    pub fn is_universal(&self) -> bool {
        self.descriptors.is_empty()
    }

    /// Compile to a relation predicate.
    pub fn to_predicate(&self) -> Predicate {
        self.descriptors
            .iter()
            .map(Descriptor::to_predicate)
            .fold(Predicate::True, Predicate::and)
    }

    /// Rows matching the condition.
    pub fn matching_rows(&self, table: &Table) -> charles_relation::Result<Vec<usize>> {
        self.to_predicate().matching_rows(table)
    }

    /// Total descriptor complexity (the paper's condition-simplicity
    /// input).
    pub fn complexity(&self) -> usize {
        self.descriptors.iter().map(Descriptor::complexity).sum()
    }

    /// Attributes referenced (sorted, deduplicated).
    pub fn attributes(&self) -> Vec<String> {
        let mut attrs: Vec<String> = self
            .descriptors
            .iter()
            .map(|d| d.attr().to_string())
            .collect();
        attrs.sort();
        attrs.dedup();
        attrs
    }

    /// Mean roundness of the numeric constants (1.0 when there are none).
    pub fn normality(&self) -> f64 {
        let constants: Vec<f64> = self
            .descriptors
            .iter()
            .flat_map(|d| d.constants())
            .collect();
        if constants.is_empty() {
            return 1.0;
        }
        // lint:allow(float-fold-order: interpretability roundness heuristic over a handful of constants)
        constants.iter().map(|&c| roundness(c)).sum::<f64>() / constants.len() as f64
    }

    /// A canonical key for deduplicating structurally identical conditions.
    pub fn signature(&self) -> String {
        let mut parts: Vec<String> = self.descriptors.iter().map(|d| d.to_string()).collect();
        parts.sort();
        parts.join(" ∧ ")
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.descriptors.is_empty() {
            return f.write_str("(all rows)");
        }
        for (i, d) in self.descriptors.iter().enumerate() {
            if i > 0 {
                f.write_str(" ∧ ")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_relation::TableBuilder;

    fn emp() -> Table {
        TableBuilder::new("emp")
            .str_col("edu", &["PhD", "MS", "MS", "BS"])
            .int_col("exp", &[2, 5, 1, 2])
            .build()
            .unwrap()
    }

    #[test]
    fn equals_descriptor_matches() {
        let c = Condition::all().with(Descriptor::Equals {
            attr: "edu".into(),
            value: Value::str("MS"),
        });
        assert_eq!(c.matching_rows(&emp()).unwrap(), vec![1, 2]);
        assert_eq!(c.to_string(), "edu = MS");
        assert_eq!(c.complexity(), 1);
    }

    #[test]
    fn conjunction_matches_paper_rule_r3() {
        // edu = MS ∧ exp < 3 (paper R3's condition)
        let c = Condition::new(vec![
            Descriptor::Equals {
                attr: "edu".into(),
                value: Value::str("MS"),
            },
            Descriptor::LessThan {
                attr: "exp".into(),
                threshold: 3.0,
            },
        ]);
        assert_eq!(c.matching_rows(&emp()).unwrap(), vec![2]);
        assert_eq!(c.to_string(), "edu = MS ∧ exp < 3");
        assert_eq!(c.complexity(), 2);
        assert_eq!(c.attributes(), vec!["edu".to_string(), "exp".to_string()]);
    }

    #[test]
    fn universal_condition() {
        let c = Condition::all();
        assert!(c.is_universal());
        assert_eq!(c.matching_rows(&emp()).unwrap().len(), 4);
        assert_eq!(c.to_string(), "(all rows)");
        assert_eq!(c.complexity(), 0);
        assert_eq!(c.normality(), 1.0);
    }

    #[test]
    fn range_and_set_descriptors() {
        let r = Descriptor::InRange {
            attr: "exp".into(),
            lo: 1.0,
            hi: 3.0,
        };
        assert_eq!(r.to_string(), "1 ≤ exp < 3");
        assert_eq!(r.constants(), vec![1.0, 3.0]);
        let s = Descriptor::OneOf {
            attr: "edu".into(),
            values: vec![Value::str("BS"), Value::str("MS")],
        };
        assert_eq!(s.complexity(), 2);
        let c = Condition::new(vec![s]);
        assert_eq!(c.matching_rows(&emp()).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn normality_prefers_round_thresholds() {
        let round = Condition::all().with(Descriptor::LessThan {
            attr: "exp".into(),
            threshold: 3.0,
        });
        let ragged = Condition::all().with(Descriptor::LessThan {
            attr: "exp".into(),
            threshold: 2.7963,
        });
        assert!(round.normality() > ragged.normality());
    }

    #[test]
    fn negation_pairs() {
        let d = Descriptor::Equals {
            attr: "edu".into(),
            value: Value::str("PhD"),
        };
        let n = d.negate();
        assert_eq!(n.to_string(), "edu ≠ PhD");
        assert_eq!(n.negate(), d);
        let lt = Descriptor::LessThan {
            attr: "exp".into(),
            threshold: 3.0,
        };
        assert_eq!(lt.negate().to_string(), "exp ≥ 3");
        // Negated equality excludes matches on the table.
        let c = Condition::all().with(n);
        assert_eq!(c.matching_rows(&emp()).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn signature_is_order_invariant() {
        let a = Condition::new(vec![
            Descriptor::Equals {
                attr: "edu".into(),
                value: Value::str("MS"),
            },
            Descriptor::LessThan {
                attr: "exp".into(),
                threshold: 3.0,
            },
        ]);
        let b = Condition::new(vec![
            Descriptor::LessThan {
                attr: "exp".into(),
                threshold: 3.0,
            },
            Descriptor::Equals {
                attr: "edu".into(),
                value: Value::str("MS"),
            },
        ]);
        assert_eq!(a.signature(), b.signature());
    }

    #[test]
    fn fmt_num_trims_integers() {
        assert_eq!(fmt_num(3.0), "3");
        assert_eq!(fmt_num(2.5), "2.5");
        assert_eq!(fmt_num(-1000.0), "-1000");
    }
}
