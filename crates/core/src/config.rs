//! Engine configuration: the knobs the paper's *setup assistant* exposes.

use crate::error::{CharlesError, Result};

/// How candidate partitions are discovered within a (C, T) combination.
/// `ResidualKMeans` is the paper's method; the others are ablations
/// (experiment E9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionMethod {
    /// Cluster residuals of the global fit with exact 1-D k-means
    /// (the paper's approach).
    #[default]
    ResidualKMeans,
    /// Split residuals at k-quantile boundaries (cheap baseline).
    ResidualQuantile,
    /// DBSCAN over residuals with MAD-derived eps (no fixed k).
    ResidualDbscan,
}

/// Full engine configuration.
///
/// Defaults mirror the paper's demo: `α = 0.5`, up to `c = 3` condition
/// attributes, `t = 2` transformation attributes, top-10 summaries, and a
/// 0.5 correlation threshold for attribute shortlisting.
#[derive(Debug, Clone)]
pub struct CharlesConfig {
    /// Weight of accuracy in `Score = α·Acc + (1−α)·Int`; in [0, 1].
    pub alpha: f64,
    /// Maximum condition attributes per summary (the paper's `c`).
    pub max_condition_attrs: usize,
    /// Maximum transformation attributes per linear model (the paper's `t`).
    pub max_transform_attrs: usize,
    /// Minimum |correlation| for the assistant's attribute shortlist.
    pub correlation_threshold: f64,
    /// Cap on shortlisted condition attributes (keeps enumeration sane on
    /// wide tables).
    pub max_candidate_condition_attrs: usize,
    /// Cap on shortlisted transformation attributes.
    pub max_candidate_transform_attrs: usize,
    /// Partition counts to try (inclusive range of k).
    pub k_min: usize,
    /// Upper end of the k sweep (inclusive).
    pub k_max: usize,
    /// Number of ranked summaries returned (paper default: 10).
    pub max_summaries: usize,
    /// Smallest partition worth describing, as a fraction of rows.
    pub min_partition_fraction: f64,
    /// Structural depth cap for condition induction. Note this is *not*
    /// the paper's `c`: `c` bounds how many distinct attributes a summary
    /// may condition on (enforced by subset enumeration), while a tree may
    /// legitimately split several times on the same attribute (e.g. one
    /// equality per industry). Deeper trees yield more descriptors, which
    /// the interpretability score already penalizes.
    pub max_tree_depth: usize,
    /// Relative accuracy loss tolerated when snapping a constant to a
    /// rounder value (normality), e.g. 0.02 = 2%.
    pub snap_tolerance: f64,
    /// Enable constant snapping (ablation switch).
    pub snap_constants: bool,
    /// Partition discovery method (ablation switch).
    pub partition_method: PartitionMethod,
    /// Interpretability sub-score weights
    /// (size, simplicity, coverage, normality); must sum to 1.
    pub interpretability_weights: [f64; 4],
    /// Sharpness of the accuracy measure: accuracy is
    /// `1 / (1 + sharpness · L1 / (n · mean|Δ|))`. Higher values punish
    /// residual error harder (the paper's raw "inverse L1 distance" is the
    /// sharp limit); 10.0 means a summary mis-explaining changes by 10% of
    /// the mean change magnitude scores 0.5.
    pub accuracy_sharpness: f64,
    /// Absolute tolerance under which a cell is considered *unchanged*.
    pub change_tolerance: f64,
    /// Worker threads for the candidate search (`0` = all available cores).
    pub threads: usize,
    /// RNG seed for any randomized component (kept for reproducibility).
    pub seed: u64,
    /// Seal the snapshot pair's columns into per-block compressed
    /// encodings when a session opens (RLE/dictionary packing for codes,
    /// delta/bitpack for integer-valued numerics; see
    /// `charles_relation::CompressedColumn`). Purely a *layout* choice:
    /// sealed sessions answer every query `f64::to_bits`-identically to
    /// unsealed ones, trading first-touch decode work for resident bytes.
    /// Only consulted at `Session::open*` time — per-query config
    /// overrides cannot re-seal an open session.
    pub seal_columns: bool,
}

impl Default for CharlesConfig {
    fn default() -> Self {
        CharlesConfig {
            alpha: 0.5,
            max_condition_attrs: 3,
            max_transform_attrs: 2,
            correlation_threshold: 0.5,
            max_candidate_condition_attrs: 6,
            max_candidate_transform_attrs: 5,
            k_min: 1,
            k_max: 5,
            max_summaries: 10,
            min_partition_fraction: 0.02,
            max_tree_depth: 8,
            snap_tolerance: 0.02,
            snap_constants: true,
            partition_method: PartitionMethod::ResidualKMeans,
            interpretability_weights: [0.25, 0.25, 0.25, 0.25],
            accuracy_sharpness: 10.0,
            change_tolerance: 1e-9,
            threads: 0,
            seed: 0xC4A7,
            seal_columns: false,
        }
    }
}

impl CharlesConfig {
    /// Set α (accuracy weight).
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Set the paper's `c` parameter.
    pub fn with_max_condition_attrs(mut self, c: usize) -> Self {
        self.max_condition_attrs = c;
        self
    }

    /// Set the paper's `t` parameter.
    pub fn with_max_transform_attrs(mut self, t: usize) -> Self {
        self.max_transform_attrs = t;
        self
    }

    /// Set the k sweep range.
    pub fn with_k_range(mut self, k_min: usize, k_max: usize) -> Self {
        self.k_min = k_min;
        self.k_max = k_max;
        self
    }

    /// Set how many summaries to return.
    pub fn with_max_summaries(mut self, n: usize) -> Self {
        self.max_summaries = n;
        self
    }

    /// Toggle constant snapping.
    pub fn with_snapping(mut self, on: bool) -> Self {
        self.snap_constants = on;
        self
    }

    /// Choose the partition-discovery method.
    pub fn with_partition_method(mut self, m: PartitionMethod) -> Self {
        self.partition_method = m;
        self
    }

    /// Set worker thread count (0 = auto).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Toggle sealing columns into compressed block encodings at session
    /// open (see [`CharlesConfig::seal_columns`]).
    pub fn with_sealed_columns(mut self, on: bool) -> Self {
        self.seal_columns = on;
        self
    }

    /// Validate invariants; call before running the engine.
    pub fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.alpha) {
            return Err(CharlesError::BadConfig(format!(
                "alpha must be in [0, 1], got {}",
                self.alpha
            )));
        }
        if self.max_transform_attrs == 0 {
            return Err(CharlesError::BadConfig(
                "max_transform_attrs (t) must be ≥ 1".into(),
            ));
        }
        if self.k_min == 0 || self.k_min > self.k_max {
            return Err(CharlesError::BadConfig(format!(
                "invalid k range [{}, {}]",
                self.k_min, self.k_max
            )));
        }
        if self.max_summaries == 0 {
            return Err(CharlesError::BadConfig("max_summaries must be ≥ 1".into()));
        }
        if !(0.0..1.0).contains(&self.min_partition_fraction) {
            return Err(CharlesError::BadConfig(format!(
                "min_partition_fraction must be in [0, 1), got {}",
                self.min_partition_fraction
            )));
        }
        if self.snap_tolerance < 0.0 {
            return Err(CharlesError::BadConfig(
                "snap_tolerance must be non-negative".into(),
            ));
        }
        if self.max_tree_depth == 0 {
            return Err(CharlesError::BadConfig("max_tree_depth must be ≥ 1".into()));
        }
        if self.accuracy_sharpness <= 0.0 || !self.accuracy_sharpness.is_finite() {
            return Err(CharlesError::BadConfig(format!(
                "accuracy_sharpness must be positive and finite, got {}",
                self.accuracy_sharpness
            )));
        }
        let wsum = charles_numerics::kernels::sum(&self.interpretability_weights);
        if (wsum - 1.0).abs() > 1e-9 {
            return Err(CharlesError::BadConfig(format!(
                "interpretability weights must sum to 1, got {wsum}"
            )));
        }
        if self
            .interpretability_weights
            .iter()
            .any(|&w| !(0.0..=1.0).contains(&w))
        {
            return Err(CharlesError::BadConfig(
                "interpretability weights must each lie in [0, 1]".into(),
            ));
        }
        Ok(())
    }

    /// Effective worker thread count.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = CharlesConfig::default();
        assert_eq!(c.alpha, 0.5);
        assert_eq!(c.max_condition_attrs, 3);
        assert_eq!(c.max_transform_attrs, 2);
        assert_eq!(c.correlation_threshold, 0.5);
        assert_eq!(c.max_summaries, 10);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_chain() {
        let c = CharlesConfig::default()
            .with_alpha(0.75)
            .with_max_condition_attrs(2)
            .with_max_transform_attrs(1)
            .with_k_range(2, 3)
            .with_max_summaries(5)
            .with_snapping(false)
            .with_partition_method(PartitionMethod::ResidualQuantile)
            .with_threads(2)
            .with_sealed_columns(true);
        assert_eq!(c.alpha, 0.75);
        assert_eq!(c.k_max, 3);
        assert!(c.seal_columns);
        assert!(!c.snap_constants);
        assert_eq!(c.effective_threads(), 2);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(CharlesConfig::default().with_alpha(1.5).validate().is_err());
        assert!(CharlesConfig::default()
            .with_max_transform_attrs(0)
            .validate()
            .is_err());
        assert!(CharlesConfig::default()
            .with_k_range(0, 3)
            .validate()
            .is_err());
        assert!(CharlesConfig::default()
            .with_k_range(4, 3)
            .validate()
            .is_err());
        assert!(CharlesConfig::default()
            .with_max_summaries(0)
            .validate()
            .is_err());
        let c = CharlesConfig {
            interpretability_weights: [0.5, 0.5, 0.5, 0.5],
            ..CharlesConfig::default()
        };
        assert!(c.validate().is_err());
        let c = CharlesConfig {
            min_partition_fraction: 1.0,
            ..CharlesConfig::default()
        };
        assert!(c.validate().is_err());
        let c = CharlesConfig {
            snap_tolerance: -0.1,
            ..CharlesConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn auto_threads_positive() {
        assert!(CharlesConfig::default().effective_threads() >= 1);
    }
}
