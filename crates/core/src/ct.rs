//! Conditional transformations — the paper's unit of explanation.

use crate::condition::Condition;
use crate::transform::Transformation;
use std::fmt;

/// A condition paired with the transformation that holds on its partition:
///
/// ```text
/// edu = PhD  →  new_bonus = 1.05 × old_bonus + 1000
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ConditionalTransformation {
    /// Which rows this CT explains.
    pub condition: Condition,
    /// How those rows' target values evolved.
    pub transformation: Transformation,
    /// Rows of the source snapshot matched by the condition.
    pub rows: Vec<usize>,
    /// Fraction of the dataset covered (rows / n).
    pub coverage: f64,
    /// Mean absolute error of the transformation on this partition.
    pub mae: f64,
}

impl ConditionalTransformation {
    /// Construct with coverage computed from `total_rows`.
    pub fn new(
        condition: Condition,
        transformation: Transformation,
        rows: Vec<usize>,
        total_rows: usize,
        mae: f64,
    ) -> Self {
        let coverage = if total_rows == 0 {
            0.0
        } else {
            rows.len() as f64 / total_rows as f64
        };
        ConditionalTransformation {
            condition,
            transformation,
            rows,
            coverage,
            mae,
        }
    }

    /// Number of rows in the partition.
    pub fn size(&self) -> usize {
        self.rows.len()
    }

    /// Whether this CT asserts "no change".
    pub fn is_no_change(&self) -> bool {
        self.transformation.is_identity()
    }

    /// Canonical key for deduplication.
    pub fn signature(&self) -> String {
        format!(
            "{} -> {}",
            self.condition.signature(),
            self.transformation.signature()
        )
    }
}

impl fmt::Display for ConditionalTransformation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} → {}", self.condition, self.transformation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Descriptor;
    use crate::transform::Term;
    use charles_relation::Value;

    fn phd_ct() -> ConditionalTransformation {
        ConditionalTransformation::new(
            Condition::all().with(Descriptor::Equals {
                attr: "edu".into(),
                value: Value::str("PhD"),
            }),
            Transformation::linear(
                "bonus",
                vec![Term {
                    attr: "bonus".into(),
                    coefficient: 1.05,
                }],
                1000.0,
            ),
            vec![0, 1, 8],
            9,
            0.0,
        )
    }

    #[test]
    fn coverage_computed() {
        let ct = phd_ct();
        assert_eq!(ct.size(), 3);
        assert!((ct.coverage - 3.0 / 9.0).abs() < 1e-12);
        assert!(!ct.is_no_change());
    }

    #[test]
    fn renders_like_figure_2() {
        assert_eq!(
            phd_ct().to_string(),
            "edu = PhD → new_bonus = 1.05 × old_bonus + 1000"
        );
    }

    #[test]
    fn zero_total_rows_safe() {
        let ct = ConditionalTransformation::new(
            Condition::all(),
            Transformation::Identity,
            vec![],
            0,
            0.0,
        );
        assert_eq!(ct.coverage, 0.0);
        assert!(ct.is_no_change());
    }

    #[test]
    fn signature_combines_both_sides() {
        let a = phd_ct();
        let mut b = phd_ct();
        assert_eq!(a.signature(), b.signature());
        b.transformation = Transformation::Identity;
        assert_ne!(a.signature(), b.signature());
    }
}
