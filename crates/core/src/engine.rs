//! The top-level ChARLES engine (paper Figure 3).
//!
//! [`Charles`] wires the two architectural components together: the *setup
//! assistant* (attribute shortlisting, parameter handling) and the *diff
//! discovery engine* (partition + transformation discovery, scoring,
//! ranking). Typical use:
//!
//! ```no_run
//! # use charles_core::Charles;
//! # let (v2016, v2017) = unimplemented!();
//! let result = Charles::new(v2016, v2017, "bonus").unwrap().run().unwrap();
//! println!("{}", result.top().unwrap());
//! ```
//!
//! `Charles` is the one-shot facade: one engine, one target, one run. It is
//! kept (unchanged in API) for compatibility and simple batch jobs, but it
//! is now a thin wrapper over a private single-query [`Session`] — new code
//! that asks more than one question of the same snapshot pair (several
//! targets, α-sweeps, shortlist tweaks) should hold a [`Session`] instead
//! and reuse its cached data plane across queries.

use crate::assistant::SetupReport;
use crate::config::CharlesConfig;
use crate::error::Result;
use crate::search::SearchStats;
use crate::session::{Query, Session};
use crate::summary::ChangeSummary;
use charles_relation::{SnapshotPair, Table};
use std::fmt;
use std::time::{Duration, Instant};

/// The one-shot engine facade: a private [`Session`], the target
/// attribute, and optional user overrides of the assistant's shortlists.
#[derive(Debug)]
pub struct Charles {
    session: Session,
    target_attr: String,
    condition_attrs_override: Option<Vec<String>>,
    transform_attrs_override: Option<Vec<String>>,
}

/// Everything a run produces: ranked summaries plus provenance.
#[derive(Debug)]
pub struct RunResult {
    /// Ranked summaries, best first (at most `config.max_summaries`).
    pub summaries: Vec<ChangeSummary>,
    /// The assistant's attribute analysis used for this run.
    pub setup: SetupReport,
    /// Search bookkeeping.
    pub stats: SearchStats,
    /// Wall-clock duration of the search.
    pub elapsed: Duration,
}

impl RunResult {
    /// The best summary, if any.
    pub fn top(&self) -> Option<&ChangeSummary> {
        self.summaries.first()
    }
}

impl fmt::Display for RunResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} summaries ({} candidates, {} evaluated, {} distinct) in {:.1?}",
            self.summaries.len(),
            self.stats.candidates,
            self.stats.evaluated,
            self.stats.distinct,
            self.elapsed
        )?;
        for (i, s) in self.summaries.iter().enumerate() {
            writeln!(f, "#{:<2} {s}", i + 1)?;
        }
        Ok(())
    }
}

impl Charles {
    /// Create an engine from two snapshots (aligned by their declared key
    /// column, or positionally when none is declared).
    pub fn new(source: Table, target: Table, target_attr: &str) -> Result<Self> {
        let pair = SnapshotPair::align(source, target)?;
        Charles::from_pair(pair, target_attr)
    }

    /// Create an engine from a pre-aligned pair.
    pub fn from_pair(pair: SnapshotPair, target_attr: &str) -> Result<Self> {
        let session = Session::open(pair)?;
        session.resolve_target(target_attr)?;
        Ok(Charles {
            session,
            target_attr: target_attr.to_string(),
            condition_attrs_override: None,
            transform_attrs_override: None,
        })
    }

    /// Replace the configuration.
    pub fn with_config(mut self, config: CharlesConfig) -> Self {
        self.session.set_config(config);
        self
    }

    /// Override the assistant's condition-attribute shortlist (demo step 4's
    /// interactive filtering).
    // lint:allow(cache-invalidation: the session's memo planes key on full candidate identity — target, C, T, k, alpha — so a different shortlist only changes which candidates are enumerated, never what a cached entry means)
    pub fn with_condition_attrs<I, S>(mut self, attrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.condition_attrs_override = Some(attrs.into_iter().map(Into::into).collect());
        self
    }

    /// Override the assistant's transformation-attribute shortlist (demo
    /// step 5).
    // lint:allow(cache-invalidation: memo planes key on full candidate identity, so narrowing the transformation shortlist cannot surface a stale entry)
    pub fn with_transform_attrs<I, S>(mut self, attrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.transform_attrs_override = Some(attrs.into_iter().map(Into::into).collect());
        self
    }

    /// The aligned snapshot pair.
    pub fn pair(&self) -> &SnapshotPair {
        self.session.pair()
    }

    /// The target attribute.
    pub fn target_attr(&self) -> &str {
        &self.target_attr
    }

    /// The active configuration.
    pub fn config(&self) -> &CharlesConfig {
        self.session.config()
    }

    /// Run only the setup assistant (demo steps 4–5).
    pub fn setup(&self) -> Result<SetupReport> {
        Ok((*self.session.setup(&self.target_attr)?).clone())
    }

    /// This engine's question as a session [`Query`].
    fn query(&self) -> Query {
        let mut query = Query::new(&self.target_attr);
        query.condition_attrs = self.condition_attrs_override.clone();
        query.transform_attrs = self.transform_attrs_override.clone();
        query
    }

    /// Re-score and re-rank an existing run's summaries under a different
    /// α — the demo's slider (step 6) without repeating the search. The
    /// candidate pool is the previous run's ranked list and the scoring
    /// plane is the session's cached one, so this touches no column data;
    /// for a *wider* pool at the new α, run the engine again with the new
    /// config.
    pub fn rescore(&self, result: &RunResult, alpha: f64) -> Result<RunResult> {
        let mut config = self.session.config().clone();
        config.alpha = alpha;
        let summaries =
            self.session
                .rescore_summaries(&self.target_attr, &result.summaries, &config)?;
        Ok(RunResult {
            summaries,
            setup: result.setup.clone(),
            stats: result.stats.clone(),
            elapsed: result.elapsed,
        })
    }

    /// Numeric non-key attributes whose values actually changed between
    /// the snapshots — the candidate *targets* a user would pick in demo
    /// step 2. Comparison runs through shared [`charles_relation::NumericView`]s
    /// (zero-copy for null-free `Float64` columns of identity-aligned
    /// pairs); a [`Session`] caches this as [`Session::targets`].
    pub fn changed_numeric_attributes(pair: &SnapshotPair) -> Result<Vec<String>> {
        let source = pair.source();
        let mut out = Vec::new();
        for field in source.schema().fields() {
            let name = field.name();
            if !field.dtype().is_numeric() || Some(name) == pair.key_attr() {
                continue;
            }
            let old = match source.numeric_view(name) {
                Ok(v) => v,
                Err(_) => continue, // nulls: not a usable target
            };
            let new = match pair.target_numeric_view(name) {
                Ok(v) => v,
                Err(_) => continue,
            };
            if old.iter().zip(new.iter()).any(|(a, b)| a != b) {
                out.push(name.to_string());
            }
        }
        Ok(out)
    }

    /// Full run: assistant, enumeration, parallel evaluation, ranking
    /// (demo steps 6–8). Delegates to the private session; repeated runs
    /// of the same engine therefore reuse every cached fit and labeling.
    pub fn run(&self) -> Result<RunResult> {
        let started = Instant::now();
        let result = self.session.run(&self.query())?;
        Ok(RunResult {
            summaries: result.summaries,
            setup: (*result.setup).clone(),
            stats: result.stats,
            elapsed: started.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CharlesError;
    use charles_relation::{
        apply_updates, ApplyMode, CmpOp, Expr, Predicate, TableBuilder, UpdateStatement,
    };

    /// Exactly the paper's Figure 1 source snapshot.
    fn fig1_source() -> Table {
        TableBuilder::new("2016")
            .str_col(
                "name",
                &[
                    "Anne", "Bob", "Amber", "Allen", "Cathy", "Tom", "James", "Lucy", "Frank",
                ],
            )
            .str_col("gen", &["F", "M", "F", "M", "F", "M", "M", "F", "M"])
            .str_col(
                "edu",
                &["PhD", "PhD", "MS", "MS", "BS", "MS", "BS", "MS", "PhD"],
            )
            .int_col("exp", &[2, 3, 5, 1, 2, 4, 3, 4, 1])
            .float_col(
                "salary",
                &[
                    230_000.0, 250_000.0, 160_000.0, 130_000.0, 110_000.0, 150_000.0, 120_000.0,
                    150_000.0, 210_000.0,
                ],
            )
            .float_col(
                "bonus",
                &[
                    23_000.0, 25_000.0, 16_000.0, 13_000.0, 11_000.0, 15_000.0, 12_000.0, 15_000.0,
                    21_000.0,
                ],
            )
            .key("name")
            .build()
            .unwrap()
    }

    fn fig1_pair() -> SnapshotPair {
        let source = fig1_source();
        let policy = [
            UpdateStatement::new(
                "bonus",
                Expr::affine("bonus", 1.05, 1000.0),
                Predicate::eq("edu", "PhD"),
            ),
            UpdateStatement::new(
                "bonus",
                Expr::affine("bonus", 1.04, 800.0),
                Predicate::eq("edu", "MS").and(Predicate::cmp("exp", CmpOp::Ge, 3)),
            ),
            UpdateStatement::new(
                "bonus",
                Expr::affine("bonus", 1.03, 400.0),
                Predicate::eq("edu", "MS").and(Predicate::cmp("exp", CmpOp::Lt, 3)),
            ),
        ];
        let target = apply_updates(&source, &policy, ApplyMode::FirstMatch)
            .unwrap()
            .table;
        SnapshotPair::align(source, target).unwrap()
    }

    #[test]
    fn end_to_end_example_1() {
        // Demo steps 4–5: the user accepts "education", "exp year", and
        // "gender" as condition attributes and "bonus"/"salary" as
        // transformation attributes.
        let engine = Charles::from_pair(fig1_pair(), "bonus")
            .unwrap()
            .with_condition_attrs(["edu", "exp", "gen"])
            .with_transform_attrs(["bonus", "salary"]);
        let result = engine.run().unwrap();
        let top = result.top().expect("summaries produced");
        assert!(
            top.scores.accuracy > 0.999,
            "top accuracy {}",
            top.scores.accuracy
        );
        // The recovered summary should use the paper's constants for R1 and
        // R2. R3's partition ("MS with < 3 years") contains only Allen in
        // the Figure-1 data, so its coefficients (1.03, 400) are not
        // identifiable from one point — any exact explanation of his new
        // bonus is acceptable there.
        let rendered = top.to_string();
        assert!(rendered.contains("1.05 × old_bonus + 1000"), "{rendered}");
        assert!(rendered.contains("1.04 × old_bonus + 800"), "{rendered}");
        assert!(rendered.contains("no change"), "{rendered}");
        assert!(result.stats.candidates > 0);
        assert!(result.summaries.len() <= 10);
    }

    #[test]
    fn end_to_end_with_assistant_defaults() {
        // Without overrides the assistant picks its own condition
        // vocabulary; whatever it chooses, the top summary must explain
        // the change essentially perfectly.
        let engine = Charles::from_pair(fig1_pair(), "bonus").unwrap();
        let result = engine.run().unwrap();
        let top = result.top().unwrap();
        assert!(
            top.scores.accuracy > 0.99,
            "top accuracy {}",
            top.scores.accuracy
        );
        // Condition candidates never include the target attribute itself.
        assert!(!top.condition_attrs.iter().any(|a| a == "bonus"));
    }

    #[test]
    fn setup_shortlists_fig1_attributes() {
        let engine = Charles::from_pair(fig1_pair(), "bonus").unwrap();
        let setup = engine.setup().unwrap();
        let cond = setup.condition_attrs();
        assert!(cond.contains(&"edu".to_string()), "{cond:?}");
        let tran = setup.transform_attrs();
        assert_eq!(tran[0], "bonus");
        assert!(tran.contains(&"salary".to_string()));
    }

    #[test]
    fn override_attrs_respected() {
        let engine = Charles::from_pair(fig1_pair(), "bonus")
            .unwrap()
            .with_condition_attrs(["edu", "exp"])
            .with_transform_attrs(["bonus"]);
        let result = engine.run().unwrap();
        let top = result.top().unwrap();
        assert_eq!(top.transform_attrs, vec!["bonus".to_string()]);
        assert!(top.scores.accuracy > 0.999);
    }

    #[test]
    fn non_numeric_target_rejected() {
        let err = Charles::from_pair(fig1_pair(), "edu").unwrap_err();
        assert!(matches!(
            err,
            CharlesError::Query(crate::error::QueryError::NonNumericTarget { .. })
        ));
    }

    #[test]
    fn unknown_override_attr_rejected() {
        let engine = Charles::from_pair(fig1_pair(), "bonus")
            .unwrap()
            .with_condition_attrs(["nonexistent"]);
        assert!(engine.run().is_err());
    }

    #[test]
    fn invalid_config_rejected_at_run() {
        let engine = Charles::from_pair(fig1_pair(), "bonus")
            .unwrap()
            .with_config(CharlesConfig::default().with_alpha(2.0));
        assert!(matches!(
            engine.run().unwrap_err(),
            CharlesError::BadConfig(_)
        ));
        assert!(engine.setup().is_err());
    }

    #[test]
    fn rescore_reorders_without_research() {
        let engine = Charles::from_pair(fig1_pair(), "bonus")
            .unwrap()
            .with_condition_attrs(["edu", "exp", "gen"])
            .with_transform_attrs(["bonus", "salary"]);
        let base = engine.run().unwrap();
        let at_zero = engine.rescore(&base, 0.0).unwrap();
        assert_eq!(at_zero.summaries.len(), base.summaries.len());
        // At α = 0 only interpretability matters: scores equal interp.
        for s in &at_zero.summaries {
            assert!((s.scores.score - s.scores.interpretability).abs() < 1e-12);
        }
        // Still sorted.
        for w in at_zero.summaries.windows(2) {
            assert!(w[0].scores.score >= w[1].scores.score);
        }
        // Invalid alpha rejected.
        assert!(engine.rescore(&base, 2.0).is_err());
    }

    #[test]
    fn changed_numeric_attributes_detects_targets() {
        let pair = fig1_pair();
        let changed = Charles::changed_numeric_attributes(&pair).unwrap();
        assert_eq!(changed, vec!["bonus".to_string()]);
    }

    #[test]
    fn run_result_display() {
        let engine = Charles::from_pair(fig1_pair(), "bonus").unwrap();
        let result = engine.run().unwrap();
        let text = result.to_string();
        assert!(text.contains("#1"), "{text}");
        assert!(text.contains("candidates"), "{text}");
    }
}
