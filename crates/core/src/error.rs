//! Error type for the ChARLES engine.

use charles_cluster::ClusterError;
use charles_numerics::NumericsError;
use charles_relation::RelationError;
use std::fmt;

/// Errors produced while recovering change summaries.
#[derive(Debug, Clone, PartialEq)]
pub enum CharlesError {
    /// An error bubbled up from the relational substrate.
    Relation(RelationError),
    /// An error bubbled up from the numeric substrate.
    Numerics(NumericsError),
    /// An error bubbled up from the clustering substrate.
    Cluster(ClusterError),
    /// The requested target attribute is unusable (missing/non-numeric).
    BadTargetAttribute(String),
    /// Engine configuration is inconsistent.
    BadConfig(String),
    /// No candidate summaries could be generated (e.g. no usable
    /// transformation attributes).
    NoCandidates(String),
}

impl fmt::Display for CharlesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CharlesError::Relation(e) => write!(f, "relation error: {e}"),
            CharlesError::Numerics(e) => write!(f, "numerics error: {e}"),
            CharlesError::Cluster(e) => write!(f, "cluster error: {e}"),
            CharlesError::BadTargetAttribute(msg) => {
                write!(f, "bad target attribute: {msg}")
            }
            CharlesError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            CharlesError::NoCandidates(msg) => {
                write!(f, "no candidate summaries: {msg}")
            }
        }
    }
}

impl std::error::Error for CharlesError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CharlesError::Relation(e) => Some(e),
            CharlesError::Numerics(e) => Some(e),
            CharlesError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationError> for CharlesError {
    fn from(e: RelationError) -> Self {
        CharlesError::Relation(e)
    }
}

impl From<NumericsError> for CharlesError {
    fn from(e: NumericsError) -> Self {
        CharlesError::Numerics(e)
    }
}

impl From<ClusterError> for CharlesError {
    fn from(e: ClusterError) -> Self {
        CharlesError::Cluster(e)
    }
}

/// Convenience result alias for the core crate.
pub type Result<T> = std::result::Result<T, CharlesError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_source() {
        let e: CharlesError = RelationError::UnknownAttribute("x".into()).into();
        assert!(matches!(e, CharlesError::Relation(_)));
        assert!(std::error::Error::source(&e).is_some());
        let e: CharlesError = NumericsError::InsufficientData { needed: 2, got: 0 }.into();
        assert!(e.to_string().contains("numerics"));
        let e = CharlesError::BadConfig("alpha out of range".into());
        assert!(std::error::Error::source(&e).is_none());
    }
}
