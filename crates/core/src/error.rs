//! Error type for the ChARLES engine.

use charles_cluster::ClusterError;
use charles_numerics::NumericsError;
use charles_relation::RelationError;
use std::fmt;

/// A malformed [`crate::Query`], rejected before any search work starts.
///
/// Each variant names one specific way a query can be unanswerable, so
/// callers (interactive UIs, the serving layer) can map the failure to a
/// precise client-facing message instead of pattern-matching on generic
/// engine errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The target attribute does not exist in the schema.
    UnknownTarget {
        /// The requested attribute name.
        name: String,
    },
    /// The target attribute exists but is not numeric.
    NonNumericTarget {
        /// The requested attribute name.
        name: String,
        /// The attribute's actual data type, rendered.
        dtype: String,
    },
    /// The transformation-attribute shortlist resolved to nothing — no
    /// linear model can be fitted.
    EmptyTransformShortlist,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownTarget { name } => {
                write!(f, "unknown target attribute {name:?}")
            }
            QueryError::NonNumericTarget { name, dtype } => {
                write!(
                    f,
                    "target attribute {name:?} must be numeric, found {dtype}"
                )
            }
            QueryError::EmptyTransformShortlist => write!(
                f,
                "empty transformation-attribute shortlist; the target's previous \
                 value alone is always available — pass it explicitly"
            ),
        }
    }
}

/// Errors produced while recovering change summaries.
#[derive(Debug, Clone, PartialEq)]
pub enum CharlesError {
    /// An error bubbled up from the relational substrate.
    Relation(RelationError),
    /// An error bubbled up from the numeric substrate.
    Numerics(NumericsError),
    /// An error bubbled up from the clustering substrate.
    Cluster(ClusterError),
    /// The requested target attribute is unusable (missing/non-numeric).
    BadTargetAttribute(String),
    /// Engine configuration is inconsistent.
    BadConfig(String),
    /// No candidate summaries could be generated (e.g. no usable
    /// transformation attributes).
    NoCandidates(String),
    /// A query was malformed (see [`QueryError`] for the specific reason).
    Query(QueryError),
    /// The named dataset is not registered with the
    /// [`crate::SessionManager`] asked to serve it.
    UnknownDataset(String),
    /// Distributed shard execution failed at the transport layer: a worker
    /// could not be reached (or answered garbage) and no live worker could
    /// take over the shard's block range. Deliberately distinct from the
    /// numerics failures a fit can legitimately produce — a transport
    /// failure must surface as an error, never as "candidate infeasible",
    /// or the distributed path would silently diverge from the
    /// in-process one.
    Distributed(String),
}

impl fmt::Display for CharlesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CharlesError::Relation(e) => write!(f, "relation error: {e}"),
            CharlesError::Numerics(e) => write!(f, "numerics error: {e}"),
            CharlesError::Cluster(e) => write!(f, "cluster error: {e}"),
            CharlesError::BadTargetAttribute(msg) => {
                write!(f, "bad target attribute: {msg}")
            }
            CharlesError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            CharlesError::NoCandidates(msg) => {
                write!(f, "no candidate summaries: {msg}")
            }
            CharlesError::Query(e) => write!(f, "bad query: {e}"),
            CharlesError::UnknownDataset(name) => {
                write!(f, "unknown dataset: {name:?} is not registered")
            }
            CharlesError::Distributed(msg) => {
                write!(f, "distributed execution error: {msg}")
            }
        }
    }
}

impl std::error::Error for CharlesError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CharlesError::Relation(e) => Some(e),
            CharlesError::Numerics(e) => Some(e),
            CharlesError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationError> for CharlesError {
    fn from(e: RelationError) -> Self {
        CharlesError::Relation(e)
    }
}

impl From<NumericsError> for CharlesError {
    fn from(e: NumericsError) -> Self {
        CharlesError::Numerics(e)
    }
}

impl From<ClusterError> for CharlesError {
    fn from(e: ClusterError) -> Self {
        CharlesError::Cluster(e)
    }
}

impl From<QueryError> for CharlesError {
    fn from(e: QueryError) -> Self {
        CharlesError::Query(e)
    }
}

/// Convenience result alias for the core crate.
pub type Result<T> = std::result::Result<T, CharlesError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_source() {
        let e: CharlesError = RelationError::UnknownAttribute("x".into()).into();
        assert!(matches!(e, CharlesError::Relation(_)));
        assert!(std::error::Error::source(&e).is_some());
        let e: CharlesError = NumericsError::InsufficientData { needed: 2, got: 0 }.into();
        assert!(e.to_string().contains("numerics"));
        let e = CharlesError::BadConfig("alpha out of range".into());
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn query_error_variants_render_their_cause() {
        let e: CharlesError = QueryError::UnknownTarget { name: "pay".into() }.into();
        assert!(e.to_string().contains("unknown target"), "{e}");
        assert!(e.to_string().contains("pay"), "{e}");
        let e: CharlesError = QueryError::NonNumericTarget {
            name: "edu".into(),
            dtype: "utf8".into(),
        }
        .into();
        assert!(e.to_string().contains("must be numeric"), "{e}");
        let e: CharlesError = QueryError::EmptyTransformShortlist.into();
        assert!(e.to_string().contains("empty transformation"), "{e}");
        assert!(std::error::Error::source(&e).is_none());
        let e = CharlesError::UnknownDataset("county".into());
        assert!(e.to_string().contains("not registered"), "{e}");
    }
}
