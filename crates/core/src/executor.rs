//! The pluggable shard execution plane: [`ShardExecutor`] and its
//! in-process backend, [`LocalExecutor`].
//!
//! PR 4 factored the search's heavy per-row statistics into *exactly
//! mergeable* sufficient statistics: per-shard change-signal slices
//! (elementwise), phase-A [`ColumnMoments`] (merged with `max`/`+`/`&&`),
//! and phase-B blocked `XᵀX`/`Xᵀy` [`GramPartial`]s accumulated on the
//! canonical [`GRAM_BLOCK_ROWS`] grid and folded in block order. That
//! factoring makes *where* a shard's statistics are computed irrelevant to
//! the answer — which is exactly what this module reifies: the search asks
//! a [`ShardExecutor`] for per-shard statistics and merges them itself,
//! and the executor is free to compute them on scoped threads in this
//! process ([`LocalExecutor`]) or on remote workers over a wire protocol
//! (`charles_server::RemoteExecutor`), with **bit-identical** results
//! either way.
//!
//! ## The contract
//!
//! An executor serves one aligned snapshot pair, split into the
//! block-aligned row-range layout reported by [`ShardExecutor::ranges`]
//! ([`RowRange::split_aligned`] with [`GRAM_BLOCK_ROWS`]). For any target
//! and transformation-attribute subset it must return, per **non-empty**
//! range in range order:
//!
//! - [`ShardExecutor::signal_slices`] — the target's absolute and
//!   relative change over the range's rows, computed exactly as
//!   `charles_core::search::change_signals` computes them;
//! - [`ShardExecutor::column_moments`] — phase A of the global fit;
//! - [`ShardExecutor::gram_partials`] — phase B, under the conditioning
//!   scales the *coordinator* derived from the merged phase-A moments,
//!   with each partial's `first_block` equal to
//!   `range.start / GRAM_BLOCK_ROWS`.
//!
//! The statistics must be computed from column data bit-identical to the
//! coordinator's (same CSV bytes parse to the same floats on every
//! machine). Transport failures must surface as errors — typically
//! [`CharlesError::Distributed`] — never as fabricated statistics; the
//! search maps *numeric* infeasibility (too few rows, non-finite data,
//! singular systems) to "candidate infeasible" exactly like the
//! in-process path, but a transport error aborts the query.
//!
//! Since PR 6 the statistics themselves run as blocked, lane-accumulated
//! kernels (`charles_numerics::kernels`). The contract is unchanged: the
//! kernel's fold order within a block is a function of the block's data
//! only, and every implementation — this module's [`LocalExecutor`], the
//! worker-side `Session::shard_*` entry points behind
//! `charles_server::RemoteExecutor`, and the unsharded path — calls the
//! *same* `charles_numerics::ols` functions, so "same canonical blocks in,
//! same bits out" holds for the kernels exactly as it did for the scalar
//! loops they replaced.

use crate::error::{CharlesError, Result};
use charles_numerics::ols::{ColumnMoments, GramPartial, GRAM_BLOCK_ROWS};
use charles_relation::{NumericView, RowRange, SnapshotPair};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// One shard's slice of the candidate-independent change signals.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalSlice {
    /// Absolute per-row change of the target over the shard's rows.
    pub delta: Vec<f64>,
    /// Relative per-row change of the target over the shard's rows.
    pub rel_delta: Vec<f64>,
}

/// Where — and how — per-shard statistics are computed. See the
/// [module docs](self) for the exactness contract every implementation
/// must honor.
///
/// Implementations are shared across query threads behind an `Arc`, so
/// every method takes `&self` and must be internally synchronized.
pub trait ShardExecutor: Send + Sync + fmt::Debug {
    /// The block-aligned row-range layout, one entry per shard. Trailing
    /// ranges may be empty (more shards than blocks); empty ranges
    /// contribute nothing to any statistic.
    fn ranges(&self) -> Vec<RowRange>;

    /// Per-shard change-signal slices for `target`, one entry per
    /// **non-empty** range, in range order.
    fn signal_slices(&self, target: &str) -> Result<Vec<SignalSlice>>;

    /// Phase-A column moments of `(target, tran_attrs)` per non-empty
    /// range, in range order.
    fn column_moments(&self, target: &str, tran_attrs: &[String]) -> Result<Vec<ColumnMoments>>;

    /// Phase-B blocked Gram statistics per non-empty range, in range
    /// order, under the coordinator-derived conditioning `scales`.
    fn gram_partials(
        &self,
        target: &str,
        tran_attrs: &[String],
        scales: &[f64],
    ) -> Result<Vec<GramPartial>>;
}

/// Builds the executor for a remote-backed dataset once its local pair is
/// open (the pair supplies the row count the shard layout needs). The
/// serving layer provides factories that dial workers; see
/// [`crate::DatasetSpec::Remote`].
pub type ExecutorFactory =
    Arc<dyn Fn(&SnapshotPair) -> Result<Arc<dyn ShardExecutor>> + Send + Sync>;

/// The in-process backend: shards are zero-copy windows over the pair's
/// own `Arc`-backed columns, fanned across scoped worker threads. This is
/// literally the one-process instance of the trait — the statistics come
/// from the same slicing and the same `charles_numerics::ols` calls the
/// pre-trait `SearchContext` fan-out performed, so a session over a
/// `LocalExecutor` answers byte-identically to an unsharded one (pinned by
/// `tests/shard_equivalence.rs`).
pub struct LocalExecutor {
    pair: SnapshotPair,
    ranges: Vec<RowRange>,
    /// Source-side views by attribute name, extracted on first use and
    /// shared by every shard (slicing is zero-copy).
    views: Mutex<HashMap<String, NumericView>>,
    /// Aligned target-side views by attribute name.
    aligned: Mutex<HashMap<String, NumericView>>,
}

impl LocalExecutor {
    /// An executor over `pair` split into `shards` block-aligned row
    /// ranges (clamped to ≥ 1).
    pub fn new(pair: SnapshotPair, shards: usize) -> Self {
        let ranges = RowRange::split_aligned(pair.len(), shards.max(1), GRAM_BLOCK_ROWS);
        LocalExecutor::with_ranges(pair, ranges)
    }

    /// An executor over an explicit layout. Every non-final boundary must
    /// sit on the canonical Gram block grid for the merge contract to
    /// hold; [`RowRange::split_aligned`] produces such layouts.
    pub fn with_ranges(pair: SnapshotPair, ranges: Vec<RowRange>) -> Self {
        LocalExecutor {
            pair,
            ranges,
            views: Mutex::new(HashMap::new()),
            aligned: Mutex::new(HashMap::new()),
        }
    }

    /// The non-empty ranges, in order — the units of fan-out.
    fn active(&self) -> Vec<RowRange> {
        self.ranges
            .iter()
            .copied()
            .filter(|r| !r.is_empty())
            .collect()
    }

    /// Shared source-side view of one attribute, extracted on first use.
    /// `pub(crate)` so a [`crate::Session`] that opened this executor can
    /// read through the *same* cache — a column must never be
    /// materialized once for the session plane and again for shard
    /// statistics.
    pub(crate) fn source_view(&self, attr: &str) -> Result<NumericView> {
        crate::search::memoized(&self.views, attr.to_string(), || {
            Ok(self.pair.source().numeric_view(attr)?)
        })
    }

    /// Aligned target-side view of one attribute, extracted on first use
    /// (shared with the owning session like [`LocalExecutor::source_view`]).
    pub(crate) fn aligned_view(&self, attr: &str) -> Result<NumericView> {
        crate::search::memoized(&self.aligned, attr.to_string(), || {
            Ok(self.pair.target_numeric_view(attr)?)
        })
    }

    /// The fit's design columns for one subset: the source-side view of
    /// each transformation attribute (the target's own source values are
    /// one of them whenever the subset names the target).
    fn design_columns(&self, tran_attrs: &[String]) -> Result<Vec<NumericView>> {
        tran_attrs.iter().map(|a| self.source_view(a)).collect()
    }
}

impl fmt::Debug for LocalExecutor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LocalExecutor")
            .field("rows", &self.pair.len())
            .field("shards", &self.ranges.len())
            .finish_non_exhaustive()
    }
}

impl ShardExecutor for LocalExecutor {
    fn ranges(&self) -> Vec<RowRange> {
        self.ranges.clone()
    }

    fn signal_slices(&self, target: &str) -> Result<Vec<SignalSlice>> {
        let y_target = self.aligned_view(target)?;
        let y_source = self.source_view(target)?;
        Ok(fan_out(&self.active(), |&range| {
            let (delta, rel_delta) =
                crate::search::change_signals(&y_target.slice(range), &y_source.slice(range));
            SignalSlice {
                delta: delta.to_vec(),
                rel_delta: rel_delta.to_vec(),
            }
        }))
    }

    fn column_moments(&self, target: &str, tran_attrs: &[String]) -> Result<Vec<ColumnMoments>> {
        let y_target = self.aligned_view(target)?;
        let cols = self.design_columns(tran_attrs)?;
        fan_out(&self.active(), |&range| {
            let sliced: Vec<NumericView> = cols.iter().map(|c| c.slice(range)).collect();
            let slices: Vec<&[f64]> = sliced.iter().map(|v| v.as_slice()).collect();
            charles_numerics::ols::column_moments(&slices, &y_target.slice(range))
        })
        .into_iter()
        .map(|m| m.map_err(CharlesError::from))
        .collect()
    }

    fn gram_partials(
        &self,
        target: &str,
        tran_attrs: &[String],
        scales: &[f64],
    ) -> Result<Vec<GramPartial>> {
        let y_target = self.aligned_view(target)?;
        let cols = self.design_columns(tran_attrs)?;
        Ok(fan_out(&self.active(), |&range| {
            let sliced: Vec<NumericView> = cols.iter().map(|c| c.slice(range)).collect();
            let slices: Vec<&[f64]> = sliced.iter().map(|v| v.as_slice()).collect();
            charles_numerics::ols::gram_partial(
                &slices,
                &y_target.slice(range),
                scales,
                range.start / GRAM_BLOCK_ROWS,
            )
        }))
    }
}

/// Run `f` over `items` on at most `available_parallelism` scoped worker
/// threads (work distributed by atomic index), returning results in item
/// order. Degrades to a plain sequential map for 0–1 items or 1 core —
/// shard fan-outs must never spawn per-item threads (a 4096-shard layout
/// is a legal degenerate case, not a request for 4096 threads).
// lint:allow(no-panic-in-request-path: indices are fetch_add claims checked against n; claimed slots are always filled; worker panics propagate out of thread::scope)
pub(crate) fn fan_out<T: Sync, U: Send, F: Fn(&T) -> U + Sync>(items: &[T], f: F) -> Vec<U> {
    let n = items.len();
    let workers = std::thread::available_parallelism()
        .map_or(1, |p| p.get())
        .min(n);
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(&items[i]);
                *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("fan-out slot filled")
        })
        .collect()
}

/// Validate that an executor's layout is a block-aligned partition of
/// `[0, rows)`: contiguous, covering, every boundary (except the final
/// row count) on the canonical grid. A remote executor built with a stale
/// row count must fail loudly here, not merge misaligned statistics.
pub(crate) fn validate_layout(ranges: &[RowRange], rows: usize) -> Result<()> {
    let mut cursor = 0usize;
    for (i, range) in ranges.iter().enumerate() {
        if range.start != cursor {
            return Err(CharlesError::Distributed(format!(
                "shard {i} starts at row {} but the previous shard ended at {cursor}",
                range.start
            )));
        }
        if !range.is_empty() && !range.start.is_multiple_of(GRAM_BLOCK_ROWS) {
            return Err(CharlesError::Distributed(format!(
                "shard {i} starts at row {}, off the {GRAM_BLOCK_ROWS}-row block grid",
                range.start
            )));
        }
        cursor = range.end;
    }
    if cursor != rows {
        return Err(CharlesError::Distributed(format!(
            "shard layout covers {cursor} rows but the pair has {rows}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_numerics::ols::{fit_from_parts, fit_ols_cols};
    use charles_relation::TableBuilder;

    fn pair(n: usize) -> SnapshotPair {
        let names: Vec<String> = (0..n).map(|i| format!("e{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let bonus: Vec<f64> = (0..n)
            .map(|i| 1_000.0 + (i as f64 * 311.0) % 9_000.0)
            .collect();
        let source = TableBuilder::new("v1")
            .str_col("name", &name_refs)
            .float_col("bonus", &bonus)
            .key("name")
            .build()
            .unwrap();
        let evolved: Vec<f64> = bonus.iter().map(|b| 1.07 * b + 250.0).collect();
        let target = TableBuilder::new("v2")
            .str_col("name", &name_refs)
            .float_col("bonus", &evolved)
            .key("name")
            .build()
            .unwrap();
        SnapshotPair::align(source, target).unwrap()
    }

    #[test]
    fn local_executor_statistics_merge_to_the_central_fit() {
        let pair = pair(300);
        let y_target = pair.target_numeric_view("bonus").unwrap();
        let y_source = pair.source().numeric_view("bonus").unwrap();
        let cols: Vec<&[f64]> = vec![y_source.as_slice()];
        let central = fit_ols_cols(&cols, &y_target).unwrap();
        let tran = vec!["bonus".to_string()];

        for shards in [1usize, 2, 3, 7] {
            let exec = LocalExecutor::new(pair.clone(), shards);
            assert_eq!(exec.ranges().len(), shards);
            let moments = exec.column_moments("bonus", &tran).unwrap();
            let merged = ColumnMoments::merge(&moments);
            assert_eq!(merged.rows, 300);
            let scales = merged.validated_scales(1).unwrap();
            let parts = exec.gram_partials("bonus", &tran, &scales).unwrap();
            let fit = fit_from_parts(parts, &scales, &cols, &y_target).unwrap();
            assert_eq!(fit.intercept.to_bits(), central.intercept.to_bits());
            for (a, b) in fit.residuals.iter().zip(central.residuals.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "shards={shards}");
            }
        }
    }

    #[test]
    fn local_executor_signal_slices_concatenate_to_full_signals() {
        let pair = pair(300);
        let y_target = pair.target_numeric_view("bonus").unwrap();
        let y_source = pair.source().numeric_view("bonus").unwrap();
        let (delta, rel_delta) = crate::search::change_signals(&y_target, &y_source);
        for shards in [1usize, 2, 5, 4096] {
            let exec = LocalExecutor::new(pair.clone(), shards);
            let slices = exec.signal_slices("bonus").unwrap();
            let cat_delta: Vec<f64> = slices.iter().flat_map(|s| s.delta.clone()).collect();
            let cat_rel: Vec<f64> = slices.iter().flat_map(|s| s.rel_delta.clone()).collect();
            assert_eq!(cat_delta.len(), 300);
            for (a, b) in cat_delta.iter().zip(delta.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in cat_rel.iter().zip(rel_delta.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn layout_validation_rejects_gaps_and_misalignment() {
        assert!(validate_layout(&RowRange::split_aligned(300, 3, 128), 300).is_ok());
        assert!(validate_layout(&[], 0).is_ok());
        // Wrong total row count.
        assert!(validate_layout(&RowRange::split_aligned(256, 2, 128), 300).is_err());
        // A gap between shards.
        assert!(validate_layout(&[RowRange::new(0, 128), RowRange::new(256, 300)], 300).is_err());
        // Off-grid interior boundary.
        assert!(validate_layout(&[RowRange::new(0, 100), RowRange::new(100, 300)], 300).is_err());
    }
}
