//! Natural-language rendering of change summaries.
//!
//! The paper motivates ChARLES with prose explanations ("employees with
//! higher level of education should be rewarded more"); this module turns
//! a recovered summary back into that register: one sentence per
//! conditional transformation, with percentage phrasing for
//! near-1 multiplicative coefficients and currency-style flat amounts.

use crate::condition::Descriptor;
use crate::ct::ConditionalTransformation;
use crate::summary::ChangeSummary;
use crate::transform::Transformation;

/// Render a number like a human would write it in a policy memo.
fn amount(v: f64) -> String {
    let a = v.abs();
    if a >= 1_000.0 && (a / 50.0).fract() == 0.0 {
        // Thousands separator for round dollar-like amounts.
        let int = a as i64;
        let s = int.to_string();
        let mut grouped = String::new();
        for (i, c) in s.chars().enumerate() {
            if i > 0 && (s.len() - i).is_multiple_of(3) {
                grouped.push(',');
            }
            grouped.push(c);
        }
        format!("{}{grouped}", if v < 0.0 { "-" } else { "" })
    } else if a.fract() == 0.0 && a < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn percent(p: f64) -> String {
    let pct = p * 100.0;
    if (pct.round() - pct).abs() < 1e-9 {
        format!("{}%", pct.round() as i64)
    } else {
        format!("{pct:.1}%")
    }
}

/// One descriptor in prose.
fn describe_descriptor(d: &Descriptor) -> String {
    match d {
        Descriptor::Equals { attr, value } => format!("{attr} is {value}"),
        Descriptor::NotEquals { attr, value } => format!("{attr} is not {value}"),
        Descriptor::OneOf { attr, values } => {
            let list: Vec<String> = values.iter().map(|v| v.to_string()).collect();
            format!("{attr} is one of {}", list.join(", "))
        }
        Descriptor::LessThan { attr, threshold } => {
            format!("{attr} is below {}", amount(*threshold))
        }
        Descriptor::AtLeast { attr, threshold } => {
            format!("{attr} is at least {}", amount(*threshold))
        }
        Descriptor::InRange { attr, lo, hi } => {
            format!("{attr} is between {} and {}", amount(*lo), amount(*hi))
        }
    }
}

/// The transformation in prose.
fn describe_transformation(t: &Transformation, target: &str) -> String {
    match t {
        Transformation::Identity => format!("{target} did not change"),
        Transformation::Linear {
            terms, intercept, ..
        } => {
            // Special case the paper's canonical shape: scale on the
            // target's own previous value, optionally plus a flat amount.
            if let [term] = terms.as_slice() {
                if term.attr == target {
                    let scale = term.coefficient;
                    let pct_change = scale - 1.0;
                    let flat = *intercept;
                    let mut s = if pct_change.abs() < 1e-12 {
                        format!("{target} stayed at its previous value")
                    } else if pct_change > 0.0 {
                        format!(
                            "{target} increased by {} of its previous value",
                            percent(pct_change)
                        )
                    } else {
                        format!(
                            "{target} decreased by {} of its previous value",
                            percent(-pct_change)
                        )
                    };
                    if flat > 0.0 {
                        s.push_str(&format!(", plus a flat {}", amount(flat)));
                    } else if flat < 0.0 {
                        s.push_str(&format!(", minus a flat {}", amount(-flat)));
                    }
                    return s;
                }
            }
            // General linear form.
            let mut parts: Vec<String> = terms
                .iter()
                .map(|t| format!("{} × previous {}", t.coefficient, t.attr))
                .collect();
            if *intercept != 0.0 || parts.is_empty() {
                parts.push(amount(*intercept));
            }
            format!("{target} became {}", parts.join(" + "))
        }
    }
}

/// One conditional transformation as a sentence.
pub fn explain_ct(ct: &ConditionalTransformation, target: &str) -> String {
    let coverage = format!("{:.0}% of rows", ct.coverage * 100.0);
    let action = describe_transformation(&ct.transformation, target);
    if ct.condition.is_universal() {
        return format!("For all rows ({coverage}): {action}.");
    }
    let clauses: Vec<String> = ct
        .condition
        .descriptors()
        .iter()
        .map(describe_descriptor)
        .collect();
    format!("Where {} ({coverage}): {action}.", clauses.join(" and "))
}

/// The whole summary as a short plain-language paragraph, one sentence per
/// rule, largest partitions first.
pub fn explain_summary(summary: &ChangeSummary) -> String {
    let mut cts: Vec<&ConditionalTransformation> = summary.cts.iter().collect();
    cts.sort_by(|a, b| b.coverage.total_cmp(&a.coverage));
    let mut out = format!(
        "How {:?} changed ({} rule{}):\n",
        summary.target_attr,
        cts.len(),
        if cts.len() == 1 { "" } else { "s" }
    );
    for ct in cts {
        out.push_str("  - ");
        out.push_str(&explain_ct(ct, &summary.target_attr));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Condition;
    use crate::summary::{InterpretabilityBreakdown, Scores};
    use crate::transform::Term;
    use charles_relation::Value;

    fn r1_ct() -> ConditionalTransformation {
        ConditionalTransformation::new(
            Condition::all().with(Descriptor::Equals {
                attr: "edu".into(),
                value: Value::str("PhD"),
            }),
            Transformation::linear(
                "bonus",
                vec![Term {
                    attr: "bonus".into(),
                    coefficient: 1.05,
                }],
                1000.0,
            ),
            vec![0, 1, 2],
            9,
            0.0,
        )
    }

    #[test]
    fn r1_reads_like_the_paper() {
        let text = explain_ct(&r1_ct(), "bonus");
        assert_eq!(
            text,
            "Where edu is PhD (33% of rows): bonus increased by 5% of its \
             previous value, plus a flat 1,000."
        );
    }

    #[test]
    fn identity_and_decrease_phrasings() {
        let no_change = ConditionalTransformation::new(
            Condition::all(),
            Transformation::Identity,
            vec![0],
            4,
            0.0,
        );
        assert_eq!(
            explain_ct(&no_change, "bonus"),
            "For all rows (25% of rows): bonus did not change."
        );
        let cut = ConditionalTransformation::new(
            Condition::all().with(Descriptor::Equals {
                attr: "industry".into(),
                value: Value::str("Energy"),
            }),
            Transformation::linear(
                "net_worth",
                vec![Term {
                    attr: "net_worth".into(),
                    coefficient: 0.92,
                }],
                0.0,
            ),
            vec![0],
            10,
            0.0,
        );
        let text = explain_ct(&cut, "net_worth");
        assert!(text.contains("decreased by 8%"), "{text}");
    }

    #[test]
    fn general_linear_form_falls_back() {
        let ct = ConditionalTransformation::new(
            Condition::all().with(Descriptor::AtLeast {
                attr: "grade".into(),
                threshold: 24.0,
            }),
            Transformation::linear(
                "base_salary",
                vec![Term {
                    attr: "overtime_pay".into(),
                    coefficient: 0.5,
                }],
                200.0,
            ),
            vec![0],
            2,
            0.0,
        );
        let text = explain_ct(&ct, "base_salary");
        assert!(text.contains("grade is at least 24"), "{text}");
        assert!(text.contains("0.5 × previous overtime_pay"), "{text}");
    }

    #[test]
    fn summary_paragraph_orders_by_coverage() {
        let small = ConditionalTransformation::new(
            Condition::all().with(Descriptor::Equals {
                attr: "edu".into(),
                value: Value::str("BS"),
            }),
            Transformation::Identity,
            vec![3],
            9,
            0.0,
        );
        let summary = ChangeSummary {
            cts: vec![small, r1_ct()],
            target_attr: "bonus".into(),
            condition_attrs: vec!["edu".into()],
            transform_attrs: vec!["bonus".into()],
            scores: Scores::default(),
            breakdown: InterpretabilityBreakdown::default(),
            total_rows: 9,
        };
        let text = explain_summary(&summary);
        let phd_pos = text.find("PhD").unwrap();
        let bs_pos = text.find("BS").unwrap();
        assert!(
            phd_pos < bs_pos,
            "larger partition should come first:\n{text}"
        );
        assert!(
            text.starts_with("How \"bonus\" changed (2 rules):"),
            "{text}"
        );
    }

    #[test]
    fn amount_formatting() {
        assert_eq!(amount(1000.0), "1,000");
        assert_eq!(amount(-1500.0), "-1,500");
        assert_eq!(amount(250.0), "250");
        assert_eq!(amount(0.5), "0.5");
        assert_eq!(amount(1234567.0 - 0.0), "1234567"); // not a round 50-multiple…
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(percent(0.05), "5%");
        assert_eq!(percent(0.035), "3.5%");
        assert_eq!(percent((-0.08_f64).abs()), "8%");
    }
}
