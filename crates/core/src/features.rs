//! Nonlinear feature augmentation — the extension the paper's Limitations
//! section sketches: *"While ChARLES relies on linear models to capture
//! change trends, this can be extended by augmenting the data with
//! nonlinear features."*
//!
//! [`augment`] materializes derived numeric columns (logs, squares, square
//! roots, pairwise products and ratios) on both snapshots of a pair, so
//! the ordinary linear search can express relations like
//! `new_pay = 0.5 × old_pay + 2 × old_pay/old_hours`. Derived columns are
//! named `log(x)`, `x²`, `√x`, `x·y`, `x/y`; the interpretability cost of
//! using them is captured automatically (they add variables, and their
//! constants still go through normality scoring).

use crate::error::Result;
use charles_relation::{Column, Field, Schema, SnapshotPair, Table};

/// Which derived features to materialize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureSet {
    /// `log(x)` for strictly positive columns.
    pub logs: bool,
    /// `x²`.
    pub squares: bool,
    /// `√x` for non-negative columns.
    pub roots: bool,
    /// `x·y` for distinct column pairs.
    pub products: bool,
    /// `x/y` for distinct pairs with denominators bounded away from zero.
    pub ratios: bool,
}

impl Default for FeatureSet {
    fn default() -> Self {
        FeatureSet {
            logs: true,
            squares: true,
            roots: false,
            products: false,
            ratios: true,
        }
    }
}

impl FeatureSet {
    /// Everything on (largest search space).
    pub fn full() -> Self {
        FeatureSet {
            logs: true,
            squares: true,
            roots: true,
            products: true,
            ratios: true,
        }
    }
}

fn push_column(fields: &mut Vec<Field>, columns: &mut Vec<Column>, name: String, values: Vec<f64>) {
    fields.push(Field::new(name, charles_relation::DataType::Float64));
    columns.push(Column::from_f64(values));
}

/// Augment one table with derived features of `base_attrs`, skipping any
/// derivation that would produce non-finite values. Returns the augmented
/// table and the derived column names (in both tables' order).
pub fn augment_table(
    table: &Table,
    base_attrs: &[String],
    features: FeatureSet,
) -> Result<(Table, Vec<String>)> {
    let mut fields: Vec<Field> = table.schema().fields().to_vec();
    let mut columns: Vec<Column> = table.columns().to_vec();
    let mut derived = Vec::new();

    let mut base: Vec<(String, Vec<f64>)> = Vec::with_capacity(base_attrs.len());
    for attr in base_attrs {
        base.push((attr.clone(), table.numeric(attr)?));
    }

    let mut add = |name: String, values: Vec<f64>| {
        if values.iter().all(|v| v.is_finite()) && !table.schema().contains(&name) {
            derived.push(name.clone());
            push_column(&mut fields, &mut columns, name, values);
        }
    };

    for (name, vals) in &base {
        if features.logs && vals.iter().all(|&v| v > 0.0) {
            add(
                format!("log({name})"),
                vals.iter().map(|&v| v.ln()).collect(),
            );
        }
        if features.squares {
            add(format!("{name}²"), vals.iter().map(|&v| v * v).collect());
        }
        if features.roots && vals.iter().all(|&v| v >= 0.0) {
            add(format!("√{name}"), vals.iter().map(|&v| v.sqrt()).collect());
        }
    }
    for (i, (name_a, a)) in base.iter().enumerate() {
        for (name_b, b) in base.iter().skip(i + 1) {
            if features.products {
                add(
                    format!("{name_a}·{name_b}"),
                    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).collect(),
                );
            }
            if features.ratios {
                if b.iter().all(|&v| v.abs() > 1e-9) {
                    add(
                        format!("{name_a}/{name_b}"),
                        a.iter().zip(b.iter()).map(|(&x, &y)| x / y).collect(),
                    );
                }
                if a.iter().all(|&v| v.abs() > 1e-9) {
                    add(
                        format!("{name_b}/{name_a}"),
                        b.iter().zip(a.iter()).map(|(&x, &y)| x / y).collect(),
                    );
                }
            }
        }
    }

    let schema = Schema::new(fields)?;
    let mut out = Table::new(schema, columns)?.with_name(table.name().to_string());
    if let Some(key) = table.key_name() {
        out = out.with_key(key)?;
    }
    Ok((out, derived))
}

/// Augment both snapshots of a pair identically (derived columns are
/// computed per-snapshot from that snapshot's own values, preserving the
/// "transformations read source values" semantics). Returns the augmented
/// pair and the derived attribute names.
pub fn augment(
    pair: &SnapshotPair,
    base_attrs: &[String],
    features: FeatureSet,
) -> Result<(SnapshotPair, Vec<String>)> {
    let (source, derived) = augment_table(pair.source(), base_attrs, features)?;
    let (target, derived_t) = augment_table(pair.target(), base_attrs, features)?;
    debug_assert_eq!(derived, derived_t);
    let pair = match pair.key_attr() {
        Some(key) => SnapshotPair::align_on(source, target, key)?,
        None => SnapshotPair::align(source, target)?,
    };
    Ok((pair, derived))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Charles;
    use charles_relation::TableBuilder;

    fn base_table() -> Table {
        TableBuilder::new("t")
            .str_col("name", &["a", "b", "c", "d"])
            .float_col("pay", &[100.0, 200.0, 400.0, 800.0])
            .float_col("hours", &[10.0, 20.0, 25.0, 40.0])
            .key("name")
            .build()
            .unwrap()
    }

    #[test]
    fn derives_expected_columns() {
        let (aug, derived) = augment_table(
            &base_table(),
            &["pay".into(), "hours".into()],
            FeatureSet::full(),
        )
        .unwrap();
        for name in [
            "log(pay)",
            "pay²",
            "√pay",
            "pay·hours",
            "pay/hours",
            "hours/pay",
        ] {
            assert!(derived.contains(&name.to_string()), "missing {name}");
            assert!(aug.schema().contains(name));
        }
        assert_eq!(aug.value(0, "pay/hours").unwrap().as_f64(), Some(10.0));
        assert_eq!(aug.value(1, "pay²").unwrap().as_f64(), Some(40_000.0));
        // Key declaration survives augmentation.
        assert_eq!(aug.key_name(), Some("name"));
    }

    #[test]
    fn log_skipped_for_non_positive() {
        let t = TableBuilder::new("t")
            .float_col("x", &[1.0, -2.0])
            .build()
            .unwrap();
        let (aug, derived) = augment_table(&t, &["x".into()], FeatureSet::full()).unwrap();
        assert!(!derived.iter().any(|d| d.starts_with("log")));
        assert!(!derived.iter().any(|d| d.starts_with('√')));
        assert!(aug.schema().contains("x²"));
    }

    #[test]
    fn ratio_skipped_for_near_zero_denominators() {
        let t = TableBuilder::new("t")
            .float_col("a", &[1.0, 2.0])
            .float_col("b", &[0.0, 5.0])
            .build()
            .unwrap();
        let (_, derived) = augment_table(
            &t,
            &["a".into(), "b".into()],
            FeatureSet {
                logs: false,
                squares: false,
                roots: false,
                products: false,
                ratios: true,
            },
        )
        .unwrap();
        assert!(derived.contains(&"b/a".to_string()));
        assert!(!derived.contains(&"a/b".to_string()));
    }

    #[test]
    fn engine_recovers_nonlinear_policy_via_augmentation() {
        // Latent policy: new_pay = old_pay + 5 × old_pay/old_hours — not
        // linear in {pay, hours}, linear after ratio augmentation.
        let source = base_table();
        let rate: Vec<f64> = vec![10.0, 10.0, 16.0, 20.0];
        let new_pay: Vec<f64> = source
            .numeric("pay")
            .unwrap()
            .iter()
            .zip(rate.iter())
            .map(|(&p, &r)| p + 5.0 * r)
            .collect();
        let target = TableBuilder::new("t2")
            .str_col("name", &["a", "b", "c", "d"])
            .float_col("pay", &new_pay)
            .float_col("hours", &[10.0, 20.0, 25.0, 40.0])
            .key("name")
            .build()
            .unwrap();
        let pair = charles_relation::SnapshotPair::align(source, target).unwrap();
        let (aug_pair, derived) = augment(
            &pair,
            &["pay".into(), "hours".into()],
            FeatureSet::default(),
        )
        .unwrap();
        assert!(derived.contains(&"pay/hours".to_string()));
        let result = Charles::from_pair(aug_pair, "pay")
            .unwrap()
            .with_transform_attrs(["pay", "pay/hours"])
            .run()
            .unwrap();
        let top = result.top().unwrap();
        assert!(
            top.scores.accuracy > 0.999,
            "accuracy {} — {top}",
            top.scores.accuracy
        );
        assert!(top.to_string().contains("pay/hours"), "{top}");
    }
}
