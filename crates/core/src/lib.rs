//! # charles-core
//!
//! The reference implementation of **ChARLES** — *Change-Aware Recovery of
//! Latent Evolution Semantics* (He, Meliou, Fariha; SIGMOD 2025 demo,
//! [arXiv:2409.18386](https://arxiv.org/abs/2409.18386)).
//!
//! Given two snapshots of a relational table over the same entities and a
//! numerical target attribute, ChARLES produces a **ranked list of change
//! summaries**: sets of *conditional transformations* such as
//!
//! ```text
//! edu = PhD → new_bonus = 1.05 × old_bonus + 1000
//! ```
//!
//! scored by `α·Accuracy + (1−α)·Interpretability`.
//!
//! ## Pipeline (paper §2, Figure 3)
//!
//! 1. **Setup assistant** ([`assistant`]) shortlists condition and
//!    transformation attributes by correlation with the observed change.
//! 2. **Enumeration** ([`search`]) walks all attribute subsets within the
//!    `c`/`t` budgets and a range of partition counts `k`.
//! 3. **Partition discovery** ([`partition`]) fits a global regression,
//!    clusters rows by distance from the regression line (exact 1-D
//!    k-means), and *induces* expressible conditions over the condition
//!    attributes with a CART-style tree — resolving the paper's cyclic
//!    dependency between clustering and pattern sharing.
//! 4. **Transformation discovery** ([`search`], [`snap`]) refits a linear
//!    model per partition and snaps constants to *normal* (round) values
//!    when accuracy permits.
//! 5. **Scoring & ranking** ([`score`]) implements the paper's accuracy
//!    measure (inverse normalized L1) and the four interpretability
//!    desiderata (size, simplicity, coverage, normality).
//!
//! ## Quick start
//!
//! ```
//! use charles_core::{Charles, CharlesConfig};
//! use charles_relation::{TableBuilder, Expr, Predicate, UpdateStatement,
//!                        apply_updates, ApplyMode};
//!
//! // A tiny salary table...
//! let v2016 = TableBuilder::new("2016")
//!     .str_col("name", &["Anne", "Bob", "Cathy", "Dan"])
//!     .str_col("edu", &["PhD", "PhD", "BS", "BS"])
//!     .float_col("bonus", &[23_000.0, 25_000.0, 11_000.0, 9_000.0])
//!     .key("name")
//!     .build()
//!     .unwrap();
//! // ...evolved by a latent policy: PhDs get 5% + $1000.
//! let policy = [UpdateStatement::new(
//!     "bonus",
//!     Expr::affine("bonus", 1.05, 1000.0),
//!     Predicate::eq("edu", "PhD"),
//! )];
//! let v2017 = apply_updates(&v2016, &policy, ApplyMode::FirstMatch).unwrap().table;
//!
//! // Recover the policy from the two snapshots alone.
//! let result = Charles::new(v2016, v2017, "bonus").unwrap().run().unwrap();
//! let top = result.top().unwrap();
//! assert!(top.scores.accuracy > 0.999);
//! assert!(top.to_string().contains("1.05"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod assistant;
pub mod combi;
pub mod condition;
pub mod config;
pub mod ct;
pub mod engine;
pub mod error;
pub mod executor;
pub mod explain;
pub mod features;
pub mod manager;
pub mod partition;
pub mod recovery;
pub mod report;
pub mod score;
pub mod search;
pub mod session;
pub mod snap;
pub mod summary;
pub mod transform;
pub mod tree;
pub mod viz;

pub use assistant::{analyze, AttributeScore, SetupReport};
pub use condition::{Condition, Descriptor};
pub use config::{CharlesConfig, PartitionMethod};
pub use ct::ConditionalTransformation;
pub use engine::{Charles, RunResult};
pub use error::{CharlesError, QueryError, Result};
pub use executor::{ExecutorFactory, LocalExecutor, ShardExecutor, SignalSlice};
pub use explain::{explain_ct, explain_summary};
pub use features::{augment, augment_table, FeatureSet};
pub use manager::{DatasetSpec, DatasetStats, ManagerConfig, SessionManager};
pub use recovery::{
    adjusted_rand_index, evaluate_recovery, summary_labels, truth_labels, RecoveryReport, TruthRule,
};
pub use score::ScoringContext;
pub use search::{
    evaluate_candidate, evaluate_candidate_naive, generate_candidates, run_search, Candidate,
    PlaneCaches, SearchContext, SearchStats,
};
pub use session::{Query, QueryResult, Session, SessionStats};
pub use summary::{ChangeSummary, InterpretabilityBreakdown, Scores};
pub use transform::{Term, Transformation};
pub use tree::{LinearModelTree, TreeNode};
pub use viz::{PartitionViz, VizRect};
