//! The multi-tenant entry point: a registry of named datasets behind
//! lazily-opened, budget-evicted [`Session`]s.
//!
//! A [`SessionManager`] turns the session plane from "one in-process
//! caller holding one [`Session`]" into a *served resource*: datasets are
//! **registered** under names (as CSV paths, inline CSV text, an aligned
//! pair, or a provider closure), **opened** into `Arc<Session>`s on first
//! use, and **evicted** least-recently-used when the configured session or
//! memory budget is exceeded. Every open session keeps its whole warm
//! plane — extracted columns, global fits, labelings, evaluated candidates
//! — so repeated queries against a resident dataset hit PR 2's warm path,
//! while cold datasets cost one open.
//!
//! All methods take `&self`; a manager is shared behind an `Arc` by the
//! serving front end (`charles-server`) and queried from many connection
//! threads concurrently.
//!
//! ```
//! use charles_core::{ManagerConfig, Query, SessionManager};
//! use charles_relation::{apply_updates, ApplyMode, Expr, Predicate,
//!                        SnapshotPair, TableBuilder, UpdateStatement};
//!
//! let v2016 = TableBuilder::new("2016")
//!     .str_col("name", &["Anne", "Bob", "Cathy", "Dan"])
//!     .str_col("edu", &["PhD", "PhD", "BS", "BS"])
//!     .float_col("bonus", &[23_000.0, 25_000.0, 11_000.0, 9_000.0])
//!     .key("name")
//!     .build()
//!     .unwrap();
//! let policy = [UpdateStatement::new(
//!     "bonus",
//!     Expr::affine("bonus", 1.05, 1000.0),
//!     Predicate::eq("edu", "PhD"),
//! )];
//! let v2017 = apply_updates(&v2016, &policy, ApplyMode::FirstMatch).unwrap().table;
//!
//! let manager = SessionManager::new(ManagerConfig::default());
//! manager.register_pair("salaries", SnapshotPair::align(v2016, v2017).unwrap());
//! let session = manager.open_or_get("salaries").unwrap();
//! let result = session.run(&Query::new("bonus")).unwrap();
//! assert!(result.top().unwrap().scores.accuracy > 0.999);
//! assert_eq!(manager.list().len(), 1);
//! ```

use crate::config::CharlesConfig;
use crate::error::{CharlesError, Result};
use crate::executor::ExecutorFactory;
use crate::session::Session;
use charles_relation::{read_csv, read_csv_path, SnapshotPair, Table};
use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// How a registered dataset's snapshot pair is (re)materialized when its
/// session is opened — after registration and after every eviction.
///
/// Cheap specs (paths, closures) make eviction meaningful: dropping the
/// session frees the parsed columns and caches, and a later
/// [`SessionManager::open_or_get`] rebuilds them from the spec.
pub enum DatasetSpec {
    /// An already-aligned pair, kept resident in the spec itself. Eviction
    /// frees the session's extracted views and caches but not the tables —
    /// use a path- or provider-backed spec when the budget must bound raw
    /// data too.
    Pair(SnapshotPair),
    /// Two CSV files on disk, re-read and aligned on every open.
    CsvPair {
        /// Path of the earlier snapshot.
        source: PathBuf,
        /// Path of the later snapshot.
        target: PathBuf,
        /// Key attribute to align on (`None` = the tables' declared key,
        /// or positional alignment).
        key: Option<String>,
    },
    /// CSV documents held as text (the wire `LoadCsv` ingest path):
    /// eviction keeps only the text, re-parsing on the next open.
    CsvInline {
        /// CSV text of the earlier snapshot.
        source: String,
        /// CSV text of the later snapshot.
        target: String,
        /// Key attribute to align on (`None` = declared key/positional).
        key: Option<String>,
    },
    /// An arbitrary pair factory (synthetic workloads, other formats).
    Provider(Arc<dyn Fn() -> Result<SnapshotPair> + Send + Sync>),
    /// Any other spec, served **sharded**: the session opens with
    /// [`Session::open_sharded_with_config`], so every query fans its
    /// per-row work across `shards` row-range planes behind this one
    /// dataset name — with answers byte-identical to the unsharded spec
    /// (see [`Session::open_sharded`] for the contract). Evicting the
    /// dataset releases all shard planes at once (they live behind the one
    /// session).
    Sharded {
        /// The spec describing the data itself.
        inner: Box<DatasetSpec>,
        /// Number of row-range shards (clamped to ≥ 1; nested `Sharded`
        /// specs are flattened — the outermost count wins).
        shards: usize,
    },
    /// Any other spec, served **distributed**: the session opens with
    /// [`Session::open_distributed`], fetching per-shard statistics from
    /// remote workers through an executor the `connect` factory builds
    /// once the local pair is open (the serving layer's
    /// `charles_server::remote_dataset_spec` is the standard way to make
    /// one). The coordinator still materializes the pair locally from
    /// `inner` — clustering, induction, and scoring run on merged
    /// statistics here — and answers stay byte-identical to the unsharded
    /// spec by the same block-grid merge contract.
    Remote {
        /// The spec describing the data itself (the coordinator's copy).
        inner: Box<DatasetSpec>,
        /// Worker addresses, for stats and debugging.
        workers: Vec<String>,
        /// Row-range shards the executor opens with (`0` = one per
        /// worker) — recorded here so [`DatasetStats`] reports the same
        /// count the opened session's layout actually has.
        shards: usize,
        /// Builds the executor over those workers for an open pair.
        connect: ExecutorFactory,
    },
}

impl fmt::Debug for DatasetSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetSpec::Pair(pair) => f.debug_tuple("Pair").field(&pair.len()).finish(),
            DatasetSpec::CsvPair { source, target, .. } => f
                .debug_struct("CsvPair")
                .field("source", source)
                .field("target", target)
                .finish_non_exhaustive(),
            DatasetSpec::CsvInline { source, target, .. } => f
                .debug_struct("CsvInline")
                .field("source_len", &source.len())
                .field("target_len", &target.len())
                .finish_non_exhaustive(),
            DatasetSpec::Provider(_) => f.write_str("Provider(..)"),
            DatasetSpec::Sharded { inner, shards } => f
                .debug_struct("Sharded")
                .field("inner", inner)
                .field("shards", shards)
                .finish(),
            DatasetSpec::Remote { inner, workers, .. } => f
                .debug_struct("Remote")
                .field("inner", inner)
                .field("workers", workers)
                .finish_non_exhaustive(),
        }
    }
}

impl Clone for DatasetSpec {
    fn clone(&self) -> Self {
        match self {
            DatasetSpec::Pair(pair) => DatasetSpec::Pair(pair.clone()),
            DatasetSpec::CsvPair {
                source,
                target,
                key,
            } => DatasetSpec::CsvPair {
                source: source.clone(),
                target: target.clone(),
                key: key.clone(),
            },
            DatasetSpec::CsvInline {
                source,
                target,
                key,
            } => DatasetSpec::CsvInline {
                source: source.clone(),
                target: target.clone(),
                key: key.clone(),
            },
            DatasetSpec::Provider(provider) => DatasetSpec::Provider(Arc::clone(provider)),
            DatasetSpec::Sharded { inner, shards } => DatasetSpec::Sharded {
                inner: inner.clone(),
                shards: *shards,
            },
            DatasetSpec::Remote {
                inner,
                workers,
                shards,
                connect,
            } => DatasetSpec::Remote {
                inner: inner.clone(),
                workers: workers.clone(),
                shards: *shards,
                connect: Arc::clone(connect),
            },
        }
    }
}

impl DatasetSpec {
    /// Serve `inner` sharded across `shards` row ranges; see
    /// [`DatasetSpec::Sharded`].
    pub fn sharded(inner: DatasetSpec, shards: usize) -> DatasetSpec {
        DatasetSpec::Sharded {
            inner: Box::new(inner),
            shards: shards.max(1),
        }
    }

    /// Serve `inner` with per-shard statistics fetched from remote
    /// workers; see [`DatasetSpec::Remote`]. `shards = 0` means one
    /// shard per worker; `connect` must open its executor with the same
    /// count.
    pub fn remote(
        inner: DatasetSpec,
        workers: Vec<String>,
        shards: usize,
        connect: ExecutorFactory,
    ) -> Self {
        DatasetSpec::Remote {
            inner: Box::new(inner),
            workers,
            shards,
            connect,
        }
    }

    /// Materialize the aligned pair this spec describes.
    fn open_pair(&self) -> Result<SnapshotPair> {
        let align = |source: Table, target: Table, key: &Option<String>| match key {
            Some(key) => SnapshotPair::align_on(source, target, key),
            None => SnapshotPair::align(source, target),
        };
        match self {
            DatasetSpec::Pair(pair) => Ok(pair.clone()),
            DatasetSpec::CsvPair {
                source,
                target,
                key,
            } => Ok(align(read_csv_path(source)?, read_csv_path(target)?, key)?),
            DatasetSpec::CsvInline {
                source,
                target,
                key,
            } => Ok(align(
                read_csv(source.as_bytes())?,
                read_csv(target.as_bytes())?,
                key,
            )?),
            DatasetSpec::Provider(provider) => provider(),
            DatasetSpec::Sharded { inner, .. } => inner.open_pair(),
            DatasetSpec::Remote { inner, .. } => inner.open_pair(),
        }
    }

    /// The number of row-range shards this spec's sessions open with
    /// (1 = unsharded). Nested `Sharded` specs flatten to the outermost;
    /// a `Remote` spec reports its configured count (`0` = one per
    /// worker).
    pub fn shard_count(&self) -> usize {
        match self {
            DatasetSpec::Sharded { shards, .. } => (*shards).max(1),
            DatasetSpec::Remote {
                workers, shards, ..
            } => {
                if *shards == 0 {
                    workers.len().max(1)
                } else {
                    *shards
                }
            }
            _ => 1,
        }
    }

    /// Open a session over this spec's pair — sharded or remote-backed
    /// when the spec says so.
    fn open_session(&self, config: CharlesConfig) -> Result<Session> {
        if let DatasetSpec::Remote { inner, connect, .. } = self {
            let pair = inner.open_pair()?;
            let executor = connect(&pair)?;
            return Session::open_distributed_with_config(pair, executor, config);
        }
        let pair = self.open_pair()?;
        match self.shard_count() {
            1 => Session::open_with_config(pair, config),
            n => Session::open_sharded_with_config(pair, n, config),
        }
    }
}

/// Budgets bounding how much a [`SessionManager`] keeps resident.
///
/// Both budgets are *soft* in one deliberate way: the session being opened
/// or queried is never evicted to make room for itself, so a single
/// dataset larger than the byte budget still serves (with nothing else
/// resident). Eviction drops the registry's `Arc`; memory is actually
/// released when the last in-flight query holding the session finishes.
#[derive(Debug, Clone)]
pub struct ManagerConfig {
    /// Maximum resident (open) sessions; `0` = unlimited.
    pub max_sessions: usize,
    /// Maximum total [`Session::approx_plane_bytes`] across resident
    /// sessions; `0` = unlimited.
    pub max_resident_bytes: usize,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            max_sessions: 8,
            max_resident_bytes: 0,
        }
    }
}

impl ManagerConfig {
    /// Set the resident-session budget (`0` = unlimited).
    pub fn with_max_sessions(mut self, n: usize) -> Self {
        self.max_sessions = n;
        self
    }

    /// Set the resident-byte budget (`0` = unlimited).
    pub fn with_max_resident_bytes(mut self, bytes: usize) -> Self {
        self.max_resident_bytes = bytes;
        self
    }
}

/// One registered dataset's bookkeeping, as reported by
/// [`SessionManager::list`] / [`SessionManager::dataset_stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetStats {
    /// Registered name.
    pub name: String,
    /// Whether a session is currently open (resident).
    pub resident: bool,
    /// Times a session was opened (registration misses + re-opens after
    /// eviction).
    pub opens: usize,
    /// Times `open_or_get` found the session already resident.
    pub hits: usize,
    /// Times this dataset's session was evicted.
    pub evictions: usize,
    /// Approximate resident bytes of the open session's data plane
    /// (`0` when not resident; see [`Session::approx_plane_bytes`]).
    pub approx_bytes: usize,
    /// LRU position: how many `open_or_get` calls (across all datasets)
    /// had happened when this one was last used. Larger = more recent.
    pub last_used_tick: u64,
    /// Row-range shards this dataset's sessions open with (1 = unsharded;
    /// see [`DatasetSpec::Sharded`]).
    pub shards: usize,
    /// Whether this dataset's sessions seal their columns into compressed
    /// block encodings at open (per-dataset config; see
    /// [`CharlesConfig::seal_columns`]). Reported so operators can tell
    /// which residents pay decode-on-read for their byte footprint.
    pub sealed: bool,
}

struct DatasetEntry {
    spec: DatasetSpec,
    config: CharlesConfig,
    session: Option<Arc<Session>>,
    approx_bytes: usize,
    last_used_tick: u64,
    opens: usize,
    hits: usize,
    evictions: usize,
    /// Bumped on (re-)registration so an open racing a replacement never
    /// installs a session built from the old spec.
    generation: u64,
    /// Serializes cold opens of this dataset (and only this dataset) so
    /// concurrent first requests produce one open, without holding the
    /// registry lock across the slow CSV-read/align/`Session::open` work.
    open_latch: Arc<Mutex<()>>,
}

struct Registry {
    /// Name → entry, BTree-ordered so every iteration (listings, stats,
    /// budget math) is deterministic by name with no per-site sorting.
    datasets: BTreeMap<String, DatasetEntry>,
    /// Logical clock advanced on every `open_or_get`; drives LRU order.
    clock: u64,
    /// Source of per-registration generations.
    next_generation: u64,
}

/// A thread-safe registry of named datasets → lazily-opened
/// [`Session`]s with LRU eviction under a [`ManagerConfig`] budget.
///
/// This is the canonical multi-tenant entry point; [`crate::Charles`] and
/// a bare [`Session`] remain as thin facades for one-shot and
/// single-caller use. See the [module docs](self) for a tour.
pub struct SessionManager {
    config: ManagerConfig,
    session_config: CharlesConfig,
    inner: Mutex<Registry>,
}

impl SessionManager {
    /// A manager with the given budgets and default session configuration.
    pub fn new(config: ManagerConfig) -> Self {
        SessionManager {
            config,
            session_config: CharlesConfig::default(),
            inner: Mutex::new(Registry {
                datasets: BTreeMap::new(),
                clock: 0,
                next_generation: 0,
            }),
        }
    }

    /// Use `config` for sessions opened from now on (per-dataset overrides
    /// are possible via [`SessionManager::register_with_config`]).
    pub fn with_session_config(mut self, config: CharlesConfig) -> Self {
        self.session_config = config;
        self
    }

    /// The manager's budgets.
    pub fn config(&self) -> &ManagerConfig {
        &self.config
    }

    /// Register (or replace) a dataset under `name`. Replacing drops any
    /// open session of the previous registration. Returns `true` when the
    /// name was new.
    pub fn register(&self, name: impl Into<String>, spec: DatasetSpec) -> bool {
        self.register_with_config(name, spec, self.session_config.clone())
    }

    /// [`SessionManager::register`] with a per-dataset engine config.
    pub fn register_with_config(
        &self,
        name: impl Into<String>,
        spec: DatasetSpec,
        config: CharlesConfig,
    ) -> bool {
        self.install(name.into(), spec, config, None).is_none()
    }

    /// Insert (or replace) a registration, optionally with a pre-opened
    /// session, returning the displaced entry.
    fn install(
        &self,
        name: String,
        spec: DatasetSpec,
        config: CharlesConfig,
        session: Option<Arc<Session>>,
    ) -> Option<()> {
        let approx_bytes = session.as_ref().map_or(0, |s| s.approx_plane_bytes());
        let mut inner = self.lock_registry();
        inner.next_generation += 1;
        let generation = inner.next_generation;
        let (opens, last_used_tick) = if session.is_some() {
            inner.clock += 1;
            (1, inner.clock)
        } else {
            (0, 0)
        };
        let displaced = inner
            .datasets
            .insert(
                name.clone(),
                DatasetEntry {
                    spec,
                    config,
                    session,
                    approx_bytes,
                    last_used_tick,
                    opens,
                    hits: 0,
                    evictions: 0,
                    generation,
                    open_latch: Arc::new(Mutex::new(())),
                },
            )
            .map(|_| ());
        self.enforce_budget(&mut inner, &name);
        displaced
    }

    /// Register an already-aligned pair (kept resident in the spec).
    pub fn register_pair(&self, name: impl Into<String>, pair: SnapshotPair) -> bool {
        self.register(name, DatasetSpec::Pair(pair))
    }

    /// Register two CSV files to be read and aligned on open.
    pub fn register_csv(
        &self,
        name: impl Into<String>,
        source: impl Into<PathBuf>,
        target: impl Into<PathBuf>,
        key: Option<String>,
    ) -> bool {
        self.register(
            name,
            DatasetSpec::CsvPair {
                source: source.into(),
                target: target.into(),
                key,
            },
        )
    }

    /// Register CSV text (the serving layer's `LoadCsv` ingest). The pair
    /// is parsed and aligned exactly once — malformed documents fail here
    /// without registering — and the resulting session is installed
    /// already-open as the dataset's resident session.
    pub fn register_csv_inline(
        &self,
        name: impl Into<String>,
        source: impl Into<String>,
        target: impl Into<String>,
        key: Option<String>,
    ) -> Result<()> {
        let spec = DatasetSpec::CsvInline {
            source: source.into(),
            target: target.into(),
            key,
        };
        let config = self.session_config.clone();
        let session = Arc::new(spec.open_session(config.clone())?);
        self.install(name.into(), spec, config, Some(session));
        Ok(())
    }

    /// Remove a dataset entirely (spec and any open session). Returns
    /// `true` when it was registered.
    pub fn unregister(&self, name: &str) -> bool {
        self.lock_registry().datasets.remove(name).is_some()
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.lock_registry().datasets.contains_key(name)
    }

    /// The session for `name`, opening it if not resident, then enforcing
    /// the budgets by evicting least-recently-used *other* sessions.
    ///
    /// The slow cold-open work (CSV read, alignment, `Session::open`) runs
    /// *outside* the registry lock — one opener per dataset via the
    /// entry's latch — so a multi-second open of one tenant's dataset
    /// never stalls requests for resident tenants.
    ///
    /// The returned `Arc` stays valid even if the session is evicted while
    /// the caller still runs queries on it; eviction only drops the
    /// registry's reference.
    pub fn open_or_get(&self, name: &str) -> Result<Arc<Session>> {
        if let Some(session) = self.touch_resident(name)? {
            return Ok(session);
        }
        // Cold path: snapshot what the open needs, then release the
        // registry. The latch keeps concurrent first requests to one open.
        let (latch, spec, config, generation) = {
            let mut inner = self.lock_registry();
            let entry = inner
                .datasets
                .get_mut(name)
                .ok_or_else(|| CharlesError::UnknownDataset(name.to_string()))?;
            (
                Arc::clone(&entry.open_latch),
                entry.spec.clone(),
                entry.config.clone(),
                entry.generation,
            )
        };
        // Lock order (documented, lint-checked): a dataset's open latch
        // may be held while taking the registry lock (latch → registry);
        // the registry lock is NEVER held while taking a latch — the
        // snapshot block above releases it first. The latch guards unit
        // content, so poison recovery is trivially safe.
        let _opener = latch
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // A racing opener may have installed the session while we waited.
        if let Some(session) = self.touch_resident(name)? {
            return Ok(session);
        }
        let session = Arc::new(spec.open_session(config)?);
        let approx_bytes = session.approx_plane_bytes();

        // lint:allow(lock-discipline: latch → registry is the documented lock order; the registry lock is the leaf)
        let mut inner = self.lock_registry();
        inner.clock += 1;
        let tick = inner.clock;
        // Only install into the registration we opened for; if the
        // dataset was replaced or removed meanwhile, still serve what we
        // opened but don't cache it.
        let installed = match inner.datasets.get_mut(name) {
            Some(entry) if entry.generation == generation => {
                entry.opens += 1;
                entry.last_used_tick = tick;
                entry.approx_bytes = approx_bytes;
                entry.session = Some(Arc::clone(&session));
                true
            }
            _ => false,
        };
        if installed {
            self.enforce_budget(&mut inner, name);
        }
        Ok(session)
    }

    /// Mark a resident session used and return it, or `None` when not
    /// resident. When a byte budget is configured, the plane-size
    /// estimate is also refreshed — outside the registry lock, since it
    /// takes the session's own locks; with no byte budget (the default)
    /// the hot hit path is a single short registry critical section and
    /// the reported `approx_bytes` is the one captured at open.
    fn touch_resident(&self, name: &str) -> Result<Option<Arc<Session>>> {
        let session = {
            let mut inner = self.lock_registry();
            inner.clock += 1;
            let tick = inner.clock;
            let entry = inner
                .datasets
                .get_mut(name)
                .ok_or_else(|| CharlesError::UnknownDataset(name.to_string()))?;
            let Some(session) = &entry.session else {
                return Ok(None);
            };
            entry.hits += 1;
            entry.last_used_tick = tick;
            Arc::clone(session)
        };
        if self.config.max_resident_bytes == 0 {
            return Ok(Some(session));
        }
        // The lazily-extracted plane grows across queries; refresh the
        // byte estimate and re-check the budget with fresh numbers.
        let approx_bytes = session.approx_plane_bytes();
        let mut inner = self.lock_registry();
        let still_resident = match inner.datasets.get_mut(name) {
            Some(entry)
                if entry
                    .session
                    .as_ref()
                    .is_some_and(|s| Arc::ptr_eq(s, &session)) =>
            {
                entry.approx_bytes = approx_bytes;
                true
            }
            _ => false,
        };
        if still_resident {
            self.enforce_budget(&mut inner, name);
        }
        Ok(Some(session))
    }

    /// The open session for `name`, if resident — without bumping LRU
    /// order or hit counters. Observability endpoints use this so reading
    /// stats never perturbs eviction order.
    pub fn peek_session(&self, name: &str) -> Option<Arc<Session>> {
        self.lock_registry()
            .datasets
            .get(name)
            .and_then(|e| e.session.clone())
    }

    /// Drop `name`'s open session (keeping the registration). Returns
    /// `true` when a session was actually resident.
    pub fn evict(&self, name: &str) -> bool {
        let mut inner = self.lock_registry();
        match inner.datasets.get_mut(name) {
            Some(entry) if entry.session.is_some() => {
                entry.session = None;
                entry.approx_bytes = 0;
                entry.evictions += 1;
                true
            }
            _ => false,
        }
    }

    /// Per-dataset stats, sorted by name (stable for tests and the
    /// wire); the registry's BTree order *is* name order.
    pub fn list(&self) -> Vec<DatasetStats> {
        let inner = self.lock_registry();
        inner
            .datasets
            .iter()
            .map(|(name, e)| DatasetStats {
                name: name.clone(),
                resident: e.session.is_some(),
                opens: e.opens,
                hits: e.hits,
                evictions: e.evictions,
                approx_bytes: e.approx_bytes,
                last_used_tick: e.last_used_tick,
                shards: e.spec.shard_count(),
                sealed: e.config.seal_columns,
            })
            .collect()
    }

    /// Stats for one dataset.
    pub fn dataset_stats(&self, name: &str) -> Result<DatasetStats> {
        self.list()
            .into_iter()
            .find(|d| d.name == name)
            .ok_or_else(|| CharlesError::UnknownDataset(name.to_string()))
    }

    /// Number of resident sessions.
    pub fn resident_sessions(&self) -> usize {
        self.lock_registry()
            .datasets
            .values()
            .filter(|e| e.session.is_some())
            .count()
    }

    /// Total approximate resident bytes across open sessions.
    pub fn resident_bytes(&self) -> usize {
        self.lock_registry()
            .datasets
            .values()
            .map(|e| e.approx_bytes)
            .sum()
    }

    /// Evict least-recently-used sessions (never `just_used`) until both
    /// budgets hold.
    fn enforce_budget(&self, inner: &mut Registry, just_used: &str) {
        loop {
            let resident: usize = inner
                .datasets
                .values()
                .filter(|e| e.session.is_some())
                .count();
            let bytes: usize = inner.datasets.values().map(|e| e.approx_bytes).sum();
            let over_sessions = self.config.max_sessions > 0 && resident > self.config.max_sessions;
            let over_bytes =
                self.config.max_resident_bytes > 0 && bytes > self.config.max_resident_bytes;
            if !over_sessions && !over_bytes {
                return;
            }
            let victim = inner
                .datasets
                .iter()
                .filter(|(name, e)| e.session.is_some() && name.as_str() != just_used)
                .min_by_key(|(_, e)| e.last_used_tick)
                .map(|(name, _)| name.clone());
            let Some(victim) = victim else {
                return; // only the just-used session is resident
            };
            if let Some(entry) = inner.datasets.get_mut(&victim) {
                entry.session = None;
                entry.approx_bytes = 0;
                entry.evictions += 1;
            }
        }
    }
}

impl SessionManager {
    /// Lock the registry, recovering from poison: the registry is plain
    /// bookkeeping (specs, counters, `Arc`s) that stays structurally
    /// valid if an opener thread panicked, and refusing every future
    /// request over a historical panic is strictly worse than serving.
    fn lock_registry(&self) -> std::sync::MutexGuard<'_, Registry> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl fmt::Debug for SessionManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionManager")
            .field("config", &self.config)
            .field("resident_sessions", &self.resident_sessions())
            .field("resident_bytes", &self.resident_bytes())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Query;
    use charles_relation::{
        apply_updates, write_csv_path, ApplyMode, Expr, Predicate, Table, TableBuilder,
        UpdateStatement,
    };

    fn tiny_pair(scale: f64) -> SnapshotPair {
        let source = TableBuilder::new("v1")
            .str_col("name", &["Anne", "Bob", "Cathy", "Dan", "Eve", "Finn"])
            .str_col("edu", &["PhD", "PhD", "BS", "BS", "PhD", "BS"])
            .float_col(
                "bonus",
                &[23_000.0, 25_000.0, 11_000.0, 9_000.0, 20_000.0, 8_000.0],
            )
            .key("name")
            .build()
            .unwrap();
        let policy = [UpdateStatement::new(
            "bonus",
            Expr::affine("bonus", scale, 1000.0),
            Predicate::eq("edu", "PhD"),
        )];
        let target = apply_updates(&source, &policy, ApplyMode::FirstMatch)
            .unwrap()
            .table;
        SnapshotPair::align(source, target).unwrap()
    }

    fn rankings(session: &Session) -> Vec<String> {
        session
            .run(&Query::new("bonus"))
            .unwrap()
            .summaries
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    #[test]
    fn open_or_get_caches_and_counts() {
        let manager = SessionManager::new(ManagerConfig::default());
        manager.register_pair("a", tiny_pair(1.05));
        assert!(manager.contains("a"));
        let first = manager.open_or_get("a").unwrap();
        let second = manager.open_or_get("a").unwrap();
        assert!(Arc::ptr_eq(&first, &second), "resident hit must share");
        let stats = manager.dataset_stats("a").unwrap();
        assert_eq!((stats.opens, stats.hits), (1, 1));
        assert!(stats.resident);
        assert!(manager.resident_bytes() > 0);
    }

    #[test]
    fn sealed_datasets_report_and_serve() {
        let manager = SessionManager::new(ManagerConfig::default());
        manager.register_pair("raw", tiny_pair(1.05));
        manager.register_with_config(
            "packed",
            DatasetSpec::Pair(tiny_pair(1.05)),
            CharlesConfig::default().with_sealed_columns(true),
        );
        assert!(!manager.dataset_stats("raw").unwrap().sealed);
        assert!(manager.dataset_stats("packed").unwrap().sealed);
        // Sealing is a layout choice: rankings must match the raw twin.
        let raw = rankings(&manager.open_or_get("raw").unwrap());
        let packed = rankings(&manager.open_or_get("packed").unwrap());
        assert_eq!(raw, packed);
        assert!(manager
            .open_or_get("packed")
            .unwrap()
            .pair()
            .source()
            .columns()
            .iter()
            .any(|c| c.is_compressed()));
    }

    #[test]
    fn unknown_dataset_is_typed_error() {
        let manager = SessionManager::new(ManagerConfig::default());
        assert!(matches!(
            manager.open_or_get("nope").unwrap_err(),
            CharlesError::UnknownDataset(_)
        ));
        assert!(matches!(
            manager.dataset_stats("nope").unwrap_err(),
            CharlesError::UnknownDataset(_)
        ));
    }

    #[test]
    fn lru_eviction_respects_session_budget_and_reopen_is_correct() {
        let manager = SessionManager::new(ManagerConfig::default().with_max_sessions(2));
        manager.register_pair("a", tiny_pair(1.05));
        manager.register_pair("b", tiny_pair(1.10));
        manager.register_pair("c", tiny_pair(1.20));

        let baseline_a = rankings(&manager.open_or_get("a").unwrap());
        let _ = manager.open_or_get("b").unwrap();
        assert_eq!(manager.resident_sessions(), 2);

        // Opening "c" must push out the LRU ("a") and stay under budget.
        let _ = manager.open_or_get("c").unwrap();
        assert_eq!(manager.resident_sessions(), 2);
        let a = manager.dataset_stats("a").unwrap();
        assert!(!a.resident, "LRU dataset should be evicted");
        assert_eq!(a.evictions, 1);
        assert!(manager.dataset_stats("b").unwrap().resident);
        assert!(manager.dataset_stats("c").unwrap().resident);

        // Re-opening the evicted dataset rebuilds it and answers
        // identically.
        let reopened = rankings(&manager.open_or_get("a").unwrap());
        assert_eq!(reopened, baseline_a, "re-open must be byte-identical");
        assert_eq!(manager.resident_sessions(), 2);
        assert_eq!(manager.dataset_stats("a").unwrap().opens, 2);
    }

    #[test]
    fn byte_budget_evicts_but_serves_oversized_single_dataset() {
        // A budget smaller than any one session: the just-used session is
        // never evicted for itself, so each open serves, and at most one
        // session stays resident.
        let manager = SessionManager::new(ManagerConfig::default().with_max_resident_bytes(1));
        manager.register_pair("a", tiny_pair(1.05));
        manager.register_pair("b", tiny_pair(1.10));
        let a = manager.open_or_get("a").unwrap();
        assert!(!rankings(&a).is_empty());
        assert_eq!(manager.resident_sessions(), 1);
        let _ = manager.open_or_get("b").unwrap();
        assert_eq!(manager.resident_sessions(), 1, "byte budget must evict");
        assert!(manager.dataset_stats("b").unwrap().resident);
        assert!(!manager.dataset_stats("a").unwrap().resident);
    }

    #[test]
    fn csv_pair_spec_roundtrips_through_disk() {
        let dir = std::env::temp_dir().join(format!("charles_mgr_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let pair = tiny_pair(1.05);
        let src = dir.join("v1.csv");
        let dst = dir.join("v2.csv");
        write_csv_path(pair.source(), &src).unwrap();
        write_csv_path(pair.target(), &dst).unwrap();

        let manager = SessionManager::new(ManagerConfig::default());
        manager.register_csv("disk", &src, &dst, Some("name".into()));
        let session = manager.open_or_get("disk").unwrap();
        let served = rankings(&session);
        let direct = rankings(&Session::open(pair).unwrap());
        assert_eq!(served, direct, "CSV round-trip must not change answers");

        // Evict, re-open from disk, same answer.
        assert!(manager.evict("disk"));
        assert!(!manager.dataset_stats("disk").unwrap().resident);
        let reopened = rankings(&manager.open_or_get("disk").unwrap());
        assert_eq!(reopened, served);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_inline_validates_eagerly() {
        let manager = SessionManager::new(ManagerConfig::default());
        let err = manager.register_csv_inline("bad", "a,b\n1", "a,b\n1,2\n", None);
        assert!(err.is_err(), "ragged CSV must not register");
        assert!(!manager.contains("bad"));

        let pair = tiny_pair(1.05);
        let mut src = Vec::new();
        let mut dst = Vec::new();
        charles_relation::write_csv(pair.source(), &mut src).unwrap();
        charles_relation::write_csv(pair.target(), &mut dst).unwrap();
        manager
            .register_csv_inline(
                "inline",
                String::from_utf8(src).unwrap(),
                String::from_utf8(dst).unwrap(),
                Some("name".into()),
            )
            .unwrap();
        assert!(manager.dataset_stats("inline").unwrap().resident);
        let served = rankings(&manager.open_or_get("inline").unwrap());
        assert_eq!(served, rankings(&Session::open(pair).unwrap()));
    }

    #[test]
    fn provider_spec_and_replacement() {
        let manager = SessionManager::new(ManagerConfig::default());
        manager.register(
            "synth",
            DatasetSpec::Provider(Arc::new(|| Ok(tiny_pair(1.05)))),
        );
        assert!(!rankings(&manager.open_or_get("synth").unwrap()).is_empty());
        // Re-registering under the same name replaces the dataset.
        assert!(!manager.register_pair("synth", tiny_pair(1.10)));
        let stats = manager.dataset_stats("synth").unwrap();
        assert!(!stats.resident, "replacement drops the old session");
        assert!(manager.unregister("synth"));
        assert!(!manager.contains("synth"));
    }

    #[test]
    fn concurrent_open_or_get_is_consistent() {
        let manager = Arc::new(SessionManager::new(
            ManagerConfig::default().with_max_sessions(2),
        ));
        for (i, scale) in [1.05, 1.10, 1.20].iter().enumerate() {
            manager.register_pair(format!("d{i}"), tiny_pair(*scale));
        }
        let handles: Vec<_> = (0..6)
            .map(|i| {
                let manager = Arc::clone(&manager);
                std::thread::spawn(move || {
                    let name = format!("d{}", i % 3);
                    let session = manager.open_or_get(&name).unwrap();
                    rankings(&session)
                })
            })
            .collect();
        let results: Vec<Vec<String>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Same dataset ⇒ same rankings, regardless of interleaving.
        for i in 0..3 {
            assert_eq!(results[i], results[i + 3]);
        }
        assert!(manager.resident_sessions() <= 2);
    }

    #[test]
    fn sharded_spec_serves_identical_answers_and_reports_shards() {
        let manager = SessionManager::new(ManagerConfig::default());
        manager.register_pair("plain", tiny_pair(1.05));
        manager.register(
            "sharded",
            DatasetSpec::sharded(DatasetSpec::Pair(tiny_pair(1.05)), 3),
        );
        let plain = rankings(&manager.open_or_get("plain").unwrap());
        let sharded_session = manager.open_or_get("sharded").unwrap();
        assert_eq!(sharded_session.shard_count(), 3);
        assert_eq!(
            rankings(&sharded_session),
            plain,
            "sharded dataset must answer byte-identically"
        );
        let stats = manager.dataset_stats("sharded").unwrap();
        assert_eq!(stats.shards, 3);
        assert_eq!(manager.dataset_stats("plain").unwrap().shards, 1);

        // Evicting the sharded dataset releases all shard planes at once:
        // nothing of it stays resident, and a re-open still agrees.
        assert!(manager.evict("sharded"));
        let after = manager.dataset_stats("sharded").unwrap();
        assert!(!after.resident);
        assert_eq!(after.approx_bytes, 0);
        assert_eq!(rankings(&manager.open_or_get("sharded").unwrap()), plain);
    }

    #[test]
    fn nested_sharded_spec_flattens() {
        let spec = DatasetSpec::sharded(
            DatasetSpec::sharded(DatasetSpec::Pair(tiny_pair(1.05)), 2),
            5,
        );
        assert_eq!(spec.shard_count(), 5, "outermost count wins");
        assert_eq!(
            DatasetSpec::sharded(DatasetSpec::Pair(tiny_pair(1.05)), 0).shard_count(),
            1
        );
    }

    #[test]
    fn table_byte_accounting_feeds_budget() {
        let pair = tiny_pair(1.05);
        let t: &Table = pair.source();
        assert!(t.approx_bytes() > 0);
        let session = Session::open(pair.clone()).unwrap();
        assert!(session.approx_plane_bytes() >= t.approx_bytes());
    }
}
