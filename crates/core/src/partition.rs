//! Partition discovery: from regression residuals to *expressible*
//! partitions.
//!
//! The paper's engine fits one global regression for the target attribute
//! over the transformation attributes, then clusters rows **by distance
//! from the regression line**. The clusters are only *potential* partitions
//! though: a cluster is useful to a human only if it can be described by
//! conditions over the condition attributes. This module closes that gap —
//! and with it the paper's "cyclic dependency" between clustering and
//! pattern sharing — by inducing a shallow CART-style decision tree over
//! the condition attributes that predicts the cluster labels, then
//! re-partitioning rows by the induced predicates. The result is a set of
//! disjoint, covering, *expressible* partitions: whatever the clusters
//! suggested that conditions cannot express is washed out, and whatever
//! they suggested that conditions can express becomes exact.

use crate::condition::{Condition, Descriptor};
use crate::config::{CharlesConfig, PartitionMethod};
use crate::error::Result;
use charles_cluster::{dbscan, kmeans_1d};
use charles_numerics::normality::{roundness, snap_candidates};
use charles_numerics::stats::{mad, median};
use charles_relation::{AttrRef, Column, Table, Value};
use std::collections::BTreeMap;

/// A discovered partition: an expressible condition plus the rows that
/// satisfy it.
#[derive(Debug, Clone)]
pub struct PartitionSpec {
    /// The condition describing this partition.
    pub condition: Condition,
    /// Source row ids matching the condition (disjoint across specs).
    pub rows: Vec<usize>,
}

/// Distance (in MADs from the median) beyond which a residual is treated
/// as an out-of-policy outlier and excluded from clustering. Keeps a
/// handful of hand-edited cells from hijacking k-means clusters (k-means
/// is notoriously outlier-sensitive).
const OUTLIER_MADS: f64 = 8.0;

/// Label marking rows whose change is out-of-policy noise. Condition
/// induction *ignores* these rows when computing impurity: noise is not
/// structure to describe, and trying to describe it is how trees overfit.
/// The rows still land in whichever partition their attribute values
/// select, where the trimmed per-partition refit absorbs them.
pub const OUTLIER_LABEL: usize = usize::MAX;

/// Split rows into (inlier indices, outlier indices) by MAD distance.
fn trim_outliers(values: &[f64]) -> (Vec<usize>, Vec<usize>) {
    let med = median(values).unwrap_or(0.0);
    let spread = mad(values).unwrap_or(0.0);
    if spread <= 0.0 {
        return ((0..values.len()).collect(), Vec::new());
    }
    let cutoff = OUTLIER_MADS * spread;
    let mut inliers = Vec::with_capacity(values.len());
    let mut outliers = Vec::new();
    for (i, &v) in values.iter().enumerate() {
        if (v - med).abs() > cutoff {
            outliers.push(i);
        } else {
            inliers.push(i);
        }
    }
    // Guard: if "outliers" are actually a substantial population (≥ 10%),
    // they are structure, not noise — keep everything.
    if outliers.len() * 10 >= values.len() {
        return ((0..values.len()).collect(), Vec::new());
    }
    (inliers, outliers)
}

/// Cluster residuals into `k` groups using the configured method.
/// Returns one label per row (labels are dense, 0-based). Out-of-policy
/// outliers (beyond [`OUTLIER_MADS`]) are assigned a dedicated trailing
/// label rather than participating in clustering.
pub fn cluster_residuals(
    residuals: &[f64],
    k: usize,
    config: &CharlesConfig,
) -> Result<Vec<usize>> {
    if k <= 1 || residuals.len() <= 1 {
        return Ok(vec![0; residuals.len()]);
    }
    let (inliers, outliers) = match config.partition_method {
        PartitionMethod::ResidualDbscan => ((0..residuals.len()).collect(), Vec::new()),
        _ => trim_outliers(residuals),
    };
    if !outliers.is_empty() {
        let inlier_vals: Vec<f64> = inliers.iter().map(|&i| residuals[i]).collect();
        let sub = cluster_residuals(&inlier_vals, k, config)?;
        let mut labels = vec![0usize; residuals.len()];
        for (slot, &row) in inliers.iter().enumerate() {
            labels[row] = sub[slot];
        }
        for &row in &outliers {
            labels[row] = OUTLIER_LABEL;
        }
        return Ok(labels);
    }
    let k = k.min(residuals.len());
    match config.partition_method {
        PartitionMethod::ResidualKMeans => Ok(kmeans_1d(residuals, k)?.assignments),
        PartitionMethod::ResidualQuantile => {
            let mut sorted = residuals.to_vec();
            sorted.sort_by(|a, b| a.total_cmp(b));
            // Boundaries at the i/k quantiles.
            let bounds: Vec<f64> = (1..k).map(|i| sorted[(i * sorted.len()) / k]).collect();
            Ok(residuals
                .iter()
                .map(|&r| bounds.iter().take_while(|&&b| r >= b).count())
                .collect())
        }
        PartitionMethod::ResidualDbscan => {
            let spread = mad(residuals).unwrap_or(0.0);
            let med = median(residuals).unwrap_or(0.0);
            let eps = (spread * 1.5).max(med.abs() * 1e-6).max(1e-9);
            let min_points = (residuals.len() / 50).max(2);
            let points: Vec<Vec<f64>> = residuals.iter().map(|&r| vec![r]).collect();
            let res = dbscan(&points, eps, min_points)?;
            // Noise points become their own trailing label so the tree can
            // still try to describe them.
            let noise_label = res.n_clusters;
            Ok(res
                .labels
                .iter()
                .map(|&l| if l < 0 { noise_label } else { l as usize })
                .collect())
        }
    }
}

// ---------------------------------------------------------------------------
// Decision-tree induction over condition attributes
// ---------------------------------------------------------------------------

/// Gini impurity of the label multiset at `rows`; rows labelled
/// [`OUTLIER_LABEL`] are invisible to the impurity.
fn gini(labels: &[usize], rows: &[usize], n_labels: usize) -> f64 {
    let mut counts = vec![0usize; n_labels];
    let mut n = 0usize;
    for &r in rows {
        if labels[r] != OUTLIER_LABEL {
            counts[labels[r]] += 1;
            n += 1;
        }
    }
    if n == 0 {
        return 0.0;
    }
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / n as f64;
            p * p
        })
        // lint:allow(float-fold-order: Gini over a handful of label counts, fixed slice order)
        .sum::<f64>()
}

/// Whether all (non-outlier) rows share one label.
fn is_pure(labels: &[usize], rows: &[usize]) -> bool {
    let mut first: Option<usize> = None;
    for &r in rows {
        let l = labels[r];
        if l == OUTLIER_LABEL {
            continue;
        }
        match first {
            None => first = Some(l),
            Some(f) if f != l => return false,
            _ => {}
        }
    }
    true
}

/// A candidate binary split.
struct Split {
    descriptor: Descriptor,
    yes: Vec<usize>,
    no: Vec<usize>,
    gain: f64,
}

/// Pick the roundest threshold `t` such that `x < t` partitions identically
/// for every `t ∈ (below, above]`, where `below` is the largest value going
/// left and `above` the smallest going right.
fn nice_threshold(below: f64, above: f64) -> f64 {
    let mid = (below + above) / 2.0;
    let mut best = above; // `x < above` is always a valid boundary
    let mut best_r = roundness(above);
    for cand in snap_candidates(mid) {
        if cand > below && cand <= above {
            let r = roundness(cand);
            if r > best_r || (r == best_r && (cand - mid).abs() < (best - mid).abs()) {
                best = cand;
                best_r = r;
            }
        }
    }
    best
}

/// The distinct values of a categorical column over a row subset, each
/// with its rows (in row order). Dictionary-encoded columns group by
/// integer code — no string hashing; the string is materialized once per
/// distinct value for the descriptor. Falls back to value hashing only for
/// non-dictionary categoricals (booleans). The null group, when present,
/// carries `Value::Null`.
fn categorical_groups(col: &Column, rows: &[usize]) -> Vec<(Value, Vec<usize>)> {
    if let Some(view) = col.codes_view() {
        const UNSEEN: usize = usize::MAX;
        let mut slot_of_code = vec![UNSEEN; view.dict_len()];
        let mut null_slot = UNSEEN;
        let mut groups: Vec<(Value, Vec<usize>)> = Vec::new();
        for &r in rows {
            let slot = match view.code(r) {
                Some(code) => {
                    let slot = &mut slot_of_code[code as usize];
                    if *slot == UNSEEN {
                        *slot = groups.len();
                        groups.push((col.get(r), Vec::new()));
                    }
                    *slot
                }
                None => {
                    if null_slot == UNSEEN {
                        null_slot = groups.len();
                        groups.push((Value::Null, Vec::new()));
                    }
                    null_slot
                }
            };
            groups[slot].1.push(r);
        }
        groups
    } else {
        // BTree-grouped so the emitted groups come out in `Value` order —
        // hash order here would make split enumeration (and any
        // score-tie winner downstream) vary run to run.
        let mut by_value: BTreeMap<Value, Vec<usize>> = BTreeMap::new();
        for &r in rows {
            by_value.entry(col.get(r)).or_default().push(r);
        }
        by_value.into_iter().collect()
    }
}

/// Enumerate candidate splits for one attribute at a node.
fn splits_for_attr(
    attr: &AttrRef,
    col: &Column,
    labels: &[usize],
    rows: &[usize],
    n_labels: usize,
    min_leaf: usize,
) -> Vec<Split> {
    let parent_gini = gini(labels, rows, n_labels);
    let n = rows.len() as f64;
    let mut out = Vec::new();

    if col.dtype().is_numeric() {
        // Sort node rows by attribute value; thresholds between adjacent
        // distinct values.
        let mut vals: Vec<(f64, usize)> = rows
            .iter()
            .filter_map(|&r| col.get_f64(r).map(|v| (v, r)))
            .collect();
        if vals.len() < rows.len() {
            return out; // nulls present: skip numeric splits on this attr
        }
        vals.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut boundaries: Vec<(f64, f64)> = Vec::new();
        for w in vals.windows(2) {
            if w[0].0 < w[1].0 {
                boundaries.push((w[0].0, w[1].0));
            }
        }
        // Cap the number of evaluated thresholds on large nodes.
        const MAX_THRESHOLDS: usize = 32;
        let step = boundaries.len().div_ceil(MAX_THRESHOLDS).max(1);
        for (below, above) in boundaries.into_iter().step_by(step) {
            let threshold = nice_threshold(below, above);
            let mut yes = Vec::new();
            let mut no = Vec::new();
            for &(v, r) in &vals {
                if v < threshold {
                    yes.push(r);
                } else {
                    no.push(r);
                }
            }
            if yes.len() < min_leaf || no.len() < min_leaf {
                continue;
            }
            let child = (yes.len() as f64 / n) * gini(labels, &yes, n_labels)
                + (no.len() as f64 / n) * gini(labels, &no, n_labels);
            out.push(Split {
                descriptor: Descriptor::LessThan {
                    attr: attr.clone(),
                    threshold,
                },
                yes,
                no,
                gain: parent_gini - child,
            });
        }
    } else {
        // Categorical: one-vs-rest equality splits per distinct value,
        // grouped by dictionary code.
        let mut groups = categorical_groups(col, rows);
        if groups.len() < 2 || groups.len() > 24 {
            return out; // unsplittable or too high-cardinality
        }
        groups.sort_by(|a, b| a.0.cmp(&b.0)); // determinism
        for (value, yes) in groups {
            if value.is_null() {
                continue;
            }
            let yes_set: std::collections::HashSet<usize> = yes.iter().copied().collect();
            let no: Vec<usize> = rows
                .iter()
                .copied()
                .filter(|r| !yes_set.contains(r))
                .collect();
            if yes.len() < min_leaf || no.len() < min_leaf {
                continue;
            }
            let child = (yes.len() as f64 / n) * gini(labels, &yes, n_labels)
                + (no.len() as f64 / n) * gini(labels, &no, n_labels);
            out.push(Split {
                descriptor: Descriptor::Equals {
                    attr: attr.clone(),
                    value,
                },
                yes,
                no,
                gain: parent_gini - child,
            });
        }
    }
    out
}

/// Resolve a condition attribute to its column: interned ids index
/// directly; unresolved handles fall back to one name lookup.
fn column_of<'t>(table: &'t Table, attr: &AttrRef) -> Option<&'t Column> {
    if let Some(id) = attr.id() {
        if let Ok(field) = table.schema().field(id.index()) {
            if field.name() == attr.name() {
                return Some(table.column_by_id(id));
            }
        }
    }
    table.column_by_name(attr.name()).ok()
}

fn best_split(
    table: &Table,
    cond_attrs: &[AttrRef],
    labels: &[usize],
    rows: &[usize],
    n_labels: usize,
    min_leaf: usize,
) -> Option<Split> {
    let mut best: Option<Split> = None;
    for attr in cond_attrs {
        let Some(col) = column_of(table, attr) else {
            continue;
        };
        for split in splits_for_attr(attr, col, labels, rows, n_labels, min_leaf) {
            if split.gain > 1e-12 && best.as_ref().is_none_or(|b| split.gain > b.gain) {
                best = Some(split);
            }
        }
    }
    best
}

/// Remove redundant descriptors from a root-to-leaf path:
/// - an `Equals` on an attribute supersedes any `NotEquals` on it;
/// - multiple `LessThan` keep the tightest (smallest threshold);
/// - multiple `AtLeast` keep the tightest (largest threshold);
/// - an `AtLeast`+`LessThan` pair fuses into `InRange`.
fn simplify_path(path: Vec<Descriptor>) -> Vec<Descriptor> {
    use std::collections::BTreeMap;
    let mut equals: BTreeMap<String, Descriptor> = BTreeMap::new();
    let mut not_equals: Vec<Descriptor> = Vec::new();
    let mut lt: BTreeMap<String, f64> = BTreeMap::new();
    let mut ge: BTreeMap<String, f64> = BTreeMap::new();
    let mut attr_order: Vec<AttrRef> = Vec::new();
    let note_attr = |order: &mut Vec<AttrRef>, attr: &AttrRef| {
        if !order.iter().any(|a| a == attr) {
            order.push(attr.clone());
        }
    };
    for d in path {
        note_attr(&mut attr_order, d.attr_ref());
        let attr = d.attr().to_string();
        match d {
            Descriptor::Equals { .. } => {
                equals.insert(attr, d);
            }
            Descriptor::NotEquals { .. } => not_equals.push(d),
            Descriptor::LessThan { threshold, .. } => {
                lt.entry(attr)
                    .and_modify(|t| *t = t.min(threshold))
                    .or_insert(threshold);
            }
            Descriptor::AtLeast { threshold, .. } => {
                ge.entry(attr)
                    .and_modify(|t| *t = t.max(threshold))
                    .or_insert(threshold);
            }
            other => not_equals.push(other), // OneOf/InRange pass through
        }
    }
    let mut out = Vec::new();
    for attr in attr_order {
        let name = attr.name().to_string();
        if let Some(eq) = equals.remove(&name) {
            out.push(eq);
            // Drop NotEquals on this attribute: implied by equality.
            not_equals.retain(|d| d.attr() != name);
        }
        match (ge.remove(&name), lt.remove(&name)) {
            (Some(lo), Some(hi)) => out.push(Descriptor::InRange {
                attr: attr.clone(),
                lo,
                hi,
            }),
            (Some(lo), None) => out.push(Descriptor::AtLeast {
                attr: attr.clone(),
                threshold: lo,
            }),
            (None, Some(hi)) => out.push(Descriptor::LessThan {
                attr: attr.clone(),
                threshold: hi,
            }),
            (None, None) => {}
        }
        let (matching, rest): (Vec<_>, Vec<_>) =
            not_equals.into_iter().partition(|d| d.attr() == name);
        out.extend(matching);
        not_equals = rest;
    }
    out.extend(not_equals);
    out
}

/// Induce expressible partitions from cluster labels.
///
/// Returns disjoint, covering partitions, each with a condition built from
/// `cond_attrs`. With `cond_attrs` empty (or labels constant), a single
/// universal partition is returned.
pub fn induce_partitions(
    table: &Table,
    cond_attrs: &[AttrRef],
    labels: &[usize],
    config: &CharlesConfig,
) -> Result<Vec<PartitionSpec>> {
    let n = table.height();
    let all_rows: Vec<usize> = (0..n).collect();
    let n_labels = labels
        .iter()
        .copied()
        .filter(|&l| l != OUTLIER_LABEL)
        .max()
        .map_or(1, |m| m + 1);
    if cond_attrs.is_empty() || n_labels <= 1 || n == 0 {
        return Ok(vec![PartitionSpec {
            condition: Condition::all(),
            rows: all_rows,
        }]);
    }
    let min_leaf = ((n as f64 * config.min_partition_fraction).ceil() as usize).max(1);
    let max_depth = config.max_tree_depth.max(1);

    // Recursive growth with an explicit stack.
    struct Work {
        rows: Vec<usize>,
        path: Vec<Descriptor>,
        depth: usize,
    }
    let mut leaves: Vec<(Vec<Descriptor>, Vec<usize>)> = Vec::new();
    let mut stack = vec![Work {
        rows: all_rows,
        path: Vec::new(),
        depth: 0,
    }];
    while let Some(node) = stack.pop() {
        let stop = node.depth >= max_depth
            || node.rows.len() < 2 * min_leaf
            || is_pure(labels, &node.rows);
        let split = if stop {
            None
        } else {
            best_split(table, cond_attrs, labels, &node.rows, n_labels, min_leaf)
        };
        match split {
            Some(s) => {
                let mut yes_path = node.path.clone();
                yes_path.push(s.descriptor.clone());
                let mut no_path = node.path;
                no_path.push(s.descriptor.negate());
                stack.push(Work {
                    rows: s.yes,
                    path: yes_path,
                    depth: node.depth + 1,
                });
                stack.push(Work {
                    rows: s.no,
                    path: no_path,
                    depth: node.depth + 1,
                });
            }
            None => leaves.push((node.path, node.rows)),
        }
    }

    // Build specs; verify conditions by re-evaluating them (the partitions
    // must be *exactly* what the conditions say, not what the tree said).
    let mut specs = Vec::with_capacity(leaves.len());
    for (path, tree_rows) in leaves {
        let condition = Condition::new(simplify_path(path));
        // Re-evaluating keeps conditions and rows consistent even after
        // path simplification.
        let rows = condition.matching_rows(table)?;
        debug_assert_eq!(
            {
                let mut a = rows.clone();
                a.sort_unstable();
                a
            },
            {
                let mut b = tree_rows.clone();
                b.sort_unstable();
                b
            },
            "simplified condition must select the same rows as the tree path"
        );
        specs.push(PartitionSpec { condition, rows });
    }
    // Deterministic order: by first row id.
    specs.sort_by_key(|s| s.rows.first().copied().unwrap_or(usize::MAX));
    Ok(specs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_relation::TableBuilder;

    /// Nine employees as in paper Example 1.
    fn emp() -> Table {
        TableBuilder::new("emp")
            .str_col(
                "edu",
                &["PhD", "PhD", "MS", "MS", "BS", "MS", "BS", "MS", "PhD"],
            )
            .int_col("exp", &[2, 3, 5, 1, 2, 4, 3, 4, 1])
            .build()
            .unwrap()
    }

    /// Labels mirroring the paper's four latent groups:
    /// PhD → 0, MS&exp≥3 → 1, MS&exp<3 → 2, BS → 3.
    fn truth_labels() -> Vec<usize> {
        vec![0, 0, 1, 2, 3, 1, 3, 1, 0]
    }

    fn default_config() -> CharlesConfig {
        CharlesConfig {
            min_partition_fraction: 0.01,
            ..CharlesConfig::default()
        }
    }

    #[test]
    fn recovers_example_1_partitions() {
        let table = emp();
        let labels = truth_labels();
        let specs = induce_partitions(
            &table,
            &["edu".into(), "exp".into()],
            &labels,
            &default_config(),
        )
        .unwrap();
        assert_eq!(specs.len(), 4, "{specs:?}");
        // Every spec must be pure w.r.t. the labels.
        for spec in &specs {
            let first = labels[spec.rows[0]];
            assert!(
                spec.rows.iter().all(|&r| labels[r] == first),
                "impure partition {spec:?}"
            );
        }
        // Partitions are disjoint and covering.
        let mut all: Vec<usize> = specs.iter().flat_map(|s| s.rows.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..9).collect::<Vec<_>>());
        // The induced partitions must coincide with the four latent groups
        // (equivalent conditions may differ from the paper's phrasing, e.g.
        // `edu ≠ PhD ∧ exp ≥ 4` describes the same rows as
        // `edu = MS ∧ exp ≥ 3` on this data — both are exact).
        for spec in &specs {
            let expected: Vec<usize> = (0..9)
                .filter(|&r| labels[r] == labels[spec.rows[0]])
                .collect();
            let mut got = spec.rows.clone();
            got.sort_unstable();
            assert_eq!(got, expected, "partition differs from latent group");
        }
        // Numeric splits carry round thresholds.
        let rendered: Vec<String> = specs.iter().map(|s| s.condition.to_string()).collect();
        assert!(
            rendered.iter().any(|r| r.contains("exp")),
            "expected a numeric split on exp, got {rendered:?}"
        );
    }

    #[test]
    fn constant_labels_single_partition() {
        let table = emp();
        let specs = induce_partitions(&table, &["edu".into()], &[0; 9], &default_config()).unwrap();
        assert_eq!(specs.len(), 1);
        assert!(specs[0].condition.is_universal());
        assert_eq!(specs[0].rows.len(), 9);
    }

    #[test]
    fn no_condition_attrs_single_partition() {
        let table = emp();
        let specs = induce_partitions(&table, &[], &truth_labels(), &default_config()).unwrap();
        assert_eq!(specs.len(), 1);
    }

    #[test]
    fn inexpressible_labels_collapse() {
        // Labels alternate independently of edu/exp: no split can help, so
        // the tree yields few (possibly one) impure partitions rather than
        // inventing noise.
        let table = emp();
        let labels = vec![0, 1, 0, 1, 0, 1, 0, 1, 0];
        let specs = induce_partitions(&table, &["edu".into()], &labels, &default_config()).unwrap();
        let total: usize = specs.iter().map(|s| s.rows.len()).sum();
        assert_eq!(total, 9);
        assert!(specs.len() <= 3);
    }

    #[test]
    fn min_partition_fraction_blocks_tiny_leaves() {
        let table = emp();
        let config = CharlesConfig {
            min_partition_fraction: 0.4, // leaves need ≥ 4 of 9 rows
            ..CharlesConfig::default()
        };
        let specs = induce_partitions(
            &table,
            &["edu".into(), "exp".into()],
            &truth_labels(),
            &config,
        )
        .unwrap();
        for s in &specs {
            assert!(s.rows.len() >= 4 || specs.len() == 1, "{specs:?}");
        }
    }

    #[test]
    fn cluster_residuals_kmeans_and_quantile() {
        let residuals = vec![0.0, 0.1, -0.1, 100.0, 100.1, 99.9];
        let config = default_config();
        let labels = cluster_residuals(&residuals, 2, &config).unwrap();
        assert_eq!(labels[0], labels[1]);
        assert_ne!(labels[0], labels[3]);

        let qconfig = CharlesConfig {
            partition_method: PartitionMethod::ResidualQuantile,
            ..default_config()
        };
        let qlabels = cluster_residuals(&residuals, 2, &qconfig).unwrap();
        assert_eq!(qlabels[0], qlabels[1]);
        assert_ne!(qlabels[0], qlabels[3]);
    }

    #[test]
    fn cluster_residuals_k1_trivial() {
        let config = default_config();
        assert_eq!(
            cluster_residuals(&[1.0, 2.0, 3.0], 1, &config).unwrap(),
            vec![0, 0, 0]
        );
        assert!(cluster_residuals(&[], 3, &config).unwrap().is_empty());
    }

    #[test]
    fn cluster_residuals_dbscan_no_k() {
        let mut residuals = vec![0.0; 30];
        residuals.extend(vec![500.0; 30]);
        let config = CharlesConfig {
            partition_method: PartitionMethod::ResidualDbscan,
            ..default_config()
        };
        let labels = cluster_residuals(&residuals, 4, &config).unwrap();
        assert_eq!(labels[0], labels[1]);
        assert_ne!(labels[0], labels[30]);
    }

    #[test]
    fn nice_threshold_prefers_round() {
        // Any t in (2, 3] splits identically: 3 is roundest.
        assert_eq!(nice_threshold(2.0, 3.0), 3.0);
        // (23.4, 27.9]: 25 is the roundest inside.
        assert_eq!(nice_threshold(23.4, 27.9), 25.0);
        // Degenerate narrow gap still yields a valid boundary.
        let t = nice_threshold(1.0001, 1.0002);
        assert!(t > 1.0001 && t <= 1.0002);
    }

    #[test]
    fn simplify_fuses_ranges_and_drops_redundant() {
        let path = vec![
            Descriptor::NotEquals {
                attr: "edu".into(),
                value: Value::str("BS"),
            },
            Descriptor::Equals {
                attr: "edu".into(),
                value: Value::str("MS"),
            },
            Descriptor::AtLeast {
                attr: "exp".into(),
                threshold: 1.0,
            },
            Descriptor::LessThan {
                attr: "exp".into(),
                threshold: 5.0,
            },
            Descriptor::LessThan {
                attr: "exp".into(),
                threshold: 3.0,
            },
        ];
        let simplified = simplify_path(path);
        let rendered: Vec<String> = simplified.iter().map(|d| d.to_string()).collect();
        assert!(rendered.contains(&"edu = MS".to_string()));
        assert!(rendered.contains(&"1 ≤ exp < 3".to_string()));
        assert!(
            !rendered.iter().any(|r| r.contains("≠")),
            "NotEquals should be dropped: {rendered:?}"
        );
        assert_eq!(simplified.len(), 2);
    }
}
