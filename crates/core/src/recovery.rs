//! Recovery metrics: how faithfully a summary reflects a *known* latent
//! policy.
//!
//! The paper demonstrates recovery anecdotally; with synthetic scenarios we
//! can measure it. A ground-truth policy is a first-match rule list
//! (condition → expression). We compare it to a summary on three axes:
//! partition agreement (Adjusted Rand Index), rule-level overlap (mean
//! best-Jaccard per truth rule), and prediction agreement (normalized mean
//! absolute difference between what the truth and the summary each predict
//! for the target).

use crate::error::Result;
use crate::score::ScoringContext;
use crate::summary::ChangeSummary;
use charles_relation::{Expr, Predicate, SnapshotPair, Table};

/// One ground-truth rule: rows matching `condition` were updated by
/// `expr` (`None` = rule asserts no change).
#[derive(Debug, Clone)]
pub struct TruthRule {
    /// The policy's row filter.
    pub condition: Predicate,
    /// The policy's update expression over source values.
    pub expr: Option<Expr>,
}

/// Per-row labels from a first-match rule list (`-1` = no rule matched).
pub fn truth_labels(table: &Table, rules: &[TruthRule]) -> Result<Vec<isize>> {
    let mut labels = vec![-1isize; table.height()];
    for row in table.row_ids() {
        for (i, rule) in rules.iter().enumerate() {
            if rule
                .condition
                .eval(table, row)
                .map_err(crate::error::CharlesError::from)?
            {
                labels[row] = i as isize;
                break;
            }
        }
    }
    Ok(labels)
}

/// Per-row labels from a summary's CTs (disjoint by construction; `-1` =
/// uncovered).
pub fn summary_labels(summary: &ChangeSummary, n: usize) -> Vec<isize> {
    let mut labels = vec![-1isize; n];
    for (i, ct) in summary.cts.iter().enumerate() {
        for &row in &ct.rows {
            labels[row] = i as isize;
        }
    }
    labels
}

/// Adjusted Rand Index between two labelings in [-1, 1] (1 = identical
/// partitions up to renaming; ~0 = chance agreement).
pub fn adjusted_rand_index(a: &[isize], b: &[isize]) -> f64 {
    assert_eq!(a.len(), b.len(), "labelings must align");
    let n = a.len();
    if n == 0 {
        return 1.0;
    }
    // Contingency table.
    let mut a_ids: Vec<isize> = a.to_vec();
    a_ids.sort_unstable();
    a_ids.dedup();
    let mut b_ids: Vec<isize> = b.to_vec();
    b_ids.sort_unstable();
    b_ids.dedup();
    let a_index = |v: isize| a_ids.binary_search(&v).expect("present");
    let b_index = |v: isize| b_ids.binary_search(&v).expect("present");
    let mut table = vec![vec![0u64; b_ids.len()]; a_ids.len()];
    for (&x, &y) in a.iter().zip(b.iter()) {
        table[a_index(x)][b_index(y)] += 1;
    }
    let choose2 = |x: u64| -> f64 { (x as f64) * (x as f64 - 1.0) / 2.0 };
    let sum_ij: f64 = table
        .iter()
        .flat_map(|row| row.iter())
        .map(|&c| choose2(c))
        // lint:allow(float-fold-order: evaluation-harness metric, fixed row order, not on the serving path)
        .sum();
    let sum_a: f64 = table
        .iter()
        // lint:allow(float-fold-order: evaluation-harness metric, fixed row order, not on the serving path)
        .map(|row| choose2(row.iter().sum::<u64>()))
        // lint:allow(float-fold-order: evaluation-harness metric, fixed row order, not on the serving path)
        .sum();
    let sum_b: f64 = (0..b_ids.len())
        // lint:allow(float-fold-order: evaluation-harness metric, fixed row order, not on the serving path)
        .map(|j| choose2(table.iter().map(|row| row[j]).sum::<u64>()))
        // lint:allow(float-fold-order: evaluation-harness metric, fixed row order, not on the serving path)
        .sum();
    let total = choose2(n as u64);
    let expected = sum_a * sum_b / total;
    let max_index = (sum_a + sum_b) / 2.0;
    if (max_index - expected).abs() < 1e-12 {
        return 1.0; // both labelings degenerate (single group)
    }
    (sum_ij - expected) / (max_index - expected)
}

/// Jaccard similarity of two row-id sets.
fn jaccard(a: &[usize], b: &[usize]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let sa: std::collections::HashSet<usize> = a.iter().copied().collect();
    let sb: std::collections::HashSet<usize> = b.iter().copied().collect();
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    if union == 0.0 {
        1.0
    } else {
        inter / union
    }
}

/// The recovery report for one summary against one ground-truth policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryReport {
    /// Partition agreement (Adjusted Rand Index).
    pub ari: f64,
    /// Mean, over truth rules, of the best Jaccard overlap with any CT.
    pub mean_rule_jaccard: f64,
    /// Mean absolute difference between truth-predicted and
    /// summary-predicted target values, normalized by target scale.
    pub prediction_nmae: f64,
}

/// Evaluate how well `summary` recovered the policy `rules` on `pair`.
pub fn evaluate_recovery(
    summary: &ChangeSummary,
    pair: &SnapshotPair,
    target_attr: &str,
    rules: &[TruthRule],
    config: &crate::config::CharlesConfig,
) -> Result<RecoveryReport> {
    let source = pair.source();
    let n = source.height();

    // Partition agreement.
    let truth = truth_labels(source, rules)?;
    let ours = summary_labels(summary, n);
    let ari = adjusted_rand_index(&truth, &ours);

    // Rule-level overlap.
    let mut mean_rule_jaccard = 0.0;
    if !rules.is_empty() {
        let mut total = 0.0;
        for (i, _) in rules.iter().enumerate() {
            let rule_rows: Vec<usize> = truth
                .iter()
                .enumerate()
                .filter_map(|(r, &l)| (l == i as isize).then_some(r))
                .collect();
            let best = summary
                .cts
                .iter()
                .map(|ct| jaccard(&rule_rows, &ct.rows))
                // lint:allow(float-fold-order: evaluation-harness metric, fixed row order, not on the serving path)
                .fold(0.0, f64::max);
            // lint:allow(float-fold-order: evaluation-harness metric, fixed row order, not on the serving path)
            total += best;
        }
        mean_rule_jaccard = total / rules.len() as f64;
    }

    // Prediction agreement: truth prediction (rule expr on source values,
    // unmatched rows unchanged) vs summary prediction.
    let y_source = source.numeric(target_attr)?;
    let y_target = pair.target_numeric_aligned(target_attr)?;
    let mut truth_pred = y_source.clone();
    for (row, &label) in truth.iter().enumerate() {
        if label >= 0 {
            if let Some(expr) = &rules[label as usize].expr {
                truth_pred[row] = expr
                    .eval(source, row)
                    .map_err(crate::error::CharlesError::from)?;
            }
        }
    }
    let scoring = ScoringContext::new(source, target_attr, &y_target, &y_source, config);
    let summary_pred = scoring.predict(&summary.cts)?;
    let nmae = if n == 0 {
        0.0
    } else {
        truth_pred
            .iter()
            .zip(summary_pred.iter())
            .map(|(a, b)| (a - b).abs())
            // lint:allow(float-fold-order: evaluation-harness metric, fixed row order, not on the serving path)
            .sum::<f64>()
            / (n as f64 * scoring.scale)
    };

    Ok(RecoveryReport {
        ari,
        mean_rule_jaccard,
        prediction_nmae: nmae,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ari_identical_partitions() {
        let a = vec![0, 0, 1, 1, 2, 2];
        // Same partition, renamed labels.
        let b = vec![5, 5, 3, 3, -1, -1];
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ari_disagreement_low() {
        let a = vec![0, 0, 0, 1, 1, 1];
        let b = vec![0, 1, 0, 1, 0, 1];
        assert!(adjusted_rand_index(&a, &b) < 0.2);
    }

    #[test]
    fn ari_degenerate_single_groups() {
        let a = vec![0, 0, 0];
        let b = vec![1, 1, 1];
        assert_eq!(adjusted_rand_index(&a, &b), 1.0);
        assert_eq!(adjusted_rand_index(&[], &[]), 1.0);
    }

    #[test]
    fn jaccard_cases() {
        assert_eq!(jaccard(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(jaccard(&[1, 2], &[3, 4]), 0.0);
        assert!((jaccard(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard(&[], &[]), 1.0);
    }

    #[test]
    fn truth_labels_first_match() {
        use charles_relation::TableBuilder;
        let t = TableBuilder::new("t")
            .str_col("edu", &["PhD", "MS", "BS"])
            .build()
            .unwrap();
        let rules = vec![
            TruthRule {
                condition: Predicate::eq("edu", "PhD"),
                expr: None,
            },
            TruthRule {
                condition: Predicate::True,
                expr: None,
            },
        ];
        assert_eq!(truth_labels(&t, &rules).unwrap(), vec![0, 1, 1]);
        // Empty rules: everything unmatched.
        assert_eq!(truth_labels(&t, &[]).unwrap(), vec![-1, -1, -1]);
    }
}
