//! Machine-readable reports: a minimal JSON writer.
//!
//! The offline dependency set has no JSON crate, so this module implements
//! the small subset needed to export summaries and run results: object /
//! array / string / number / bool encoding with correct escaping.

use crate::engine::RunResult;
use crate::summary::ChangeSummary;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true`/`false`
    Bool(bool),
    /// A finite number (non-finite values encode as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Self {
        Json::Str(s.into())
    }

    /// Serialize to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        let _ = write!(out, "{}", *v as i64);
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::str(key.clone()).write(out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Encode one summary.
pub fn summary_to_json(summary: &ChangeSummary) -> Json {
    let cts: Vec<Json> = summary
        .cts
        .iter()
        .map(|ct| {
            Json::Obj(vec![
                ("condition".into(), Json::str(ct.condition.to_string())),
                (
                    "transformation".into(),
                    Json::str(ct.transformation.to_string()),
                ),
                ("coverage".into(), Json::Num(ct.coverage)),
                ("rows".into(), Json::Num(ct.size() as f64)),
                ("mae".into(), Json::Num(ct.mae)),
                ("no_change".into(), Json::Bool(ct.is_no_change())),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("target".into(), Json::str(summary.target_attr.clone())),
        ("score".into(), Json::Num(summary.scores.score)),
        ("accuracy".into(), Json::Num(summary.scores.accuracy)),
        (
            "interpretability".into(),
            Json::Num(summary.scores.interpretability),
        ),
        (
            "breakdown".into(),
            Json::Obj(vec![
                ("size".into(), Json::Num(summary.breakdown.size)),
                ("simplicity".into(), Json::Num(summary.breakdown.simplicity)),
                ("coverage".into(), Json::Num(summary.breakdown.coverage)),
                ("normality".into(), Json::Num(summary.breakdown.normality)),
            ]),
        ),
        ("cts".into(), Json::Arr(cts)),
    ])
}

/// Encode a full run result.
pub fn run_result_to_json(result: &RunResult) -> Json {
    Json::Obj(vec![
        (
            "summaries".into(),
            Json::Arr(result.summaries.iter().map(summary_to_json).collect()),
        ),
        (
            "stats".into(),
            Json::Obj(vec![
                (
                    "candidates".into(),
                    Json::Num(result.stats.candidates as f64),
                ),
                ("evaluated".into(), Json::Num(result.stats.evaluated as f64)),
                ("distinct".into(), Json::Num(result.stats.distinct as f64)),
                (
                    "elapsed_ms".into(),
                    Json::Num(result.elapsed.as_secs_f64() * 1e3),
                ),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_rendering() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(3.25).render(), "3.25");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::str("hi").render(), "\"hi\"");
    }

    #[test]
    fn string_escaping() {
        assert_eq!(
            Json::str("a\"b\\c\nd\te").render(),
            "\"a\\\"b\\\\c\\nd\\te\""
        );
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"");
        // Unicode passes through unescaped (valid JSON).
        assert_eq!(Json::str("≥ ∧").render(), "\"≥ ∧\"");
    }

    #[test]
    fn composite_rendering() {
        let j = Json::Obj(vec![
            ("xs".into(), Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])),
            ("ok".into(), Json::Bool(false)),
        ]);
        assert_eq!(j.render(), "{\"xs\":[1,2],\"ok\":false}");
    }

    #[test]
    fn summary_encodes() {
        use crate::condition::Condition;
        use crate::ct::ConditionalTransformation;
        use crate::summary::{InterpretabilityBreakdown, Scores};
        use crate::transform::Transformation;
        let s = ChangeSummary {
            cts: vec![ConditionalTransformation::new(
                Condition::all(),
                Transformation::Identity,
                vec![0],
                1,
                0.0,
            )],
            target_attr: "bonus".into(),
            condition_attrs: vec![],
            transform_attrs: vec![],
            scores: Scores {
                accuracy: 1.0,
                interpretability: 0.9,
                score: 0.95,
            },
            breakdown: InterpretabilityBreakdown::default(),
            total_rows: 1,
        };
        let rendered = summary_to_json(&s).render();
        assert!(rendered.contains("\"target\":\"bonus\""));
        assert!(rendered.contains("\"no_change\":true"));
        assert!(rendered.contains("\"score\":0.95"));
    }
}
