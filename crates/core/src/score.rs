//! Scoring: `Score(S) = α·Accuracy(S) + (1−α)·Interpretability(S)`.
//!
//! Accuracy follows the paper exactly: the inverse (normalized) L1 distance
//! between the transformed source `Ŝ(D_s)(a_i)` and the target `D_t(a_i)`.
//! Interpretability is the weighted mean of four sub-scores implementing
//! the paper's four desiderata: smaller summaries, simpler conditions and
//! transformations, higher coverage, and higher normality of constants.

use crate::config::CharlesConfig;
use crate::ct::ConditionalTransformation;
use crate::error::Result;
use crate::summary::{InterpretabilityBreakdown, Scores};
use crate::transform::Transformation;
use charles_numerics::kernels;
use charles_relation::{AttrId, NumericView, Table};
use std::collections::HashMap;

/// Everything needed to score candidate summaries against one snapshot
/// pair. Build once per engine run, reuse across all candidates.
///
/// Prediction runs on the same `Arc`-shared [`NumericView`] plane as the
/// search: every numeric attribute is extracted once at construction, and
/// applying a transformation reads columns through interned ids — no
/// string lookups and no column copies per scored candidate.
#[derive(Debug)]
pub struct ScoringContext<'a> {
    /// Source snapshot.
    pub source: &'a Table,
    /// Target attribute name.
    pub target_attr: &'a str,
    /// Target-snapshot values of the target attribute, aligned to source
    /// row order.
    y_target: NumericView,
    /// Source-snapshot values of the target attribute.
    y_source: NumericView,
    /// Shared views of the source's numeric attributes, keyed by id.
    views: HashMap<AttrId, NumericView>,
    /// Normalization scale for the L1 distance (mean |target|).
    pub scale: f64,
    /// Engine configuration (α and interpretability weights).
    pub config: &'a CharlesConfig,
}

impl<'a> ScoringContext<'a> {
    /// Create a context, deriving the normalization scale from the mean
    /// absolute *change* of the target attribute (we are explaining the
    /// change, so residual error is judged relative to how much change
    /// there was to explain). Falls back to the mean absolute target value
    /// when nothing changed, then to 1.0 when that is degenerate too.
    ///
    /// Extracts a shared view of every null-free numeric column once.
    pub fn new(
        source: &'a Table,
        target_attr: &'a str,
        y_target: &[f64],
        y_source: &[f64],
        config: &'a CharlesConfig,
    ) -> Self {
        let mut views = HashMap::new();
        for (field, id) in source
            .schema()
            .fields()
            .iter()
            .zip(source.schema().attr_ids())
        {
            if !matches!(field.dtype(), charles_relation::DataType::Utf8) {
                if let Ok(view) = source.column_by_id(id).numeric_view(field.name()) {
                    views.insert(id, view);
                }
            }
        }
        Self::from_views(
            source,
            target_attr,
            NumericView::new(y_target.to_vec()),
            NumericView::new(y_source.to_vec()),
            views,
            config,
        )
    }

    /// Create a context over pre-extracted shared views (the search path:
    /// zero additional extraction).
    pub fn from_views(
        source: &'a Table,
        target_attr: &'a str,
        y_target: NumericView,
        y_source: NumericView,
        views: HashMap<AttrId, NumericView>,
        config: &'a CharlesConfig,
    ) -> Self {
        let scale = derive_scale(&y_target, &y_source);
        Self::from_views_scaled(
            source,
            target_attr,
            y_target,
            y_source,
            views,
            scale,
            config,
        )
    }

    /// Create a context over pre-extracted views **and** a precomputed
    /// normalization scale (the session path: the scale is a property of
    /// the target plane and survives across α re-scorings, so rescoring
    /// touches no column data at all).
    #[allow(clippy::too_many_arguments)]
    pub fn from_views_scaled(
        source: &'a Table,
        target_attr: &'a str,
        y_target: NumericView,
        y_source: NumericView,
        views: HashMap<AttrId, NumericView>,
        scale: f64,
        config: &'a CharlesConfig,
    ) -> Self {
        ScoringContext {
            source,
            target_attr,
            y_target,
            y_source,
            views,
            scale,
            config,
        }
    }

    /// Target-snapshot values (aligned to source rows).
    pub fn y_target(&self) -> &[f64] {
        &self.y_target
    }

    /// Source-snapshot values of the target attribute.
    pub fn y_source(&self) -> &[f64] {
        &self.y_source
    }

    /// The shared view a term reads: id-indexed when the handle resolves
    /// to a field of the *same name* in this context's schema (handles
    /// interned on an identically-shaped schema are accepted), one name
    /// lookup otherwise (externally built transformations).
    fn term_view(&self, attr: &charles_relation::AttrRef) -> Result<&NumericView> {
        let id = match attr.id() {
            Some(id)
                if self
                    .source
                    .schema()
                    .field(id.index())
                    .is_ok_and(|f| f.name() == attr.name()) =>
            {
                id
            }
            _ => self.source.schema().attr_id(attr.name())?,
        };
        self.views.get(&id).ok_or_else(|| {
            crate::error::CharlesError::BadConfig(format!(
                "attribute {:?} has no numeric view (null or non-numeric column)",
                attr.name()
            ))
        })
    }

    /// Predicted target values after applying `cts` to the source: rows not
    /// covered by any CT keep their source value.
    pub fn predict(&self, cts: &[ConditionalTransformation]) -> Result<Vec<f64>> {
        let mut pred = self.y_source.to_vec();
        for ct in cts {
            match &ct.transformation {
                // Identity: covered rows keep their source value, which is
                // what `pred` already holds.
                Transformation::Identity => {}
                Transformation::Linear {
                    terms, intercept, ..
                } => {
                    // Full-coverage CTs (rows = exactly 0..n) run the dense
                    // elementwise kernels over whole column slices; partial
                    // CTs scatter through the hoisted window slice.
                    let full = ct.rows.len() == pred.len()
                        && ct.rows.iter().enumerate().all(|(i, &r)| r == i);
                    if full {
                        pred.fill(*intercept);
                        for term in terms {
                            let view = self.term_view(&term.attr)?;
                            kernels::axpy(&mut pred, term.coefficient, view.as_slice());
                        }
                    } else {
                        for &row in &ct.rows {
                            pred[row] = *intercept;
                        }
                        for term in terms {
                            let view = self.term_view(&term.attr)?.as_slice();
                            for &row in &ct.rows {
                                pred[row] += term.coefficient * view[row];
                            }
                        }
                    }
                }
            }
        }
        Ok(pred)
    }

    /// Accuracy of a full prediction vector:
    /// `1 / (1 + sharpness · L1/(n·scale))`.
    pub fn accuracy_of(&self, pred: &[f64]) -> f64 {
        let n = self.y_target.len();
        if n == 0 {
            return 1.0;
        }
        let l1 = kernels::sum_abs_diff(pred, self.y_target.as_slice());
        1.0 / (1.0 + self.config.accuracy_sharpness * l1 / (n as f64 * self.scale))
    }

    /// Accuracy of a candidate CT set.
    pub fn accuracy(&self, cts: &[ConditionalTransformation]) -> Result<f64> {
        Ok(self.accuracy_of(&self.predict(cts)?))
    }

    /// Interpretability sub-scores for a candidate CT set.
    pub fn interpretability(&self, cts: &[ConditionalTransformation]) -> InterpretabilityBreakdown {
        if cts.is_empty() {
            return InterpretabilityBreakdown {
                size: 1.0,
                simplicity: 1.0,
                coverage: 0.0,
                normality: 1.0,
            };
        }
        // (1) Smaller summaries: 1 CT scores 1.0, decaying smoothly.
        let size = 1.0 / (1.0 + (cts.len() as f64 - 1.0) / 4.0);

        // (2) Simpler conditions & transformations: coverage-weighted mean
        // of a per-CT simplicity decaying with descriptor + variable count.
        // lint:allow(float-fold-order: hot scoring path, fixed contingency-table order, no allocation budget)
        let total_cov: f64 = cts.iter().map(|ct| ct.coverage).sum();
        let simplicity = if total_cov > 0.0 {
            cts.iter()
                .map(|ct| {
                    let units =
                        ct.condition.complexity() as f64 + ct.transformation.complexity() as f64;
                    ct.coverage * (1.0 / (1.0 + units / 4.0))
                })
                // lint:allow(float-fold-order: hot scoring path, fixed contingency-table order, no allocation budget)
                .sum::<f64>()
                / total_cov
        } else {
            1.0
        };

        // (3) Higher coverage: concentration of coverage mass (Herfindahl).
        // One partition covering everything = 1.0; k even partitions = 1/k;
        // uncovered rows contribute nothing.
        // lint:allow(float-fold-order: hot scoring path, fixed contingency-table order, no allocation budget)
        let coverage = cts.iter().map(|ct| ct.coverage * ct.coverage).sum::<f64>();

        // (4) Normality of constants, coverage-weighted over CTs.
        let normality = if total_cov > 0.0 {
            cts.iter()
                .map(|ct| {
                    ct.coverage * 0.5 * (ct.condition.normality() + ct.transformation.normality())
                })
                // lint:allow(float-fold-order: hot scoring path, fixed contingency-table order, no allocation budget)
                .sum::<f64>()
                / total_cov
        } else {
            1.0
        };

        InterpretabilityBreakdown {
            size,
            simplicity,
            coverage,
            normality,
        }
    }

    /// Score a candidate CT set, returning full scores and the breakdown.
    pub fn score(
        &self,
        cts: &[ConditionalTransformation],
    ) -> Result<(Scores, InterpretabilityBreakdown)> {
        let accuracy = self.accuracy(cts)?;
        let b = self.interpretability(cts);
        let [w_size, w_simp, w_cov, w_norm] = self.config.interpretability_weights;
        let interpretability =
            w_size * b.size + w_simp * b.simplicity + w_cov * b.coverage + w_norm * b.normality;
        let alpha = self.config.alpha;
        Ok((
            Scores {
                accuracy,
                interpretability,
                score: alpha * accuracy + (1.0 - alpha) * interpretability,
            },
            b,
        ))
    }
}

/// The L1 normalization scale for one target plane: mean absolute change,
/// falling back to mean absolute target value, then to 1.0 when degenerate.
pub fn derive_scale(y_target: &[f64], y_source: &[f64]) -> f64 {
    let n = y_target.len();
    if n == 0 {
        return 1.0;
    }
    let mean_change = kernels::sum_abs_diff(y_target, y_source) / n as f64;
    if mean_change > 0.0 {
        return mean_change;
    }
    let m = kernels::sum_abs(y_target) / n as f64;
    if m > 0.0 {
        m
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::{Condition, Descriptor};
    use crate::transform::{Term, Transformation};
    use charles_relation::{TableBuilder, Value};

    fn setup() -> (Table, Vec<f64>, Vec<f64>) {
        let source = TableBuilder::new("s")
            .str_col("edu", &["PhD", "PhD", "BS", "BS"])
            .float_col("bonus", &[20_000.0, 10_000.0, 5_000.0, 6_000.0])
            .build()
            .unwrap();
        let y_source = vec![20_000.0, 10_000.0, 5_000.0, 6_000.0];
        // PhDs got 1.1x; BS unchanged.
        let y_target = vec![22_000.0, 11_000.0, 5_000.0, 6_000.0];
        (source, y_source, y_target)
    }

    fn phd_ct(coef: f64) -> ConditionalTransformation {
        ConditionalTransformation::new(
            Condition::all().with(Descriptor::Equals {
                attr: "edu".into(),
                value: Value::str("PhD"),
            }),
            Transformation::linear(
                "bonus",
                vec![Term {
                    attr: "bonus".into(),
                    coefficient: coef,
                }],
                0.0,
            ),
            vec![0, 1],
            4,
            0.0,
        )
    }

    #[test]
    fn perfect_summary_has_accuracy_one() {
        let (source, y_source, y_target) = setup();
        let config = CharlesConfig::default();
        let ctx = ScoringContext::new(&source, "bonus", &y_target, &y_source, &config);
        let cts = vec![phd_ct(1.1)];
        assert!((ctx.accuracy(&cts).unwrap() - 1.0).abs() < 1e-12);
        let (scores, _) = ctx.score(&cts).unwrap();
        assert!(scores.score > 0.75);
    }

    #[test]
    fn wrong_summary_scores_lower() {
        let (source, y_source, y_target) = setup();
        let config = CharlesConfig::default();
        let ctx = ScoringContext::new(&source, "bonus", &y_target, &y_source, &config);
        let good = ctx.accuracy(&[phd_ct(1.1)]).unwrap();
        let bad = ctx.accuracy(&[phd_ct(2.0)]).unwrap();
        assert!(good > bad);
        // Empty summary = "nothing changed": wrong for PhD rows.
        let nothing = ctx.accuracy(&[]).unwrap();
        assert!(good > nothing);
        assert!(nothing > bad, "mild error beats wild overshoot");
    }

    #[test]
    fn uncovered_rows_keep_source_values() {
        let (source, y_source, y_target) = setup();
        let config = CharlesConfig::default();
        let ctx = ScoringContext::new(&source, "bonus", &y_target, &y_source, &config);
        let pred = ctx.predict(&[phd_ct(1.1)]).unwrap();
        assert_eq!(pred[2], 5_000.0);
        assert_eq!(pred[3], 6_000.0);
        assert_eq!(pred[0], 22_000.0);
    }

    #[test]
    fn alpha_extremes() {
        let (source, y_source, y_target) = setup();
        let acc_only = CharlesConfig::default().with_alpha(1.0);
        let int_only = CharlesConfig::default().with_alpha(0.0);
        let cts = vec![phd_ct(1.1)];

        let ctx = ScoringContext::new(&source, "bonus", &y_target, &y_source, &acc_only);
        let (s, _) = ctx.score(&cts).unwrap();
        assert!((s.score - s.accuracy).abs() < 1e-12);

        let ctx = ScoringContext::new(&source, "bonus", &y_target, &y_source, &int_only);
        let (s, _) = ctx.score(&cts).unwrap();
        assert!((s.score - s.interpretability).abs() < 1e-12);
    }

    #[test]
    fn interpretability_prefers_fewer_cts() {
        let (source, y_source, y_target) = setup();
        let config = CharlesConfig::default();
        let ctx = ScoringContext::new(&source, "bonus", &y_target, &y_source, &config);
        let one = ctx.interpretability(&[phd_ct(1.1)]);
        let two = ctx.interpretability(&[phd_ct(1.1), phd_ct(1.2)]);
        assert!(one.size > two.size);
    }

    #[test]
    fn coverage_concentration() {
        let (source, y_source, y_target) = setup();
        let config = CharlesConfig::default();
        let ctx = ScoringContext::new(&source, "bonus", &y_target, &y_source, &config);
        // One CT covering everything.
        let full = ConditionalTransformation::new(
            Condition::all(),
            Transformation::Identity,
            vec![0, 1, 2, 3],
            4,
            0.0,
        );
        let b = ctx.interpretability(&[full]);
        assert!((b.coverage - 1.0).abs() < 1e-12);
        // Half coverage scores 0.25 (0.5²).
        let half = phd_ct(1.1);
        let b = ctx.interpretability(&[half]);
        assert!((b.coverage - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_cts_defined() {
        let (source, y_source, y_target) = setup();
        let config = CharlesConfig::default();
        let ctx = ScoringContext::new(&source, "bonus", &y_target, &y_source, &config);
        let b = ctx.interpretability(&[]);
        assert_eq!(b.size, 1.0);
        assert_eq!(b.coverage, 0.0);
        let (scores, _) = ctx.score(&[]).unwrap();
        assert!(scores.score > 0.0);
    }

    #[test]
    fn scale_degenerate_target() {
        let source = TableBuilder::new("s")
            .float_col("x", &[0.0, 0.0])
            .build()
            .unwrap();
        let y = vec![0.0, 0.0];
        let config = CharlesConfig::default();
        let ctx = ScoringContext::new(&source, "x", &y, &y, &config);
        assert_eq!(ctx.scale, 1.0);
        assert_eq!(ctx.accuracy(&[]).unwrap(), 1.0);
    }
}
