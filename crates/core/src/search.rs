//! Candidate enumeration and (parallel) evaluation.
//!
//! A *candidate* is one `(C, T, k)` triple: condition-attribute subset,
//! transformation-attribute subset, and partition count. Evaluating a
//! candidate runs the paper's diff-discovery pipeline — global fit →
//! residual clustering → condition induction → per-partition fits →
//! scoring — and yields one scored [`ChangeSummary`]. The search evaluates
//! every candidate, deduplicates structurally identical summaries (keeping
//! the best score), and ranks.

use crate::combi::bounded_subsets;
use crate::config::CharlesConfig;
use crate::ct::ConditionalTransformation;
use crate::error::{CharlesError, Result};
use crate::partition::{cluster_residuals, induce_partitions};
use crate::score::ScoringContext;
use crate::snap::snap_fit;
use crate::summary::ChangeSummary;
use crate::transform::{Term, Transformation};
use charles_numerics::ols::{fit_constant, fit_ols, LinearFit};
use charles_relation::{SnapshotPair, Table};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One point of the search space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// Condition attributes `C` (may be empty: single universal partition).
    pub cond_attrs: Vec<String>,
    /// Transformation attributes `T` (never empty).
    pub tran_attrs: Vec<String>,
    /// Number of residual clusters to request.
    pub k: usize,
}

/// Search bookkeeping for reporting and experiments.
#[derive(Debug, Clone, Default)]
pub struct SearchStats {
    /// Candidates enumerated.
    pub candidates: usize,
    /// Candidates that produced a summary (some fail, e.g. tiny data).
    pub evaluated: usize,
    /// Distinct summaries after deduplication.
    pub distinct: usize,
}

/// Everything shared by candidate evaluations for one engine run.
pub struct SearchContext<'a> {
    /// The aligned snapshot pair.
    pub pair: &'a SnapshotPair,
    /// Target attribute name.
    pub target_attr: &'a str,
    /// Target values aligned to source rows.
    pub y_target: Vec<f64>,
    /// Source values of the target attribute.
    pub y_source: Vec<f64>,
    /// Source columns for every numeric attribute usable in models,
    /// extracted once.
    pub numeric_columns: HashMap<String, Vec<f64>>,
    /// Engine configuration.
    pub config: &'a CharlesConfig,
}

impl<'a> SearchContext<'a> {
    /// Build the shared context (extracts numeric columns once).
    pub fn new(
        pair: &'a SnapshotPair,
        target_attr: &'a str,
        tran_attrs: &[String],
        config: &'a CharlesConfig,
    ) -> Result<Self> {
        let source = pair.source();
        let y_target = pair.target_numeric_aligned(target_attr)?;
        let y_source = source.numeric(target_attr)?;
        let mut numeric_columns = HashMap::new();
        for attr in tran_attrs {
            numeric_columns.insert(attr.clone(), source.numeric(attr)?);
        }
        Ok(SearchContext {
            pair,
            target_attr,
            y_target,
            y_source,
            numeric_columns,
            config,
        })
    }

    fn source(&self) -> &Table {
        self.pair.source()
    }

    fn scoring(&self) -> ScoringContext<'_> {
        ScoringContext::new(
            self.source(),
            self.target_attr,
            &self.y_target,
            &self.y_source,
            self.config,
        )
    }

    /// Columns for a transformation-attribute subset, in subset order.
    fn columns_for(&self, tran_attrs: &[String]) -> Vec<&Vec<f64>> {
        tran_attrs
            .iter()
            .map(|a| &self.numeric_columns[a])
            .collect()
    }
}

/// Enumerate the `(C, T, k)` search space.
///
/// For every transformation subset `T` there is one *global* candidate
/// (`C = ∅`, `k = 1`, a single universal partition — the "R4"-style
/// summary), plus one candidate per non-empty condition subset and each
/// `k ≥ 2` in the configured range.
pub fn generate_candidates(
    cond_attrs: &[String],
    tran_attrs: &[String],
    config: &CharlesConfig,
) -> Vec<Candidate> {
    let mut out = Vec::new();
    let t_subsets = bounded_subsets(tran_attrs, config.max_transform_attrs);
    let c_subsets = bounded_subsets(cond_attrs, config.max_condition_attrs);
    for t in &t_subsets {
        if config.k_min <= 1 {
            out.push(Candidate {
                cond_attrs: Vec::new(),
                tran_attrs: t.clone(),
                k: 1,
            });
        }
        for c in &c_subsets {
            for k in config.k_min.max(2)..=config.k_max {
                out.push(Candidate {
                    cond_attrs: c.clone(),
                    tran_attrs: t.clone(),
                    k,
                });
            }
        }
    }
    out
}

/// Mean absolute error of an affine model over a partition.
fn partition_mae(cols: &[Vec<f64>], y: &[f64], coefs: &[f64], intercept: f64) -> f64 {
    if y.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 0..y.len() {
        let mut pred = intercept;
        for (c, col) in coefs.iter().zip(cols.iter()) {
            pred += c * col[i];
        }
        total += (pred - y[i]).abs();
    }
    total / y.len() as f64
}

/// Fit a (possibly snapped) linear model on a partition, returning the
/// transformation and its mean absolute error over *all* partition rows.
///
/// Robustness: after a first OLS pass, rows whose residuals exceed 6 MADs
/// are treated as out-of-policy edits; when they are few (≤ 20%) the model
/// — and all subsequent constant snapping — is fitted on the inliers only,
/// so a handful of hand-edited cells cannot drag the recovered policy.
fn fit_partition(
    ctx: &SearchContext<'_>,
    tran_attrs: &[String],
    rows: &[usize],
) -> Option<(Transformation, f64)> {
    let y: Vec<f64> = rows.iter().map(|&r| ctx.y_target[r]).collect();
    let full_cols = ctx.columns_for(tran_attrs);
    let cols: Vec<Vec<f64>> = full_cols
        .iter()
        .map(|c| rows.iter().map(|&r| c[r]).collect())
        .collect();

    // Enough rows for a full fit (n = p+1 is exact interpolation, which is
    // legitimate here: two points determine the affine rule that produced
    // them)? Otherwise fall back to a constant model.
    let mut fit: LinearFit = if rows.len() > cols.len() {
        match fit_ols(&cols, &y) {
            Ok(f) => f,
            Err(_) => fit_constant(&y).ok()?,
        }
    } else {
        fit_constant(&y).ok()?
    };

    // One-step trimmed refit (see doc comment). Track the inlier set: the
    // snapping pass below must see the same robust view of the data.
    let mut in_cols: Vec<Vec<f64>> = cols.clone();
    let mut in_y: Vec<f64> = y.clone();
    if !fit.residuals.is_empty() {
        let spread = charles_numerics::stats::mad(&fit.residuals).unwrap_or(0.0);
        if spread > 0.0 {
            let cutoff = 6.0 * spread;
            let inliers: Vec<usize> = (0..y.len())
                .filter(|&i| fit.residuals[i].abs() <= cutoff)
                .collect();
            let n_out = y.len() - inliers.len();
            if n_out > 0 && n_out * 5 <= y.len() && inliers.len() > cols.len() {
                let trimmed_cols: Vec<Vec<f64>> = cols
                    .iter()
                    .map(|c| inliers.iter().map(|&i| c[i]).collect())
                    .collect();
                let trimmed_y: Vec<f64> = inliers.iter().map(|&i| y[i]).collect();
                if let Ok(refit) = fit_ols(&trimmed_cols, &trimmed_y) {
                    fit = refit;
                    in_cols = trimmed_cols;
                    in_y = trimmed_y;
                }
            }
        }
    }

    let (coefficients, intercept) = if ctx.config.snap_constants {
        let used_cols: &[Vec<f64>] = if fit.coefficients.is_empty() {
            &[]
        } else {
            &in_cols
        };
        let snapped = snap_fit(used_cols, &in_y, &fit, ctx.config.snap_tolerance);
        (snapped.coefficients, snapped.intercept)
    } else {
        (fit.coefficients.clone(), fit.intercept)
    };

    // Kill numerically-dust terms: a coefficient whose whole contribution
    // across the partition is below 1e-9 of the target magnitude carries
    // no information (ridge fallbacks and collinear predictors produce
    // ±1e-16-style coefficients that would otherwise pollute rendering).
    let y_scale = y.iter().map(|v| v.abs()).sum::<f64>() / y.len().max(1) as f64 + 1.0;
    let coefficients: Vec<f64> = coefficients
        .iter()
        .zip(cols.iter())
        .map(|(&coefficient, col)| {
            let col_max = col.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            if coefficient.abs() * col_max < 1e-9 * y_scale {
                0.0
            } else {
                coefficient
            }
        })
        .collect();
    let mae = partition_mae(&cols, &y, &coefficients, intercept);

    // A model that snapped all the way to `new = 1·old + 0` *is* the
    // identity: render it as "no change".
    let is_identity = intercept == 0.0
        && tran_attrs
            .iter()
            .zip(coefficients.iter())
            .all(|(attr, &c)| {
                (attr == ctx.target_attr && c == 1.0) || c == 0.0
            })
        && tran_attrs
            .iter()
            .zip(coefficients.iter())
            .any(|(attr, &c)| attr == ctx.target_attr && c == 1.0);
    if is_identity {
        return Some((Transformation::Identity, mae));
    }

    let terms: Vec<Term> = tran_attrs
        .iter()
        .zip(coefficients.iter())
        .map(|(attr, &coefficient)| Term {
            attr: attr.clone(),
            coefficient,
        })
        .collect();
    Some((
        Transformation::linear(ctx.target_attr, terms, intercept),
        mae,
    ))
}

/// The change signals candidate partitions are mined from.
///
/// The paper clusters rows by distance from the global regression line.
/// When the latent groups differ in *slope*, those residuals interleave
/// groups (the paper's acknowledged "cyclic dependency" between clustering
/// and pattern sharing), so we additionally mine two direct change signals:
/// the absolute delta and the relative delta of the target attribute. Each
/// signal yields one candidate labeling; the best-scoring resulting summary
/// wins for the candidate.
fn change_signals(ctx: &SearchContext<'_>, global_residuals: &[f64]) -> Vec<Vec<f64>> {
    let delta: Vec<f64> = ctx
        .y_target
        .iter()
        .zip(ctx.y_source.iter())
        .map(|(t, s)| t - s)
        .collect();
    let rel_delta: Vec<f64> = ctx
        .y_target
        .iter()
        .zip(ctx.y_source.iter())
        .map(|(t, s)| (t - s) / s.abs().max(1.0))
        .collect();
    vec![global_residuals.to_vec(), delta, rel_delta]
}

/// Fuse two descriptors over the union of their row sets: complementary
/// pairs vanish; adjacent numeric intervals concatenate. Returns `None`
/// when not fusable, `Some(None)` when the pair covers everything (drop
/// both), `Some(Some(d))` for a fused replacement.
fn fuse_descriptors(
    a: &crate::condition::Descriptor,
    b: &crate::condition::Descriptor,
) -> Option<Option<crate::condition::Descriptor>> {
    use crate::condition::Descriptor as D;
    if *b == a.negate() {
        return Some(None);
    }
    if a.attr() != b.attr() {
        return None;
    }
    let attr = a.attr().to_string();
    // Normalize ordering: try both (a, b) and (b, a).
    let fused = |x: &D, y: &D| -> Option<Option<D>> {
        match (x, y) {
            // `v < m` ∪ `m ≤ v < hi` = `v < hi`
            (D::LessThan { threshold, .. }, D::InRange { lo, hi, .. }) if threshold == lo => {
                Some(Some(D::LessThan {
                    attr: attr.clone(),
                    threshold: *hi,
                }))
            }
            // `lo ≤ v < m` ∪ `m ≤ v < hi` = `lo ≤ v < hi`
            (D::InRange { lo, hi, .. }, D::InRange { lo: lo2, hi: hi2, .. }) if hi == lo2 => {
                Some(Some(D::InRange {
                    attr: attr.clone(),
                    lo: *lo,
                    hi: *hi2,
                }))
            }
            // `lo ≤ v < m` ∪ `v ≥ m` = `v ≥ lo`
            (D::InRange { lo, hi, .. }, D::AtLeast { threshold, .. }) if hi == threshold => {
                Some(Some(D::AtLeast {
                    attr: attr.clone(),
                    threshold: *lo,
                }))
            }
            _ => None,
        }
    };
    fused(a, b).or_else(|| fused(b, a))
}

/// If two conditions are identical except for exactly one fusable pair of
/// descriptors (complementary, like `grade < 24` vs `grade ≥ 24`, or
/// adjacent intervals), return the condition describing the union of the
/// two partitions.
fn merge_conditions(
    a: &crate::condition::Condition,
    b: &crate::condition::Condition,
) -> Option<crate::condition::Condition> {
    let da = a.descriptors();
    let db = b.descriptors();
    if da.len() != db.len() || da.is_empty() {
        return None;
    }
    let mut used = vec![false; db.len()];
    let mut mismatch: Option<(usize, usize)> = None; // (index in da, index in db)
    for (i, d) in da.iter().enumerate() {
        if let Some(pos) = db
            .iter()
            .enumerate()
            .position(|(j, other)| !used[j] && other == d)
        {
            used[pos] = true;
            continue;
        }
        if mismatch.is_some() {
            return None; // more than one mismatching descriptor
        }
        mismatch = Some((i, usize::MAX));
    }
    let (ai, _) = mismatch?;
    let bj = used.iter().position(|&u| !u)?;
    let fused = fuse_descriptors(&da[ai], &db[bj])?;
    let mut kept: Vec<crate::condition::Descriptor> = db
        .iter()
        .enumerate()
        .filter(|&(j, _)| j != bj)
        .map(|(_, d)| d.clone())
        .collect();
    if let Some(replacement) = fused {
        kept.push(replacement);
    }
    Some(crate::condition::Condition::new(kept))
}

/// Merge CTs carrying the *same* transformation whose conditions differ by
/// one complementary descriptor. Tree induction splits every path by the
/// chosen attribute, so semantically-identical siblings are common
/// (`POL ∧ grade < 24` and `POL ∧ grade ≥ 24`, both "4% + $1500"); merging
/// restores the minimal rule list.
fn merge_equivalent_cts(
    mut cts: Vec<ConditionalTransformation>,
    total_rows: usize,
) -> Vec<ConditionalTransformation> {
    loop {
        let mut merged: Option<(usize, usize, crate::condition::Condition)> = None;
        'outer: for i in 0..cts.len() {
            for j in (i + 1)..cts.len() {
                if cts[i].transformation.signature() != cts[j].transformation.signature() {
                    continue;
                }
                if let Some(cond) = merge_conditions(&cts[i].condition, &cts[j].condition) {
                    merged = Some((i, j, cond));
                    break 'outer;
                }
            }
        }
        let Some((i, j, condition)) = merged else {
            return cts;
        };
        let b = cts.remove(j);
        let a = &mut cts[i];
        let (na, nb) = (a.rows.len() as f64, b.rows.len() as f64);
        // Same model on both sides: the union MAE is the weighted mean.
        let mae = if na + nb > 0.0 {
            (a.mae * na + b.mae * nb) / (na + nb)
        } else {
            0.0
        };
        let mut rows = std::mem::take(&mut a.rows);
        rows.extend(b.rows);
        rows.sort_unstable();
        *a = ConditionalTransformation::new(
            condition,
            a.transformation.clone(),
            rows,
            total_rows,
            mae,
        );
    }
}

/// Dense labels from a categorical column's values (`None` for numeric,
/// null-containing, or high-cardinality columns).
fn categorical_labels(table: &Table, attr: &str) -> Option<Vec<usize>> {
    let col = table.column_by_name(attr).ok()?;
    if col.dtype().is_numeric() || col.null_count() > 0 {
        return None;
    }
    let mut ids: HashMap<charles_relation::Value, usize> = HashMap::new();
    let mut labels = Vec::with_capacity(col.len());
    for i in 0..col.len() {
        let next = ids.len();
        let id = *ids.entry(col.get(i)).or_insert(next);
        labels.push(id);
    }
    if ids.len() < 2 || ids.len() > 24 {
        return None;
    }
    Some(labels)
}

/// Build conditional transformations from one labeling.
fn cts_from_labels(
    ctx: &SearchContext<'_>,
    candidate: &Candidate,
    labels: &[usize],
) -> Result<Vec<ConditionalTransformation>> {
    let n = ctx.y_target.len();
    let specs = induce_partitions(ctx.source(), &candidate.cond_attrs, labels, ctx.config)?;
    let tolerance = ctx.config.change_tolerance;
    let mut cts = Vec::with_capacity(specs.len());
    for spec in specs {
        if spec.rows.is_empty() {
            continue;
        }
        // "No change" partitions get the identity transformation (the
        // hatched rectangle in the paper's step 10).
        let unchanged = spec
            .rows
            .iter()
            .all(|&r| (ctx.y_target[r] - ctx.y_source[r]).abs() <= tolerance);
        let (transformation, mae) = if unchanged {
            (Transformation::Identity, 0.0)
        } else {
            match fit_partition(ctx, &candidate.tran_attrs, &spec.rows) {
                Some(ft) => ft,
                None => continue,
            }
        };
        cts.push(ConditionalTransformation::new(
            spec.condition,
            transformation,
            spec.rows,
            n,
            mae,
        ));
    }
    Ok(merge_equivalent_cts(cts, n))
}

/// Evaluate one candidate into a scored summary. Returns `Ok(None)` when
/// the candidate is infeasible (e.g. not enough rows for the global fit).
pub fn evaluate_candidate(
    ctx: &SearchContext<'_>,
    candidate: &Candidate,
) -> Result<Option<ChangeSummary>> {
    let n = ctx.y_target.len();
    if n == 0 {
        return Ok(None);
    }
    let cols: Vec<Vec<f64>> = ctx
        .columns_for(&candidate.tran_attrs)
        .into_iter()
        .cloned()
        .collect();

    // Global fit over all rows; its residuals drive partition discovery.
    let global = match fit_ols(&cols, &ctx.y_target) {
        Ok(f) => f,
        Err(_) => return Ok(None),
    };

    let scoring = ctx.scoring();
    let mut best: Option<(ChangeSummary, f64)> = None;
    let mut seen_labelings: Vec<Vec<usize>> = Vec::new();
    let mut labelings: Vec<Vec<usize>> = Vec::new();
    for signal in change_signals(ctx, &global.residuals) {
        labelings.push(cluster_residuals(&signal, candidate.k, ctx.config)?);
    }
    // For a single categorical condition attribute, the GROUP-BY-value
    // partitioning is an obvious candidate in its own right: when the
    // latent groups' change behaviours overlap in signal space (similar
    // slopes, wide value ranges), clustering cannot seed them, but a direct
    // per-value split still recovers them exactly.
    if let [attr] = candidate.cond_attrs.as_slice() {
        if let Some(labels) = categorical_labels(ctx.source(), attr) {
            labelings.push(labels);
        }
    }
    for labels in labelings {
        if seen_labelings.contains(&labels) {
            continue; // identical labeling ⇒ identical summary
        }
        let cts = cts_from_labels(ctx, candidate, &labels)?;
        seen_labelings.push(labels);
        if cts.is_empty() {
            continue;
        }
        let (scores, breakdown) = scoring.score(&cts)?;
        if best.as_ref().is_none_or(|(_, s)| scores.score > *s) {
            let score = scores.score;
            best = Some((
                ChangeSummary {
                    cts,
                    target_attr: ctx.target_attr.to_string(),
                    condition_attrs: candidate.cond_attrs.clone(),
                    transform_attrs: candidate.tran_attrs.clone(),
                    scores,
                    breakdown,
                    total_rows: n,
                },
                score,
            ));
        }
    }
    Ok(best.map(|(summary, _)| summary))
}

/// Evaluate all candidates (in parallel when configured), deduplicate, and
/// rank by descending score.
pub fn run_search(
    ctx: &SearchContext<'_>,
    candidates: &[Candidate],
) -> Result<(Vec<ChangeSummary>, SearchStats)> {
    let threads = ctx.config.effective_threads().min(candidates.len().max(1));
    let results: Mutex<Vec<ChangeSummary>> = Mutex::new(Vec::new());
    let next = AtomicUsize::new(0);
    let first_error: Mutex<Option<CharlesError>> = Mutex::new(None);

    if threads <= 1 {
        let mut local = Vec::new();
        for candidate in candidates {
            if let Some(summary) = evaluate_candidate(ctx, candidate)? {
                local.push(summary);
            }
        }
        *results.lock() = local;
    } else {
        crossbeam::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|_| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= candidates.len() {
                            break;
                        }
                        match evaluate_candidate(ctx, &candidates[i]) {
                            Ok(Some(summary)) => local.push(summary),
                            Ok(None) => {}
                            Err(e) => {
                                let mut slot = first_error.lock();
                                if slot.is_none() {
                                    *slot = Some(e);
                                }
                                break;
                            }
                        }
                    }
                    results.lock().extend(local);
                });
            }
        })
        .expect("search worker panicked");
        if let Some(e) = first_error.into_inner() {
            return Err(e);
        }
    }

    let mut all = results.into_inner();
    let evaluated = all.len();

    // Deduplicate by structural signature, keeping the best-scoring copy.
    let mut best: HashMap<String, ChangeSummary> = HashMap::with_capacity(all.len());
    for summary in all.drain(..) {
        let sig = summary.signature();
        match best.get(&sig) {
            Some(existing) if existing.scores.score >= summary.scores.score => {}
            _ => {
                best.insert(sig, summary);
            }
        }
    }
    let mut ranked: Vec<ChangeSummary> = best.into_values().collect();
    let distinct = ranked.len();
    // Tie-breaks below the score: fewer CTs; then autoregressive
    // transformations (explaining the new value in terms of the target's
    // *own* previous value reads most naturally: "5% increase on last
    // year's bonus"); then a stable structural key.
    let self_referential = |s: &ChangeSummary| -> bool {
        s.cts
            .iter()
            .any(|ct| ct.transformation.attributes().iter().any(|a| a == ctx.target_attr))
    };
    ranked.sort_by(|a, b| {
        b.scores
            .score
            .total_cmp(&a.scores.score)
            .then(a.cts.len().cmp(&b.cts.len()))
            .then(self_referential(b).cmp(&self_referential(a)))
            .then_with(|| a.signature().cmp(&b.signature()))
    });
    ranked.truncate(ctx.config.max_summaries);

    Ok((
        ranked,
        SearchStats {
            candidates: candidates.len(),
            evaluated,
            distinct,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_relation::{
        apply_updates, ApplyMode, Expr, Predicate, TableBuilder, UpdateStatement,
    };

    fn example_pair() -> SnapshotPair {
        let source = TableBuilder::new("2016")
            .str_col(
                "name",
                &["Anne", "Bob", "Amber", "Allen", "Cathy", "Tom", "James", "Lucy", "Frank"],
            )
            .str_col(
                "edu",
                &["PhD", "PhD", "MS", "MS", "BS", "MS", "BS", "MS", "PhD"],
            )
            .int_col("exp", &[2, 3, 5, 1, 2, 4, 3, 4, 1])
            .float_col(
                "bonus",
                &[
                    23_000.0, 25_000.0, 16_000.0, 13_000.0, 11_000.0, 15_000.0, 12_000.0,
                    15_000.0, 21_000.0,
                ],
            )
            .key("name")
            .build()
            .unwrap();
        let policy = [
            UpdateStatement::new(
                "bonus",
                Expr::affine("bonus", 1.05, 1000.0),
                Predicate::eq("edu", "PhD"),
            ),
            UpdateStatement::new(
                "bonus",
                Expr::affine("bonus", 1.04, 800.0),
                Predicate::eq("edu", "MS").and(Predicate::cmp(
                    "exp",
                    charles_relation::CmpOp::Ge,
                    3,
                )),
            ),
            UpdateStatement::new(
                "bonus",
                Expr::affine("bonus", 1.03, 400.0),
                Predicate::eq("edu", "MS").and(Predicate::cmp(
                    "exp",
                    charles_relation::CmpOp::Lt,
                    3,
                )),
            ),
        ];
        let target = apply_updates(&source, &policy, ApplyMode::FirstMatch)
            .unwrap()
            .table;
        SnapshotPair::align(source, target).unwrap()
    }

    #[test]
    fn candidate_generation_shape() {
        let config = CharlesConfig::default()
            .with_max_condition_attrs(2)
            .with_max_transform_attrs(1)
            .with_k_range(1, 3);
        let cands = generate_candidates(
            &["edu".to_string(), "exp".to_string()],
            &["bonus".to_string()],
            &config,
        );
        // T subsets: {bonus}. Global candidate (C=∅, k=1) + 3 C-subsets × 2
        // k values (2, 3) = 1 + 6.
        assert_eq!(cands.len(), 7);
        assert!(cands.iter().any(|c| c.cond_attrs.is_empty() && c.k == 1));
        assert!(cands.iter().all(|c| !c.tran_attrs.is_empty()));
    }

    #[test]
    fn evaluate_recovers_example_1_with_right_candidate() {
        let pair = example_pair();
        let config = CharlesConfig::default();
        let tran = vec!["bonus".to_string()];
        let ctx = SearchContext::new(&pair, "bonus", &tran, &config).unwrap();
        let candidate = Candidate {
            cond_attrs: vec!["edu".to_string(), "exp".to_string()],
            tran_attrs: tran.clone(),
            k: 4,
        };
        let summary = evaluate_candidate(&ctx, &candidate).unwrap().unwrap();
        // Perfect accuracy: the latent rules are exactly linear in bonus.
        assert!(
            summary.scores.accuracy > 0.999,
            "accuracy = {}\n{summary}",
            summary.scores.accuracy
        );
        assert_eq!(summary.cts.len(), 4, "{summary}");
        // One CT must be the identity over the BS partition.
        assert!(summary.cts.iter().any(|ct| ct.is_no_change()));
        // The PhD rule is recovered with round constants.
        let rendered = summary.to_string();
        assert!(rendered.contains("1.05"), "{rendered}");
        assert!(rendered.contains("1000"), "{rendered}");
    }

    #[test]
    fn search_ranks_true_summary_first() {
        let pair = example_pair();
        let config = CharlesConfig::default();
        let cond = vec!["edu".to_string(), "exp".to_string()];
        let tran = vec!["bonus".to_string()];
        let ctx = SearchContext::new(&pair, "bonus", &tran, &config).unwrap();
        let candidates = generate_candidates(&cond, &tran, &config);
        let (ranked, stats) = run_search(&ctx, &candidates).unwrap();
        assert!(!ranked.is_empty());
        assert!(stats.evaluated > 0);
        assert!(stats.distinct <= stats.evaluated);
        let top = &ranked[0];
        assert!(
            top.scores.accuracy > 0.999,
            "top accuracy = {}",
            top.scores.accuracy
        );
        // Scores descend.
        for w in ranked.windows(2) {
            assert!(w[0].scores.score >= w[1].scores.score);
        }
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let pair = example_pair();
        let cond = vec!["edu".to_string(), "exp".to_string()];
        let tran = vec!["bonus".to_string()];
        let seq_config = CharlesConfig::default().with_threads(1);
        let par_config = CharlesConfig::default().with_threads(4);

        let ctx_seq = SearchContext::new(&pair, "bonus", &tran, &seq_config).unwrap();
        let cands = generate_candidates(&cond, &tran, &seq_config);
        let (seq, _) = run_search(&ctx_seq, &cands).unwrap();

        let ctx_par = SearchContext::new(&pair, "bonus", &tran, &par_config).unwrap();
        let (par, _) = run_search(&ctx_par, &cands).unwrap();

        let seq_sigs: Vec<String> = seq.iter().map(|s| s.signature()).collect();
        let par_sigs: Vec<String> = par.iter().map(|s| s.signature()).collect();
        assert_eq!(seq_sigs, par_sigs);
    }

    #[test]
    fn no_change_pair_yields_identity_summary() {
        let source = TableBuilder::new("s")
            .str_col("k", &["a", "b", "c", "d"])
            .float_col("x", &[1.0, 2.0, 3.0, 4.0])
            .key("k")
            .build()
            .unwrap();
        let pair = SnapshotPair::align(source.clone(), source).unwrap();
        let config = CharlesConfig::default();
        let tran = vec!["x".to_string()];
        let ctx = SearchContext::new(&pair, "x", &tran, &config).unwrap();
        let cands = generate_candidates(&[], &tran, &config);
        let (ranked, _) = run_search(&ctx, &cands).unwrap();
        let top = &ranked[0];
        assert!((top.scores.accuracy - 1.0).abs() < 1e-12);
        assert!(top.cts.iter().all(|ct| ct.is_no_change()));
    }
}
