//! Candidate enumeration and (parallel) evaluation.
//!
//! A *candidate* is one `(C, T, k)` triple: condition-attribute subset,
//! transformation-attribute subset, and partition count. Evaluating a
//! candidate runs the paper's diff-discovery pipeline — global fit →
//! residual clustering → condition induction → per-partition fits →
//! scoring — and yields one scored [`ChangeSummary`]. The search evaluates
//! every candidate, deduplicates structurally identical summaries (keeping
//! the best score), and ranks.
//!
//! ## The zero-copy data plane
//!
//! [`SearchContext`] is built **once** per engine run and shared by every
//! worker thread. It extracts each numeric attribute into an `Arc`-backed
//! [`NumericView`] exactly once (`Float64` columns alias the table's own
//! storage), precomputes the candidate-independent change signals
//! (absolute and relative delta), and memoizes the global regression per
//! transformation subset — candidates sharing `T` but differing in
//! `(C, k)` reuse one [`LinearFit`]. The per-candidate loop therefore
//! performs no full-column clones and no string-keyed map lookups: columns
//! are reached through interned [`AttrId`]s, and partition rows are
//! re-derived through the relation layer's dictionary-code fast paths.

use crate::combi::bounded_subsets;
use crate::config::CharlesConfig;
use crate::ct::ConditionalTransformation;
use crate::error::{CharlesError, Result};
use crate::executor::{LocalExecutor, ShardExecutor};
use crate::partition::{cluster_residuals, induce_partitions};
use crate::score::ScoringContext;
use crate::snap::snap_fit;
use crate::summary::ChangeSummary;
use crate::transform::{Term, Transformation};
use charles_numerics::kernels;
use charles_numerics::ols::{fit_constant, fit_from_parts, fit_ols_cols, ColumnMoments, LinearFit};
use charles_relation::{AttrId, AttrRef, NumericView, RowRange, SnapshotPair, Table};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// One point of the search space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// Condition attributes `C` (may be empty: single universal partition).
    pub cond_attrs: Vec<AttrRef>,
    /// Transformation attributes `T` (never empty).
    pub tran_attrs: Vec<AttrRef>,
    /// Number of residual clusters to request.
    pub k: usize,
}

/// Search bookkeeping for reporting and experiments.
#[derive(Debug, Clone, Default)]
pub struct SearchStats {
    /// Candidates enumerated.
    pub candidates: usize,
    /// Candidates that produced a summary (some fail, e.g. tiny data).
    pub evaluated: usize,
    /// Distinct summaries after deduplication.
    pub distinct: usize,
    /// Worker threads the evaluation actually ran on (after clamping the
    /// configured count to the candidate count), so benchmarks report the
    /// parallelism achieved rather than the parallelism requested.
    pub threads_used: usize,
}

/// The memoization plane shared by candidate evaluations — and, through
/// [`crate::session::Session`], *across* runs.
///
/// All keys carry the target attribute's interned id, so one cache instance
/// can serve multi-target sessions without cross-talk. Entries are valid
/// for exactly one snapshot pair and one *search-relevant* configuration
/// (everything except `alpha`, which is part of the candidate key): the
/// session invalidates the whole plane when its config changes, and runs
/// carrying a per-query config override get a private fresh instance.
#[derive(Default)]
pub struct PlaneCaches {
    /// Global fit per (target, transformation subset) (`None` =
    /// infeasible), shared across worker threads so equal-`T` candidates
    /// fit once.
    fit_memo: Mutex<HashMap<FitKey, Arc<Option<LinearFit>>>>,
    /// Cluster labelings per (target, change signal, k): the delta signals
    /// are candidate-independent and residuals depend only on `T`, so the
    /// dominant per-candidate cost (1-D k-means over all rows) is shared
    /// across every candidate with the same signal — different condition
    /// subsets reuse the identical labeling.
    label_memo: Mutex<HashMap<LabelKey, Arc<Vec<usize>>>>,
    /// Fully evaluated candidates per (target, C, T, k, α): a warm rerun of
    /// an identical query re-ranks cached summaries without re-inducing
    /// partitions or refitting anything.
    candidate_memo: Mutex<HashMap<CandidateKey, Arc<Option<ChangeSummary>>>>,
    /// Number of global OLS fits actually computed (memo misses).
    fits_computed: AtomicUsize,
    /// Number of labelings actually computed (clusterings + categorical
    /// groupings; memo misses).
    labelings_computed: AtomicUsize,
    /// Number of candidate evaluations actually computed (memo misses).
    candidates_computed: AtomicUsize,
}

impl PlaneCaches {
    /// Global fits computed so far (memo misses, monotone).
    pub fn fits_computed(&self) -> usize {
        self.fits_computed.load(Ordering::Relaxed)
    }

    /// Labelings computed so far (memo misses, monotone).
    pub fn labelings_computed(&self) -> usize {
        self.labelings_computed.load(Ordering::Relaxed)
    }

    /// Candidate evaluations computed so far (memo misses, monotone).
    pub fn candidates_computed(&self) -> usize {
        self.candidates_computed.load(Ordering::Relaxed)
    }

    /// Approximate resident bytes of the memo planes. Fits and labelings
    /// hold O(rows) buffers (residuals; per-row labels), so on large
    /// pairs the memos rival the column plane — memory-budgeted owners
    /// ([`crate::SessionManager`]) must see them. Entry growth is bounded
    /// by the enumerated search space per target (candidate results are
    /// additionally memoized only at the session's own α).
    pub fn approx_bytes(&self) -> usize {
        let fits: usize = self
            .fit_memo
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .map(|fit| {
                fit.as_ref()
                    .as_ref()
                    .map_or(16, |f| (f.residuals.len() + f.coefficients.len()) * 8 + 64)
            })
            .sum();
        let labelings: usize = self
            .label_memo
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .map(|labels| labels.len() * 8 + 64)
            .sum();
        // Summaries are small structured data (a few CTs of terms and
        // descriptors); a flat per-entry estimate is plenty here.
        let candidates = self
            .candidate_memo
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
            * 512;
        fits + labelings + candidates
    }
}

impl fmt::Debug for PlaneCaches {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PlaneCaches")
            .field("fits_computed", &self.fits_computed())
            .field("labelings_computed", &self.labelings_computed())
            .field("candidates_computed", &self.candidates_computed())
            .finish_non_exhaustive()
    }
}

/// Memo key for one global fit: (target, transformation subset).
type FitKey = (AttrId, Vec<AttrId>);

/// Memo key for one labeling: (target, structural signal identity).
type LabelKey = (AttrId, LabelingKey);

/// Memo key identifying one fully evaluated candidate: target, condition
/// subset, transformation subset, k, and the α its labelings were judged
/// under (α picks the best labeling *within* a candidate, so it is part of
/// the evaluation's identity; everything else search-relevant is pinned by
/// the cache instance).
type CandidateKey = (AttrId, Vec<AttrId>, Vec<AttrId>, usize, u64);

/// Everything shared by candidate evaluations for one engine run.
///
/// Construction performs exactly one extraction per numeric attribute;
/// evaluation threads only ever read through shared views. The memo plane
/// lives behind an `Arc` so a [`crate::session::Session`] can keep it alive
/// across runs.
pub struct SearchContext<'a> {
    /// The aligned snapshot pair.
    pub pair: &'a SnapshotPair,
    /// Target attribute name.
    pub target_attr: &'a str,
    /// Resolved handle of the target attribute.
    pub target: AttrRef,
    /// Interned id of the target attribute (memo-key component).
    target_id: AttrId,
    /// Target values aligned to source rows (shared view).
    pub y_target: NumericView,
    /// Source values of the target attribute (shared view).
    pub y_source: NumericView,
    /// Source columns for every numeric attribute usable in models,
    /// extracted once and keyed by interned attribute id.
    pub views: HashMap<AttrId, NumericView>,
    /// Engine configuration.
    pub config: &'a CharlesConfig,
    /// Absolute change of the target per row (candidate-independent).
    delta: NumericView,
    /// Relative change of the target per row (candidate-independent).
    rel_delta: NumericView,
    /// Shared scoring context (built once, used by all candidates).
    scoring: ScoringContext<'a>,
    /// The memo plane (session-owned for warm runs, fresh otherwise).
    caches: Arc<PlaneCaches>,
    /// Whether fully evaluated candidates may enter the memo plane.
    /// Sessions disable this for off-default-α runs: candidate results are
    /// α-keyed, so caching them for every α a slider visits would grow the
    /// session-lifetime memo without bound. Fits and labelings are
    /// α-independent and always memoized.
    memoize_candidates: bool,
    /// The shard execution plane (`None` = unsharded). When present,
    /// global fits are computed from per-shard sufficient statistics —
    /// phase-A moments, then phase-B blocked Gram partials — fetched from
    /// the executor (in-process threads or remote workers) and merged on
    /// the canonical block grid, bit-identical to the unsharded
    /// computation; see [`SearchContext::with_executor`]. Statistics are
    /// requested only when a fit actually misses the memo, so warm reruns
    /// never touch the executor.
    executor: Option<Arc<dyn ShardExecutor>>,
}

/// Memo key for one clustering request. Clustering depends only on the
/// signal values and `k`; the signal is identified structurally.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum LabelingKey {
    /// Residuals of the global fit for a transformation subset.
    Residual(Vec<AttrId>, usize),
    /// Absolute change of the target.
    Delta(usize),
    /// Relative change of the target.
    RelDelta(usize),
    /// GROUP-BY-value labels of one categorical condition attribute.
    Categorical(AttrId),
}

impl<'a> SearchContext<'a> {
    /// Build the shared context (extracts each numeric column once) with a
    /// private, run-local memo plane.
    pub fn new(
        pair: &'a SnapshotPair,
        target_attr: &'a str,
        tran_attrs: &[String],
        config: &'a CharlesConfig,
    ) -> Result<Self> {
        let source = pair.source();
        let schema = source.schema();
        let target = schema.attr_ref(target_attr)?;
        let y_target = pair.target_numeric_view(target_attr)?;
        let y_source = source.numeric_view(target_attr)?;
        let mut views = HashMap::new();
        for attr in tran_attrs {
            let id = schema.attr_id(attr)?;
            views.insert(id, source.numeric_view_by_id(id)?);
        }
        // The target's source values are always available (identity CTs and
        // autoregressive terms read them).
        views
            .entry(target.id().ok_or_else(|| unresolved_attr(&target))?)
            .or_insert_with(|| y_source.clone());

        let (delta, rel_delta) = change_signals(&y_target, &y_source);
        let scale = crate::score::derive_scale(&y_target, &y_source);
        Self::from_plane(
            pair,
            target_attr,
            target,
            y_target,
            y_source,
            delta,
            rel_delta,
            scale,
            views,
            config,
            Arc::new(PlaneCaches::default()),
            true,
        )
    }

    /// Assemble a context over an already-extracted data plane and a
    /// (possibly warm, session-owned) memo plane. No column is touched:
    /// every argument is an `Arc`-shared view.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_plane(
        pair: &'a SnapshotPair,
        target_attr: &'a str,
        target: AttrRef,
        y_target: NumericView,
        y_source: NumericView,
        delta: NumericView,
        rel_delta: NumericView,
        scale: f64,
        views: HashMap<AttrId, NumericView>,
        config: &'a CharlesConfig,
        caches: Arc<PlaneCaches>,
        memoize_candidates: bool,
    ) -> Result<Self> {
        let scoring = ScoringContext::from_views_scaled(
            pair.source(),
            target_attr,
            y_target.clone(),
            y_source.clone(),
            views.clone(),
            scale,
            config,
        );
        let target_id = target.id().ok_or_else(|| unresolved_attr(&target))?;
        Ok(SearchContext {
            pair,
            target_attr,
            target_id,
            target,
            y_target,
            y_source,
            views,
            config,
            delta,
            rel_delta,
            scoring,
            caches,
            memoize_candidates,
            executor: None,
        })
    }

    /// Attach a shard execution plane. Global fits that miss the memo
    /// then fetch per-shard sufficient statistics from the executor —
    /// phase-A moments, then phase-B blocked Gram statistics under the
    /// merged scales — and merge them here; by the construction in
    /// `charles_numerics::ols`, the merged fit is **byte-identical** to
    /// the unsharded one, so everything downstream (residual clustering,
    /// condition induction, scoring, ranking) is too. Warm (memoized)
    /// fits never touch the executor.
    // lint:allow(cache-invalidation: the shard-equivalence contract makes executor-computed fits byte-identical to unsharded ones, so swapping the execution plane cannot invalidate a memoized fit, labeling, or candidate)
    pub fn with_executor(mut self, executor: Arc<dyn ShardExecutor>) -> Self {
        self.executor = Some(executor);
        self
    }

    /// Attach an in-process row-range shard layout over this context's
    /// pair — sugar for [`SearchContext::with_executor`] with a
    /// [`LocalExecutor`]. Boundaries must sit on the canonical Gram block
    /// grid ([`RowRange::split_aligned`]).
    pub fn with_shards(self, ranges: &[RowRange]) -> Self {
        let executor = LocalExecutor::with_ranges(SnapshotPair::clone(self.pair), ranges.to_vec());
        self.with_executor(Arc::new(executor))
    }

    /// Number of attached shard ranges (0 = unsharded).
    pub fn shard_count(&self) -> usize {
        self.executor.as_ref().map_or(0, |e| e.ranges().len())
    }

    /// Memoized clustering of one change signal.
    fn labels_for(&self, key: LabelingKey, signal: &[f64], k: usize) -> Result<Arc<Vec<usize>>> {
        memoized(&self.caches.label_memo, (self.target_id, key), || {
            self.caches
                .labelings_computed
                .fetch_add(1, Ordering::Relaxed);
            Ok(Arc::new(cluster_residuals(signal, k, self.config)?))
        })
    }

    /// Memoized GROUP-BY-value labeling of one categorical condition
    /// attribute (`None` when the attribute is numeric, null-containing,
    /// or outside the cardinality bounds). Negative results are memoized
    /// as an empty labeling — a real labeling always has ≥ 1 row because
    /// empty tables bail out before any labeling is requested.
    fn categorical_labels_for(&self, attr: &AttrRef) -> Result<Option<Arc<Vec<usize>>>> {
        let Some(id) = attr.id() else {
            return Ok(categorical_labels(self.source(), attr).map(Arc::new));
        };
        let labels = memoized(
            &self.caches.label_memo,
            (self.target_id, LabelingKey::Categorical(id)),
            || {
                self.caches
                    .labelings_computed
                    .fetch_add(1, Ordering::Relaxed);
                Ok(Arc::new(
                    categorical_labels(self.source(), attr).unwrap_or_default(),
                ))
            },
        )?;
        Ok((!labels.is_empty()).then_some(labels))
    }

    fn source(&self) -> &Table {
        self.pair.source()
    }

    /// The shared scoring context.
    pub fn scoring(&self) -> &ScoringContext<'a> {
        &self.scoring
    }

    /// Column views for a transformation-attribute subset, in subset order.
    /// Pure id-indexed lookups — no string hashing, no copies.
    fn columns_for(&self, tran_attrs: &[AttrRef]) -> Result<Vec<&[f64]>> {
        tran_attrs
            .iter()
            .map(|a| {
                let id = a.id().ok_or_else(|| unresolved_attr(a))?;
                Ok(self
                    .views
                    .get(&id)
                    .ok_or_else(|| missing_view(a))?
                    .as_slice())
            })
            .collect()
    }

    /// The memoized global fit for a transformation subset. Candidates with
    /// the same `T` but different `(C, k)` share one OLS solve — and, on a
    /// session-owned plane, so do later runs.
    ///
    /// On an executor-backed context the fit is computed from per-shard
    /// sufficient statistics merged on the canonical block grid (see
    /// [`SearchContext::with_executor`]); the result — including *whether*
    /// the fit is feasible — is bit-identical to the unsharded path.
    fn global_fit(&self, tran_attrs: &[AttrRef]) -> Result<Arc<Option<LinearFit>>> {
        let key: Vec<AttrId> = tran_attrs
            .iter()
            .map(|a| a.id().ok_or_else(|| unresolved_attr(a)))
            .collect::<Result<_>>()?;
        memoized(&self.caches.fit_memo, (self.target_id, key), || {
            self.caches.fits_computed.fetch_add(1, Ordering::Relaxed);
            let cols = self.columns_for(tran_attrs)?;
            let Some(executor) = &self.executor else {
                return Ok(Arc::new(fit_ols_cols(&cols, &self.y_target).ok()));
            };
            Ok(Arc::new(self.distributed_global_fit(
                executor.as_ref(),
                tran_attrs,
                &cols,
            )?))
        })
    }

    /// The executor-backed global fit: fetch phase-A moments per shard,
    /// merge them (exact: `max`/`+`/`&&`), derive the conditioning scales
    /// centrally, fetch phase-B blocked Gram statistics under those
    /// scales, and solve here from the block-ordered fold. *Numeric*
    /// infeasibility (too few rows, non-finite data, unsolvable systems)
    /// maps to `Ok(None)` — exactly the cases where the central
    /// `fit_ols_cols` fails — while executor/transport failures propagate
    /// as hard errors so a dead worker can never masquerade as an
    /// infeasible candidate.
    fn distributed_global_fit(
        &self,
        executor: &dyn ShardExecutor,
        tran_attrs: &[AttrRef],
        full_cols: &[&[f64]],
    ) -> Result<Option<LinearFit>> {
        let names: Vec<String> = tran_attrs.iter().map(|a| a.name().to_string()).collect();
        // Phase A: per-shard moments; the merge is exact.
        let moments = executor.column_moments(self.target_attr, &names)?;
        // All-empty layouts (zero-row pairs) have no parts to take the
        // column count from; fail validation exactly like the central
        // path does on zero rows.
        let merged = if moments.is_empty() {
            ColumnMoments {
                rows: 0,
                max_abs: vec![0.0; tran_attrs.len()],
                finite: true,
            }
        } else {
            ColumnMoments::merge(&moments)
        };
        let Ok(scales) = merged.validated_scales(tran_attrs.len()) else {
            return Ok(None);
        };
        // Phase B: per-shard blocked Gram statistics on the canonical grid.
        let parts = executor.gram_partials(self.target_attr, &names, &scales)?;
        Ok(fit_from_parts(parts, &scales, full_cols, &self.y_target).ok())
    }
}

/// The candidate-independent change signals of one target plane: absolute
/// and relative per-row delta.
pub(crate) fn change_signals(
    y_target: &NumericView,
    y_source: &NumericView,
) -> (NumericView, NumericView) {
    let delta: Vec<f64> = y_target
        .iter()
        .zip(y_source.iter())
        .map(|(t, s)| t - s)
        .collect();
    let rel_delta: Vec<f64> = y_target
        .iter()
        .zip(y_source.iter())
        .map(|(t, s)| (t - s) / s.abs().max(1.0))
        .collect();
    (NumericView::new(delta), NumericView::new(rel_delta))
}

/// Double-checked memoization over a mutex-guarded map. The computation
/// runs outside the lock: concurrent first-comers may race to compute the
/// same entry, but every computation here is deterministic, so whichever
/// insertion lands first is identical to the losers — and `or_insert`
/// guarantees all callers observe the same shared value.
pub(crate) fn memoized<K, V, F>(memo: &Mutex<HashMap<K, V>>, key: K, compute: F) -> Result<V>
where
    K: Eq + std::hash::Hash,
    V: Clone,
    F: FnOnce() -> Result<V>,
{
    if let Some(hit) = memo
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(&key)
    {
        return Ok(hit.clone());
    }
    let value = compute()?;
    Ok(memo
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .entry(key)
        .or_insert(value)
        .clone())
}

fn unresolved_attr(attr: &AttrRef) -> CharlesError {
    CharlesError::BadConfig(format!(
        "attribute {:?} was not resolved against the schema",
        attr.name()
    ))
}

fn missing_view(attr: &AttrRef) -> CharlesError {
    CharlesError::BadConfig(format!(
        "no extracted column view for attribute {:?}",
        attr.name()
    ))
}

/// Enumerate the `(C, T, k)` search space.
///
/// For every transformation subset `T` there is one *global* candidate
/// (`C = ∅`, `k = 1`, a single universal partition — the "R4"-style
/// summary), plus one candidate per non-empty condition subset and each
/// `k ≥ 2` in the configured range.
pub fn generate_candidates(
    cond_attrs: &[AttrRef],
    tran_attrs: &[AttrRef],
    config: &CharlesConfig,
) -> Vec<Candidate> {
    let mut out = Vec::new();
    let t_subsets = bounded_subsets(tran_attrs, config.max_transform_attrs);
    let c_subsets = bounded_subsets(cond_attrs, config.max_condition_attrs);
    for t in &t_subsets {
        if config.k_min <= 1 {
            out.push(Candidate {
                cond_attrs: Vec::new(),
                tran_attrs: t.clone(),
                k: 1,
            });
        }
        for c in &c_subsets {
            for k in config.k_min.max(2)..=config.k_max {
                out.push(Candidate {
                    cond_attrs: c.clone(),
                    tran_attrs: t.clone(),
                    k,
                });
            }
        }
    }
    out
}

/// Mean absolute error of an affine model over a partition — columnwise
/// (one [`kernels::axpy`] sweep per predictor, then one lane-accumulated
/// L1 pass) rather than a per-row dot product.
fn partition_mae(cols: &[Vec<f64>], y: &[f64], coefs: &[f64], intercept: f64) -> f64 {
    if y.is_empty() {
        return 0.0;
    }
    let mut pred = vec![intercept; y.len()];
    for (&c, col) in coefs.iter().zip(cols.iter()) {
        kernels::axpy(&mut pred, c, col);
    }
    kernels::sum_abs_diff(&pred, y) / y.len() as f64
}

/// Fit a (possibly snapped) linear model on a partition, returning the
/// transformation and its mean absolute error over *all* partition rows.
///
/// Robustness: after a first OLS pass, rows whose residuals exceed 6 MADs
/// are treated as out-of-policy edits; when they are few (≤ 20%) the model
/// — and all subsequent constant snapping — is fitted on the inliers only,
/// so a handful of hand-edited cells cannot drag the recovered policy.
fn fit_partition(
    ctx: &SearchContext<'_>,
    tran_attrs: &[AttrRef],
    rows: &[usize],
) -> Option<(Transformation, f64)> {
    let y: Vec<f64> = rows.iter().map(|&r| ctx.y_target[r]).collect();
    let full_cols = ctx.columns_for(tran_attrs).ok()?;
    // Per-partition row gathers (bounded by the partition size — the only
    // copies the evaluation makes, and OLS needs contiguous input anyway).
    let cols: Vec<Vec<f64>> = full_cols
        .iter()
        .map(|c| rows.iter().map(|&r| c[r]).collect())
        .collect();

    // Enough rows for a full fit (n = p+1 is exact interpolation, which is
    // legitimate here: two points determine the affine rule that produced
    // them)? Otherwise fall back to a constant model.
    let mut fit: LinearFit = if rows.len() > cols.len() {
        match charles_numerics::ols::fit_ols(&cols, &y) {
            Ok(f) => f,
            Err(_) => fit_constant(&y).ok()?,
        }
    } else {
        fit_constant(&y).ok()?
    };

    // One-step trimmed refit (see doc comment). Track the inlier set: the
    // snapping pass below must see the same robust view of the data.
    let mut in_cols: Vec<Vec<f64>> = cols.clone();
    let mut in_y: Vec<f64> = y.clone();
    if !fit.residuals.is_empty() {
        let spread = charles_numerics::stats::mad(&fit.residuals).unwrap_or(0.0);
        if spread > 0.0 {
            let cutoff = 6.0 * spread;
            let inliers: Vec<usize> = (0..y.len())
                .filter(|&i| fit.residuals[i].abs() <= cutoff)
                .collect();
            let n_out = y.len() - inliers.len();
            if n_out > 0 && n_out * 5 <= y.len() && inliers.len() > cols.len() {
                let trimmed_cols: Vec<Vec<f64>> = cols
                    .iter()
                    .map(|c| inliers.iter().map(|&i| c[i]).collect())
                    .collect();
                let trimmed_y: Vec<f64> = inliers.iter().map(|&i| y[i]).collect();
                if let Ok(refit) = charles_numerics::ols::fit_ols(&trimmed_cols, &trimmed_y) {
                    fit = refit;
                    in_cols = trimmed_cols;
                    in_y = trimmed_y;
                }
            }
        }
    }

    let (coefficients, intercept) = if ctx.config.snap_constants {
        let used_cols: &[Vec<f64>] = if fit.coefficients.is_empty() {
            &[]
        } else {
            &in_cols
        };
        let snapped = snap_fit(used_cols, &in_y, &fit, ctx.config.snap_tolerance);
        (snapped.coefficients, snapped.intercept)
    } else {
        (fit.coefficients.clone(), fit.intercept)
    };

    // Kill numerically-dust terms: a coefficient whose whole contribution
    // across the partition is below 1e-9 of the target magnitude carries
    // no information (ridge fallbacks and collinear predictors produce
    // ±1e-16-style coefficients that would otherwise pollute rendering).
    let y_scale = kernels::sum_abs(&y) / y.len().max(1) as f64 + 1.0;
    let coefficients: Vec<f64> = coefficients
        .iter()
        .zip(cols.iter())
        .map(|(&coefficient, col)| {
            let (col_max, _) = kernels::max_abs_finite(col);
            if coefficient.abs() * col_max < 1e-9 * y_scale {
                0.0
            } else {
                coefficient
            }
        })
        .collect();
    let mae = partition_mae(&cols, &y, &coefficients, intercept);

    // A model that snapped all the way to `new = 1·old + 0` *is* the
    // identity: render it as "no change".
    let is_identity = intercept == 0.0
        && tran_attrs
            .iter()
            .zip(coefficients.iter())
            .all(|(attr, &c)| (attr.name() == ctx.target_attr && c == 1.0) || c == 0.0)
        && tran_attrs
            .iter()
            .zip(coefficients.iter())
            .any(|(attr, &c)| attr.name() == ctx.target_attr && c == 1.0);
    if is_identity {
        return Some((Transformation::Identity, mae));
    }

    let terms: Vec<Term> = tran_attrs
        .iter()
        .zip(coefficients.iter())
        .map(|(attr, &coefficient)| Term {
            attr: attr.clone(),
            coefficient,
        })
        .collect();
    Some((
        Transformation::linear(ctx.target_attr, terms, intercept),
        mae,
    ))
}

/// Fuse two descriptors over the union of their row sets: complementary
/// pairs vanish; adjacent numeric intervals concatenate. Returns `None`
/// when not fusable, `Some(None)` when the pair covers everything (drop
/// both), `Some(Some(d))` for a fused replacement.
fn fuse_descriptors(
    a: &crate::condition::Descriptor,
    b: &crate::condition::Descriptor,
) -> Option<Option<crate::condition::Descriptor>> {
    use crate::condition::Descriptor as D;
    if *b == a.negate() {
        return Some(None);
    }
    if a.attr() != b.attr() {
        return None;
    }
    let attr = a.attr_ref().clone();
    // Normalize ordering: try both (a, b) and (b, a).
    let fused = |x: &D, y: &D| -> Option<Option<D>> {
        match (x, y) {
            // `v < m` ∪ `m ≤ v < hi` = `v < hi`
            (D::LessThan { threshold, .. }, D::InRange { lo, hi, .. }) if threshold == lo => {
                Some(Some(D::LessThan {
                    attr: attr.clone(),
                    threshold: *hi,
                }))
            }
            // `lo ≤ v < m` ∪ `m ≤ v < hi` = `lo ≤ v < hi`
            (
                D::InRange { lo, hi, .. },
                D::InRange {
                    lo: lo2, hi: hi2, ..
                },
            ) if hi == lo2 => Some(Some(D::InRange {
                attr: attr.clone(),
                lo: *lo,
                hi: *hi2,
            })),
            // `lo ≤ v < m` ∪ `v ≥ m` = `v ≥ lo`
            (D::InRange { lo, hi, .. }, D::AtLeast { threshold, .. }) if hi == threshold => {
                Some(Some(D::AtLeast {
                    attr: attr.clone(),
                    threshold: *lo,
                }))
            }
            _ => None,
        }
    };
    fused(a, b).or_else(|| fused(b, a))
}

/// If two conditions are identical except for exactly one fusable pair of
/// descriptors (complementary, like `grade < 24` vs `grade ≥ 24`, or
/// adjacent intervals), return the condition describing the union of the
/// two partitions.
fn merge_conditions(
    a: &crate::condition::Condition,
    b: &crate::condition::Condition,
) -> Option<crate::condition::Condition> {
    let da = a.descriptors();
    let db = b.descriptors();
    if da.len() != db.len() || da.is_empty() {
        return None;
    }
    let mut used = vec![false; db.len()];
    let mut mismatch: Option<(usize, usize)> = None; // (index in da, index in db)
    for (i, d) in da.iter().enumerate() {
        if let Some(pos) = db
            .iter()
            .enumerate()
            .position(|(j, other)| !used[j] && other == d)
        {
            used[pos] = true;
            continue;
        }
        if mismatch.is_some() {
            return None; // more than one mismatching descriptor
        }
        mismatch = Some((i, usize::MAX));
    }
    let (ai, _) = mismatch?;
    let bj = used.iter().position(|&u| !u)?;
    let fused = fuse_descriptors(&da[ai], &db[bj])?;
    let mut kept: Vec<crate::condition::Descriptor> = db
        .iter()
        .enumerate()
        .filter(|&(j, _)| j != bj)
        .map(|(_, d)| d.clone())
        .collect();
    if let Some(replacement) = fused {
        kept.push(replacement);
    }
    Some(crate::condition::Condition::new(kept))
}

/// Merge CTs carrying the *same* transformation whose conditions differ by
/// one complementary descriptor. Tree induction splits every path by the
/// chosen attribute, so semantically-identical siblings are common
/// (`POL ∧ grade < 24` and `POL ∧ grade ≥ 24`, both "4% + $1500"); merging
/// restores the minimal rule list.
fn merge_equivalent_cts(
    mut cts: Vec<ConditionalTransformation>,
    total_rows: usize,
) -> Vec<ConditionalTransformation> {
    loop {
        let mut merged: Option<(usize, usize, crate::condition::Condition)> = None;
        'outer: for i in 0..cts.len() {
            for j in (i + 1)..cts.len() {
                if cts[i].transformation.signature() != cts[j].transformation.signature() {
                    continue;
                }
                if let Some(cond) = merge_conditions(&cts[i].condition, &cts[j].condition) {
                    merged = Some((i, j, cond));
                    break 'outer;
                }
            }
        }
        let Some((i, j, condition)) = merged else {
            return cts;
        };
        let b = cts.remove(j);
        let a = &mut cts[i];
        let (na, nb) = (a.rows.len() as f64, b.rows.len() as f64);
        // Same model on both sides: the union MAE is the weighted mean.
        let mae = if na + nb > 0.0 {
            (a.mae * na + b.mae * nb) / (na + nb)
        } else {
            0.0
        };
        let mut rows = std::mem::take(&mut a.rows);
        rows.extend(b.rows);
        rows.sort_unstable();
        *a = ConditionalTransformation::new(
            condition,
            a.transformation.clone(),
            rows,
            total_rows,
            mae,
        );
    }
}

/// Dense labels from a categorical column's dictionary codes (`None` for
/// numeric, null-containing, or high-cardinality columns). Grouping runs
/// on integer codes — no string materialization.
fn categorical_labels(table: &Table, attr: &AttrRef) -> Option<Vec<usize>> {
    let col = match attr.id() {
        Some(id) if id.index() < table.width() => table.column_by_id(id),
        _ => table.column_by_name(attr.name()).ok()?,
    };
    if col.dtype().is_numeric() || col.null_count() > 0 {
        return None;
    }
    let groups = col.group_codes()?;
    if groups.n_groups() < 2 || groups.n_groups() > 24 {
        return None;
    }
    Some(groups.labels)
}

/// Build conditional transformations from one labeling.
fn cts_from_labels(
    ctx: &SearchContext<'_>,
    candidate: &Candidate,
    labels: &[usize],
) -> Result<Vec<ConditionalTransformation>> {
    let n = ctx.y_target.len();
    let specs = induce_partitions(ctx.source(), &candidate.cond_attrs, labels, ctx.config)?;
    let tolerance = ctx.config.change_tolerance;
    let mut cts = Vec::with_capacity(specs.len());
    for spec in specs {
        if spec.rows.is_empty() {
            continue;
        }
        // "No change" partitions get the identity transformation (the
        // hatched rectangle in the paper's step 10).
        let unchanged = spec
            .rows
            .iter()
            .all(|&r| (ctx.y_target[r] - ctx.y_source[r]).abs() <= tolerance);
        let (transformation, mae) = if unchanged {
            (Transformation::Identity, 0.0)
        } else {
            match fit_partition(ctx, &candidate.tran_attrs, &spec.rows) {
                Some(ft) => ft,
                None => continue,
            }
        };
        cts.push(ConditionalTransformation::new(
            spec.condition,
            transformation,
            spec.rows,
            n,
            mae,
        ));
    }
    Ok(merge_equivalent_cts(cts, n))
}

/// Evaluate one candidate into a scored summary. Returns `Ok(None)` when
/// the candidate is infeasible (e.g. not enough rows for the global fit).
///
/// Results are memoized on the context's [`PlaneCaches`]: re-evaluating an
/// identical candidate (same target, `C`, `T`, `k`, and α) is a map lookup
/// plus a summary clone. On a session-owned plane this makes warm reruns of
/// a whole query O(candidates) map hits.
pub fn evaluate_candidate(
    ctx: &SearchContext<'_>,
    candidate: &Candidate,
) -> Result<Option<ChangeSummary>> {
    let ids = |attrs: &[AttrRef]| -> Option<Vec<AttrId>> { attrs.iter().map(|a| a.id()).collect() };
    let key: Option<CandidateKey> = if !ctx.memoize_candidates {
        // Off-default-α session runs: compute without touching the memo
        // (see `SearchContext::memoize_candidates`).
        None
    } else {
        match (ids(&candidate.cond_attrs), ids(&candidate.tran_attrs)) {
            (Some(cond), Some(tran)) => Some((
                ctx.target_id,
                cond,
                tran,
                candidate.k,
                ctx.config.alpha.to_bits(),
            )),
            // Unresolved handles (hand-built candidates) bypass the memo.
            _ => None,
        }
    };
    let Some(key) = key else {
        return evaluate_candidate_uncached(ctx, candidate);
    };
    let cached = memoized(&ctx.caches.candidate_memo, key, || {
        ctx.caches
            .candidates_computed
            .fetch_add(1, Ordering::Relaxed);
        Ok(Arc::new(evaluate_candidate_uncached(ctx, candidate)?))
    })?;
    Ok((*cached).clone())
}

/// The memo-free candidate evaluation (see [`evaluate_candidate`]).
fn evaluate_candidate_uncached(
    ctx: &SearchContext<'_>,
    candidate: &Candidate,
) -> Result<Option<ChangeSummary>> {
    let n = ctx.y_target.len();
    if n == 0 {
        return Ok(None);
    }

    // Global fit over all rows; its residuals drive partition discovery.
    // Shared across all candidates with the same transformation subset.
    let global = ctx.global_fit(&candidate.tran_attrs)?;
    let Some(global) = global.as_ref() else {
        return Ok(None);
    };

    let scoring = ctx.scoring();
    let mut best: Option<(ChangeSummary, f64)> = None;
    let mut seen_labelings: Vec<Arc<Vec<usize>>> = Vec::new();
    let mut labelings: Vec<Arc<Vec<usize>>> = Vec::new();
    // The change signals candidate partitions are mined from: the global
    // fit's residuals (the paper's method) plus the direct absolute and
    // relative deltas (precomputed once per run — when latent groups differ
    // in *slope*, residuals interleave groups, the paper's acknowledged
    // "cyclic dependency" between clustering and pattern sharing).
    // Each clustering is memoized: candidates sharing a signal and k (all
    // condition subsets do) reuse one k-means run.
    let tkey: Vec<AttrId> = candidate
        .tran_attrs
        .iter()
        .map(|a| a.id().ok_or_else(|| unresolved_attr(a)))
        .collect::<Result<_>>()?;
    let k = candidate.k;
    labelings.push(ctx.labels_for(LabelingKey::Residual(tkey, k), &global.residuals, k)?);
    labelings.push(ctx.labels_for(LabelingKey::Delta(k), &ctx.delta, k)?);
    labelings.push(ctx.labels_for(LabelingKey::RelDelta(k), &ctx.rel_delta, k)?);
    // For a single categorical condition attribute, the GROUP-BY-value
    // partitioning is an obvious candidate in its own right: when the
    // latent groups' change behaviours overlap in signal space (similar
    // slopes, wide value ranges), clustering cannot seed them, but a direct
    // per-value split still recovers them exactly.
    if let [attr] = candidate.cond_attrs.as_slice() {
        labelings.extend(ctx.categorical_labels_for(attr)?);
    }
    for labels in labelings {
        if seen_labelings
            .iter()
            .any(|seen| Arc::ptr_eq(seen, &labels) || **seen == *labels)
        {
            continue; // identical labeling ⇒ identical summary
        }
        let cts = cts_from_labels(ctx, candidate, &labels)?;
        seen_labelings.push(labels);
        if cts.is_empty() {
            continue;
        }
        let (scores, breakdown) = scoring.score(&cts)?;
        if best.as_ref().is_none_or(|(_, s)| scores.score > *s) {
            let score = scores.score;
            best = Some((
                ChangeSummary {
                    cts,
                    target_attr: ctx.target_attr.to_string(),
                    condition_attrs: candidate
                        .cond_attrs
                        .iter()
                        .map(|a| a.name().to_string())
                        .collect(),
                    transform_attrs: candidate
                        .tran_attrs
                        .iter()
                        .map(|a| a.name().to_string())
                        .collect(),
                    scores,
                    breakdown,
                    total_rows: n,
                },
                score,
            ));
        }
    }
    Ok(best.map(|(summary, _)| summary))
}

/// Reference ("naive") data plane: rebuild a fresh context for one
/// candidate, re-extracting every column and refitting the global model —
/// exactly the per-candidate work the seed implementation did. Kept as an
/// A/B oracle: `BENCH_search.json` measures the shared data plane against
/// this path, and the equivalence test in `tests/determinism.rs` asserts
/// both produce identical summaries.
pub fn evaluate_candidate_naive(
    pair: &SnapshotPair,
    target_attr: &str,
    candidate: &Candidate,
    config: &CharlesConfig,
) -> Result<Option<ChangeSummary>> {
    let tran_names: Vec<String> = candidate
        .tran_attrs
        .iter()
        .map(|a| a.name().to_string())
        .collect();
    let ctx = SearchContext::new(pair, target_attr, &tran_names, config)?;
    let schema = pair.source().schema();
    // Re-resolve the candidate against the fresh context's schema.
    let candidate = Candidate {
        cond_attrs: candidate
            .cond_attrs
            .iter()
            .map(|a| schema.attr_ref(a.name()))
            .collect::<charles_relation::Result<_>>()?,
        tran_attrs: candidate
            .tran_attrs
            .iter()
            .map(|a| schema.attr_ref(a.name()))
            .collect::<charles_relation::Result<_>>()?,
        k: candidate.k,
    };
    evaluate_candidate(&ctx, &candidate)
}

/// Evaluate all candidates (in parallel when configured), deduplicate, and
/// rank by descending score.
pub fn run_search(
    ctx: &SearchContext<'_>,
    candidates: &[Candidate],
) -> Result<(Vec<ChangeSummary>, SearchStats)> {
    let threads = ctx.config.effective_threads().min(candidates.len().max(1));
    let results: Mutex<Vec<ChangeSummary>> = Mutex::new(Vec::new());
    let next = AtomicUsize::new(0);
    let first_error: Mutex<Option<CharlesError>> = Mutex::new(None);

    if threads <= 1 {
        let mut local = Vec::new();
        for candidate in candidates {
            if let Some(summary) = evaluate_candidate(ctx, candidate)? {
                local.push(summary);
            }
        }
        *results.lock().unwrap_or_else(PoisonError::into_inner) = local;
    } else {
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= candidates.len() {
                            break;
                        }
                        match evaluate_candidate(ctx, &candidates[i]) {
                            Ok(Some(summary)) => local.push(summary),
                            Ok(None) => {}
                            Err(e) => {
                                let mut slot =
                                    first_error.lock().unwrap_or_else(PoisonError::into_inner);
                                if slot.is_none() {
                                    *slot = Some(e);
                                }
                                break;
                            }
                        }
                    }
                    results
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .extend(local);
                });
            }
        });
        if let Some(e) = first_error
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
        {
            return Err(e);
        }
    }

    let mut all = results.into_inner().unwrap_or_else(PoisonError::into_inner);
    let evaluated = all.len();

    // Deduplicate by structural signature, keeping the best-scoring copy.
    let mut best: HashMap<String, ChangeSummary> = HashMap::with_capacity(all.len());
    for summary in all.drain(..) {
        let sig = summary.signature();
        match best.get(&sig) {
            Some(existing) if existing.scores.score >= summary.scores.score => {}
            _ => {
                best.insert(sig, summary);
            }
        }
    }
    // lint:allow(ordered-iteration: hash order is erased by the total-order sort below)
    let mut ranked: Vec<ChangeSummary> = best.into_values().collect();
    let distinct = ranked.len();
    // Tie-breaks below the score: fewer CTs; then autoregressive
    // transformations (explaining the new value in terms of the target's
    // *own* previous value reads most naturally: "5% increase on last
    // year's bonus"); then a stable structural key.
    let self_referential = |s: &ChangeSummary| -> bool {
        s.cts.iter().any(|ct| {
            ct.transformation
                .attributes()
                .iter()
                .any(|a| a == ctx.target_attr)
        })
    };
    ranked.sort_by(|a, b| {
        b.scores
            .score
            .total_cmp(&a.scores.score)
            .then(a.cts.len().cmp(&b.cts.len()))
            .then(self_referential(b).cmp(&self_referential(a)))
            .then_with(|| a.signature().cmp(&b.signature()))
    });
    ranked.truncate(ctx.config.max_summaries);

    Ok((
        ranked,
        SearchStats {
            candidates: candidates.len(),
            evaluated,
            distinct,
            threads_used: threads,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_relation::{
        apply_updates, ApplyMode, Expr, Predicate, TableBuilder, UpdateStatement,
    };

    fn example_pair() -> SnapshotPair {
        let source = TableBuilder::new("2016")
            .str_col(
                "name",
                &[
                    "Anne", "Bob", "Amber", "Allen", "Cathy", "Tom", "James", "Lucy", "Frank",
                ],
            )
            .str_col(
                "edu",
                &["PhD", "PhD", "MS", "MS", "BS", "MS", "BS", "MS", "PhD"],
            )
            .int_col("exp", &[2, 3, 5, 1, 2, 4, 3, 4, 1])
            .float_col(
                "bonus",
                &[
                    23_000.0, 25_000.0, 16_000.0, 13_000.0, 11_000.0, 15_000.0, 12_000.0, 15_000.0,
                    21_000.0,
                ],
            )
            .key("name")
            .build()
            .unwrap();
        let policy = [
            UpdateStatement::new(
                "bonus",
                Expr::affine("bonus", 1.05, 1000.0),
                Predicate::eq("edu", "PhD"),
            ),
            UpdateStatement::new(
                "bonus",
                Expr::affine("bonus", 1.04, 800.0),
                Predicate::eq("edu", "MS").and(Predicate::cmp(
                    "exp",
                    charles_relation::CmpOp::Ge,
                    3,
                )),
            ),
            UpdateStatement::new(
                "bonus",
                Expr::affine("bonus", 1.03, 400.0),
                Predicate::eq("edu", "MS").and(Predicate::cmp(
                    "exp",
                    charles_relation::CmpOp::Lt,
                    3,
                )),
            ),
        ];
        let target = apply_updates(&source, &policy, ApplyMode::FirstMatch)
            .unwrap()
            .table;
        SnapshotPair::align(source, target).unwrap()
    }

    /// Resolve attribute names against a pair's source schema.
    fn refs(pair: &SnapshotPair, names: &[&str]) -> Vec<AttrRef> {
        names
            .iter()
            .map(|n| pair.source().schema().attr_ref(n).unwrap())
            .collect()
    }

    #[test]
    fn candidate_generation_shape() {
        let pair = example_pair();
        let config = CharlesConfig::default()
            .with_max_condition_attrs(2)
            .with_max_transform_attrs(1)
            .with_k_range(1, 3);
        let cands = generate_candidates(
            &refs(&pair, &["edu", "exp"]),
            &refs(&pair, &["bonus"]),
            &config,
        );
        // T subsets: {bonus}. Global candidate (C=∅, k=1) + 3 C-subsets × 2
        // k values (2, 3) = 1 + 6.
        assert_eq!(cands.len(), 7);
        assert!(cands.iter().any(|c| c.cond_attrs.is_empty() && c.k == 1));
        assert!(cands.iter().all(|c| !c.tran_attrs.is_empty()));
    }

    #[test]
    fn evaluate_recovers_example_1_with_right_candidate() {
        let pair = example_pair();
        let config = CharlesConfig::default();
        let tran = vec!["bonus".to_string()];
        let ctx = SearchContext::new(&pair, "bonus", &tran, &config).unwrap();
        let candidate = Candidate {
            cond_attrs: refs(&pair, &["edu", "exp"]),
            tran_attrs: refs(&pair, &["bonus"]),
            k: 4,
        };
        let summary = evaluate_candidate(&ctx, &candidate).unwrap().unwrap();
        // Perfect accuracy: the latent rules are exactly linear in bonus.
        assert!(
            summary.scores.accuracy > 0.999,
            "accuracy = {}\n{summary}",
            summary.scores.accuracy
        );
        assert_eq!(summary.cts.len(), 4, "{summary}");
        // One CT must be the identity over the BS partition.
        assert!(summary.cts.iter().any(|ct| ct.is_no_change()));
        // The PhD rule is recovered with round constants.
        let rendered = summary.to_string();
        assert!(rendered.contains("1.05"), "{rendered}");
        assert!(rendered.contains("1000"), "{rendered}");
    }

    #[test]
    fn naive_and_shared_data_planes_agree() {
        let pair = example_pair();
        let config = CharlesConfig::default();
        let tran = vec!["bonus".to_string()];
        let ctx = SearchContext::new(&pair, "bonus", &tran, &config).unwrap();
        for candidate in generate_candidates(
            &refs(&pair, &["edu", "exp"]),
            &refs(&pair, &["bonus"]),
            &config,
        ) {
            let shared = evaluate_candidate(&ctx, &candidate).unwrap();
            let naive = evaluate_candidate_naive(&pair, "bonus", &candidate, &config).unwrap();
            match (shared, naive) {
                (None, None) => {}
                (Some(s), Some(n)) => {
                    assert_eq!(s.signature(), n.signature(), "candidate {candidate:?}");
                    assert_eq!(s.to_string(), n.to_string());
                }
                (s, n) => panic!("planes disagree: {s:?} vs {n:?}"),
            }
        }
    }

    #[test]
    fn global_fit_memo_shares_transformation_subsets() {
        let pair = example_pair();
        let config = CharlesConfig::default();
        let tran = vec!["bonus".to_string()];
        let ctx = SearchContext::new(&pair, "bonus", &tran, &config).unwrap();
        let t = refs(&pair, &["bonus"]);
        let a = ctx.global_fit(&t).unwrap();
        let b = ctx.global_fit(&t).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the memo");
        assert!(a.is_some());
    }

    #[test]
    fn search_ranks_true_summary_first() {
        let pair = example_pair();
        let config = CharlesConfig::default();
        let tran = vec!["bonus".to_string()];
        let ctx = SearchContext::new(&pair, "bonus", &tran, &config).unwrap();
        let candidates = generate_candidates(
            &refs(&pair, &["edu", "exp"]),
            &refs(&pair, &["bonus"]),
            &config,
        );
        let (ranked, stats) = run_search(&ctx, &candidates).unwrap();
        assert!(!ranked.is_empty());
        assert!(stats.evaluated > 0);
        assert!(stats.distinct <= stats.evaluated);
        let top = &ranked[0];
        assert!(
            top.scores.accuracy > 0.999,
            "top accuracy = {}",
            top.scores.accuracy
        );
        // Scores descend.
        for w in ranked.windows(2) {
            assert!(w[0].scores.score >= w[1].scores.score);
        }
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let pair = example_pair();
        let seq_config = CharlesConfig::default().with_threads(1);
        let par_config = CharlesConfig::default().with_threads(4);
        let tran = vec!["bonus".to_string()];

        let ctx_seq = SearchContext::new(&pair, "bonus", &tran, &seq_config).unwrap();
        let cands = generate_candidates(
            &refs(&pair, &["edu", "exp"]),
            &refs(&pair, &["bonus"]),
            &seq_config,
        );
        let (seq, _) = run_search(&ctx_seq, &cands).unwrap();

        let ctx_par = SearchContext::new(&pair, "bonus", &tran, &par_config).unwrap();
        let (par, _) = run_search(&ctx_par, &cands).unwrap();

        let seq_sigs: Vec<String> = seq.iter().map(|s| s.signature()).collect();
        let par_sigs: Vec<String> = par.iter().map(|s| s.signature()).collect();
        assert_eq!(seq_sigs, par_sigs);
    }

    #[test]
    fn no_change_pair_yields_identity_summary() {
        let source = TableBuilder::new("s")
            .str_col("k", &["a", "b", "c", "d"])
            .float_col("x", &[1.0, 2.0, 3.0, 4.0])
            .key("k")
            .build()
            .unwrap();
        let pair = SnapshotPair::align(source.clone(), source).unwrap();
        let config = CharlesConfig::default();
        let tran = vec!["x".to_string()];
        let ctx = SearchContext::new(&pair, "x", &tran, &config).unwrap();
        let cands = generate_candidates(&[], &refs(&pair, &["x"]), &config);
        let (ranked, _) = run_search(&ctx, &cands).unwrap();
        let top = &ranked[0];
        assert!((top.scores.accuracy - 1.0).abs() < 1e-12);
        assert!(top.cts.iter().all(|ct| ct.is_no_change()));
    }
}
