//! The session-oriented query API: a long-lived [`Session`] over a cached
//! data plane.
//!
//! The ChARLES demo flow (paper Figure 3, steps 2–8) is interactive: a user
//! opens a snapshot pair once, picks a changed attribute, tweaks the
//! assistant's shortlists, slides α, and re-runs. A [`Session`] makes that
//! cheap by building the data plane **once per column**: the first use of
//! an attribute extracts it into an `Arc`-shared [`NumericView`] that
//! lives as long as the session, and the per-target change signals, setup
//! reports, global fits, cluster labelings, and evaluated candidates
//! likewise survive *across* runs instead of dying with each search.
//!
//! Queries are plain data ([`Query`], built by chaining), answered by
//! [`Session::run`]; several changed attributes can be explained over the
//! same plane with [`Session::run_multi`]; and the demo's α-slider is
//! [`Session::sweep_alpha`] — O(summaries) per α, with no re-search and no
//! column re-extraction.
//!
//! ```
//! use charles_core::{Query, Session};
//! use charles_relation::{apply_updates, ApplyMode, Expr, Predicate,
//!                        SnapshotPair, TableBuilder, UpdateStatement};
//!
//! let v2016 = TableBuilder::new("2016")
//!     .str_col("name", &["Anne", "Bob", "Cathy", "Dan"])
//!     .str_col("edu", &["PhD", "PhD", "BS", "BS"])
//!     .float_col("bonus", &[23_000.0, 25_000.0, 11_000.0, 9_000.0])
//!     .key("name")
//!     .build()
//!     .unwrap();
//! let policy = [UpdateStatement::new(
//!     "bonus",
//!     Expr::affine("bonus", 1.05, 1000.0),
//!     Predicate::eq("edu", "PhD"),
//! )];
//! let v2017 = apply_updates(&v2016, &policy, ApplyMode::FirstMatch).unwrap().table;
//!
//! let session = Session::open(SnapshotPair::align(v2016, v2017).unwrap()).unwrap();
//! // Step 2: which attributes changed at all?
//! assert_eq!(session.targets().unwrap(), vec!["bonus".to_string()]);
//! // Steps 3–8: query, then slide α without re-searching.
//! let result = session.run(&Query::new("bonus")).unwrap();
//! assert!(result.top().unwrap().scores.accuracy > 0.999);
//! let swept = session.sweep_alpha(&result, &[0.0, 0.5, 1.0]).unwrap();
//! assert_eq!(swept.len(), 3);
//! // A warm rerun of the same query recomputes nothing:
//! let before = session.stats();
//! let again = session.run(&Query::new("bonus")).unwrap();
//! assert_eq!(session.stats().global_fits_computed, before.global_fits_computed);
//! assert_eq!(again.summaries.len(), result.summaries.len());
//! ```

use crate::assistant::{analyze, SetupReport};
use crate::config::CharlesConfig;
use crate::error::{CharlesError, QueryError, Result};
use crate::executor::{validate_layout, LocalExecutor, ShardExecutor};
use crate::score::{derive_scale, ScoringContext};
use crate::search::{
    change_signals, generate_candidates, memoized, run_search, PlaneCaches, SearchContext,
    SearchStats,
};
use crate::summary::ChangeSummary;
use crate::transform::Transformation;
use charles_numerics::ols::{ColumnMoments, GramPartial, GRAM_BLOCK_ROWS};
use charles_relation::{AttrId, AttrRef, NumericView, RowRange, SnapshotPair};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

// The relation plane's compressed-block grid and the numerics Gram grid
// are the same 128-row grid: zone maps, shard boundaries, and Gram
// partials all align block-for-block. A drift in either constant would
// silently break the bit-exact sharding contract, so pin them equal at
// compile time.
const _: () = assert!(charles_relation::GRAM_BLOCK_ROWS == GRAM_BLOCK_ROWS);

/// The schema id of a resolved [`AttrRef`]. Refs produced by
/// `Schema::attr_ref` are always resolved; losing the binding is a
/// construction bug surfaced as a typed error, not a panic on the
/// serving path.
fn resolved_id(attr: &AttrRef) -> Result<AttrId> {
    attr.id().ok_or_else(|| {
        CharlesError::BadTargetAttribute(format!(
            "attribute `{}` lost its schema binding",
            attr.name()
        ))
    })
}

/// One question asked of a [`Session`]: which target to explain, and
/// optionally how. Unset fields fall back to the session's defaults — the
/// assistant's shortlists, the session config's α, and its summary budget.
///
/// Built by chaining:
///
/// ```
/// # use charles_core::Query;
/// let query = Query::new("bonus")
///     .with_alpha(0.7)
///     .with_condition_attrs(["edu", "exp"])
///     .with_transform_attrs(["bonus"])
///     .with_top_k(5);
/// # assert_eq!(query.target, "bonus");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Query {
    /// The changed attribute to explain (must be numeric).
    pub target: String,
    /// Accuracy weight override (demo step 6's slider); `None` = session
    /// config's α.
    pub alpha: Option<f64>,
    /// Condition-attribute shortlist override (demo step 4); `None` = the
    /// assistant's shortlist.
    pub condition_attrs: Option<Vec<String>>,
    /// Transformation-attribute shortlist override (demo step 5); `None` =
    /// the assistant's shortlist.
    pub transform_attrs: Option<Vec<String>>,
    /// Full configuration override. Runs carrying one use a private memo
    /// plane (the session's caches are only valid for its own config).
    pub config: Option<CharlesConfig>,
    /// Ranked-summary budget override; `None` = config's `max_summaries`.
    pub top_k: Option<usize>,
}

impl Query {
    /// A query for `target` with all session defaults.
    pub fn new(target: impl Into<String>) -> Self {
        Query {
            target: target.into(),
            ..Query::default()
        }
    }

    /// Override α for this query only.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = Some(alpha);
        self
    }

    /// Override the condition-attribute shortlist.
    pub fn with_condition_attrs<I, S>(mut self, attrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.condition_attrs = Some(attrs.into_iter().map(Into::into).collect());
        self
    }

    /// Override the transformation-attribute shortlist.
    pub fn with_transform_attrs<I, S>(mut self, attrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.transform_attrs = Some(attrs.into_iter().map(Into::into).collect());
        self
    }

    /// Override the whole configuration for this query.
    pub fn with_config(mut self, config: CharlesConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Override how many ranked summaries to return.
    pub fn with_top_k(mut self, top_k: usize) -> Self {
        self.top_k = Some(top_k);
        self
    }
}

/// Everything one [`Session::run`] produces: ranked summaries plus
/// provenance, and the query they answer.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The query as issued (resolved α is in [`QueryResult::alpha`]).
    pub query: Query,
    /// The α the summaries are scored and ranked under.
    pub alpha: f64,
    /// Ranked summaries, best first (at most the query's summary budget).
    pub summaries: Vec<ChangeSummary>,
    /// The assistant's attribute analysis used for this run (shared with
    /// the session's cache).
    pub setup: Arc<SetupReport>,
    /// Search bookkeeping.
    pub stats: SearchStats,
    /// Wall-clock duration of the search (or of the re-scoring, for
    /// results produced by [`Session::rescore`] / [`Session::sweep_alpha`]).
    pub elapsed: Duration,
}

impl QueryResult {
    /// The best summary, if any.
    pub fn top(&self) -> Option<&ChangeSummary> {
        self.summaries.first()
    }
}

impl fmt::Display for QueryResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:?} @ α={}: {} summaries ({} candidates, {} evaluated, {} distinct) in {:.1?}",
            self.query.target,
            self.alpha,
            self.summaries.len(),
            self.stats.candidates,
            self.stats.evaluated,
            self.stats.distinct,
            self.elapsed
        )?;
        for (i, s) in self.summaries.iter().enumerate() {
            writeln!(f, "#{:<2} {s}", i + 1)?;
        }
        Ok(())
    }
}

/// Monotone counters of the work a [`Session`] has actually performed (memo
/// misses). The difference between two snapshots measures the cost of the
/// runs in between — a warm rerun of an identical query adds zero to every
/// field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Columns extracted into shared views, each on first use (source
    /// side and aligned target side count separately).
    pub columns_extracted: usize,
    /// Per-target change-signal planes built.
    pub target_planes_built: usize,
    /// Setup-assistant reports computed.
    pub setup_reports_computed: usize,
    /// Global OLS fits computed.
    pub global_fits_computed: usize,
    /// Labelings computed (clusterings + categorical groupings).
    pub labelings_computed: usize,
    /// Candidate evaluations computed.
    pub candidates_computed: usize,
}

/// The per-target slice of the data plane: target values aligned to source
/// rows, the candidate-independent change signals, and the scoring scale.
/// Built once per target and shared by every run, re-scoring, and sweep.
#[derive(Debug)]
struct TargetPlane {
    target: AttrRef,
    y_target: NumericView,
    y_source: NumericView,
    delta: NumericView,
    rel_delta: NumericView,
    scale: f64,
}

/// A long-lived handle on one aligned snapshot pair, owning the extracted
/// column plane and every cache the search warms up.
///
/// All query methods take `&self`: a session can be shared behind an `Arc`
/// and queried from several threads (caches are internally synchronized).
/// See the [module docs](self) for a tour.
pub struct Session {
    pair: SnapshotPair,
    config: CharlesConfig,
    /// Source columns extracted into shared views on first use, keyed by
    /// interned attribute id. Lazy so a session (or the one-shot facade
    /// over it) never pays for columns no query reads — on a wide table
    /// only the target, the shortlists, and whatever `targets()` compares
    /// are ever materialized.
    views: Mutex<HashMap<AttrId, NumericView>>,
    /// Target columns in source row order, extracted on first use.
    aligned: Mutex<HashMap<AttrId, NumericView>>,
    /// Per-target change-signal planes.
    planes: Mutex<HashMap<AttrId, Arc<TargetPlane>>>,
    /// Setup reports per target (valid for the session config).
    setups: Mutex<HashMap<AttrId, Arc<SetupReport>>>,
    /// Global fits, labelings, and evaluated candidates (valid for the
    /// session config; see [`PlaneCaches`]).
    caches: Arc<PlaneCaches>,
    /// The shard execution plane (`None` = unsharded). Per-shard
    /// statistics — change-signal slices, phase-A moments, phase-B Gram
    /// partials — come from here and merge on the canonical block grid,
    /// whether the executor runs shards on in-process threads
    /// ([`LocalExecutor`], see [`Session::open_sharded`]) or on remote
    /// workers (see [`Session::open_distributed`]).
    executor: Option<Arc<dyn ShardExecutor>>,
    /// The same executor, concretely typed, when it is this session's own
    /// [`LocalExecutor`] — the session then reads columns through the
    /// executor's extraction cache instead of keeping a second copy (the
    /// buffers are `Arc`-shared either way; this avoids extracting a
    /// converted or re-aligned column twice).
    local_executor: Option<Arc<LocalExecutor>>,
    columns_extracted: AtomicUsize,
    planes_built: AtomicUsize,
    setups_computed: AtomicUsize,
}

impl Session {
    /// Open a session over an aligned pair with the default configuration.
    /// Columns join the shared plane lazily, on first use, and stay for
    /// the session's lifetime.
    pub fn open(pair: SnapshotPair) -> Result<Self> {
        Session::open_with_config(pair, CharlesConfig::default())
    }

    /// Open a session with a custom configuration. The configuration is
    /// validated lazily, when a query first uses it (mirroring
    /// [`crate::Charles`]). When the config asks for sealed columns, both
    /// snapshots are compressed into per-block encodings here, once —
    /// every later read decodes through the shared block plane (answers
    /// stay bit-identical; see [`CharlesConfig::seal_columns`]).
    pub fn open_with_config(pair: SnapshotPair, config: CharlesConfig) -> Result<Self> {
        let pair = if config.seal_columns {
            pair.sealed()
        } else {
            pair
        };
        Ok(Session {
            pair,
            config,
            views: Mutex::new(HashMap::new()),
            aligned: Mutex::new(HashMap::new()),
            planes: Mutex::new(HashMap::new()),
            setups: Mutex::new(HashMap::new()),
            caches: Arc::new(PlaneCaches::default()),
            executor: None,
            local_executor: None,
            columns_extracted: AtomicUsize::new(0),
            planes_built: AtomicUsize::new(0),
            setups_computed: AtomicUsize::new(0),
        })
    }

    /// Open a **sharded** session: queries run their per-row heavy lifting
    /// over `shards` contiguous row ranges, one [`SearchContext`] window
    /// per shard over the same `Arc`-backed column plane.
    ///
    /// ## The exactness contract
    ///
    /// Sharding is a *layout* choice, never a semantics choice: every
    /// query answer — rankings, scores, `sweep_alpha` output — is
    /// **byte-identical** to the same query on an unsharded
    /// [`Session::open`] of the same pair, for any shard count (including
    /// more shards than rows, which leaves trailing shards empty). That
    /// holds because nothing global is ever approximated per shard:
    ///
    /// - **Global fits** are solved from per-shard *sufficient statistics*
    ///   (per-column moments, then `XᵀX`/`Xᵀy` accumulated on a canonical
    ///   block grid anchored at row 0) merged in block order — the same
    ///   floating-point operations in the same order as the unsharded
    ///   fit, so the coefficients and residuals match to the last bit.
    /// - **Change signals** (Δ, relative Δ) are elementwise; shards
    ///   compute their slices and the slices concatenate in row order.
    /// - **Cluster labelings, condition induction, and scoring** run over
    ///   the *merged* signals and residuals — global structure is
    ///   discovered from merged statistics, never stitched from per-shard
    ///   clusterings.
    ///
    /// Shard boundaries are aligned to the fit's block grid
    /// ([`RowRange::split_aligned`] with `GRAM_BLOCK_ROWS`), which is what
    /// makes the first point exact. `tests/shard_equivalence.rs` pins the
    /// contract differentially.
    pub fn open_sharded(pair: SnapshotPair, shards: usize) -> Result<Self> {
        Session::open_sharded_with_config(pair, shards, CharlesConfig::default())
    }

    /// [`Session::open_sharded`] with a custom engine configuration.
    pub fn open_sharded_with_config(
        pair: SnapshotPair,
        shards: usize,
        config: CharlesConfig,
    ) -> Result<Self> {
        // Seal before the executor captures its copy so both planes read
        // the same compressed blocks (re-sealing in `open_with_config` is
        // an Arc-cloning no-op on already-sealed columns).
        let pair = if config.seal_columns {
            pair.sealed()
        } else {
            pair
        };
        let executor = Arc::new(LocalExecutor::new(pair.clone(), shards));
        let mut session =
            Session::open_distributed_with_config(pair, Arc::clone(&executor) as _, config)?;
        // One extraction cache for both planes; see `Session::source_view`.
        session.local_executor = Some(executor);
        Ok(session)
    }

    /// Open a **distributed** session: per-shard statistics come from
    /// `executor` — any [`ShardExecutor`] backend, in-process or remote —
    /// while everything built *on* the merged statistics (clustering,
    /// condition induction, per-partition fits, scoring, ranking) runs
    /// here on the coordinator over its own copy of the pair.
    ///
    /// [`Session::open_sharded`] is exactly this call with a
    /// [`LocalExecutor`]; the exactness contract documented there is
    /// backend-independent, because the merge lands on the same canonical
    /// block grid no matter where the per-shard statistics were computed.
    /// The executor's layout is validated here: it must be a contiguous,
    /// block-aligned partition of the pair's rows.
    pub fn open_distributed(pair: SnapshotPair, executor: Arc<dyn ShardExecutor>) -> Result<Self> {
        Session::open_distributed_with_config(pair, executor, CharlesConfig::default())
    }

    /// [`Session::open_distributed`] with a custom engine configuration.
    pub fn open_distributed_with_config(
        pair: SnapshotPair,
        executor: Arc<dyn ShardExecutor>,
        config: CharlesConfig,
    ) -> Result<Self> {
        validate_layout(&executor.ranges(), pair.len())?;
        let mut session = Session::open_with_config(pair, config)?;
        session.executor = Some(executor);
        Ok(session)
    }

    /// How many row-range shards queries fan out over (1 = unsharded).
    pub fn shard_count(&self) -> usize {
        self.executor
            .as_ref()
            .map_or(1, |e| e.ranges().len().max(1))
    }

    /// The aligned snapshot pair.
    pub fn pair(&self) -> &SnapshotPair {
        &self.pair
    }

    /// The session's default configuration.
    pub fn config(&self) -> &CharlesConfig {
        &self.config
    }

    /// Replace the session configuration. Caches that depend on it — setup
    /// reports, global fits, labelings, evaluated candidates, and their
    /// counters — are invalidated; the extracted column plane and the
    /// per-target change signals survive (they are config-independent).
    pub fn set_config(&mut self, config: CharlesConfig) {
        self.config = config;
        self.setups
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        self.setups_computed.store(0, Ordering::Relaxed);
        self.caches = Arc::new(PlaneCaches::default());
    }

    /// Approximate resident bytes of this session's data plane: both
    /// snapshot tables, every column view and change signal extracted so
    /// far, and the memo planes (global-fit residuals, labelings,
    /// candidate results — see [`PlaneCaches::approx_bytes`]).
    ///
    /// Buffers are counted **once per allocation**, not once per holder:
    /// one seen-set (keyed by `Arc` allocation address) threads through
    /// the tables, the extracted views, the aligned views, and the
    /// change-signal planes, so a view aliasing a table column — or a
    /// sealed column's decode cache shared with the plane — adds nothing
    /// the second time. Without this, sharded sessions (whose executor
    /// shares every extracted buffer) over-reported their footprint and
    /// tripped the [`crate::SessionManager`] budget early.
    pub fn approx_plane_bytes(&self) -> usize {
        let mut seen: HashSet<usize> = HashSet::new();
        let note_view = |seen: &mut HashSet<usize>, v: &NumericView| -> usize {
            let buf = v.shared();
            if seen.insert(Arc::as_ptr(buf) as usize) {
                buf.len() * 8
            } else {
                0
            }
        };
        let mut total = self.pair.source().approx_bytes_dedup(&mut seen)
            + self.pair.target().approx_bytes_dedup(&mut seen);
        // lint:allow(ordered-iteration: usize byte totals are commutative — each allocation counts once whatever the visit order)
        for v in self
            .views
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
        {
            total += note_view(&mut seen, v);
        }
        for v in self
            .aligned
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
        {
            total += note_view(&mut seen, v);
        }
        // y_target/y_source alias the maps above and dedup to zero; the
        // derived signals (delta, rel_delta) are the planes' own buffers.
        for p in self
            .planes
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
        {
            total += note_view(&mut seen, &p.y_target);
            total += note_view(&mut seen, &p.y_source);
            total += note_view(&mut seen, &p.delta);
            total += note_view(&mut seen, &p.rel_delta);
        }
        total + self.caches.approx_bytes()
    }

    /// Work counters so far; see [`SessionStats`].
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            columns_extracted: self.columns_extracted.load(Ordering::Relaxed),
            target_planes_built: self.planes_built.load(Ordering::Relaxed),
            setup_reports_computed: self.setups_computed.load(Ordering::Relaxed),
            global_fits_computed: self.caches.fits_computed(),
            labelings_computed: self.caches.labelings_computed(),
            candidates_computed: self.caches.candidates_computed(),
        }
    }

    /// Numeric non-key attributes whose values actually changed between
    /// the snapshots — the candidate *targets* a user picks in demo step 2.
    /// Comparison runs over the cached column plane: the first call
    /// extracts each side once, later calls clone nothing.
    pub fn targets(&self) -> Result<Vec<String>> {
        let schema = self.pair.source().schema();
        let mut out = Vec::new();
        for (field, id) in schema.fields().iter().zip(schema.attr_ids()) {
            let name = field.name();
            if !field.dtype().is_numeric() || Some(name) == self.pair.key_attr() {
                continue;
            }
            let Ok(old) = self.source_view(id) else {
                continue; // nulls: not a usable target
            };
            let new = match self.aligned_view(name, id) {
                Ok(v) => v,
                Err(_) => continue,
            };
            if old.iter().zip(new.iter()).any(|(a, b)| a != b) {
                out.push(name.to_string());
            }
        }
        Ok(out)
    }

    /// The setup assistant's report for `target` under the session
    /// configuration (demo steps 4–5), cached per target.
    pub fn setup(&self, target: &str) -> Result<Arc<SetupReport>> {
        self.config.validate()?;
        let target_ref = self.resolve_target(target)?;
        self.setup_cached(&target_ref, &self.config, true)
    }

    /// Answer one query: assistant (cached), enumeration, evaluation over
    /// the shared plane (cached fits/labelings/candidates), ranking.
    ///
    /// A second run of an identical query re-ranks cached candidate
    /// summaries without performing any new fits, clusterings, or column
    /// work — see [`Session::stats`].
    pub fn run(&self, query: &Query) -> Result<QueryResult> {
        let config = self.effective_config(query);
        config.validate()?;
        let target_ref = self.resolve_target(&query.target)?;
        let setup = self.setup_cached(&target_ref, &config, query.config.is_none())?;
        let (cond, tran) = resolve_attrs(&self.pair, query, &setup)?;
        let schema = self.pair.source().schema();
        let cond_refs: Vec<AttrRef> = cond
            .iter()
            .map(|a| schema.attr_ref(a))
            .collect::<charles_relation::Result<_>>()?;
        let tran_refs: Vec<AttrRef> = tran
            .iter()
            .map(|a| schema.attr_ref(a))
            .collect::<charles_relation::Result<_>>()?;

        let started = Instant::now();
        let plane = self.target_plane(&target_ref)?;
        let views = self.views_for_run(&plane, &tran_refs)?;
        // Per-query config overrides get a private memo plane: the shared
        // caches are only valid for the session's own (search-relevant)
        // configuration. α and top-k overrides still share — α never
        // affects fits or labelings, and top-k only truncates. Candidate
        // *results* depend on α, though, so they are memoized only at the
        // session's own α — otherwise a stream of distinct α queries would
        // grow the candidate memo without bound.
        let (caches, memoize_candidates) = if query.config.is_none() {
            (Arc::clone(&self.caches), config.alpha == self.config.alpha)
        } else {
            // Private plane: dies with this run, safe to fill freely.
            (Arc::new(PlaneCaches::default()), true)
        };
        let mut ctx = SearchContext::from_plane(
            &self.pair,
            &query.target,
            plane.target.clone(),
            plane.y_target.clone(),
            plane.y_source.clone(),
            plane.delta.clone(),
            plane.rel_delta.clone(),
            plane.scale,
            views,
            &config,
            caches,
            memoize_candidates,
        )?;
        if let Some(executor) = &self.executor {
            // Executor-backed layout: global fits merge per-shard
            // sufficient statistics (bit-identical to unsharded; see
            // [`Session::open_distributed`]).
            ctx = ctx.with_executor(Arc::clone(executor));
        }
        let candidates = generate_candidates(&cond_refs, &tran_refs, &config);
        if candidates.is_empty() {
            return Err(CharlesError::NoCandidates(format!(
                "empty search space (|A_cond|={}, |A_tran|={}, c={}, t={})",
                cond.len(),
                tran.len(),
                config.max_condition_attrs,
                config.max_transform_attrs
            )));
        }
        let (summaries, stats) = run_search(&ctx, &candidates)?;
        Ok(QueryResult {
            query: query.clone(),
            alpha: config.alpha,
            summaries,
            setup,
            stats,
            elapsed: started.elapsed(),
        })
    }

    /// Answer several queries over the one shared plane — the multi-target
    /// mode: explain every changed attribute of a pair in a single pass,
    /// sharing column extraction, setup analysis, and (per target) every
    /// memoized fit. Results are in query order; each is identical to what
    /// [`Session::run`] would return for that query alone.
    pub fn run_multi(&self, queries: &[Query]) -> Result<Vec<QueryResult>> {
        queries.iter().map(|q| self.run(q)).collect()
    }

    /// Re-score and re-rank an existing result under a different α — the
    /// demo's slider (step 6) without repeating the search. O(summaries):
    /// the candidate pool is the result's ranked list and the scoring plane
    /// is fully cached, so no column is read end-to-end.
    pub fn rescore(&self, result: &QueryResult, alpha: f64) -> Result<QueryResult> {
        let started = Instant::now();
        let mut config = match &result.query.config {
            Some(c) => c.clone(),
            None => self.config.clone(),
        };
        config.alpha = alpha;
        if let Some(top_k) = result.query.top_k {
            config.max_summaries = top_k;
        }
        let summaries = self.rescore_summaries(&result.query.target, &result.summaries, &config)?;
        Ok(QueryResult {
            query: result.query.clone().with_alpha(alpha),
            alpha,
            summaries,
            setup: Arc::clone(&result.setup),
            stats: result.stats.clone(),
            elapsed: started.elapsed(),
        })
    }

    /// The α-sweep: one [`Session::rescore`] per requested α, in order.
    /// Instant in practice — each point is O(summaries) over cached state.
    pub fn sweep_alpha(&self, result: &QueryResult, alphas: &[f64]) -> Result<Vec<QueryResult>> {
        alphas.iter().map(|&a| self.rescore(result, a)).collect()
    }

    // ---- The worker role: serving block-range shard statistics --------
    //
    // A `charles-worker` (a `charles-server` hosting the dataset) answers
    // a distributed coordinator's stat requests with these three methods.
    // They read the same lazily-extracted column plane queries use, so a
    // worker serving many block ranges of one dataset extracts each
    // column once.

    /// Validate one shard-statistics request range: inside the pair and
    /// starting on the canonical Gram block grid (the precondition for
    /// bit-exact merges; see [`GRAM_BLOCK_ROWS`]).
    fn validate_block_range(&self, range: RowRange) -> Result<()> {
        if range.end > self.pair.len() {
            return Err(CharlesError::BadConfig(format!(
                "shard range [{}, {}) exceeds the pair's {} rows",
                range.start,
                range.end,
                self.pair.len()
            )));
        }
        if !range.is_empty() && !range.start.is_multiple_of(GRAM_BLOCK_ROWS) {
            return Err(CharlesError::BadConfig(format!(
                "shard range start {} is off the {GRAM_BLOCK_ROWS}-row block grid",
                range.start
            )));
        }
        Ok(())
    }

    /// The change-signal slice (Δ, relative Δ) of `target` over one
    /// block-aligned row range — the worker side of
    /// [`ShardExecutor::signal_slices`].
    pub fn shard_signal_slice(
        &self,
        target: &str,
        range: RowRange,
    ) -> Result<(Vec<f64>, Vec<f64>)> {
        self.validate_block_range(range)?;
        let target_ref = self.resolve_target(target)?;
        let id = resolved_id(&target_ref)?;
        let y_target = self.aligned_view(target, id)?;
        let y_source = self.source_view(id)?;
        let (delta, rel_delta) = change_signals(&y_target.slice(range), &y_source.slice(range));
        Ok((delta.to_vec(), rel_delta.to_vec()))
    }

    /// Phase-A column moments of `(target, tran_attrs)` over one
    /// block-aligned row range — the worker side of
    /// [`ShardExecutor::column_moments`].
    pub fn shard_column_moments(
        &self,
        target: &str,
        tran_attrs: &[String],
        range: RowRange,
    ) -> Result<ColumnMoments> {
        self.validate_block_range(range)?;
        let y = self.shard_target_view(target)?.slice(range);
        let cols = self.shard_design_views(tran_attrs)?;
        let sliced: Vec<NumericView> = cols.iter().map(|c| c.slice(range)).collect();
        let slices: Vec<&[f64]> = sliced.iter().map(|v| v.as_slice()).collect();
        Ok(charles_numerics::ols::column_moments(&slices, &y)?)
    }

    /// Phase-B blocked Gram statistics of `(target, tran_attrs)` over one
    /// block-aligned row range, under coordinator-derived conditioning
    /// `scales` — the worker side of [`ShardExecutor::gram_partials`].
    /// The partial's `first_block` is the range's absolute block index,
    /// so merges land on the same grid no matter which worker served it.
    pub fn shard_gram_partial(
        &self,
        target: &str,
        tran_attrs: &[String],
        scales: &[f64],
        range: RowRange,
    ) -> Result<GramPartial> {
        self.validate_block_range(range)?;
        if scales.len() != tran_attrs.len() {
            return Err(CharlesError::BadConfig(format!(
                "{} conditioning scales for {} transformation attributes",
                scales.len(),
                tran_attrs.len()
            )));
        }
        let y = self.shard_target_view(target)?.slice(range);
        let cols = self.shard_design_views(tran_attrs)?;
        let sliced: Vec<NumericView> = cols.iter().map(|c| c.slice(range)).collect();
        let slices: Vec<&[f64]> = sliced.iter().map(|v| v.as_slice()).collect();
        Ok(charles_numerics::ols::gram_partial(
            &slices,
            &y,
            scales,
            range.start / GRAM_BLOCK_ROWS,
        ))
    }

    /// The aligned target-side view a shard statistic regresses on.
    fn shard_target_view(&self, target: &str) -> Result<NumericView> {
        let target_ref = self.resolve_target(target)?;
        let id = resolved_id(&target_ref)?;
        self.aligned_view(target, id)
    }

    /// The fit's design columns: source-side views of the transformation
    /// attributes, in subset order.
    fn shard_design_views(&self, tran_attrs: &[String]) -> Result<Vec<NumericView>> {
        let schema = self.pair.source().schema();
        tran_attrs
            .iter()
            .map(|a| self.source_view(schema.attr_id(a)?))
            .collect()
    }

    /// Re-score a summary list under `config` using the cached scoring
    /// plane (shared with [`crate::Charles::rescore`]). The result is
    /// re-ranked and truncated to `config.max_summaries`.
    pub(crate) fn rescore_summaries(
        &self,
        target: &str,
        summaries: &[ChangeSummary],
        config: &CharlesConfig,
    ) -> Result<Vec<ChangeSummary>> {
        config.validate()?;
        let target_ref = self.resolve_target(target)?;
        let plane = self.target_plane(&target_ref)?;
        let scoring = ScoringContext::from_views_scaled(
            self.pair.source(),
            target,
            plane.y_target.clone(),
            plane.y_source.clone(),
            self.views_for_summaries(&plane, summaries)?,
            plane.scale,
            config,
        );
        let mut out = summaries.to_vec();
        for summary in &mut out {
            let (scores, breakdown) = scoring.score(&summary.cts)?;
            summary.scores = scores;
            summary.breakdown = breakdown;
        }
        out.sort_by(|a, b| {
            b.scores
                .score
                .total_cmp(&a.scores.score)
                .then(a.cts.len().cmp(&b.cts.len()))
                .then_with(|| a.signature().cmp(&b.signature()))
        });
        out.truncate(config.max_summaries);
        Ok(out)
    }

    /// Resolve and validate the target attribute (must exist and be
    /// numeric). Failures are typed [`QueryError`]s: callers can tell an
    /// unknown name from a non-numeric column without string matching.
    pub(crate) fn resolve_target(&self, target: &str) -> Result<AttrRef> {
        let schema = self.pair.source().schema();
        let Ok(target_ref) = schema.attr_ref(target) else {
            return Err(QueryError::UnknownTarget {
                name: target.to_string(),
            }
            .into());
        };
        let idx = resolved_id(&target_ref)?.index();
        let field = schema.fields().get(idx).ok_or_else(|| {
            CharlesError::BadTargetAttribute(format!(
                "attribute `{target}` points past the schema ({idx} of {})",
                schema.fields().len()
            ))
        })?;
        if !field.dtype().is_numeric() {
            return Err(QueryError::NonNumericTarget {
                name: target.to_string(),
                dtype: field.dtype().to_string(),
            }
            .into());
        }
        Ok(target_ref)
    }

    /// Shared source-side view of one attribute, extracted on first use
    /// (errors — nulls, non-numeric — are not cached and surface on every
    /// attempt, mirroring direct extraction). A session with an attached
    /// [`LocalExecutor`] reads through the executor's cache, so a column
    /// is materialized once no matter which plane asks first.
    fn source_view(&self, id: AttrId) -> Result<NumericView> {
        memoized(&self.views, id, || {
            let view = match &self.local_executor {
                Some(local) => {
                    let schema = self.pair.source().schema();
                    let field = schema.fields().get(id.index()).ok_or_else(|| {
                        CharlesError::BadTargetAttribute(format!(
                            "attribute id {} points past the schema ({})",
                            id.index(),
                            schema.fields().len()
                        ))
                    })?;
                    local.source_view(field.name())?
                }
                None => self.pair.source().numeric_view_by_id(id)?,
            };
            self.columns_extracted.fetch_add(1, Ordering::Relaxed);
            Ok(view)
        })
    }

    /// Aligned target-side view of one attribute, cached per target
    /// (shared with the local executor like [`Session::source_view`]).
    fn aligned_view(&self, name: &str, id: AttrId) -> Result<NumericView> {
        memoized(&self.aligned, id, || {
            let view = match &self.local_executor {
                Some(local) => local.aligned_view(name)?,
                None => self.pair.target_numeric_view(name)?,
            };
            self.columns_extracted.fetch_add(1, Ordering::Relaxed);
            Ok(view)
        })
    }

    /// The per-target change-signal plane, built once per target. On an
    /// executor-backed session the signals are fetched per shard and
    /// concatenated in range order (the computation is elementwise, so
    /// the concatenation is byte-identical to the unsharded computation —
    /// wherever the shards live).
    fn target_plane(&self, target: &AttrRef) -> Result<Arc<TargetPlane>> {
        let id = resolved_id(target)?;
        memoized(&self.planes, id, || {
            self.planes_built.fetch_add(1, Ordering::Relaxed);
            let y_target = self.aligned_view(target.name(), id)?;
            let y_source = self.source_view(id)?;
            let (delta, rel_delta) = match &self.executor {
                None => change_signals(&y_target, &y_source),
                Some(executor) => {
                    let slices = executor.signal_slices(target.name())?;
                    let n = y_target.len();
                    let mut delta = Vec::with_capacity(n);
                    let mut rel_delta = Vec::with_capacity(n);
                    for slice in &slices {
                        delta.extend_from_slice(&slice.delta);
                        rel_delta.extend_from_slice(&slice.rel_delta);
                    }
                    if delta.len() != n || rel_delta.len() != n {
                        return Err(CharlesError::Distributed(format!(
                            "executor returned {} signal rows for a {n}-row pair",
                            delta.len()
                        )));
                    }
                    (NumericView::new(delta), NumericView::new(rel_delta))
                }
            };
            let scale = derive_scale(&y_target, &y_source);
            Ok(Arc::new(TargetPlane {
                target: target.clone(),
                y_target,
                y_source,
                delta,
                rel_delta,
                scale,
            }))
        })
    }

    /// Setup report for a resolved target, consulting the cache only when
    /// the effective config's assistant-relevant knobs are the session's
    /// own (`shareable`, i.e. no per-query config override — α and top-k
    /// overrides never affect the assistant).
    fn setup_cached(
        &self,
        target: &AttrRef,
        config: &CharlesConfig,
        shareable: bool,
    ) -> Result<Arc<SetupReport>> {
        if !shareable {
            self.setups_computed.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::new(analyze(&self.pair, target.name(), config)?));
        }
        memoized(&self.setups, resolved_id(target)?, || {
            self.setups_computed.fetch_add(1, Ordering::Relaxed);
            Ok(Arc::new(analyze(&self.pair, target.name(), config)?))
        })
    }

    /// The query's effective configuration: its override or the session
    /// config, with α and top-k applied on top.
    fn effective_config(&self, query: &Query) -> CharlesConfig {
        let mut config = match &query.config {
            Some(c) => c.clone(),
            None => self.config.clone(),
        };
        if let Some(alpha) = query.alpha {
            config.alpha = alpha;
        }
        if let Some(top_k) = query.top_k {
            config.max_summaries = top_k;
        }
        config
    }

    /// The view map for one run: the transformation attributes plus the
    /// target's source values (identity CTs and autoregressive terms read
    /// them) — exactly what the search and its scoring touch, all shared
    /// with the session plane.
    fn views_for_run(
        &self,
        plane: &TargetPlane,
        tran_refs: &[AttrRef],
    ) -> Result<HashMap<AttrId, NumericView>> {
        let mut views = HashMap::with_capacity(tran_refs.len() + 1);
        for attr in tran_refs {
            let id = resolved_id(attr)?;
            views.insert(id, self.source_view(id)?);
        }
        views
            .entry(resolved_id(&plane.target)?)
            .or_insert_with(|| plane.y_source.clone());
        Ok(views)
    }

    /// The view map for re-scoring a summary list: one shared view per
    /// attribute its transformations actually read.
    fn views_for_summaries(
        &self,
        plane: &TargetPlane,
        summaries: &[ChangeSummary],
    ) -> Result<HashMap<AttrId, NumericView>> {
        let schema = self.pair.source().schema();
        let mut views = HashMap::new();
        views.insert(resolved_id(&plane.target)?, plane.y_source.clone());
        for summary in summaries {
            for ct in &summary.cts {
                if let Transformation::Linear { terms, .. } = &ct.transformation {
                    for term in terms {
                        // Resolve like the scorer does: trust the interned
                        // id when its name matches this schema, else look
                        // the name up (externally built transformations).
                        let id = match term.attr.id() {
                            Some(id)
                                if schema
                                    .field(id.index())
                                    .is_ok_and(|f| f.name() == term.attr.name()) =>
                            {
                                id
                            }
                            _ => schema.attr_id(term.attr.name())?,
                        };
                        if let std::collections::hash_map::Entry::Vacant(slot) = views.entry(id) {
                            slot.insert(self.source_view(id)?);
                        }
                    }
                }
            }
        }
        Ok(views)
    }
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("rows", &self.pair.len())
            .field("key_attr", &self.pair.key_attr())
            .field(
                "views",
                &self
                    .views
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .len(),
            )
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

/// Resolve the attribute lists a run will search over, after query
/// overrides; validates that transformation attributes are numeric.
fn resolve_attrs(
    pair: &SnapshotPair,
    query: &Query,
    setup: &SetupReport,
) -> Result<(Vec<String>, Vec<String>)> {
    let cond = query
        .condition_attrs
        .clone()
        .unwrap_or_else(|| setup.condition_attrs());
    let tran = query
        .transform_attrs
        .clone()
        .unwrap_or_else(|| setup.transform_attrs());
    let schema = pair.source().schema();
    for attr in &cond {
        schema.index_of(attr)?;
    }
    for attr in &tran {
        let idx = schema.index_of(attr)?;
        let numeric = schema
            .fields()
            .get(idx)
            .is_some_and(|f| f.dtype().is_numeric());
        if !numeric {
            return Err(CharlesError::BadConfig(format!(
                "transformation attribute {attr:?} must be numeric"
            )));
        }
    }
    if tran.is_empty() {
        return Err(QueryError::EmptyTransformShortlist.into());
    }
    Ok((cond, tran))
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_relation::{
        apply_updates, ApplyMode, CmpOp, Expr, Predicate, Table, TableBuilder, UpdateStatement,
    };

    fn fig1_source() -> Table {
        TableBuilder::new("2016")
            .str_col(
                "name",
                &[
                    "Anne", "Bob", "Amber", "Allen", "Cathy", "Tom", "James", "Lucy", "Frank",
                ],
            )
            .str_col("gen", &["F", "M", "F", "M", "F", "M", "M", "F", "M"])
            .str_col(
                "edu",
                &["PhD", "PhD", "MS", "MS", "BS", "MS", "BS", "MS", "PhD"],
            )
            .int_col("exp", &[2, 3, 5, 1, 2, 4, 3, 4, 1])
            .float_col(
                "salary",
                &[
                    230_000.0, 250_000.0, 160_000.0, 130_000.0, 110_000.0, 150_000.0, 120_000.0,
                    150_000.0, 210_000.0,
                ],
            )
            .float_col(
                "bonus",
                &[
                    23_000.0, 25_000.0, 16_000.0, 13_000.0, 11_000.0, 15_000.0, 12_000.0, 15_000.0,
                    21_000.0,
                ],
            )
            .key("name")
            .build()
            .unwrap()
    }

    fn fig1_pair() -> SnapshotPair {
        let source = fig1_source();
        let policy = [
            UpdateStatement::new(
                "bonus",
                Expr::affine("bonus", 1.05, 1000.0),
                Predicate::eq("edu", "PhD"),
            ),
            UpdateStatement::new(
                "bonus",
                Expr::affine("bonus", 1.04, 800.0),
                Predicate::eq("edu", "MS").and(Predicate::cmp("exp", CmpOp::Ge, 3)),
            ),
            UpdateStatement::new(
                "bonus",
                Expr::affine("bonus", 1.03, 400.0),
                Predicate::eq("edu", "MS").and(Predicate::cmp("exp", CmpOp::Lt, 3)),
            ),
        ];
        let target = apply_updates(&source, &policy, ApplyMode::FirstMatch)
            .unwrap()
            .table;
        SnapshotPair::align(source, target).unwrap()
    }

    fn fig1_query() -> Query {
        Query::new("bonus")
            .with_condition_attrs(["edu", "exp", "gen"])
            .with_transform_attrs(["bonus", "salary"])
    }

    #[test]
    fn session_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Session>();
        // And concurrently queryable behind an Arc.
        let session = Arc::new(Session::open(fig1_pair()).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let session = Arc::clone(&session);
                std::thread::spawn(move || session.run(&fig1_query()).unwrap())
            })
            .collect();
        let rendered: Vec<Vec<String>> = handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap()
                    .summaries
                    .iter()
                    .map(|s| s.to_string())
                    .collect()
            })
            .collect();
        for pair in rendered.windows(2) {
            assert_eq!(pair[0], pair[1], "concurrent runs must agree");
        }
    }

    #[test]
    fn session_answers_fig1_query() {
        let session = Session::open(fig1_pair()).unwrap();
        let result = session.run(&fig1_query()).unwrap();
        let top = result.top().expect("summaries");
        assert!(top.scores.accuracy > 0.999, "{}", top.scores.accuracy);
        let rendered = top.to_string();
        assert!(rendered.contains("1.05 × old_bonus + 1000"), "{rendered}");
        assert_eq!(result.alpha, session.config().alpha);
    }

    #[test]
    fn warm_rerun_is_pure_cache_hits() {
        let session = Session::open(fig1_pair()).unwrap();
        let query = fig1_query();
        let first = session.run(&query).unwrap();
        let warmed = session.stats();
        assert!(warmed.global_fits_computed > 0);
        assert!(warmed.candidates_computed > 0);

        let second = session.run(&query).unwrap();
        let after = session.stats();
        assert_eq!(after, warmed, "warm rerun must not compute anything new");
        let a: Vec<String> = first.summaries.iter().map(|s| s.to_string()).collect();
        let b: Vec<String> = second.summaries.iter().map(|s| s.to_string()).collect();
        assert_eq!(a, b, "warm rerun must be byte-identical");
    }

    #[test]
    fn alpha_override_shares_plane_but_not_candidate_memo() {
        let session = Session::open(fig1_pair()).unwrap();
        let base = session.run(&fig1_query()).unwrap();
        let warmed = session.stats();
        let shifted = session.run(&fig1_query().with_alpha(0.9)).unwrap();
        let after = session.stats();
        // Fits and labelings are α-independent: fully reused.
        assert_eq!(after.global_fits_computed, warmed.global_fits_computed);
        assert_eq!(after.labelings_computed, warmed.labelings_computed);
        // Candidate results are α-dependent; off-default-α runs compute
        // them afresh *without* filling the session memo (it would grow
        // unboundedly across a slider's worth of distinct α values).
        assert_eq!(after.candidates_computed, warmed.candidates_computed);
        assert_eq!(shifted.alpha, 0.9);
        assert_eq!(base.alpha, 0.5);
        // And a rerun at the session's own α is still fully cached.
        session.run(&fig1_query()).unwrap();
        assert_eq!(
            session.stats().candidates_computed,
            warmed.candidates_computed
        );
    }

    #[test]
    fn targets_lists_changed_attributes() {
        let session = Session::open(fig1_pair()).unwrap();
        assert_eq!(session.targets().unwrap(), vec!["bonus".to_string()]);
        // Cached: a second call extracts nothing new.
        let before = session.stats().columns_extracted;
        session.targets().unwrap();
        assert_eq!(session.stats().columns_extracted, before);
    }

    #[test]
    fn rescore_matches_run_semantics() {
        let session = Session::open(fig1_pair()).unwrap();
        let base = session.run(&fig1_query()).unwrap();
        let at_zero = session.rescore(&base, 0.0).unwrap();
        assert_eq!(at_zero.summaries.len(), base.summaries.len());
        for s in &at_zero.summaries {
            assert!((s.scores.score - s.scores.interpretability).abs() < 1e-12);
        }
        for w in at_zero.summaries.windows(2) {
            assert!(w[0].scores.score >= w[1].scores.score);
        }
        assert!(session.rescore(&base, 2.0).is_err());
    }

    #[test]
    fn sweep_alpha_is_ordered_and_complete() {
        let session = Session::open(fig1_pair()).unwrap();
        let base = session.run(&fig1_query()).unwrap();
        let alphas = [0.0, 0.25, 0.5, 0.75, 1.0];
        let swept = session.sweep_alpha(&base, &alphas).unwrap();
        assert_eq!(swept.len(), alphas.len());
        for (result, &alpha) in swept.iter().zip(alphas.iter()) {
            assert_eq!(result.alpha, alpha);
            assert_eq!(result.summaries.len(), base.summaries.len());
        }
    }

    #[test]
    fn run_multi_matches_individual_runs() {
        let session = Session::open(fig1_pair()).unwrap();
        let queries = [fig1_query(), Query::new("bonus").with_alpha(1.0)];
        let multi = session.run_multi(&queries).unwrap();
        let singles: Vec<QueryResult> = queries.iter().map(|q| session.run(q).unwrap()).collect();
        for (m, s) in multi.iter().zip(singles.iter()) {
            let m_text: Vec<String> = m.summaries.iter().map(|x| x.to_string()).collect();
            let s_text: Vec<String> = s.summaries.iter().map(|x| x.to_string()).collect();
            assert_eq!(m_text, s_text);
            assert_eq!(m.alpha, s.alpha);
        }
    }

    #[test]
    fn bad_queries_rejected() {
        let session = Session::open(fig1_pair()).unwrap();
        assert!(session.run(&Query::new("bonus").with_alpha(2.0)).is_err());
        assert!(session
            .run(&Query::new("bonus").with_condition_attrs(["nonexistent"]))
            .is_err());
        assert!(matches!(
            session
                .run(&Query::new("bonus").with_transform_attrs(["edu"]))
                .unwrap_err(),
            CharlesError::BadConfig(_)
        ));
    }

    #[test]
    fn unknown_target_is_typed_query_error() {
        let session = Session::open(fig1_pair()).unwrap();
        match session.run(&Query::new("nope")).unwrap_err() {
            CharlesError::Query(QueryError::UnknownTarget { name }) => {
                assert_eq!(name, "nope");
            }
            other => panic!("expected UnknownTarget, got {other:?}"),
        }
    }

    #[test]
    fn non_numeric_target_is_typed_query_error() {
        let session = Session::open(fig1_pair()).unwrap();
        match session.run(&Query::new("edu")).unwrap_err() {
            CharlesError::Query(QueryError::NonNumericTarget { name, dtype }) => {
                assert_eq!(name, "edu");
                assert!(!dtype.is_empty());
            }
            other => panic!("expected NonNumericTarget, got {other:?}"),
        }
    }

    #[test]
    fn empty_transform_shortlist_is_typed_query_error() {
        let session = Session::open(fig1_pair()).unwrap();
        let query = Query::new("bonus").with_transform_attrs(Vec::<String>::new());
        assert!(matches!(
            session.run(&query).unwrap_err(),
            CharlesError::Query(QueryError::EmptyTransformShortlist)
        ));
    }

    #[test]
    fn approx_plane_bytes_grows_with_extraction() {
        let session = Session::open(fig1_pair()).unwrap();
        let resident = session.approx_plane_bytes();
        assert!(resident > 0);
        session.run(&fig1_query()).unwrap();
        assert!(session.approx_plane_bytes() > resident);
    }

    #[test]
    fn top_k_truncates() {
        let session = Session::open(fig1_pair()).unwrap();
        let result = session.run(&fig1_query().with_top_k(2)).unwrap();
        assert!(result.summaries.len() <= 2);
    }

    #[test]
    fn config_override_gets_private_caches() {
        let session = Session::open(fig1_pair()).unwrap();
        session.run(&fig1_query()).unwrap();
        let warmed = session.stats();
        // A query with a full config override must not touch (or reuse)
        // the session's memo plane.
        let custom = CharlesConfig::default().with_k_range(1, 3);
        session.run(&fig1_query().with_config(custom)).unwrap();
        let after = session.stats();
        assert_eq!(after.global_fits_computed, warmed.global_fits_computed);
        assert_eq!(after.candidates_computed, warmed.candidates_computed);
        // Setup reports are counted even when private.
        assert!(after.setup_reports_computed > warmed.setup_reports_computed);
    }

    #[test]
    fn set_config_invalidates_dependent_caches() {
        let pair = fig1_pair();
        let mut session = Session::open(pair).unwrap();
        session.run(&fig1_query()).unwrap();
        assert!(session.stats().global_fits_computed > 0);
        session.set_config(CharlesConfig::default().with_k_range(1, 3));
        let reset = session.stats();
        assert_eq!(reset.global_fits_computed, 0);
        assert_eq!(reset.setup_reports_computed, 0);
        // Plane survives: no new column extraction on the next run.
        let cols = reset.columns_extracted;
        let result = session.run(&fig1_query()).unwrap();
        assert!(result.top().unwrap().scores.accuracy > 0.99);
        assert_eq!(session.stats().columns_extracted, cols);
    }

    #[test]
    fn sharded_session_matches_unsharded_byte_for_byte() {
        let oracle = Session::open(fig1_pair()).unwrap();
        let base = oracle.run(&fig1_query()).unwrap();
        let render = |r: &QueryResult| -> Vec<String> {
            r.summaries.iter().map(|s| s.to_string()).collect()
        };
        let bits = |r: &QueryResult| -> Vec<u64> {
            r.summaries
                .iter()
                .map(|s| s.scores.score.to_bits())
                .collect()
        };
        // 9 rows < one block: every shard beyond the first is empty, and
        // the answers must still be identical (the degenerate contract).
        for shards in [1usize, 2, 3, 7, 64] {
            let sharded = Session::open_sharded(fig1_pair(), shards).unwrap();
            assert_eq!(sharded.shard_count(), shards);
            let result = sharded.run(&fig1_query()).unwrap();
            assert_eq!(render(&result), render(&base), "shards={shards}");
            assert_eq!(bits(&result), bits(&base), "shards={shards}");
            assert_eq!(sharded.targets().unwrap(), oracle.targets().unwrap());
        }
    }

    #[test]
    fn sharded_multi_block_pair_matches_unsharded() {
        // 300 rows spans 3 canonical Gram blocks, so shard counts 2 and 3
        // produce genuinely non-empty multi-shard layouts whose merged
        // sufficient statistics must reproduce the central fit exactly.
        let n = 300usize;
        let names: Vec<String> = (0..n).map(|i| format!("e{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let edu: Vec<&str> = (0..n).map(|i| ["PhD", "MS", "BS"][i % 3]).collect();
        let exp: Vec<i64> = (0..n).map(|i| (i % 7) as i64).collect();
        let bonus: Vec<f64> = (0..n)
            .map(|i| 8_000.0 + (i as f64 * 937.0) % 9_000.0)
            .collect();
        let source = TableBuilder::new("v1")
            .str_col("name", &name_refs)
            .str_col("edu", &edu)
            .int_col("exp", &exp)
            .float_col("bonus", &bonus)
            .key("name")
            .build()
            .unwrap();
        let policy = [
            UpdateStatement::new(
                "bonus",
                Expr::affine("bonus", 1.05, 1000.0),
                Predicate::eq("edu", "PhD"),
            ),
            UpdateStatement::new(
                "bonus",
                Expr::affine("bonus", 1.04, 800.0),
                Predicate::eq("edu", "MS"),
            ),
        ];
        let target = apply_updates(&source, &policy, ApplyMode::FirstMatch)
            .unwrap()
            .table;
        let pair = SnapshotPair::align(source, target).unwrap();

        let query = Query::new("bonus")
            .with_condition_attrs(["edu", "exp"])
            .with_transform_attrs(["bonus"]);
        let oracle = Session::open(pair.clone()).unwrap();
        let base = oracle.run(&query).unwrap();
        let render_bits = |r: &QueryResult| -> Vec<(String, u64)> {
            r.summaries
                .iter()
                .map(|s| (s.to_string(), s.scores.score.to_bits()))
                .collect()
        };
        for shards in [2usize, 3, 5] {
            let sharded = Session::open_sharded(pair.clone(), shards).unwrap();
            let result = sharded.run(&query).unwrap();
            assert_eq!(render_bits(&result), render_bits(&base), "shards={shards}");
        }
    }

    #[test]
    fn sharded_sweep_matches_unsharded() {
        let oracle = Session::open(fig1_pair()).unwrap();
        let sharded = Session::open_sharded(fig1_pair(), 3).unwrap();
        let alphas = [0.0, 0.25, 0.5, 0.75, 1.0];
        let base = oracle.run(&fig1_query()).unwrap();
        let shard_base = sharded.run(&fig1_query()).unwrap();
        let a = oracle.sweep_alpha(&base, &alphas).unwrap();
        let b = sharded.sweep_alpha(&shard_base, &alphas).unwrap();
        for (x, y) in a.iter().zip(b.iter()) {
            let xs: Vec<String> = x.summaries.iter().map(|s| s.to_string()).collect();
            let ys: Vec<String> = y.summaries.iter().map(|s| s.to_string()).collect();
            assert_eq!(xs, ys, "α={}", x.alpha);
        }
    }

    #[test]
    fn sharded_session_shares_one_extraction_cache_with_its_executor() {
        let session = Session::open_sharded(fig1_pair(), 2).unwrap();
        // "exp" is Int64: extraction materializes a converted f64 buffer,
        // the case where a second cache would mean a second copy. Both
        // planes must hand back the *same* buffer.
        let id = session.pair().source().schema().attr_id("exp").unwrap();
        let via_session = session.source_view(id).unwrap();
        let local = session.local_executor.as_ref().expect("local executor");
        let via_executor = local.source_view("exp").unwrap();
        assert_eq!(
            via_session.as_slice().as_ptr(),
            via_executor.as_slice().as_ptr(),
            "session and executor must share one extracted buffer"
        );
        let aligned_session = session
            .aligned_view("bonus", id_of(&session, "bonus"))
            .unwrap();
        let aligned_executor = local.aligned_view("bonus").unwrap();
        assert_eq!(
            aligned_session.as_slice().as_ptr(),
            aligned_executor.as_slice().as_ptr()
        );
    }

    fn id_of(session: &Session, name: &str) -> charles_relation::AttrId {
        session.pair().source().schema().attr_id(name).unwrap()
    }

    #[test]
    fn sharded_warm_rerun_is_cached() {
        let session = Session::open_sharded(fig1_pair(), 2).unwrap();
        session.run(&fig1_query()).unwrap();
        let warmed = session.stats();
        session.run(&fig1_query()).unwrap();
        assert_eq!(
            session.stats(),
            warmed,
            "sharded warm rerun must be pure hits"
        );
    }

    #[test]
    fn sealed_sessions_match_raw_byte_for_byte() {
        let raw = Session::open(fig1_pair()).unwrap();
        let base = raw.run(&fig1_query()).unwrap();
        let render_bits = |r: &QueryResult| -> Vec<(String, u64)> {
            r.summaries
                .iter()
                .map(|s| (s.to_string(), s.scores.score.to_bits()))
                .collect()
        };
        let config = CharlesConfig::default().with_sealed_columns(true);
        for shards in [1usize, 2, 3] {
            let sealed = if shards == 1 {
                Session::open_with_config(fig1_pair(), config.clone()).unwrap()
            } else {
                Session::open_sharded_with_config(fig1_pair(), shards, config.clone()).unwrap()
            };
            assert!(sealed
                .pair()
                .source()
                .columns()
                .iter()
                .any(|c| c.is_compressed()));
            let result = sealed.run(&fig1_query()).unwrap();
            assert_eq!(render_bits(&result), render_bits(&base), "shards={shards}");
            assert_eq!(sealed.targets().unwrap(), raw.targets().unwrap());
            let swept = sealed.sweep_alpha(&result, &[0.0, 0.5, 1.0]).unwrap();
            let base_swept = raw.sweep_alpha(&base, &[0.0, 0.5, 1.0]).unwrap();
            for (a, b) in swept.iter().zip(base_swept.iter()) {
                assert_eq!(render_bits(a), render_bits(b), "α={}", a.alpha);
            }
        }
    }

    #[test]
    fn sealed_setup_report_matches_raw() {
        // The assistant reads categorical codes straight off the columns;
        // sealed columns must shortlist identically (a regression guard
        // for the compressed `category_codes` path).
        let raw = Session::open(fig1_pair()).unwrap();
        let sealed = Session::open_with_config(
            fig1_pair(),
            CharlesConfig::default().with_sealed_columns(true),
        )
        .unwrap();
        let a = raw.setup("bonus").unwrap();
        let b = sealed.setup("bonus").unwrap();
        assert_eq!(a.condition_attrs(), b.condition_attrs());
        assert_eq!(a.transform_attrs(), b.transform_attrs());
        for (x, y) in a
            .condition_candidates
            .iter()
            .zip(b.condition_candidates.iter())
        {
            assert_eq!(x.correlation.to_bits(), y.correlation.to_bits(), "{}", x.attr);
        }
    }

    #[test]
    fn sharded_bytes_no_longer_double_count_shared_buffers() {
        // The sharded session and its executor share one extraction cache
        // (`Arc`-aliased buffers); deduped accounting must report the same
        // plane footprint as the unsharded session, not a multiple of it.
        let unsharded = Session::open(fig1_pair()).unwrap();
        unsharded.run(&fig1_query()).unwrap();
        let base = unsharded.approx_plane_bytes();
        for shards in [2usize, 3] {
            let sharded = Session::open_sharded(fig1_pair(), shards).unwrap();
            sharded.run(&fig1_query()).unwrap();
            let bytes = sharded.approx_plane_bytes();
            let drift = bytes.abs_diff(base);
            assert!(
                drift * 10 <= base,
                "shards={shards}: sharded plane reports {bytes} bytes vs unsharded {base}"
            );
        }
    }

    #[test]
    fn plane_bytes_count_aliased_views_once() {
        // Extracting a float column aliases the table's own buffer; the
        // byte report must not grow by another copy of it.
        let session = Session::open(fig1_pair()).unwrap();
        let before = session.approx_plane_bytes();
        let id = session.pair().source().schema().attr_id("bonus").unwrap();
        let view = session.source_view(id).unwrap();
        let aliased = Arc::ptr_eq(
            view.shared(),
            // Float columns extract zero-copy; the view shares the
            // column's allocation.
            session
                .pair()
                .source()
                .numeric_view_by_id(id)
                .unwrap()
                .shared(),
        );
        let after = session.approx_plane_bytes();
        if aliased {
            assert_eq!(after, before, "aliased view must cost zero bytes");
        } else {
            assert!(after >= before);
        }
    }

    #[test]
    fn setup_is_cached_per_target() {
        let session = Session::open(fig1_pair()).unwrap();
        let a = session.setup("bonus").unwrap();
        let b = session.setup("bonus").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(session.stats().setup_reports_computed, 1);
        assert!(a.condition_attrs().contains(&"edu".to_string()));
    }
}
