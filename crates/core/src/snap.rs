//! Constant snapping: trading a sliver of accuracy for *normality*.
//!
//! Raw OLS coefficients are rarely round ("2.479%"). The paper's normality
//! desideratum prefers constants a human policy would contain ("5%",
//! "$1000"). This module greedily replaces each fitted constant with the
//! roundest nearby candidate whose acceptance keeps the partition's mean
//! absolute error within a configured budget, re-fitting the remaining free
//! constants after each acceptance (so a snapped slope can be absorbed by
//! the intercept, exactly like a human rounding a policy).

use charles_numerics::normality::{roundness, snap_candidates};
use charles_numerics::ols::{fit_constant, fit_ols, LinearFit};

/// Result of snapping: the (possibly) rounded fit plus bookkeeping.
#[derive(Debug, Clone)]
pub struct SnappedFit {
    /// Final coefficients (same order as the input columns).
    pub coefficients: Vec<f64>,
    /// Final intercept.
    pub intercept: f64,
    /// Mean absolute error of the snapped model on the partition.
    pub mae: f64,
    /// How many constants were changed from their OLS values.
    pub snapped_count: usize,
}

fn mae_of(columns: &[Vec<f64>], y: &[f64], coefs: &[f64], intercept: f64) -> f64 {
    let n = y.len();
    if n == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 0..n {
        let mut pred = intercept;
        for (c, col) in coefs.iter().zip(columns.iter()) {
            pred += c * col[i];
        }
        // lint:allow(float-fold-order: scalar reference accumulation in fixed row order)
        total += (pred - y[i]).abs();
    }
    total / n as f64
}

/// Fit the free (unsnapped) columns against the residual target after
/// subtracting fixed contributions. Returns (coefficients in full order,
/// intercept) or `None` if the refit fails.
fn refit_free(columns: &[Vec<f64>], y: &[f64], fixed: &[Option<f64>]) -> Option<(Vec<f64>, f64)> {
    let n = y.len();
    let mut residual = y.to_vec();
    let mut free_idx = Vec::new();
    for (j, fix) in fixed.iter().enumerate() {
        match fix {
            Some(c) => {
                for i in 0..n {
                    residual[i] -= c * columns[j][i];
                }
            }
            None => free_idx.push(j),
        }
    }
    if free_idx.is_empty() {
        let fit = fit_constant(&residual).ok()?;
        let coefs: Vec<f64> = fixed.iter().map(|f| f.unwrap_or(0.0)).collect();
        return Some((coefs, fit.intercept));
    }
    let free_cols: Vec<Vec<f64>> = free_idx.iter().map(|&j| columns[j].clone()).collect();
    let fit = fit_ols(&free_cols, &residual).ok()?;
    let mut coefs: Vec<f64> = fixed.iter().map(|f| f.unwrap_or(0.0)).collect();
    for (slot, &j) in free_idx.iter().enumerate() {
        coefs[j] = fit.coefficients[slot];
    }
    Some((coefs, fit.intercept))
}

/// Candidates for a constant, roundest first, distance as tie-break, raw
/// value guaranteed present. Distances below 1e-9 relative are treated as
/// zero, and ties prefer the shorter decimal rendering — this is what
/// canonicalizes a floating-point-dusted `1.0499999999999696` to `1.05`.
fn ordered_candidates(x: f64) -> Vec<f64> {
    let mut cands = snap_candidates(x);
    let quantize = |c: f64| -> f64 {
        let d = (c - x).abs();
        if d <= 1e-9 * x.abs().max(1e-300) {
            0.0
        } else {
            d
        }
    };
    cands.sort_by(|a, b| {
        roundness(*b)
            .total_cmp(&roundness(*a))
            .then(quantize(*a).total_cmp(&quantize(*b)))
            .then(format!("{a}").len().cmp(&format!("{b}").len()))
    });
    cands
}

/// Snap a fitted model's constants.
///
/// `tolerance` is relative slack on the base fit's error: the snapped model
/// may have mean absolute error up to `base_mae × (1 + tolerance)` plus a
/// small absolute floor (`tolerance × std(y) / 1000`) that lets exact fits
/// absorb floating-point dust. Anchoring the budget to the *base error*
/// rather than the data scale is what keeps snapping honest: on exactly
/// generated data (base error ≈ 0) a genuinely different constant (1.04 →
/// 1.05) is rejected, while on noisy data the snap may move constants
/// freely within the noise floor.
pub fn snap_fit(columns: &[Vec<f64>], y: &[f64], fit: &LinearFit, tolerance: f64) -> SnappedFit {
    let p = fit.coefficients.len();
    debug_assert_eq!(columns.len(), p);
    let scale = charles_numerics::stats::std_dev(y).unwrap_or(1.0);
    let base_mae = mae_of(columns, y, &fit.coefficients, fit.intercept);
    let budget = base_mae * (1.0 + tolerance) + tolerance * scale / 1000.0 + 1e-12;

    let mut fixed: Vec<Option<f64>> = vec![None; p];
    let mut current_coefs = fit.coefficients.clone();
    let mut current_intercept = fit.intercept;
    let mut snapped_count = 0;

    // Snap slopes one at a time, largest-magnitude first (they dominate the
    // rendered transformation).
    let mut order: Vec<usize> = (0..p).collect();
    order.sort_by(|&a, &b| {
        fit.coefficients[b]
            .abs()
            .total_cmp(&fit.coefficients[a].abs())
    });
    for &j in &order {
        let raw = current_coefs[j];
        let mut accepted = false;
        for cand in ordered_candidates(raw) {
            if roundness(cand) < roundness(raw) {
                continue; // never snap to something less round
            }
            let mut trial_fixed = fixed.clone();
            trial_fixed[j] = Some(cand);
            if let Some((coefs, intercept)) = refit_free(columns, y, &trial_fixed) {
                let err = mae_of(columns, y, &coefs, intercept);
                if err <= budget {
                    if cand != raw {
                        snapped_count += 1;
                    }
                    fixed = trial_fixed;
                    current_coefs = coefs;
                    current_intercept = intercept;
                    accepted = true;
                    break;
                }
            }
        }
        if !accepted {
            fixed[j] = Some(raw);
        }
    }

    // Snap the intercept last: all slopes are fixed now, so the candidate
    // intercept is evaluated directly.
    let raw_intercept = current_intercept;
    for cand in ordered_candidates(raw_intercept) {
        if roundness(cand) < roundness(raw_intercept) {
            continue;
        }
        let err = mae_of(columns, y, &current_coefs, cand);
        if err <= budget {
            if cand != raw_intercept {
                snapped_count += 1;
            }
            current_intercept = cand;
            break;
        }
    }

    let mae = mae_of(columns, y, &current_coefs, current_intercept);
    SnappedFit {
        coefficients: current_coefs,
        intercept: current_intercept,
        mae,
        snapped_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Helper: OLS then snap.
    fn fit_and_snap(columns: &[Vec<f64>], y: &[f64], tol: f64) -> SnappedFit {
        let fit = fit_ols(columns, y).unwrap();
        snap_fit(columns, y, &fit, tol)
    }

    #[test]
    fn exact_constants_stay_exact() {
        // y = 1.05 x + 1000 exactly: snapping must not disturb it.
        let x: Vec<f64> = vec![23_000.0, 25_000.0, 21_000.0, 16_000.0];
        let y: Vec<f64> = x.iter().map(|v| 1.05 * v + 1000.0).collect();
        let s = fit_and_snap(std::slice::from_ref(&x), &y, 0.02);
        assert!((s.coefficients[0] - 1.05).abs() < 1e-9, "{:?}", s);
        assert!((s.intercept - 1000.0).abs() < 1e-6);
        assert!(s.mae < 1e-6);
    }

    #[test]
    fn noisy_constants_snap_to_round_values() {
        // Data generated by y = 1.05 x + 1000 with small noise: raw OLS
        // gives ragged constants, snapping should restore the round ones.
        let x: Vec<f64> = (0..40).map(|i| 10_000.0 + 500.0 * i as f64).collect();
        let noise = [13.0, -11.0, 7.0, -5.0, 9.0, -13.0, 3.0, -7.0];
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| 1.05 * v + 1000.0 + noise[i % noise.len()])
            .collect();
        let s = fit_and_snap(&[x], &y, 0.02);
        assert!(
            (s.coefficients[0] - 1.05).abs() < 1e-9,
            "coef = {}",
            s.coefficients[0]
        );
        assert_eq!(s.intercept, 1000.0);
        assert!(s.snapped_count >= 1);
    }

    #[test]
    fn zero_tolerance_only_free_snaps() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        // y = 1.2340567 x: no round value reproduces it.
        let y: Vec<f64> = x.iter().map(|v| 1.234_056_7 * v).collect();
        let s = fit_and_snap(&[x], &y, 0.0);
        assert!(
            (s.coefficients[0] - 1.234_056_7).abs() < 1e-7,
            "coef = {}",
            s.coefficients[0]
        );
    }

    #[test]
    fn exact_but_different_constants_not_rewritten() {
        // y = 1.98x + 3 exactly: 2.0 is rounder than 1.98, but the data
        // says 1.98 — snapping must not rewrite real structure even with a
        // generous tolerance (the budget anchors on the base error, ≈ 0).
        let x: Vec<f64> = (0..30).map(|i| 100.0 + i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 1.98 * v + 3.0).collect();
        let generous = fit_and_snap(std::slice::from_ref(&x), &y, 0.05);
        assert!(
            (generous.coefficients[0] - 1.98).abs() < 1e-9,
            "{generous:?}"
        );
        assert!((generous.intercept - 3.0).abs() < 1e-6);
        let strict = fit_and_snap(&[x], &y, 1e-6);
        assert!((strict.coefficients[0] - 1.98).abs() < 1e-9);
    }

    #[test]
    fn numerical_dust_canonicalized() {
        // Coefficients that are 1.05 up to floating-point dust must render
        // as exactly 1.05 after snapping.
        let x = vec![23_000.0, 25_000.0, 21_000.0];
        let y: Vec<f64> = x.iter().map(|v| 1.05 * v + 1000.0).collect();
        let s = fit_and_snap(&[x], &y, 0.02);
        assert_eq!(s.coefficients[0], 1.05);
        assert_eq!(s.intercept, 1000.0);
    }

    #[test]
    fn constant_only_model_snaps_intercept() {
        let y = vec![996.8, 1003.1, 1001.4, 998.7];
        let fit = fit_constant(&y).unwrap();
        let s = snap_fit(&[], &y, &fit, 0.02);
        assert_eq!(s.intercept, 1000.0);
        assert!(s.coefficients.is_empty());
    }

    #[test]
    fn two_predictor_snapping() {
        // y = 0.1 a + 2 b + 500 exactly.
        let a: Vec<f64> = (0..25).map(|i| 50_000.0 + 1_000.0 * i as f64).collect();
        let b: Vec<f64> = (0..25).map(|i| (i % 7) as f64 * 3.0).collect();
        let y: Vec<f64> = a
            .iter()
            .zip(b.iter())
            .map(|(&x1, &x2)| 0.1 * x1 + 2.0 * x2 + 500.0)
            .collect();
        let s = fit_and_snap(&[a, b], &y, 0.01);
        assert!((s.coefficients[0] - 0.1).abs() < 1e-9);
        assert!((s.coefficients[1] - 2.0).abs() < 1e-9);
        assert!((s.intercept - 500.0).abs() < 1e-9);
        assert!(s.mae < 1e-6);
    }

    #[test]
    fn empty_target_is_safe() {
        let fit = LinearFit {
            intercept: 1.0,
            coefficients: vec![],
            r_squared: 1.0,
            residuals: vec![],
            ridge_lambda: 0.0,
        };
        let s = snap_fit(&[], &[], &fit, 0.1);
        assert_eq!(s.mae, 0.0);
    }
}
