//! Change summaries: sets of conditional transformations with scores.

use crate::ct::ConditionalTransformation;
use std::fmt;

/// The three scores the paper reports per summary.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Scores {
    /// Accuracy ∈ [0, 1]: inverse normalized L1 distance between the
    /// transformed source and the target.
    pub accuracy: f64,
    /// Interpretability ∈ [0, 1]: weighted mean of size, simplicity,
    /// coverage, and normality sub-scores.
    pub interpretability: f64,
    /// `α·accuracy + (1−α)·interpretability`.
    pub score: f64,
}

/// Breakdown of the interpretability score (reported by the demo UI and
/// useful for the α-tradeoff experiment).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct InterpretabilityBreakdown {
    /// Fewer CTs → higher.
    pub size: f64,
    /// Fewer descriptors/variables → higher.
    pub simplicity: f64,
    /// Fewer, larger partitions → higher.
    pub coverage: f64,
    /// Rounder constants → higher.
    pub normality: f64,
}

/// A ranked change summary: a set of CTs explaining how the target
/// attribute evolved, with scores.
#[derive(Debug, Clone)]
pub struct ChangeSummary {
    /// The conditional transformations, in partition order.
    pub cts: Vec<ConditionalTransformation>,
    /// Target attribute the summary explains.
    pub target_attr: String,
    /// Condition attributes this summary's search used.
    pub condition_attrs: Vec<String>,
    /// Transformation attributes this summary's search used.
    pub transform_attrs: Vec<String>,
    /// Scores (accuracy / interpretability / combined).
    pub scores: Scores,
    /// Interpretability sub-scores.
    pub breakdown: InterpretabilityBreakdown,
    /// Number of source rows the engine ran over.
    pub total_rows: usize,
}

impl ChangeSummary {
    /// Number of CTs.
    pub fn len(&self) -> usize {
        self.cts.len()
    }

    /// Whether the summary has no CTs.
    pub fn is_empty(&self) -> bool {
        self.cts.is_empty()
    }

    /// Fraction of rows covered by any CT.
    pub fn total_coverage(&self) -> f64 {
        self.cts.iter().map(|ct| ct.coverage).sum()
    }

    /// Fraction of rows covered by non-identity CTs (changed coverage).
    pub fn changed_coverage(&self) -> f64 {
        self.cts
            .iter()
            .filter(|ct| !ct.is_no_change())
            .map(|ct| ct.coverage)
            .sum()
    }

    /// Canonical key for deduplication: CT signatures, order-invariant.
    pub fn signature(&self) -> String {
        let mut sigs: Vec<String> = self.cts.iter().map(|ct| ct.signature()).collect();
        sigs.sort();
        sigs.join(" | ")
    }
}

impl fmt::Display for ChangeSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "summary for {:?} — score {:.3} (accuracy {:.3}, interpretability {:.3})",
            self.target_attr, self.scores.score, self.scores.accuracy, self.scores.interpretability
        )?;
        for ct in &self.cts {
            writeln!(f, "  • {ct}   [{:.1}% of rows]", ct.coverage * 100.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::{Condition, Descriptor};
    use crate::transform::{Term, Transformation};
    use charles_relation::Value;

    fn summary() -> ChangeSummary {
        let ct1 = ConditionalTransformation::new(
            Condition::all().with(Descriptor::Equals {
                attr: "edu".into(),
                value: Value::str("PhD"),
            }),
            Transformation::linear(
                "bonus",
                vec![Term {
                    attr: "bonus".into(),
                    coefficient: 1.05,
                }],
                1000.0,
            ),
            vec![0, 1, 8],
            9,
            0.0,
        );
        let ct2 = ConditionalTransformation::new(
            Condition::all().with(Descriptor::Equals {
                attr: "edu".into(),
                value: Value::str("BS"),
            }),
            Transformation::Identity,
            vec![4, 6],
            9,
            0.0,
        );
        ChangeSummary {
            cts: vec![ct1, ct2],
            target_attr: "bonus".into(),
            condition_attrs: vec!["edu".into()],
            transform_attrs: vec!["bonus".into()],
            scores: Scores {
                accuracy: 1.0,
                interpretability: 0.8,
                score: 0.9,
            },
            breakdown: InterpretabilityBreakdown::default(),
            total_rows: 9,
        }
    }

    #[test]
    fn coverage_accounting() {
        let s = summary();
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!((s.total_coverage() - 5.0 / 9.0).abs() < 1e-12);
        assert!((s.changed_coverage() - 3.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn signature_order_invariant() {
        let s = summary();
        let mut rev = s.clone();
        rev.cts.reverse();
        assert_eq!(s.signature(), rev.signature());
    }

    #[test]
    fn display_lists_cts_with_coverage() {
        let text = summary().to_string();
        assert!(text.contains("score 0.900"));
        assert!(text.contains("edu = PhD"));
        assert!(text.contains("no change"));
        assert!(text.contains("33.3% of rows"));
    }
}
