//! Transformations: how a partition's target values evolved.
//!
//! A [`Transformation`] is the right-hand side of a conditional
//! transformation — either *no change*, or a linear model over the source
//! snapshot's attribute values:
//! `new_target = intercept + Σ coef_i × old_attr_i`.

use crate::condition::fmt_num;
use charles_numerics::kernels;
use charles_numerics::normality::roundness;
use charles_relation::{AttrRef, Expr, Table};
use std::fmt;

/// One term of a linear transformation: `coefficient × attribute`.
#[derive(Debug, Clone, PartialEq)]
pub struct Term {
    /// Source-snapshot attribute the term reads. Engine-built terms carry
    /// an interned id, so applying the transformation in the search hot
    /// path never hashes the attribute name.
    pub attr: AttrRef,
    /// Multiplicative coefficient.
    pub coefficient: f64,
}

/// A transformation over one data partition.
#[derive(Debug, Clone, PartialEq)]
pub enum Transformation {
    /// The target attribute did not change in this partition.
    Identity,
    /// `new = intercept + Σ term_i` over *source* values.
    Linear {
        /// Name of the target attribute being rewritten (display only).
        target: String,
        /// Linear terms (zero-coefficient terms are dropped at build time).
        terms: Vec<Term>,
        /// Additive intercept.
        intercept: f64,
    },
}

impl Transformation {
    /// Build a linear transformation, dropping negligible terms.
    ///
    /// A term whose coefficient is exactly 0.0 carries no information and
    /// would only pollute rendering and complexity scoring.
    pub fn linear(target: impl Into<String>, terms: Vec<Term>, intercept: f64) -> Self {
        let kept: Vec<Term> = terms.into_iter().filter(|t| t.coefficient != 0.0).collect();
        Transformation::Linear {
            target: target.into(),
            terms: kept,
            intercept,
        }
    }

    /// Whether this is the identity ("no change") transformation.
    pub fn is_identity(&self) -> bool {
        matches!(self, Transformation::Identity)
    }

    /// Predicted target values for `rows` of the *source* snapshot.
    ///
    /// `target_attr` is the attribute the transformation rewrites; identity
    /// transformations return its current (source) values.
    ///
    /// Each attribute resolves to its dense [`charles_relation::NumericView`]
    /// **once per call**, and values read straight off the window slice —
    /// no per-row `get_f64` dispatch. Columns that cannot expose a view
    /// (nulls, non-numeric) fall back to the per-row path, whose
    /// null/non-numeric errors are unchanged.
    pub fn apply(
        &self,
        source: &Table,
        target_attr: &str,
        rows: &[usize],
    ) -> charles_relation::Result<Vec<f64>> {
        match self {
            Transformation::Identity => {
                let col = source.column_by_name(target_attr)?;
                if let Ok(view) = col.numeric_view(target_attr) {
                    return Ok(view.gather(rows));
                }
                let mut out = Vec::with_capacity(rows.len());
                for &r in rows {
                    out.push(col.get_f64(r).ok_or_else(|| {
                        charles_relation::RelationError::Eval(format!(
                            "target {target_attr:?} null/non-numeric at row {r}"
                        ))
                    })?);
                }
                Ok(out)
            }
            Transformation::Linear {
                terms, intercept, ..
            } => {
                let mut out = vec![*intercept; rows.len()];
                for term in terms {
                    let col = source.column_by_name(term.attr.name())?;
                    match col.numeric_view(term.attr.name()) {
                        Ok(view) if view.covers_all_rows(rows) => {
                            kernels::axpy(&mut out, term.coefficient, view.as_slice());
                        }
                        Ok(view) => {
                            let s = view.as_slice();
                            for (o, &r) in out.iter_mut().zip(rows.iter()) {
                                *o += term.coefficient * s[r];
                            }
                        }
                        Err(_) => {
                            for (o, &r) in out.iter_mut().zip(rows.iter()) {
                                let v = col.get_f64(r).ok_or_else(|| {
                                    charles_relation::RelationError::Eval(format!(
                                        "attribute {:?} null/non-numeric at row {r}",
                                        term.attr
                                    ))
                                })?;
                                *o += term.coefficient * v;
                            }
                        }
                    }
                }
                Ok(out)
            }
        }
    }

    /// Number of variables in the model (the paper's transformation
    /// simplicity input; identity = 0).
    pub fn complexity(&self) -> usize {
        match self {
            Transformation::Identity => 0,
            Transformation::Linear { terms, .. } => terms.len(),
        }
    }

    /// Numeric constants for normality scoring (coefficients + non-zero
    /// intercept).
    pub fn constants(&self) -> Vec<f64> {
        match self {
            Transformation::Identity => Vec::new(),
            Transformation::Linear {
                terms, intercept, ..
            } => {
                let mut cs: Vec<f64> = terms.iter().map(|t| t.coefficient).collect();
                if *intercept != 0.0 {
                    cs.push(*intercept);
                }
                cs
            }
        }
    }

    /// Mean roundness of constants (1.0 for identity).
    pub fn normality(&self) -> f64 {
        let cs = self.constants();
        if cs.is_empty() {
            return 1.0;
        }
        // lint:allow(float-fold-order: interpretability roundness heuristic over a handful of constants)
        cs.iter().map(|&c| roundness(c)).sum::<f64>() / cs.len() as f64
    }

    /// Attributes read by the transformation (sorted).
    pub fn attributes(&self) -> Vec<String> {
        match self {
            Transformation::Identity => Vec::new(),
            Transformation::Linear { terms, .. } => {
                let mut attrs: Vec<String> =
                    terms.iter().map(|t| t.attr.name().to_string()).collect();
                attrs.sort();
                attrs.dedup();
                attrs
            }
        }
    }

    /// Convert to a relation-engine expression (`None` for identity).
    pub fn to_expr(&self) -> Option<Expr> {
        match self {
            Transformation::Identity => None,
            Transformation::Linear {
                terms, intercept, ..
            } => {
                let mut expr: Option<Expr> = None;
                for t in terms {
                    let term = Expr::lit(t.coefficient).mul(Expr::col(t.attr.name().to_string()));
                    expr = Some(match expr {
                        None => term,
                        Some(e) => e.add(term),
                    });
                }
                let base = expr.unwrap_or(Expr::lit(0.0));
                Some(if *intercept == 0.0 {
                    base
                } else {
                    base.add(Expr::lit(*intercept))
                })
            }
        }
    }

    /// Canonical key for deduplication.
    pub fn signature(&self) -> String {
        match self {
            Transformation::Identity => "identity".to_string(),
            Transformation::Linear {
                terms, intercept, ..
            } => {
                let mut parts: Vec<String> = terms
                    .iter()
                    .map(|t| format!("{:.9}×{}", t.coefficient, t.attr))
                    .collect();
                parts.sort();
                format!("{} + {:.9}", parts.join(" + "), intercept)
            }
        }
    }
}

impl fmt::Display for Transformation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Transformation::Identity => f.write_str("no change"),
            Transformation::Linear {
                target,
                terms,
                intercept,
            } => {
                write!(f, "new_{target} = ")?;
                if terms.is_empty() {
                    return write!(f, "{}", fmt_num(*intercept));
                }
                for (i, t) in terms.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" + ")?;
                    }
                    write!(f, "{} × old_{}", fmt_num(t.coefficient), t.attr)?;
                }
                if *intercept != 0.0 {
                    if *intercept > 0.0 {
                        write!(f, " + {}", fmt_num(*intercept))?;
                    } else {
                        write!(f, " - {}", fmt_num(-*intercept))?;
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_relation::TableBuilder;

    fn emp() -> Table {
        TableBuilder::new("emp")
            .float_col("bonus", &[23_000.0, 16_000.0, 13_000.0])
            .float_col("salary", &[230_000.0, 160_000.0, 130_000.0])
            .build()
            .unwrap()
    }

    fn r1() -> Transformation {
        Transformation::linear(
            "bonus",
            vec![Term {
                attr: "bonus".into(),
                coefficient: 1.05,
            }],
            1000.0,
        )
    }

    #[test]
    fn renders_like_the_paper() {
        assert_eq!(r1().to_string(), "new_bonus = 1.05 × old_bonus + 1000");
        assert_eq!(Transformation::Identity.to_string(), "no change");
        let neg = Transformation::linear(
            "bonus",
            vec![Term {
                attr: "salary".into(),
                coefficient: 0.1,
            }],
            -500.0,
        );
        assert_eq!(neg.to_string(), "new_bonus = 0.1 × old_salary - 500");
    }

    #[test]
    fn apply_linear() {
        let out = r1().apply(&emp(), "bonus", &[0, 2]).unwrap();
        assert_eq!(
            out,
            vec![1.05 * 23_000.0 + 1000.0, 1.05 * 13_000.0 + 1000.0]
        );
    }

    #[test]
    fn apply_identity_returns_source_values() {
        let out = Transformation::Identity
            .apply(&emp(), "bonus", &[1])
            .unwrap();
        assert_eq!(out, vec![16_000.0]);
    }

    #[test]
    fn complexity_and_constants() {
        assert_eq!(Transformation::Identity.complexity(), 0);
        assert_eq!(r1().complexity(), 1);
        assert_eq!(r1().constants(), vec![1.05, 1000.0]);
        // Zero intercept omitted from constants.
        let t = Transformation::linear(
            "b",
            vec![Term {
                attr: "x".into(),
                coefficient: 2.0,
            }],
            0.0,
        );
        assert_eq!(t.constants(), vec![2.0]);
    }

    #[test]
    fn zero_coefficient_terms_dropped() {
        let t = Transformation::linear(
            "b",
            vec![
                Term {
                    attr: "x".into(),
                    coefficient: 0.0,
                },
                Term {
                    attr: "y".into(),
                    coefficient: 1.0,
                },
            ],
            0.0,
        );
        assert_eq!(t.complexity(), 1);
        assert_eq!(t.attributes(), vec!["y".to_string()]);
    }

    #[test]
    fn normality_prefers_round_coefficients() {
        let round = r1();
        let ragged = Transformation::linear(
            "bonus",
            vec![Term {
                attr: "bonus".into(),
                coefficient: 1.049_713,
            }],
            997.23,
        );
        assert!(round.normality() > ragged.normality());
        assert_eq!(Transformation::Identity.normality(), 1.0);
    }

    #[test]
    fn to_expr_roundtrip() {
        let expr = r1().to_expr().unwrap();
        assert_eq!(expr.eval(&emp(), 0).unwrap(), 1.05 * 23_000.0 + 1000.0);
        assert!(Transformation::Identity.to_expr().is_none());
        // Constant-only transformation.
        let c = Transformation::linear("b", vec![], 42.0);
        assert_eq!(c.to_expr().unwrap().eval(&emp(), 0).unwrap(), 42.0);
    }

    #[test]
    fn signatures_dedupe() {
        assert_eq!(r1().signature(), r1().signature());
        assert_ne!(r1().signature(), Transformation::Identity.signature());
        // Term order must not matter.
        let a = Transformation::linear(
            "b",
            vec![
                Term {
                    attr: "x".into(),
                    coefficient: 1.0,
                },
                Term {
                    attr: "y".into(),
                    coefficient: 2.0,
                },
            ],
            0.0,
        );
        let b = Transformation::linear(
            "b",
            vec![
                Term {
                    attr: "y".into(),
                    coefficient: 2.0,
                },
                Term {
                    attr: "x".into(),
                    coefficient: 1.0,
                },
            ],
            0.0,
        );
        assert_eq!(a.signature(), b.signature());
    }
}
