//! Linear model trees (paper Figure 2).
//!
//! A change summary is naturally displayed as a tree: internal nodes test
//! descriptors, and each leaf holds the linear model of the partition the
//! root-to-leaf path defines. This module rebuilds that tree from a flat
//! summary's conditional transformations and renders it as ASCII art.

use crate::condition::Descriptor;
use crate::summary::ChangeSummary;
use crate::transform::Transformation;
use std::fmt;

/// A node of a linear model tree.
#[derive(Debug, Clone)]
pub enum TreeNode {
    /// Internal split on one descriptor.
    Split {
        /// The descriptor tested at this node.
        descriptor: Descriptor,
        /// Subtree when the descriptor holds.
        yes: Box<TreeNode>,
        /// Subtree when it does not.
        no: Box<TreeNode>,
    },
    /// A partition with its transformation.
    Leaf {
        /// The transformation for this partition.
        transformation: Transformation,
        /// Fraction of all rows in this partition.
        coverage: f64,
    },
    /// No conditional transformation covers this region (the paper's
    /// "None" leaf in Figure 2).
    None,
}

/// A linear model tree built from a summary.
#[derive(Debug, Clone)]
pub struct LinearModelTree {
    /// Root node.
    pub root: TreeNode,
}

/// Work item: remaining descriptors of a CT plus its leaf payload.
#[derive(Clone)]
struct Item {
    path: Vec<Descriptor>,
    transformation: Transformation,
    coverage: f64,
}

fn build(mut items: Vec<Item>) -> TreeNode {
    if items.is_empty() {
        return TreeNode::None;
    }
    // Items that ran out of descriptors are leaves at this position; any
    // remaining items are unreachable under disjoint conditions, so the
    // exhausted one (largest coverage) wins.
    if let Some(pos) = items.iter().position(|it| it.path.is_empty()) {
        let exhausted = items.remove(pos);
        return TreeNode::Leaf {
            transformation: exhausted.transformation,
            coverage: exhausted.coverage,
        };
    }
    // Split on the first descriptor of the first item. Items arrive sorted
    // by descending coverage, so this tests the biggest partition's
    // condition first (matching the paper's figure) and breaks coverage
    // ties in favour of the earlier (higher-ranked) CT.
    let descriptor = items[0].path[0].clone();

    let complement = descriptor.negate();
    let mut yes_items = Vec::new();
    let mut no_items = Vec::new();
    for mut item in items {
        if let Some(pos) = item.path.iter().position(|d| *d == descriptor) {
            item.path.remove(pos);
            yes_items.push(item);
        } else if let Some(pos) = item.path.iter().position(|d| *d == complement) {
            // The item's condition contains the split's logical complement
            // (e.g. `exp < 3` under a split on `exp ≥ 3`): it belongs on
            // the NO side with that descriptor consumed.
            item.path.remove(pos);
            no_items.push(item);
        } else {
            no_items.push(item);
        }
    }
    TreeNode::Split {
        descriptor,
        yes: Box::new(build(yes_items)),
        no: Box::new(build(no_items)),
    }
}

impl LinearModelTree {
    /// Build the tree view of a summary.
    pub fn from_summary(summary: &ChangeSummary) -> Self {
        let mut items: Vec<Item> = summary
            .cts
            .iter()
            .map(|ct| Item {
                path: ct.condition.descriptors().to_vec(),
                transformation: ct.transformation.clone(),
                coverage: ct.coverage,
            })
            .collect();
        // Stable: larger partitions first so they become shallow leaves.
        items.sort_by(|a, b| b.coverage.total_cmp(&a.coverage));
        LinearModelTree { root: build(items) }
    }

    /// Number of leaves (including `None` leaves).
    pub fn leaf_count(&self) -> usize {
        fn count(node: &TreeNode) -> usize {
            match node {
                TreeNode::Split { yes, no, .. } => count(yes) + count(no),
                _ => 1,
            }
        }
        count(&self.root)
    }

    /// Maximum depth (splits along the deepest path).
    pub fn depth(&self) -> usize {
        fn depth(node: &TreeNode) -> usize {
            match node {
                TreeNode::Split { yes, no, .. } => 1 + depth(yes).max(depth(no)),
                _ => 0,
            }
        }
        depth(&self.root)
    }
}

fn render(node: &TreeNode, indent: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match node {
        TreeNode::Leaf {
            transformation,
            coverage,
        } => {
            writeln!(f, "{transformation}   [{:.1}% of rows]", coverage * 100.0)
        }
        TreeNode::None => writeln!(f, "(none)"),
        TreeNode::Split {
            descriptor,
            yes,
            no,
        } => {
            writeln!(f, "{descriptor}?")?;
            write!(f, "{indent}├─ yes → ")?;
            render(yes, &format!("{indent}│        "), f)?;
            write!(f, "{indent}└─ no  → ")?;
            render(no, &format!("{indent}         "), f)
        }
    }
}

impl fmt::Display for LinearModelTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        render(&self.root, "", f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Condition;
    use crate::ct::ConditionalTransformation;
    use crate::summary::{InterpretabilityBreakdown, Scores};
    use crate::transform::Term;
    use charles_relation::Value;

    fn eq(attr: &str, v: &str) -> Descriptor {
        Descriptor::Equals {
            attr: attr.into(),
            value: Value::str(v),
        }
    }

    fn lt(attr: &str, t: f64) -> Descriptor {
        Descriptor::LessThan {
            attr: attr.into(),
            threshold: t,
        }
    }

    fn linear(coef: f64, add: f64) -> Transformation {
        Transformation::linear(
            "bonus",
            vec![Term {
                attr: "bonus".into(),
                coefficient: coef,
            }],
            add,
        )
    }

    /// The paper's Figure-2 summary: R1 (PhD), R3 (MS, exp<3), R2 (MS,
    /// exp≥3), and an uncovered BS region.
    fn figure2_summary() -> ChangeSummary {
        let cts = vec![
            ConditionalTransformation::new(
                Condition::new(vec![eq("edu", "PhD")]),
                linear(1.05, 1000.0),
                vec![0, 1, 8],
                9,
                0.0,
            ),
            ConditionalTransformation::new(
                Condition::new(vec![eq("edu", "MS"), lt("exp", 3.0)]),
                linear(1.03, 400.0),
                vec![3],
                9,
                0.0,
            ),
            ConditionalTransformation::new(
                Condition::new(vec![
                    eq("edu", "MS"),
                    Descriptor::AtLeast {
                        attr: "exp".into(),
                        threshold: 3.0,
                    },
                ]),
                linear(1.04, 800.0),
                vec![2, 5, 7],
                9,
                0.0,
            ),
        ];
        ChangeSummary {
            cts,
            target_attr: "bonus".into(),
            condition_attrs: vec!["edu".into(), "exp".into()],
            transform_attrs: vec!["bonus".into()],
            scores: Scores::default(),
            breakdown: InterpretabilityBreakdown::default(),
            total_rows: 9,
        }
    }

    #[test]
    fn builds_figure_2_shape() {
        let tree = LinearModelTree::from_summary(&figure2_summary());
        // Root splits on edu = PhD (the largest partition's first test).
        match &tree.root {
            TreeNode::Split {
                descriptor, yes, ..
            } => {
                assert_eq!(descriptor.to_string(), "edu = PhD");
                assert!(matches!(**yes, TreeNode::Leaf { .. }));
            }
            other => panic!("expected root split, got {other:?}"),
        }
        // 3 CT leaves + 1 None region.
        assert_eq!(tree.leaf_count(), 4);
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn renders_ascii() {
        let tree = LinearModelTree::from_summary(&figure2_summary());
        let text = tree.to_string();
        assert!(text.contains("edu = PhD?"), "{text}");
        assert!(
            text.contains("new_bonus = 1.05 × old_bonus + 1000"),
            "{text}"
        );
        assert!(text.contains("(none)"), "{text}");
        assert!(text.contains("yes →"), "{text}");
        assert!(text.contains("no  →"), "{text}");
    }

    #[test]
    fn single_universal_ct_is_single_leaf() {
        let summary = ChangeSummary {
            cts: vec![ConditionalTransformation::new(
                Condition::all(),
                Transformation::Identity,
                vec![0, 1],
                2,
                0.0,
            )],
            target_attr: "x".into(),
            condition_attrs: vec![],
            transform_attrs: vec![],
            scores: Scores::default(),
            breakdown: InterpretabilityBreakdown::default(),
            total_rows: 2,
        };
        let tree = LinearModelTree::from_summary(&summary);
        assert!(matches!(tree.root, TreeNode::Leaf { .. }));
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.leaf_count(), 1);
        assert!(tree.to_string().contains("no change"));
    }

    #[test]
    fn empty_summary_is_none() {
        let summary = ChangeSummary {
            cts: vec![],
            target_attr: "x".into(),
            condition_attrs: vec![],
            transform_attrs: vec![],
            scores: Scores::default(),
            breakdown: InterpretabilityBreakdown::default(),
            total_rows: 0,
        };
        let tree = LinearModelTree::from_summary(&summary);
        assert!(matches!(tree.root, TreeNode::None));
    }
}
