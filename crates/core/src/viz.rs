//! Partition visualization data (paper demo steps 9–10).
//!
//! The demo shows each summary as non-overlapping rectangles, one per
//! partition, sized by coverage, with "no change" partitions hatched.
//! This module produces that view as structured rows plus an ASCII
//! rendering for terminal consumers.

use crate::summary::ChangeSummary;
use std::fmt;

/// One partition rectangle.
#[derive(Debug, Clone)]
pub struct VizRect {
    /// Condition describing the partition.
    pub condition: String,
    /// Transformation applied there.
    pub transformation: String,
    /// Coverage fraction in [0, 1].
    pub coverage: f64,
    /// Rows in the partition.
    pub rows: usize,
    /// Mean absolute error of the partition's transformation.
    pub mae: f64,
    /// Whether this partition observed no change (rendered hatched).
    pub no_change: bool,
}

/// The visualization for one summary.
#[derive(Debug, Clone)]
pub struct PartitionViz {
    /// Rectangles, largest coverage first.
    pub rects: Vec<VizRect>,
    /// Fraction of rows not covered by any partition.
    pub uncovered: f64,
}

impl PartitionViz {
    /// Build the visualization from a summary.
    pub fn from_summary(summary: &ChangeSummary) -> Self {
        let mut rects: Vec<VizRect> = summary
            .cts
            .iter()
            .map(|ct| VizRect {
                condition: ct.condition.to_string(),
                transformation: ct.transformation.to_string(),
                coverage: ct.coverage,
                rows: ct.size(),
                mae: ct.mae,
                no_change: ct.is_no_change(),
            })
            .collect();
        rects.sort_by(|a, b| b.coverage.total_cmp(&a.coverage));
        let coverages: Vec<f64> = rects.iter().map(|r| r.coverage).collect();
        let covered = charles_numerics::kernels::sum(&coverages);
        PartitionViz {
            rects,
            uncovered: (1.0 - covered).max(0.0),
        }
    }
}

impl fmt::Display for PartitionViz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const WIDTH: usize = 50;
        for rect in &self.rects {
            let bar_len = ((rect.coverage * WIDTH as f64).round() as usize).clamp(1, WIDTH);
            let fill = if rect.no_change { "/" } else { "█" };
            writeln!(
                f,
                "{:<50} |{}{}| {:>5.1}%  {}",
                truncate(&rect.condition, 50),
                fill.repeat(bar_len),
                " ".repeat(WIDTH - bar_len),
                rect.coverage * 100.0,
                if rect.no_change {
                    "no change".to_string()
                } else {
                    rect.transformation.clone()
                }
            )?;
        }
        if self.uncovered > 1e-9 {
            writeln!(f, "(uncovered: {:.1}% of rows)", self.uncovered * 100.0)?;
        }
        Ok(())
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let cut: String = s.chars().take(max - 1).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::{Condition, Descriptor};
    use crate::ct::ConditionalTransformation;
    use crate::summary::{InterpretabilityBreakdown, Scores};
    use crate::transform::{Term, Transformation};
    use charles_relation::Value;

    fn summary() -> ChangeSummary {
        let phd = ConditionalTransformation::new(
            Condition::all().with(Descriptor::Equals {
                attr: "edu".into(),
                value: Value::str("PhD"),
            }),
            Transformation::linear(
                "bonus",
                vec![Term {
                    attr: "bonus".into(),
                    coefficient: 1.05,
                }],
                1000.0,
            ),
            vec![0, 1, 8],
            9,
            12.5,
        );
        let bs = ConditionalTransformation::new(
            Condition::all().with(Descriptor::Equals {
                attr: "edu".into(),
                value: Value::str("BS"),
            }),
            Transformation::Identity,
            vec![4, 6],
            9,
            0.0,
        );
        ChangeSummary {
            cts: vec![bs.clone(), phd],
            target_attr: "bonus".into(),
            condition_attrs: vec!["edu".into()],
            transform_attrs: vec!["bonus".into()],
            scores: Scores::default(),
            breakdown: InterpretabilityBreakdown::default(),
            total_rows: 9,
        }
    }

    #[test]
    fn rects_sorted_by_coverage() {
        let viz = PartitionViz::from_summary(&summary());
        assert_eq!(viz.rects.len(), 2);
        assert!(viz.rects[0].coverage >= viz.rects[1].coverage);
        assert_eq!(viz.rects[0].condition, "edu = PhD");
        assert!((viz.uncovered - 4.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn no_change_flag_propagates() {
        let viz = PartitionViz::from_summary(&summary());
        let bs = viz
            .rects
            .iter()
            .find(|r| r.condition == "edu = BS")
            .unwrap();
        assert!(bs.no_change);
        assert_eq!(bs.rows, 2);
    }

    #[test]
    fn ascii_render_contains_bars_and_hatching() {
        let viz = PartitionViz::from_summary(&summary());
        let text = viz.to_string();
        assert!(text.contains("█"), "{text}");
        assert!(text.contains("/"), "{text}");
        assert!(text.contains("33.3%"), "{text}");
        assert!(text.contains("uncovered"), "{text}");
    }

    #[test]
    fn truncate_long_conditions() {
        assert_eq!(truncate("short", 50), "short");
        let long = "x".repeat(80);
        let t = truncate(&long, 50);
        assert_eq!(t.chars().count(), 50);
        assert!(t.ends_with('…'));
    }
}
