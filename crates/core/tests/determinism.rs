//! Parallel determinism: a multi-threaded search must produce rankings
//! byte-for-byte identical to the single-threaded search.
//!
//! The worker threads race over a shared candidate queue and a shared
//! global-fit memo, so both the evaluation order and which thread first
//! populates a memo entry vary run to run — none of which may leak into
//! the ranked output.

use charles_core::{Charles, CharlesConfig};
use charles_relation::SnapshotPair;
use charles_synth::example1;

fn pair() -> SnapshotPair {
    let scenario = example1();
    SnapshotPair::align(scenario.source, scenario.target).expect("example1 aligns")
}

/// Render a run's ranking with everything deterministic in it (summary
/// displays include scores to three decimals, conditions, and
/// transformations; wall-clock time is deliberately excluded).
fn rendered_ranking(threads: usize) -> String {
    let engine = Charles::from_pair(pair(), "bonus")
        .expect("engine")
        .with_condition_attrs(["edu", "exp", "gen"])
        .with_transform_attrs(["bonus", "salary"])
        .with_config(CharlesConfig::default().with_threads(threads));
    let result = engine.run().expect("run");
    result
        .summaries
        .iter()
        .enumerate()
        .map(|(i, s)| format!("#{} {s}", i + 1))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn serial_and_parallel_rankings_are_byte_identical() {
    let serial = rendered_ranking(1);
    let parallel = rendered_ranking(4);
    assert!(!serial.is_empty());
    assert_eq!(
        serial, parallel,
        "threads=1 and threads=4 must rank identically"
    );
}

#[test]
fn parallel_runs_are_reproducible_across_invocations() {
    let first = rendered_ranking(4);
    let second = rendered_ranking(4);
    assert_eq!(first, second, "same config must reproduce byte-for-byte");
}
