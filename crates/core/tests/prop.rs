//! Property-based tests for core components: scoring bounds, condition
//! compilation, constant snapping budgets.

use charles_core::snap::snap_fit;
use charles_core::{CharlesConfig, Condition, Descriptor, ScoringContext, Term, Transformation};
use charles_numerics::ols::fit_ols;
use charles_numerics::stats::{mean, std_dev};
use charles_relation::{TableBuilder, Value};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn snap_respects_error_budget(
        xs in proptest::collection::vec(1.0f64..1e5, 4..30),
        slope in -10.0f64..10.0,
        intercept in -1e4f64..1e4,
        noise in proptest::collection::vec(-50.0f64..50.0, 4..30),
        tol in 0.0f64..0.1,
    ) {
        let n = xs.len().min(noise.len());
        let xs = &xs[..n];
        let mx = mean(xs).unwrap();
        prop_assume!(xs.iter().any(|v| (v - mx).abs() > 1.0));
        let y: Vec<f64> = xs.iter().zip(noise.iter())
            .map(|(&x, &e)| slope * x + intercept + e)
            .collect();
        let fit = fit_ols(&[xs.to_vec()], &y).unwrap();
        let base_mae = fit.mean_abs_error();
        let snapped = snap_fit(&[xs.to_vec()], &y, &fit, tol);
        let budget = base_mae * (1.0 + tol)
            + tol * std_dev(&y).unwrap_or(1.0) / 1000.0
            + 1e-9;
        prop_assert!(
            snapped.mae <= budget,
            "snapped mae {} exceeds budget {}", snapped.mae, budget
        );
    }

    #[test]
    fn transformation_apply_matches_formula(
        coef in -10.0f64..10.0,
        add in -1e4f64..1e4,
        vals in proptest::collection::vec(0.0f64..1e5, 1..20),
    ) {
        let table = TableBuilder::new("t")
            .float_col("x", &vals)
            .build()
            .unwrap();
        let t = Transformation::linear(
            "x",
            vec![Term { attr: "x".into(), coefficient: coef }],
            add,
        );
        let rows: Vec<usize> = (0..vals.len()).collect();
        let out = t.apply(&table, "x", &rows).unwrap();
        for (o, &v) in out.iter().zip(vals.iter()) {
            prop_assert!((o - (coef * v + add)).abs() < 1e-9 * (1.0 + o.abs()));
        }
    }

    #[test]
    fn condition_rows_match_predicate(
        cats in proptest::collection::vec(0usize..3, 1..30),
        threshold in 0.0f64..100.0,
        nums in proptest::collection::vec(0.0f64..100.0, 1..30),
    ) {
        let n = cats.len().min(nums.len());
        let labels: Vec<&str> = cats[..n].iter().map(|&c| ["A", "B", "C"][c]).collect();
        let table = TableBuilder::new("t")
            .str_col("cat", &labels)
            .float_col("num", &nums[..n])
            .build()
            .unwrap();
        let cond = Condition::new(vec![
            Descriptor::Equals { attr: "cat".into(), value: Value::str("A") },
            Descriptor::LessThan { attr: "num".into(), threshold },
        ]);
        let rows = cond.matching_rows(&table).unwrap();
        for r in 0..n {
            let expected = labels[r] == "A" && nums[r] < threshold;
            prop_assert_eq!(rows.contains(&r), expected, "row {}", r);
        }
    }

    #[test]
    fn scores_always_bounded(
        y_source in proptest::collection::vec(1.0f64..1e5, 2..30),
        deltas in proptest::collection::vec(-1e4f64..1e4, 2..30),
    ) {
        let n = y_source.len().min(deltas.len());
        let y_source = &y_source[..n];
        let y_target: Vec<f64> = y_source.iter().zip(deltas.iter())
            .map(|(s, d)| s + d)
            .collect();
        let table = TableBuilder::new("t")
            .float_col("x", y_source)
            .build()
            .unwrap();
        let config = CharlesConfig::default();
        let ctx = ScoringContext::new(&table, "x", &y_target, y_source, &config);
        // Score the trivial no-change CT list.
        let ct = charles_core::ConditionalTransformation::new(
            Condition::all(),
            Transformation::Identity,
            (0..n).collect(),
            n,
            0.0,
        );
        let (scores, breakdown) = ctx.score(&[ct]).unwrap();
        prop_assert!((0.0..=1.0).contains(&scores.accuracy));
        prop_assert!((0.0..=1.0).contains(&scores.interpretability));
        prop_assert!((0.0..=1.0).contains(&scores.score));
        for s in [breakdown.size, breakdown.simplicity, breakdown.coverage, breakdown.normality] {
            prop_assert!((0.0..=1.0).contains(&s));
        }
    }
}
