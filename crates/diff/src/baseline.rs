//! Baseline change explainers (experiment E7).
//!
//! The related-work section positions ChARLES against two extremes: the
//! exhaustive cell-change list (perfectly precise, uninterpretable) and
//! coarse global descriptions like rule R4 ("everyone gets about 6%") —
//! interpretable but imprecise. This module implements those baselines so
//! they can be scored with the *same* accuracy/interpretability machinery
//! as ChARLES summaries.

use crate::cell::diff_attr;
use charles_core::{
    ChangeSummary, CharlesConfig, Condition, ConditionalTransformation, InterpretabilityBreakdown,
    Scores, ScoringContext, Term, Transformation,
};
use charles_numerics::ols::fit_ols;
use charles_relation::SnapshotPair;

/// A scored baseline explanation.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// Baseline name.
    pub name: String,
    /// Scores under the ChARLES score function.
    pub scores: Scores,
    /// Size of the emitted explanation, in "units a human must read"
    /// (CT count for summary-shaped baselines; changed-cell count for the
    /// exhaustive list).
    pub explanation_units: usize,
    /// The summary-shaped explanation, when the baseline has one.
    pub summary: Option<ChangeSummary>,
}

fn score_cts(
    pair: &SnapshotPair,
    target_attr: &str,
    config: &CharlesConfig,
    name: &str,
    cts: Vec<ConditionalTransformation>,
) -> charles_core::Result<BaselineReport> {
    let y_target = pair.target_numeric_aligned(target_attr)?;
    let y_source = pair.source().numeric(target_attr)?;
    let ctx = ScoringContext::new(pair.source(), target_attr, &y_target, &y_source, config);
    let (scores, breakdown) = ctx.score(&cts)?;
    let units = cts.len();
    Ok(BaselineReport {
        name: name.to_string(),
        scores,
        explanation_units: units,
        summary: Some(ChangeSummary {
            cts,
            target_attr: target_attr.to_string(),
            condition_attrs: Vec::new(),
            transform_attrs: vec![target_attr.to_string()],
            scores,
            breakdown,
            total_rows: pair.len(),
        }),
    })
}

fn all_rows_ct(
    pair: &SnapshotPair,
    transformation: Transformation,
    mae: f64,
) -> ConditionalTransformation {
    let n = pair.len();
    ConditionalTransformation::new(Condition::all(), transformation, (0..n).collect(), n, mae)
}

/// Baseline: claim nothing changed.
pub fn no_change_baseline(
    pair: &SnapshotPair,
    target_attr: &str,
    config: &CharlesConfig,
) -> charles_core::Result<BaselineReport> {
    let ct = all_rows_ct(pair, Transformation::Identity, 0.0);
    score_cts(pair, target_attr, config, "no-change", vec![ct])
}

/// Baseline: everyone's value moved by the mean delta (flat additive).
pub fn flat_delta_baseline(
    pair: &SnapshotPair,
    target_attr: &str,
    config: &CharlesConfig,
) -> charles_core::Result<BaselineReport> {
    let y_target = pair.target_numeric_aligned(target_attr)?;
    let y_source = pair.source().numeric(target_attr)?;
    let n = y_target.len().max(1);
    let mean_delta = y_target
        .iter()
        .zip(y_source.iter())
        .map(|(t, s)| t - s)
        // lint:allow(float-fold-order: paper-baseline harness, fixed row order)
        .sum::<f64>()
        / n as f64;
    let t = Transformation::linear(
        target_attr,
        vec![Term {
            attr: pair.source().schema().attr_ref(target_attr)?,
            coefficient: 1.0,
        }],
        mean_delta,
    );
    let mae = y_target
        .iter()
        .zip(y_source.iter())
        .map(|(t_, s)| (t_ - (s + mean_delta)).abs())
        // lint:allow(float-fold-order: paper-baseline harness, fixed row order)
        .sum::<f64>()
        / n as f64;
    let ct = all_rows_ct(pair, t, mae);
    score_cts(pair, target_attr, config, "flat-delta", vec![ct])
}

/// Baseline: everyone's value scaled by the mean ratio — the paper's rule
/// R4 ("everyone receives about 6% increase on last year's bonus").
pub fn flat_ratio_baseline(
    pair: &SnapshotPair,
    target_attr: &str,
    config: &CharlesConfig,
) -> charles_core::Result<BaselineReport> {
    let y_target = pair.target_numeric_aligned(target_attr)?;
    let y_source = pair.source().numeric(target_attr)?;
    let ratios: Vec<f64> = y_target
        .iter()
        .zip(y_source.iter())
        .filter(|(_, s)| s.abs() > 1e-12)
        .map(|(t, s)| t / s)
        .collect();
    let mean_ratio = if ratios.is_empty() {
        1.0
    } else {
        // Round to two decimals: "about 6%", not "6.1379%".
        // lint:allow(float-fold-order: paper-baseline harness, fixed row order)
        (ratios.iter().sum::<f64>() / ratios.len() as f64 * 100.0).round() / 100.0
    };
    let t = Transformation::linear(
        target_attr,
        vec![Term {
            attr: pair.source().schema().attr_ref(target_attr)?,
            coefficient: mean_ratio,
        }],
        0.0,
    );
    let n = y_target.len().max(1);
    let mae = y_target
        .iter()
        .zip(y_source.iter())
        .map(|(t_, s)| (t_ - mean_ratio * s).abs())
        // lint:allow(float-fold-order: paper-baseline harness, fixed row order)
        .sum::<f64>()
        / n as f64;
    let ct = all_rows_ct(pair, t, mae);
    score_cts(pair, target_attr, config, "flat-ratio (R4)", vec![ct])
}

/// Baseline: one global OLS fit of the new value on the old value — a
/// single regression line with no partitioning.
pub fn global_regression_baseline(
    pair: &SnapshotPair,
    target_attr: &str,
    config: &CharlesConfig,
) -> charles_core::Result<BaselineReport> {
    let y_target = pair.target_numeric_aligned(target_attr)?;
    let y_source = pair.source().numeric(target_attr)?;
    let fit = fit_ols(std::slice::from_ref(&y_source), &y_target)?;
    let t = Transformation::linear(
        target_attr,
        vec![Term {
            attr: pair.source().schema().attr_ref(target_attr)?,
            coefficient: fit.coefficients[0],
        }],
        fit.intercept,
    );
    let mae = fit.mean_abs_error();
    let ct = all_rows_ct(pair, t, mae);
    score_cts(pair, target_attr, config, "global-regression", vec![ct])
}

/// Baseline: the exhaustive change list (what comparator tools emit).
/// Perfectly accurate by construction; its "interpretability" is computed
/// from the same desiderata, treating every changed cell as its own
/// explanation unit — which is exactly why it scores so poorly.
pub fn exhaustive_list_baseline(
    pair: &SnapshotPair,
    target_attr: &str,
    config: &CharlesConfig,
) -> charles_core::Result<BaselineReport> {
    let changes = diff_attr(pair, target_attr)?;
    let units = changes.len();
    // Interpretability under the paper's desiderata: a summary with one
    // "CT" per changed row. Size decays as 1/(1 + (units-1)/4); each unit
    // has one descriptor (the key equality) and a constant transformation;
    // coverage is maximally fragmented (sum of (1/n)² per changed row);
    // constants are arbitrary values, so normality uses their roundness.
    let n = pair.len().max(1);
    let size = 1.0 / (1.0 + (units.max(1) as f64 - 1.0) / 4.0);
    let simplicity = 1.0 / (1.0 + 2.0 / 4.0); // key descriptor + constant
    let coverage = units as f64 / (n as f64 * n as f64);
    let normality = changes
        .iter()
        .filter_map(|c| c.new.as_f64())
        .map(charles_numerics::roundness)
        // lint:allow(float-fold-order: paper-baseline harness, fixed row order)
        .sum::<f64>()
        / units.max(1) as f64;
    let [w_size, w_simp, w_cov, w_norm] = config.interpretability_weights;
    let interpretability =
        w_size * size + w_simp * simplicity + w_cov * coverage + w_norm * normality;
    let accuracy = 1.0; // replays every change verbatim
    let scores = Scores {
        accuracy,
        interpretability,
        score: config.alpha * accuracy + (1.0 - config.alpha) * interpretability,
    };
    let _ = InterpretabilityBreakdown {
        size,
        simplicity,
        coverage,
        normality,
    };
    Ok(BaselineReport {
        name: "exhaustive-list".to_string(),
        scores,
        explanation_units: units,
        summary: None,
    })
}

/// Run every baseline.
pub fn all_baselines(
    pair: &SnapshotPair,
    target_attr: &str,
    config: &CharlesConfig,
) -> charles_core::Result<Vec<BaselineReport>> {
    Ok(vec![
        exhaustive_list_baseline(pair, target_attr, config)?,
        global_regression_baseline(pair, target_attr, config)?,
        flat_ratio_baseline(pair, target_attr, config)?,
        flat_delta_baseline(pair, target_attr, config)?,
        no_change_baseline(pair, target_attr, config)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_synth::example1;

    fn fig1() -> SnapshotPair {
        let s = example1();
        SnapshotPair::align(s.source, s.target).unwrap()
    }

    #[test]
    fn exhaustive_list_is_accurate_but_unreadable() {
        let pair = fig1();
        let config = CharlesConfig::default();
        let r = exhaustive_list_baseline(&pair, "bonus", &config).unwrap();
        assert_eq!(r.scores.accuracy, 1.0);
        assert_eq!(r.explanation_units, 7); // 7 bonuses changed in Fig. 1
        assert!(
            r.scores.interpretability < 0.5,
            "interpretability = {}",
            r.scores.interpretability
        );
    }

    #[test]
    fn flat_ratio_matches_paper_r4() {
        let pair = fig1();
        let config = CharlesConfig::default();
        let r = flat_ratio_baseline(&pair, "bonus", &config).unwrap();
        // The paper says R4 is "about 6%": the mean ratio on Figure 1 is
        // 1.0687, i.e. ≈ 6–7% depending on rounding.
        let summary = r.summary.unwrap();
        let rendered = summary.to_string();
        assert!(
            rendered.contains("1.06") || rendered.contains("1.07"),
            "{rendered}"
        );
        // Interpretable but inaccurate.
        assert!(summary.scores.interpretability > 0.8);
        assert!(summary.scores.accuracy < 0.9);
    }

    #[test]
    fn no_change_baseline_wrong_when_things_changed() {
        let pair = fig1();
        let config = CharlesConfig::default();
        let r = no_change_baseline(&pair, "bonus", &config).unwrap();
        assert!(r.scores.accuracy < 0.5);
        assert_eq!(r.explanation_units, 1);
    }

    #[test]
    fn global_regression_better_than_flat_but_imperfect() {
        let pair = fig1();
        let config = CharlesConfig::default();
        let global = global_regression_baseline(&pair, "bonus", &config).unwrap();
        let flat = flat_delta_baseline(&pair, "bonus", &config).unwrap();
        assert!(global.scores.accuracy >= flat.scores.accuracy);
        assert!(global.scores.accuracy < 0.999);
    }

    #[test]
    fn all_baselines_run() {
        let pair = fig1();
        let config = CharlesConfig::default();
        let reports = all_baselines(&pair, "bonus", &config).unwrap();
        assert_eq!(reports.len(), 5);
        for r in &reports {
            assert!(
                (0.0..=1.0).contains(&r.scores.accuracy),
                "{}: {:?}",
                r.name,
                r.scores
            );
            assert!((0.0..=1.0).contains(&r.scores.interpretability));
        }
    }
}
