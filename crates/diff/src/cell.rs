//! Cell-level diffing of aligned snapshots — the *syntactic* change layer
//! that comparator tools (PostgresCompare, OrpheusDB) expose and that
//! ChARLES summarizes semantically.

use charles_relation::{Column, SnapshotPair, Value};

/// One changed cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellChange {
    /// Entity key (or row id for positional alignment).
    pub key: Value,
    /// Source row index.
    pub row: usize,
    /// Attribute name.
    pub attr: String,
    /// Value in the source snapshot.
    pub old: Value,
    /// Value in the target snapshot.
    pub new: Value,
}

impl CellChange {
    /// Numeric delta (`new − old`) when both sides are numeric.
    pub fn delta(&self) -> Option<f64> {
        Some(self.new.as_f64()? - self.old.as_f64()?)
    }
}

impl std::fmt::Display for CellChange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {}: {} → {}",
            self.key, self.attr, self.old, self.new
        )
    }
}

/// Per-column changed-row mask, computed on the raw column storage.
///
/// Mirrors [`Value::sem_eq`] with `Null → Null` not a change: numeric
/// columns compare raw `f64`/`i64`s, dictionary columns translate source
/// codes into the target dictionary **once** and then compare integer
/// codes — no per-cell [`Value`] materialization for unchanged cells
/// (the overwhelming majority in real snapshots).
fn changed_mask(source: &Column, target: &Column, target_row_of: &[usize]) -> Vec<bool> {
    let n = target_row_of.len();
    let mut mask = vec![false; n];
    match (source, target) {
        (Column::Int64 { values: sv, .. }, Column::Int64 { values: tv, .. }) => {
            for (row, m) in mask.iter_mut().enumerate() {
                *m = sv[row] != tv[target_row_of[row]];
            }
        }
        (Column::Float64 { values: sv, .. }, Column::Float64 { values: tv, .. }) => {
            // sem_eq uses plain `==`: NaN ≠ NaN counts as a change.
            for (row, m) in mask.iter_mut().enumerate() {
                *m = sv[row] != tv[target_row_of[row]];
            }
        }
        (Column::Bool { values: sv, .. }, Column::Bool { values: tv, .. }) => {
            for (row, m) in mask.iter_mut().enumerate() {
                *m = sv[row] != tv[target_row_of[row]];
            }
        }
        (
            Column::Utf8 {
                dict: sd,
                codes: sc,
                ..
            },
            Column::Utf8 {
                dict: td,
                codes: tc,
                ..
            },
        ) => {
            // Translate each distinct source code into the target's
            // dictionary once; the row loop is then integer-only. Null rows
            // carry an un-interned sentinel code (possibly out of
            // dictionary range): probe with `get` — the null-override pass
            // below decides those rows regardless.
            let translation: Vec<Option<u32>> = (0..sd.len() as u32)
                .map(|code| td.code_of(sd.resolve(code)))
                .collect();
            for (row, m) in mask.iter_mut().enumerate() {
                let translated = translation.get(sc[row] as usize).copied().flatten();
                *m = translated != Some(tc[target_row_of[row]]);
            }
        }
        // Identical schemas make mixed variants unreachable, but stay
        // correct if that ever changes.
        _ => {
            for (row, m) in mask.iter_mut().enumerate() {
                *m = !source.get(row).sem_eq(&target.get(target_row_of[row]));
            }
        }
    }
    // Null handling overrides the raw comparison: null→null is never a
    // change, null↔value always is.
    if source.validity_mask().is_some() || target.validity_mask().is_some() {
        for (row, m) in mask.iter_mut().enumerate() {
            let old_null = !source.is_valid(row);
            let new_null = !target.is_valid(target_row_of[row]);
            *m = match (old_null, new_null) {
                (true, true) => false,
                (true, false) | (false, true) => true,
                (false, false) => *m,
            };
        }
    }
    mask
}

/// All changed cells between the snapshots, in (row, column) order.
///
/// `Null → Null` is not a change; any other pair differing under semantic
/// equality is. Comparison runs column-at-a-time on the shared columnar
/// storage; `Value`s are only materialized for cells that actually
/// changed.
pub fn diff_cells(pair: &SnapshotPair) -> charles_relation::Result<Vec<CellChange>> {
    let source = pair.source();
    let target = pair.target();
    let target_row_of: Vec<usize> = (0..source.height()).map(|r| pair.target_row(r)).collect();
    let masks: Vec<Vec<bool>> = (0..source.width())
        .map(|c| {
            Ok(changed_mask(
                source.column(c)?,
                target.column(c)?,
                &target_row_of,
            ))
        })
        .collect::<charles_relation::Result<_>>()?;
    let mut out = Vec::new();
    for row in source.row_ids() {
        for (col_idx, field) in source.schema().fields().iter().enumerate() {
            if masks[col_idx][row] {
                out.push(CellChange {
                    key: pair.key_of(row)?,
                    row,
                    attr: field.name().to_string(),
                    old: source.column(col_idx)?.get(row),
                    new: target.column(col_idx)?.get(target_row_of[row]),
                });
            }
        }
    }
    Ok(out)
}

/// Changed cells restricted to one attribute.
pub fn diff_attr(pair: &SnapshotPair, attr: &str) -> charles_relation::Result<Vec<CellChange>> {
    // Validate the attribute early for a clear error.
    pair.source().schema().index_of(attr)?;
    Ok(diff_cells(pair)?
        .into_iter()
        .filter(|c| c.attr == attr)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_relation::TableBuilder;

    fn pair() -> SnapshotPair {
        let s = TableBuilder::new("s")
            .str_col("k", &["a", "b", "c"])
            .float_col("x", &[1.0, 2.0, 3.0])
            .str_col("tag", &["p", "q", "r"])
            .key("k")
            .build()
            .unwrap();
        let t = TableBuilder::new("t")
            .str_col("k", &["c", "a", "b"]) // shuffled
            .float_col("x", &[3.5, 1.0, 2.0])
            .str_col("tag", &["r", "P", "q"])
            .key("k")
            .build()
            .unwrap();
        SnapshotPair::align(s, t).unwrap()
    }

    #[test]
    fn detects_changes_across_shuffled_rows() {
        let changes = diff_cells(&pair()).unwrap();
        assert_eq!(changes.len(), 2);
        // Anne's tag p→P, Cathy's x 3.0→3.5 (keys a and c).
        let keys: Vec<String> = changes.iter().map(|c| c.key.to_string()).collect();
        assert!(keys.contains(&"a".to_string()));
        assert!(keys.contains(&"c".to_string()));
    }

    #[test]
    fn delta_for_numeric_changes() {
        let changes = diff_attr(&pair(), "x").unwrap();
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].delta(), Some(0.5));
        let tag_changes = diff_attr(&pair(), "tag").unwrap();
        assert_eq!(tag_changes[0].delta(), None);
    }

    #[test]
    fn unknown_attribute_errors() {
        assert!(diff_attr(&pair(), "zzz").is_err());
    }

    #[test]
    fn identical_snapshots_no_changes() {
        let s = TableBuilder::new("s")
            .str_col("k", &["a"])
            .float_col("x", &[1.0])
            .key("k")
            .build()
            .unwrap();
        let p = SnapshotPair::align(s.clone(), s).unwrap();
        assert!(diff_cells(&p).unwrap().is_empty());
    }

    #[test]
    fn display_renders() {
        let changes = diff_attr(&pair(), "x").unwrap();
        assert_eq!(changes[0].to_string(), "[c] x: 3.0 → 3.5");
    }

    #[test]
    fn all_null_string_column_diffs_without_panicking() {
        // An all-null source Utf8 column has an empty dictionary while its
        // rows carry the un-interned sentinel code; the code-translation
        // fast path must not index the dictionary. Null → value is a
        // change; null → null is not.
        use charles_relation::{Column, DataType, Schema, Table, Value};
        let schema = Schema::from_pairs([("s", DataType::Utf8)]).unwrap();
        let source = Table::new(
            schema.clone(),
            vec![Column::from_values(DataType::Utf8, &[Value::Null, Value::Null]).unwrap()],
        )
        .unwrap();
        let target = Table::new(
            schema,
            vec![
                Column::from_values(DataType::Utf8, &[Value::str("now-set"), Value::Null]).unwrap(),
            ],
        )
        .unwrap();
        let pair = SnapshotPair::align(source, target).unwrap();
        let changes = diff_cells(&pair).unwrap();
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].old, Value::Null);
        assert_eq!(changes[0].new, Value::str("now-set"));
    }
}
