//! Cell-level diffing of aligned snapshots — the *syntactic* change layer
//! that comparator tools (PostgresCompare, OrpheusDB) expose and that
//! ChARLES summarizes semantically.

use charles_relation::{SnapshotPair, Value};

/// One changed cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellChange {
    /// Entity key (or row id for positional alignment).
    pub key: Value,
    /// Source row index.
    pub row: usize,
    /// Attribute name.
    pub attr: String,
    /// Value in the source snapshot.
    pub old: Value,
    /// Value in the target snapshot.
    pub new: Value,
}

impl CellChange {
    /// Numeric delta (`new − old`) when both sides are numeric.
    pub fn delta(&self) -> Option<f64> {
        Some(self.new.as_f64()? - self.old.as_f64()?)
    }
}

impl std::fmt::Display for CellChange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {}: {} → {}",
            self.key, self.attr, self.old, self.new
        )
    }
}

/// All changed cells between the snapshots, in (row, column) order.
///
/// `Null → Null` is not a change; any other pair differing under semantic
/// equality is.
pub fn diff_cells(pair: &SnapshotPair) -> charles_relation::Result<Vec<CellChange>> {
    let source = pair.source();
    let target = pair.target();
    let mut out = Vec::new();
    for row in source.row_ids() {
        let trow = pair.target_row(row);
        for (col_idx, field) in source.schema().fields().iter().enumerate() {
            let old = source.column(col_idx)?.get(row);
            let new = target.column(col_idx)?.get(trow);
            let both_null = old.is_null() && new.is_null();
            if !both_null && !old.sem_eq(&new) {
                out.push(CellChange {
                    key: pair.key_of(row)?,
                    row,
                    attr: field.name().to_string(),
                    old,
                    new,
                });
            }
        }
    }
    Ok(out)
}

/// Changed cells restricted to one attribute.
pub fn diff_attr(pair: &SnapshotPair, attr: &str) -> charles_relation::Result<Vec<CellChange>> {
    // Validate the attribute early for a clear error.
    pair.source().schema().index_of(attr)?;
    Ok(diff_cells(pair)?
        .into_iter()
        .filter(|c| c.attr == attr)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_relation::TableBuilder;

    fn pair() -> SnapshotPair {
        let s = TableBuilder::new("s")
            .str_col("k", &["a", "b", "c"])
            .float_col("x", &[1.0, 2.0, 3.0])
            .str_col("tag", &["p", "q", "r"])
            .key("k")
            .build()
            .unwrap();
        let t = TableBuilder::new("t")
            .str_col("k", &["c", "a", "b"]) // shuffled
            .float_col("x", &[3.5, 1.0, 2.0])
            .str_col("tag", &["r", "P", "q"])
            .key("k")
            .build()
            .unwrap();
        SnapshotPair::align(s, t).unwrap()
    }

    #[test]
    fn detects_changes_across_shuffled_rows() {
        let changes = diff_cells(&pair()).unwrap();
        assert_eq!(changes.len(), 2);
        // Anne's tag p→P, Cathy's x 3.0→3.5 (keys a and c).
        let keys: Vec<String> = changes.iter().map(|c| c.key.to_string()).collect();
        assert!(keys.contains(&"a".to_string()));
        assert!(keys.contains(&"c".to_string()));
    }

    #[test]
    fn delta_for_numeric_changes() {
        let changes = diff_attr(&pair(), "x").unwrap();
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].delta(), Some(0.5));
        let tag_changes = diff_attr(&pair(), "tag").unwrap();
        assert_eq!(tag_changes[0].delta(), None);
    }

    #[test]
    fn unknown_attribute_errors() {
        assert!(diff_attr(&pair(), "zzz").is_err());
    }

    #[test]
    fn identical_snapshots_no_changes() {
        let s = TableBuilder::new("s")
            .str_col("k", &["a"])
            .float_col("x", &[1.0])
            .key("k")
            .build()
            .unwrap();
        let p = SnapshotPair::align(s.clone(), s).unwrap();
        assert!(diff_cells(&p).unwrap().is_empty());
    }

    #[test]
    fn display_renders() {
        let changes = diff_attr(&pair(), "x").unwrap();
        assert_eq!(changes[0].to_string(), "[c] x: 3.0 → 3.5");
    }
}
