//! Update distance between two database versions (Müller, Freytag, Leser,
//! CIKM 2006): the minimal number of insert, delete, and modification
//! operations transforming one into the other.
//!
//! Unlike [`crate::cell::diff_cells`], this works on *unaligned* tables:
//! entities present on only one side count as inserts/deletes, and shared
//! entities contribute one modification per differing cell.

use charles_relation::{KeyIndex, RelationError, Table};

/// The decomposed update distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UpdateDistance {
    /// Rows present only in the target (insertions).
    pub inserts: usize,
    /// Rows present only in the source (deletions).
    pub deletes: usize,
    /// Differing cells among shared rows (modifications).
    pub modifications: usize,
}

impl UpdateDistance {
    /// Total operation count (the distance itself).
    pub fn total(&self) -> usize {
        self.inserts + self.deletes + self.modifications
    }
}

/// Compute the update distance between two tables keyed by `key_attr`.
/// Schemas must match.
pub fn update_distance(
    source: &Table,
    target: &Table,
    key_attr: &str,
) -> Result<UpdateDistance, RelationError> {
    source.schema().ensure_same(target.schema())?;
    let src_idx = KeyIndex::build(source, key_attr)?;
    let tgt_idx = KeyIndex::build(target, key_attr)?;

    let deletes = src_idx.keys_missing_from(&tgt_idx).len();
    let inserts = tgt_idx.keys_missing_from(&src_idx).len();

    let mut modifications = 0;
    let key_col = source.column_by_name(key_attr)?;
    for row in source.row_ids() {
        let key = key_col.get(row);
        let Some(trow) = tgt_idx.get(&key) else {
            continue;
        };
        for col_idx in 0..source.width() {
            let old = source.column(col_idx)?.get(row);
            let new = target.column(col_idx)?.get(trow);
            let both_null = old.is_null() && new.is_null();
            if !both_null && !old.sem_eq(&new) {
                modifications += 1;
            }
        }
    }
    Ok(UpdateDistance {
        inserts,
        deletes,
        modifications,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_relation::TableBuilder;

    fn t(keys: &[&str], xs: &[f64]) -> Table {
        TableBuilder::new("t")
            .str_col("k", keys)
            .float_col("x", xs)
            .build()
            .unwrap()
    }

    #[test]
    fn pure_modifications() {
        let d = update_distance(
            &t(&["a", "b"], &[1.0, 2.0]),
            &t(&["a", "b"], &[1.5, 2.0]),
            "k",
        )
        .unwrap();
        assert_eq!(
            d,
            UpdateDistance {
                inserts: 0,
                deletes: 0,
                modifications: 1
            }
        );
        assert_eq!(d.total(), 1);
    }

    #[test]
    fn inserts_and_deletes() {
        let d = update_distance(
            &t(&["a", "b"], &[1.0, 2.0]),
            &t(&["b", "c", "d"], &[2.0, 9.0, 8.0]),
            "k",
        )
        .unwrap();
        assert_eq!(d.inserts, 2); // c, d
        assert_eq!(d.deletes, 1); // a
        assert_eq!(d.modifications, 0);
        assert_eq!(d.total(), 3);
    }

    #[test]
    fn mixed_operations() {
        let d = update_distance(
            &t(&["a", "b", "c"], &[1.0, 2.0, 3.0]),
            &t(&["b", "c", "x"], &[2.5, 3.0, 0.0]),
            "k",
        )
        .unwrap();
        assert_eq!(d.inserts, 1);
        assert_eq!(d.deletes, 1);
        assert_eq!(d.modifications, 1); // b's x changed
        assert_eq!(d.total(), 3);
    }

    #[test]
    fn identical_tables_zero() {
        let a = t(&["a", "b"], &[1.0, 2.0]);
        assert_eq!(update_distance(&a, &a, "k").unwrap().total(), 0);
    }

    #[test]
    fn schema_mismatch_rejected() {
        let a = t(&["a"], &[1.0]);
        let b = TableBuilder::new("b")
            .str_col("k", &["a"])
            .int_col("x", &[1])
            .build()
            .unwrap();
        assert!(update_distance(&a, &b, "k").is_err());
    }
}
