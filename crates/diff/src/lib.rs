//! # charles-diff
//!
//! The *syntactic* change layer under ChARLES plus the baseline explainers
//! it is compared against:
//!
//! - [`diff_cells`] / [`diff_attr`] — cell-level diffs of aligned
//!   snapshots (what comparator tools like PostgresCompare surface);
//! - [`change_stats`] — aggregate change statistics per attribute;
//! - [`update_distance`] — Müller et al.'s minimal
//!   insert/delete/modification distance between unaligned versions;
//! - [`baseline`] — explainers from the paper's related-work framing
//!   (exhaustive list, single global regression, the "R4" flat-ratio
//!   description, flat delta, no-change), all scored with the ChARLES
//!   score function so experiment E7 can compare them directly.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baseline;
pub mod cell;
pub mod distance;
pub mod stats;

pub use baseline::{
    all_baselines, exhaustive_list_baseline, flat_delta_baseline, flat_ratio_baseline,
    global_regression_baseline, no_change_baseline, BaselineReport,
};
pub use cell::{diff_attr, diff_cells, CellChange};
pub use distance::{update_distance, UpdateDistance};
pub use stats::{change_stats, stats_from_changes, AttrChangeStats, ChangeStats};
