//! Aggregate change statistics over a snapshot pair.

use crate::cell::{diff_cells, CellChange};
use charles_relation::SnapshotPair;
use std::collections::BTreeMap;

/// Per-attribute change statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrChangeStats {
    /// Number of changed cells in this attribute.
    pub count: usize,
    /// Mean numeric delta (`None` for non-numeric attributes).
    pub mean_delta: Option<f64>,
    /// Mean absolute numeric delta.
    pub mean_abs_delta: Option<f64>,
    /// Extremes of the numeric delta.
    pub min_delta: Option<f64>,
    /// Maximum numeric delta.
    pub max_delta: Option<f64>,
}

/// Whole-pair change statistics.
#[derive(Debug, Clone, Default)]
pub struct ChangeStats {
    /// Total rows in the pair.
    pub rows: usize,
    /// Rows with at least one changed cell.
    pub rows_changed: usize,
    /// Total changed cells.
    pub cells_changed: usize,
    /// Per-attribute breakdown (sorted by attribute name).
    pub per_attr: BTreeMap<String, AttrChangeStats>,
}

impl ChangeStats {
    /// Fraction of rows with any change.
    pub fn change_rate(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.rows_changed as f64 / self.rows as f64
        }
    }
}

/// Compute statistics from a pre-computed change list.
pub fn stats_from_changes(pair: &SnapshotPair, changes: &[CellChange]) -> ChangeStats {
    let mut per_attr: BTreeMap<String, Vec<Option<f64>>> = BTreeMap::new();
    let mut rows_with_change: std::collections::HashSet<usize> = std::collections::HashSet::new();
    for c in changes {
        per_attr.entry(c.attr.clone()).or_default().push(c.delta());
        rows_with_change.insert(c.row);
    }
    let per_attr = per_attr
        .into_iter()
        .map(|(attr, deltas)| {
            let numeric: Vec<f64> = deltas.iter().filter_map(|d| *d).collect();
            let stats = if numeric.is_empty() {
                AttrChangeStats {
                    count: deltas.len(),
                    mean_delta: None,
                    mean_abs_delta: None,
                    min_delta: None,
                    max_delta: None,
                }
            } else {
                let n = numeric.len() as f64;
                AttrChangeStats {
                    count: deltas.len(),
                    mean_delta: Some(charles_numerics::kernels::sum(&numeric) / n),
                    mean_abs_delta: Some(charles_numerics::kernels::sum_abs(&numeric) / n),
                    min_delta: numeric.iter().copied().reduce(f64::min),
                    max_delta: numeric.iter().copied().reduce(f64::max),
                }
            };
            (attr, stats)
        })
        .collect();
    ChangeStats {
        rows: pair.len(),
        rows_changed: rows_with_change.len(),
        cells_changed: changes.len(),
        per_attr,
    }
}

/// Diff and summarize in one call.
pub fn change_stats(pair: &SnapshotPair) -> charles_relation::Result<ChangeStats> {
    let changes = diff_cells(pair)?;
    Ok(stats_from_changes(pair, &changes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_relation::TableBuilder;

    fn pair() -> SnapshotPair {
        let s = TableBuilder::new("s")
            .str_col("k", &["a", "b", "c", "d"])
            .float_col("x", &[10.0, 20.0, 30.0, 40.0])
            .str_col("tag", &["p", "q", "r", "s"])
            .key("k")
            .build()
            .unwrap();
        let t = TableBuilder::new("t")
            .str_col("k", &["a", "b", "c", "d"])
            .float_col("x", &[11.0, 20.0, 27.0, 40.0])
            .str_col("tag", &["p", "Q", "r", "s"])
            .key("k")
            .build()
            .unwrap();
        SnapshotPair::align(s, t).unwrap()
    }

    #[test]
    fn aggregates_per_attribute() {
        let stats = change_stats(&pair()).unwrap();
        assert_eq!(stats.rows, 4);
        assert_eq!(stats.rows_changed, 3);
        assert_eq!(stats.cells_changed, 3);
        assert_eq!(stats.change_rate(), 0.75);
        let x = &stats.per_attr["x"];
        assert_eq!(x.count, 2);
        assert_eq!(x.mean_delta, Some(-1.0)); // (+1 - 3) / 2
        assert_eq!(x.mean_abs_delta, Some(2.0));
        assert_eq!(x.min_delta, Some(-3.0));
        assert_eq!(x.max_delta, Some(1.0));
        let tag = &stats.per_attr["tag"];
        assert_eq!(tag.count, 1);
        assert_eq!(tag.mean_delta, None);
    }

    #[test]
    fn empty_pair() {
        let s = TableBuilder::new("s")
            .str_col("k", &["a"])
            .float_col("x", &[1.0])
            .key("k")
            .build()
            .unwrap();
        let p = SnapshotPair::align(s.clone(), s).unwrap();
        let stats = change_stats(&p).unwrap();
        assert_eq!(stats.cells_changed, 0);
        assert_eq!(stats.change_rate(), 0.0);
        assert!(stats.per_attr.is_empty());
    }
}
