//! Mutation-coherence analysis: mutators must reach their invalidation.
//!
//! The data plane memoizes aggressively — `PlaneCaches`' fit/label/
//! candidate maps, `Session`'s view/plane/setup maps, `compress.rs`'s
//! `OnceLock` decode caches — and every memo is *derived* state: correct
//! only while the inputs it was computed from stand still. Today the
//! plane is frozen after seal, so the only mutation path is
//! `Session::set_config`, which swaps in a fresh `PlaneCaches`. The
//! ingest tier on the ROADMAP changes that: row appends, incremental
//! snapshot maintenance, and eviction all become long-lived mutators,
//! and a mutator that forgets its invalidation serves stale,
//! bit-plausible answers — the worst failure class this repo has,
//! because nothing crashes.
//!
//! This pass makes the pairing a machine-checked contract:
//!
//! 1. **Cache surfaces.** A struct field is a cache surface when its
//!    type says "memo": `OnceLock<..>`, or a `Mutex`/`RwLock` wrapping a
//!    `HashMap`/`BTreeMap`. A struct owning a surface is *cache-bearing*.
//!    A field whose type names a cache-bearing struct (`caches:
//!    Arc<PlaneCaches>`, `session: Option<Arc<Session>>`) is a *cache
//!    holder*, and its owner is in scope too (one level — deeper
//!    aggregation is ownership, not derivation).
//! 2. **Mutators.** Any method of an in-scope struct that writes a
//!    non-cache field: assignment (`self.rows = ..`, `+=`), or a
//!    mutating container call (`self.rows.extend(..)`, `.push`,
//!    `.insert`, `.truncate`, …). Writes *to* a surface are fills, not
//!    mutations; assigning a surface or holder (or `.clear()`/`.take()`
//!    on one) is an **invalidation**.
//! 3. **Coverage fixpoint.** A mutator is covered when an invalidation
//!    of the same struct is transitively reachable from it (the
//!    `set_config` shape: mutate, then swap `PlaneCaches::default()`
//!    in), or when every non-test caller is covered (the
//!    caller-invalidates shape). Anything else is a finding carrying the
//!    root-caller → … → mutator → uninvalidated-cache chain, same shape
//!    as `reach`'s request-path chains.
//! 4. **Byte accounting.** Resident-set eviction only works while
//!    `approx_bytes`/`approx_bytes_dedup` stays honest, so any method of
//!    an in-scope struct that swaps an `Arc` buffer (`self.f =
//!    Arc::new(..)`) requires an `approx*bytes*` accounting method on
//!    that struct.
//!
//! Like every pass here this is heuristic and tuned for a reviewable
//! over-approximation: a genuine out-of-band invariant gets a reasoned
//! `lint:allow(cache-invalidation: ..)` at the mutator.

use std::collections::{BTreeMap, BTreeSet};

use crate::graph::{LintFile, Workspace};
use crate::token::{Tok, TokKind};
use crate::Finding;

/// Container methods that rewrite state a memo may be derived from.
const MUTATING_METHODS: [&str; 12] = [
    "push",
    "push_str",
    "extend",
    "extend_from_slice",
    "insert",
    "remove",
    "clear",
    "truncate",
    "pop",
    "retain",
    "drain",
    "append",
];

fn is_p(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

fn is_assign_op(t: &Tok) -> bool {
    t.kind == TokKind::Punct && matches!(t.text.as_str(), "=" | "+=" | "-=" | "*=" | "/=")
}

/// Does this field type read as a memo surface? `OnceLock<..>` always;
/// a lock is one only when it guards a map (a `Mutex<Registry>` is
/// aggregation, `Mutex<HashMap<..>>` is a memo).
fn is_cache_surface(ty_idents: &[String]) -> bool {
    let has = |n: &str| ty_idents.iter().any(|t| t == n);
    has("OnceLock") || ((has("Mutex") || has("RwLock")) && (has("HashMap") || has("BTreeMap")))
}

/// The cache model of the workspace: which structs are in scope and
/// which of their fields are surfaces vs. holders.
struct CacheModel {
    /// struct → its cache-surface field names.
    surfaces: BTreeMap<String, BTreeSet<String>>,
    /// struct → fields whose type names a cache-bearing struct.
    holders: BTreeMap<String, BTreeSet<String>>,
}

impl CacheModel {
    fn build(ws: &Workspace) -> CacheModel {
        let mut surfaces: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (ty, fields) in &ws.struct_fields {
            for (name, ty_idents) in fields {
                if is_cache_surface(ty_idents) {
                    surfaces.entry(ty.clone()).or_default().insert(name.clone());
                }
            }
        }
        let bearing: BTreeSet<&String> = surfaces.keys().collect();
        let mut holders: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (ty, fields) in &ws.struct_fields {
            for (name, ty_idents) in fields {
                if ty_idents.iter().any(|t| bearing.contains(t)) {
                    holders.entry(ty.clone()).or_default().insert(name.clone());
                }
            }
        }
        CacheModel { surfaces, holders }
    }

    fn in_scope(&self, ty: &str) -> bool {
        self.surfaces.contains_key(ty) || self.holders.contains_key(ty)
    }

    fn is_surface(&self, ty: &str, field: &str) -> bool {
        self.surfaces.get(ty).is_some_and(|s| s.contains(field))
    }

    fn is_holder(&self, ty: &str, field: &str) -> bool {
        self.holders.get(ty).is_some_and(|s| s.contains(field))
    }

    /// What the finding should name as the stale state: the surfaces
    /// when the struct owns them, else the holder fields.
    fn stale_names(&self, ty: &str) -> String {
        let set = self
            .surfaces
            .get(ty)
            .or_else(|| self.holders.get(ty))
            .cloned()
            .unwrap_or_default();
        set.into_iter().collect::<Vec<_>>().join("`, `")
    }
}

/// One write through `self.field` inside an in-scope struct's method.
struct Write {
    fn_idx: usize,
    line: u32,
    field: String,
}

/// Everything the body scan extracts for one struct.
#[derive(Default)]
struct StructActions {
    mutations: Vec<Write>,
    /// Functions containing an invalidation (surface/holder reset).
    invalidators: BTreeSet<usize>,
    arc_swaps: Vec<Write>,
}

/// Scan one method body for field writes, classifying each against the
/// model. `self . f` followed by an assignment op is a write; a surface
/// or holder also counts `.clear()` / `.take()` later in the statement
/// as a reset.
fn scan_method(
    ws: &Workspace,
    files: &[LintFile],
    fn_idx: usize,
    model: &CacheModel,
    out: &mut BTreeMap<String, StructActions>,
) {
    let item = &ws.fns[fn_idx];
    let Some(ty) = item.self_type.clone() else {
        return;
    };
    let toks = &files[item.file].ft.toks;
    let (start, end) = item.body;
    if start >= end {
        return;
    }
    let actions = out.entry(ty.clone()).or_default();

    let mut i = start + 1;
    while i + 2 < end {
        let self_field = toks[i].kind == TokKind::Ident
            && toks[i].text == "self"
            && is_p(&toks[i + 1], ".")
            && toks[i + 2].kind == TokKind::Ident
            && ws
                .struct_fields
                .get(&ty)
                .is_some_and(|f| f.contains_key(&toks[i + 2].text));
        if !self_field {
            i += 1;
            continue;
        }
        let field = toks[i + 2].text.clone();
        let line = toks[i + 2].line;
        // The rest of the statement, for classification.
        let stmt_end = (i + 3..end)
            .find(|&j| is_p(&toks[j], ";") || is_p(&toks[j], "{") || is_p(&toks[j], "}"))
            .unwrap_or(end);
        let after = &toks[i + 3..stmt_end];
        let direct_assign = after.first().is_some_and(is_assign_op);
        let arc_swap = direct_assign
            && after.windows(3).any(|w| {
                w[0].kind == TokKind::Ident
                    && w[0].text == "Arc"
                    && is_p(&w[1], "::")
                    && (w[2].text == "new" || w[2].text == "from")
            });
        let cached = model.is_surface(&ty, &field) || model.is_holder(&ty, &field);
        if cached {
            // Resetting derived state: a swap, or `.clear()`/`.take()`
            // anywhere in the chain (`self.setups.lock()…clear()`).
            let reset = direct_assign
                || after.windows(2).any(|w| {
                    is_p(&w[0], ".")
                        && w[1].kind == TokKind::Ident
                        && matches!(w[1].text.as_str(), "clear" | "take")
                });
            if reset {
                actions.invalidators.insert(fn_idx);
            }
        } else {
            let container_mut = !direct_assign
                && after.windows(2).any(|w| {
                    is_p(&w[0], ".")
                        && w[1].kind == TokKind::Ident
                        && MUTATING_METHODS.contains(&w[1].text.as_str())
                });
            if direct_assign || container_mut {
                actions.mutations.push(Write {
                    fn_idx,
                    line,
                    field: field.clone(),
                });
            }
        }
        if arc_swap {
            actions.arc_swaps.push(Write {
                fn_idx,
                line,
                field,
            });
        }
        i = stmt_end.max(i + 3);
    }
}

/// Covered = an invalidation of the struct is reachable from the
/// mutator, or every non-test caller is (recursively) covered. A
/// mutator nobody calls must invalidate itself; cycles are conservative
/// (not covered).
fn covered(
    f: usize,
    reaches_reset: &BTreeSet<usize>,
    callers: &BTreeMap<usize, BTreeSet<usize>>,
    memo: &mut BTreeMap<usize, bool>,
    visiting: &mut BTreeSet<usize>,
) -> bool {
    if let Some(&v) = memo.get(&f) {
        return v;
    }
    if reaches_reset.contains(&f) {
        memo.insert(f, true);
        return true;
    }
    if !visiting.insert(f) {
        return false; // recursion cycle: assume the worst
    }
    let up = callers.get(&f);
    let ok = up.is_some_and(|cs| {
        !cs.is_empty()
            && cs
                .iter()
                .all(|&c| covered(c, reaches_reset, callers, memo, visiting))
    });
    visiting.remove(&f);
    memo.insert(f, ok);
    ok
}

/// Run the pass over the workspace.
pub fn mutation_coherence(ws: &Workspace, files: &[LintFile]) -> Vec<Finding> {
    let model = CacheModel::build(ws);
    if model.surfaces.is_empty() {
        return Vec::new();
    }

    // Reverse call edges once (non-test callers only).
    let mut callers: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
    for (caller, calls) in ws.calls.iter().enumerate() {
        if ws.fns[caller].in_test {
            continue;
        }
        for call in calls {
            for &callee in &call.callees {
                callers.entry(callee).or_default().insert(caller);
            }
        }
    }

    let mut actions: BTreeMap<String, StructActions> = BTreeMap::new();
    for idx in 0..ws.fns.len() {
        let item = &ws.fns[idx];
        if item.in_test || !item.has_self {
            continue;
        }
        if item.self_type.as_deref().is_some_and(|t| model.in_scope(t)) {
            scan_method(ws, files, idx, &model, &mut actions);
        }
    }

    let mut out = Vec::new();
    for (ty, acts) in &actions {
        // Whether a function transitively reaches an invalidation of
        // `ty`, memoized — needed for mutators and their ancestors.
        let mut reach_memo: BTreeMap<usize, bool> = BTreeMap::new();
        let mut reaches = |f: usize, ws: &Workspace| -> bool {
            if acts.invalidators.is_empty() {
                return false;
            }
            if let Some(&v) = reach_memo.get(&f) {
                return v;
            }
            let r = ws
                .reachable(&[f])
                .keys()
                .any(|k| acts.invalidators.contains(k));
            reach_memo.insert(f, r);
            r
        };

        for m in &acts.mutations {
            // Reaches-reset over the mutator plus all its ancestors: the
            // only functions the coverage fixpoint can visit.
            let mut relevant: BTreeSet<usize> = BTreeSet::new();
            let mut stack = vec![m.fn_idx];
            let mut seen: BTreeSet<usize> = BTreeSet::new();
            while let Some(f) = stack.pop() {
                if !seen.insert(f) {
                    continue;
                }
                if reaches(f, ws) {
                    relevant.insert(f);
                }
                if let Some(cs) = callers.get(&f) {
                    stack.extend(cs.iter().copied());
                }
            }
            let mut memo = BTreeMap::new();
            let mut visiting = BTreeSet::new();
            if covered(m.fn_idx, &relevant, &callers, &mut memo, &mut visiting) {
                continue;
            }

            // Chain: walk up uncovered callers to a root, then down to
            // the mutator, then the stale cache as a terminal.
            let mut chain_idx = vec![m.fn_idx];
            let mut cur = m.fn_idx;
            while let Some(cs) = callers.get(&cur) {
                let next = cs.iter().copied().find(|c| {
                    !chain_idx.contains(c)
                        && !covered(*c, &relevant, &callers, &mut memo, &mut visiting)
                });
                match next {
                    Some(c) => {
                        chain_idx.push(c);
                        cur = c;
                    }
                    None => break,
                }
                if chain_idx.len() > 32 {
                    break;
                }
            }
            chain_idx.reverse();
            let mut chain: Vec<String> = chain_idx.iter().map(|&i| ws.display(i, files)).collect();
            let stale = model.stale_names(ty);
            chain.push(format!("[stale cache: {ty}.`{stale}`]"));

            let item = &ws.fns[m.fn_idx];
            let how = if acts.invalidators.is_empty() {
                format!("`{ty}` never resets it anywhere")
            } else {
                "no reset is reachable from here or from every caller".to_string()
            };
            out.push(Finding {
                rule: "cache-invalidation",
                path: files[item.file].rel.clone(),
                line: m.line,
                message: format!(
                    "`{}::{}` mutates `{ty}.{}` but the derived cache surface(s) \
                     `{stale}` stay warm — {how}; invalidate (swap/clear the memo) \
                     on the mutation path, or suppress with the out-of-band \
                     invariant that keeps the memo valid",
                    ty, item.name, m.field
                ),
                contract: "every cache mutator reaches the matching invalidation",
                call_chain: chain,
            });
        }

        // Byte accounting: an Arc swap in a cache-bearing struct needs an
        // approx-bytes implementation on the same struct.
        if !acts.arc_swaps.is_empty() {
            let accounted = ws.fns.iter().any(|f| {
                f.self_type.as_deref() == Some(ty.as_str())
                    && !f.in_test
                    && f.name.contains("approx")
                    && f.name.contains("bytes")
            });
            if !accounted {
                for w in &acts.arc_swaps {
                    let item = &ws.fns[w.fn_idx];
                    out.push(Finding {
                        rule: "byte-accounting",
                        path: files[item.file].rel.clone(),
                        line: w.line,
                        message: format!(
                            "`{}::{}` swaps an `Arc` buffer into `{ty}.{}` but `{ty}` \
                             has no `approx_bytes`-style accounting method — resident-\
                             set eviction goes blind to this allocation; implement \
                             `approx_bytes`/`approx_bytes_dedup` covering the field",
                            ty, item.name, w.field
                        ),
                        contract: "Arc buffer swaps are covered by approx_bytes accounting",
                        call_chain: vec![ws.display(w.fn_idx, files)],
                    });
                }
            }
        }
    }
    out
}
