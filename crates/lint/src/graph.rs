//! Workspace symbol table and call graph.
//!
//! The statement-level rules in [`crate`] see one statement at a time;
//! the contracts they guard, though, are *interprocedural*: a server
//! route handler is one `?` away from a `charles_core` unwrap, a
//! registry guard is held across a call that takes another lock two
//! crates away, a hash-ordered fold's result is serialized by a function
//! that never folded anything. This module gives the analyzer the
//! workspace view those checks need:
//!
//! - an **item parse** of every production file — `fn` items with their
//!   enclosing `impl`/`trait` block, parameter names and types, return
//!   types, and body token spans; `struct` fields (so `self.field.m()`
//!   receivers resolve); trait → implementor maps;
//! - **call resolution** — method calls by receiver-type heuristics
//!   (`self`, typed params/lets, `self.field` through struct fields,
//!   trait objects fan out to every impl), associated calls by path
//!   (`Type::f`), free calls by name (same file, then same crate, then
//!   workspace); unresolvable receivers fall back to every workspace
//!   method of that name unless the name is a common std method (so
//!   `.len()` on an unknown receiver does not edge into every type that
//!   happens to define `len`);
//! - per-function **site inventories** the passes query: panic sites
//!   (`unwrap`/`expect`/`panic!`-family/slice indexing), lock
//!   acquisition sites with a syntactic lock identity, and float-taint
//!   source material.
//!
//! This is a heuristic, dependency-free analysis over the token stream —
//! no type checker. It is deliberately tuned so over-approximation
//! (extra edges) is cheap (a reasoned `lint:allow`) and
//! under-approximation (a missed edge) is what the fixture suite pins
//! against.

use std::collections::{BTreeMap, BTreeSet};

use crate::token::{FileTokens, Tok, TokKind};

/// One source file handed to the analyzer.
pub struct LintFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Token stream.
    pub ft: FileTokens,
    /// Test/example context (`tests/**`, `examples/**`): only the
    /// suppression machinery runs; the file stays out of the call graph.
    pub relaxed: bool,
}

/// A function parameter as far as tokens can tell.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (`_`-patterns and `self` are not recorded).
    pub name: String,
    /// Identifiers appearing in the type (`Arc<SessionManager>` →
    /// `["Arc", "SessionManager"]`); receiver typing picks the ones that
    /// name workspace types.
    pub ty_idents: Vec<String>,
}

/// One `fn` item anywhere in the workspace (free, inherent method, trait
/// method, or trait default).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl` type (or trait name for trait-block items).
    pub self_type: Option<String>,
    /// Trait being implemented, for `impl Trait for Type` methods.
    pub trait_name: Option<String>,
    /// Declared inside a `trait` block (a default method when `body` is
    /// non-empty, a bare declaration otherwise).
    pub in_trait_decl: bool,
    /// Index into the workspace file list.
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range of the body: `[open_brace, close_brace]` inclusive;
    /// empty (`start == end`) for body-less declarations.
    pub body: (usize, usize),
    /// Inside a `#[cfg(test)]` / `#[test]` item.
    pub in_test: bool,
    /// Declared parameters (excluding `self`).
    pub params: Vec<Param>,
    /// Whether a `self` receiver is present.
    pub has_self: bool,
    /// Whether the return type mentions `f64`/`f32`.
    pub returns_float: bool,
    /// Whether the return type is a lock guard (`MutexGuard`,
    /// `RwLockReadGuard`, `RwLockWriteGuard`) — a call then *transfers*
    /// the held lock to the caller (`lock_registry()`-style helpers).
    pub returns_guard: bool,
}

/// A resolved call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Candidate callee indices into [`Workspace::fns`] (several when the
    /// receiver is a trait object or unresolved).
    pub callees: Vec<usize>,
    /// Token index (into the owning file's stream) of the callee name.
    pub tok: usize,
    /// 1-based line of the call.
    pub line: u32,
    /// Argument token ranges (receiver excluded), for taint mapping.
    pub args: Vec<(usize, usize)>,
}

/// Why a site can panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `.unwrap()`.
    Unwrap,
    /// `.expect(..)`.
    Expect,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    Macro,
    /// Slice/array/map indexing (`xs[i]`, `&xs[a..b]`).
    SliceIndex,
}

/// One potential-panic site inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// Which construct.
    pub kind: PanicKind,
    /// The trigger token's text (`unwrap`, `panic`, `[`…).
    pub what: String,
    /// 1-based source line.
    pub line: u32,
}

/// One direct lock acquisition (`recv.lock()` / `.read()` / `.write()`
/// with no arguments) inside a function body.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Syntactic lock identity: the receiver chain's last field/binding
    /// name (`self.inner.lock()` → `inner`, `latch.lock()` → `latch`).
    pub lock: String,
    /// Token index of the method name in the owning file's stream.
    pub tok: usize,
    /// 1-based source line.
    pub line: u32,
}

/// The workspace model every interprocedural pass queries.
pub struct Workspace {
    /// All function items, in (file, token) order.
    pub fns: Vec<FnItem>,
    /// Per-function resolved call sites (indexed like [`Workspace::fns`]).
    pub calls: Vec<Vec<Call>>,
    /// Per-function panic-site inventory.
    pub panic_sites: Vec<Vec<PanicSite>>,
    /// Per-function direct lock acquisitions.
    pub lock_sites: Vec<Vec<LockSite>>,
    /// `struct` fields: type name → field name → type identifiers.
    pub struct_fields: BTreeMap<String, BTreeMap<String, Vec<String>>>,
    /// Types that appear as `impl` targets or `struct` declarations.
    pub known_types: BTreeSet<String>,
    /// trait name → implementing type names.
    pub trait_impls: BTreeMap<String, Vec<String>>,
    method_index: BTreeMap<(String, String), usize>,
    methods_by_name: BTreeMap<String, Vec<usize>>,
    free_by_name: BTreeMap<String, Vec<usize>>,
}

/// Method names so common on std types that an *unresolved* receiver
/// must not edge into every workspace type defining them.
const COMMON_METHODS: [&str; 30] = [
    "new",
    "default",
    "clone",
    "len",
    "is_empty",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "contains",
    "contains_key",
    "clear",
    "lock",
    "read",
    "write",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "drop",
    "from",
    "into",
    "to_string",
    "as_str",
];

fn is_p(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

fn is_i(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

/// Index of the `}` matching the `{` at `open` (or the last token when
/// unbalanced — the lint must not crash on in-progress code).
fn matching_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if is_p(t, "{") {
            depth += 1;
        } else if is_p(t, "}") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Collect the crate name a workspace-relative path belongs to
/// (`crates/core/src/session.rs` → `core`, `src/lib.rs` → the root).
fn crate_of(rel: &str) -> &str {
    let mut parts = rel.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or(""),
        _ => "",
    }
}

/// File stem (`crates/core/src/session.rs` → `session`).
fn stem_of(rel: &str) -> &str {
    let base = rel.rsplit('/').next().unwrap_or(rel);
    base.strip_suffix(".rs").unwrap_or(base)
}

impl Workspace {
    /// Build the symbol table and call graph over `files` (relaxed files
    /// are tokenized but contribute no symbols).
    pub fn build(files: &[LintFile]) -> Workspace {
        let mut ws = Workspace {
            fns: Vec::new(),
            calls: Vec::new(),
            panic_sites: Vec::new(),
            lock_sites: Vec::new(),
            struct_fields: BTreeMap::new(),
            known_types: BTreeSet::new(),
            trait_impls: BTreeMap::new(),
            method_index: BTreeMap::new(),
            methods_by_name: BTreeMap::new(),
            free_by_name: BTreeMap::new(),
        };
        for (fi, file) in files.iter().enumerate() {
            if file.relaxed {
                continue;
            }
            ws.parse_items(fi, &file.ft.toks);
        }
        // Indices before resolution: resolution needs the full table.
        for (idx, f) in ws.fns.iter().enumerate() {
            if let Some(ty) = &f.self_type {
                ws.method_index
                    .entry((ty.clone(), f.name.clone()))
                    .or_insert(idx);
                ws.methods_by_name
                    .entry(f.name.clone())
                    .or_default()
                    .push(idx);
            } else {
                ws.free_by_name.entry(f.name.clone()).or_default().push(idx);
            }
        }
        for i in 0..ws.fns.len() {
            let (calls, panics, locks) = ws.scan_body(i, files);
            ws.calls.push(calls);
            ws.panic_sites.push(panics);
            ws.lock_sites.push(locks);
        }
        ws
    }

    /// Display name for chains: `file.rs::Type::fn` / `file.rs::fn`.
    pub fn display(&self, idx: usize, files: &[LintFile]) -> String {
        let f = &self.fns[idx];
        let base = files[f.file].rel.rsplit('/').next().unwrap_or("");
        match &f.self_type {
            Some(ty) => format!("{base}::{ty}::{}", f.name),
            None => format!("{base}::{}", f.name),
        }
    }

    /// All functions reachable from `seeds` (seeds included), with the
    /// breadth-first parent of each for call-chain reconstruction.
    pub fn reachable(&self, seeds: &[usize]) -> BTreeMap<usize, Option<usize>> {
        let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &s in seeds {
            if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(s) {
                e.insert(None);
                queue.push_back(s);
            }
        }
        while let Some(f) = queue.pop_front() {
            for call in &self.calls[f] {
                for &callee in &call.callees {
                    if self.fns[callee].in_test {
                        continue;
                    }
                    if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(callee) {
                        e.insert(Some(f));
                        queue.push_back(callee);
                    }
                }
            }
        }
        parent
    }

    /// The seed → … → `target` call chain implied by a BFS parent map,
    /// rendered with [`Workspace::display`].
    pub fn chain(
        &self,
        parents: &BTreeMap<usize, Option<usize>>,
        target: usize,
        files: &[LintFile],
    ) -> Vec<String> {
        let mut rev = vec![target];
        let mut cur = target;
        while let Some(Some(p)) = parents.get(&cur) {
            cur = *p;
            rev.push(cur);
            if rev.len() > 64 {
                break; // cycles cannot occur in a parent tree, but stay safe
            }
        }
        rev.reverse();
        rev.into_iter().map(|i| self.display(i, files)).collect()
    }

    // -- item parsing -------------------------------------------------

    fn parse_items(&mut self, file: usize, toks: &[Tok]) {
        // Enclosing impl/trait spans: (type, trait, in_trait_decl, end).
        let mut contexts: Vec<(String, Option<String>, bool, usize)> = Vec::new();
        let mut i = 0usize;
        while i < toks.len() {
            contexts.retain(|c| c.3 > i);
            let t = &toks[i];
            if is_i(t, "struct") && i + 1 < toks.len() && toks[i + 1].kind == TokKind::Ident {
                let name = toks[i + 1].text.clone();
                self.known_types.insert(name.clone());
                // Record named fields when a brace body follows.
                let mut j = i + 2;
                let mut angle = 0i32;
                while j < toks.len() {
                    if is_p(&toks[j], "<") {
                        angle += 1;
                    } else if is_p(&toks[j], ">") {
                        angle -= 1;
                    } else if angle <= 0
                        && (is_p(&toks[j], "{") || is_p(&toks[j], ";") || is_p(&toks[j], "("))
                    {
                        break;
                    }
                    j += 1;
                }
                if j < toks.len() && is_p(&toks[j], "{") {
                    let end = matching_brace(toks, j);
                    self.parse_struct_fields(&name, &toks[j + 1..end]);
                }
                i += 2;
                continue;
            }
            if is_i(t, "impl") {
                if let Some((ty, tr, body_open)) = parse_impl_header(toks, i) {
                    self.known_types.insert(ty.clone());
                    if let Some(tr) = &tr {
                        self.trait_impls
                            .entry(tr.clone())
                            .or_default()
                            .push(ty.clone());
                    }
                    let end = matching_brace(toks, body_open);
                    contexts.push((ty, tr, false, end));
                    i = body_open + 1;
                    continue;
                }
            }
            if is_i(t, "trait") && i + 1 < toks.len() && toks[i + 1].kind == TokKind::Ident {
                let name = toks[i + 1].text.clone();
                let mut j = i + 2;
                while j < toks.len() && !is_p(&toks[j], "{") && !is_p(&toks[j], ";") {
                    j += 1;
                }
                if j < toks.len() && is_p(&toks[j], "{") {
                    let end = matching_brace(toks, j);
                    contexts.push((name, None, true, end));
                    i = j + 1;
                    continue;
                }
            }
            if is_i(t, "fn") && i + 1 < toks.len() && toks[i + 1].kind == TokKind::Ident {
                let (item, next) = parse_fn(toks, i, file, &contexts);
                self.fns.push(item);
                // Keep scanning *inside* the body too: nested fns become
                // their own items; the body scanner skips nested spans.
                i = next;
                continue;
            }
            i += 1;
        }
    }

    fn parse_struct_fields(&mut self, name: &str, body: &[Tok]) {
        let mut fields: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut depth = 0i32;
        let mut i = 0usize;
        while i < body.len() {
            let t = &body[i];
            if is_p(t, "{") || is_p(t, "(") || is_p(t, "[") || is_p(t, "<") {
                depth += 1;
            } else if is_p(t, "}") || is_p(t, ")") || is_p(t, "]") || is_p(t, ">") {
                depth -= 1;
            } else if depth == 0
                && t.kind == TokKind::Ident
                && i + 1 < body.len()
                && is_p(&body[i + 1], ":")
            {
                // `name: Type<...>,` — collect type idents to the
                // field-separating comma at depth 0.
                let mut j = i + 2;
                let mut d = 0i32;
                let mut ty = Vec::new();
                while j < body.len() {
                    let u = &body[j];
                    if is_p(u, "<") || is_p(u, "(") || is_p(u, "[") {
                        d += 1;
                    } else if is_p(u, ">") || is_p(u, ")") || is_p(u, "]") {
                        d -= 1;
                    } else if d <= 0 && is_p(u, ",") {
                        break;
                    } else if u.kind == TokKind::Ident {
                        ty.push(u.text.clone());
                    }
                    j += 1;
                }
                fields.insert(t.text.clone(), ty);
                i = j;
                continue;
            }
            i += 1;
        }
        self.struct_fields
            .entry(name.to_string())
            .or_default()
            .extend(fields);
    }

    // -- body scanning ------------------------------------------------

    /// Scan one function's body for calls, panic sites, and lock sites.
    /// Nested `fn` items inside the body are skipped (they are their own
    /// graph nodes).
    fn scan_body(
        &self,
        idx: usize,
        files: &[LintFile],
    ) -> (Vec<Call>, Vec<PanicSite>, Vec<LockSite>) {
        let item = &self.fns[idx];
        let toks = &files[item.file].ft.toks;
        let (start, end) = item.body;
        if start >= end {
            return (Vec::new(), Vec::new(), Vec::new());
        }
        // Nested fn bodies to skip.
        let nested: Vec<(usize, usize)> = self
            .fns
            .iter()
            .filter(|g| {
                g.file == item.file && g.body.0 > start && g.body.1 <= end && g.body.0 < g.body.1
            })
            .map(|g| g.body)
            .collect();
        let skip = |i: usize| nested.iter().any(|&(a, b)| i > a && i < b);

        // Local type environment for receiver resolution.
        let env = self.type_env(item, toks);

        let mut calls = Vec::new();
        let mut panics = Vec::new();
        let mut locks = Vec::new();
        let mut i = start + 1;
        while i < end {
            if skip(i) {
                i += 1;
                continue;
            }
            let t = &toks[i];
            if t.kind == TokKind::Ident && i < end && is_p(&toks[i + 1], "!") {
                if matches!(
                    t.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) {
                    panics.push(PanicSite {
                        kind: PanicKind::Macro,
                        what: t.text.clone(),
                        line: t.line,
                    });
                }
                i += 2;
                continue;
            }
            if t.kind == TokKind::Ident && i < end && is_p(&toks[i + 1], "(") {
                let prev = i.checked_sub(1).map(|p| &toks[p]);
                let is_method = prev.is_some_and(|p| is_p(p, "."));
                let is_path = prev.is_some_and(|p| is_p(p, "::"));
                let is_def = prev.is_some_and(|p| is_i(p, "fn"));
                if is_method && matches!(t.text.as_str(), "unwrap" | "expect") {
                    panics.push(PanicSite {
                        kind: if t.text == "unwrap" {
                            PanicKind::Unwrap
                        } else {
                            PanicKind::Expect
                        },
                        what: t.text.clone(),
                        line: t.line,
                    });
                } else if is_method
                    && matches!(t.text.as_str(), "lock" | "read" | "write")
                    && i + 2 <= end
                    && is_p(&toks[i + 2], ")")
                {
                    locks.push(LockSite {
                        lock: receiver_identity(toks, i - 1),
                        tok: i,
                        line: t.line,
                    });
                } else if !is_def {
                    let callees = if is_method {
                        self.resolve_method(item, toks, i, &env)
                    } else if is_path {
                        self.resolve_path_call(item, toks, i, files)
                    } else {
                        self.resolve_free_call(item, &t.text, files)
                    };
                    if !callees.is_empty() {
                        let args = arg_ranges(toks, i + 1, end);
                        calls.push(Call {
                            callees,
                            tok: i,
                            line: t.line,
                            args,
                        });
                    }
                }
                i += 1;
                continue;
            }
            // Indexing: `recv[...]` where recv is an expression tail.
            if is_p(t, "[")
                && i > start
                && (toks[i - 1].kind == TokKind::Ident
                    || is_p(&toks[i - 1], ")")
                    || is_p(&toks[i - 1], "]"))
            {
                panics.push(PanicSite {
                    kind: PanicKind::SliceIndex,
                    what: "[".to_string(),
                    line: t.line,
                });
            }
            i += 1;
        }
        (calls, panics, locks)
    }

    /// Known binding → candidate workspace types, from `self`, typed
    /// params, `let x: T`, and `let x = T::ctor(..)` bindings.
    fn type_env(&self, item: &FnItem, toks: &[Tok]) -> BTreeMap<String, Vec<String>> {
        let mut env: BTreeMap<String, Vec<String>> = BTreeMap::new();
        if let Some(ty) = &item.self_type {
            env.insert("self".to_string(), vec![ty.clone()]);
        }
        for p in &item.params {
            let tys: Vec<String> = p
                .ty_idents
                .iter()
                .filter(|t| self.known_types.contains(*t) || self.trait_impls.contains_key(*t))
                .cloned()
                .collect();
            if !tys.is_empty() {
                env.insert(p.name.clone(), tys);
            }
        }
        let (start, end) = item.body;
        let mut i = start;
        while i + 3 < end {
            if is_i(&toks[i], "let") {
                let name_at = if is_i(&toks[i + 1], "mut") {
                    i + 2
                } else {
                    i + 1
                };
                if toks[name_at].kind == TokKind::Ident {
                    let name = toks[name_at].text.clone();
                    // `let x: T = ...` annotation.
                    if name_at + 1 < end && is_p(&toks[name_at + 1], ":") {
                        let mut j = name_at + 2;
                        let mut tys = Vec::new();
                        while j < end && !is_p(&toks[j], "=") && !is_p(&toks[j], ";") {
                            if toks[j].kind == TokKind::Ident
                                && (self.known_types.contains(&toks[j].text)
                                    || self.trait_impls.contains_key(&toks[j].text))
                            {
                                tys.push(toks[j].text.clone());
                            }
                            j += 1;
                        }
                        if !tys.is_empty() {
                            env.insert(name.clone(), tys);
                        }
                    }
                    // `let x = Type::ctor(...)` constructor convention.
                    if name_at + 2 < end && is_p(&toks[name_at + 1], "=") {
                        let mut j = name_at + 2;
                        // Walk a leading path: `a::b::Type::ctor(`.
                        let mut last_type: Option<String> = None;
                        while j + 1 < end
                            && toks[j].kind == TokKind::Ident
                            && is_p(&toks[j + 1], "::")
                        {
                            if self.known_types.contains(&toks[j].text) {
                                last_type = Some(toks[j].text.clone());
                            }
                            j += 2;
                        }
                        if let Some(ty) = last_type {
                            env.insert(name, vec![ty]);
                        }
                    }
                }
            }
            i += 1;
        }
        env
    }

    fn resolve_method(
        &self,
        item: &FnItem,
        toks: &[Tok],
        name_at: usize,
        env: &BTreeMap<String, Vec<String>>,
    ) -> Vec<usize> {
        let name = toks[name_at].text.as_str();
        // Receiver token sits before the `.` at name_at - 1.
        let recv_types: Vec<String> = if name_at >= 2 {
            let r = name_at - 2;
            let rt = &toks[r];
            if rt.kind == TokKind::Ident {
                if is_i(rt, "self") {
                    env.get("self").cloned().unwrap_or_default()
                } else if r >= 2 && is_p(&toks[r - 1], ".") && is_i(&toks[r - 2], "self") {
                    // `self.field.m()` — through struct fields.
                    item.self_type
                        .as_ref()
                        .and_then(|ty| self.struct_fields.get(ty))
                        .and_then(|fields| fields.get(&rt.text))
                        .map(|tys| {
                            tys.iter()
                                .filter(|t| {
                                    self.known_types.contains(*t)
                                        || self.trait_impls.contains_key(*t)
                                })
                                .cloned()
                                .collect()
                        })
                        .unwrap_or_default()
                } else if r >= 1 && is_p(&toks[r - 1], ".") {
                    Vec::new() // deeper chain: unknown
                } else {
                    env.get(&rt.text).cloned().unwrap_or_default()
                }
            } else {
                Vec::new()
            }
        } else {
            Vec::new()
        };

        let mut out = Vec::new();
        for ty in &recv_types {
            self.method_on_type(ty, name, &mut out);
        }
        if out.is_empty() && recv_types.is_empty() {
            // Unknown receiver: every workspace method of that name,
            // unless the name is too common to mean anything.
            let candidates = self.methods_by_name.get(name).cloned().unwrap_or_default();
            let distinct_types: BTreeSet<&Option<String>> =
                candidates.iter().map(|&c| &self.fns[c].self_type).collect();
            if !(COMMON_METHODS.contains(&name) && distinct_types.len() > 1) {
                out = candidates;
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Methods `name` dispatchable on type-or-trait `ty`: the inherent or
    /// trait-impl method, trait defaults, and — when `ty` is a trait —
    /// every implementor's method.
    fn method_on_type(&self, ty: &str, name: &str, out: &mut Vec<usize>) {
        if let Some(&m) = self.method_index.get(&(ty.to_string(), name.to_string())) {
            out.push(m);
        }
        if let Some(impls) = self.trait_impls.get(ty) {
            // `ty` is a trait: dynamic/generic dispatch fans out.
            for imp in impls {
                if let Some(&m) = self.method_index.get(&(imp.clone(), name.to_string())) {
                    out.push(m);
                }
            }
        }
    }

    fn resolve_path_call(
        &self,
        item: &FnItem,
        toks: &[Tok],
        name_at: usize,
        files: &[LintFile],
    ) -> Vec<usize> {
        // Walk back the `A :: B :: name` path; qualifier = segment
        // directly before the final `::`.
        let mut segs: Vec<String> = Vec::new();
        let mut j = name_at - 1; // the `::`
        while j >= 1 && is_p(&toks[j], "::") && toks[j - 1].kind == TokKind::Ident {
            segs.push(toks[j - 1].text.clone());
            if j < 2 {
                break;
            }
            j -= 2;
        }
        let Some(qualifier) = segs.first() else {
            return Vec::new();
        };
        let name = toks[name_at].text.as_str();
        if qualifier == "Self" {
            if let Some(ty) = &item.self_type {
                let mut out = Vec::new();
                self.method_on_type(ty, name, &mut out);
                return out;
            }
            return Vec::new();
        }
        if self.known_types.contains(qualifier) || self.trait_impls.contains_key(qualifier) {
            let mut out = Vec::new();
            self.method_on_type(qualifier, name, &mut out);
            return out;
        }
        // Module-qualified free call: prefer fns in the file whose stem
        // matches the qualifier, then any free fn of that name.
        if let Some(cands) = self.free_by_name.get(name) {
            let in_module: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| stem_of(&files[self.fns[c].file].rel) == qualifier)
                .collect();
            if !in_module.is_empty() {
                return in_module;
            }
            return cands.clone();
        }
        Vec::new()
    }

    fn resolve_free_call(&self, item: &FnItem, name: &str, files: &[LintFile]) -> Vec<usize> {
        let Some(cands) = self.free_by_name.get(name) else {
            return Vec::new();
        };
        let same_file: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| self.fns[c].file == item.file)
            .collect();
        if !same_file.is_empty() {
            return same_file;
        }
        let here = crate_of(&files[item.file].rel).to_string();
        let same_crate: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| crate_of(&files[self.fns[c].file].rel) == here)
            .collect();
        if !same_crate.is_empty() {
            return same_crate;
        }
        cands.clone()
    }
}

/// Parse an `impl` header starting at `at` (the `impl` token): returns
/// (type name, trait name, body-open token index).
fn parse_impl_header(toks: &[Tok], at: usize) -> Option<(String, Option<String>, usize)> {
    let mut angle = 0i32;
    let mut before_for: Vec<&Tok> = Vec::new();
    let mut after_for: Vec<&Tok> = Vec::new();
    let mut saw_for = false;
    let mut saw_where = false;
    let mut j = at + 1;
    while j < toks.len() {
        let t = &toks[j];
        if is_p(t, "{") && angle <= 0 {
            break;
        }
        if is_p(t, "<") {
            angle += 1;
        } else if is_p(t, ">") {
            angle -= 1;
        } else if angle <= 0 && is_i(t, "for") {
            saw_for = true;
        } else if angle <= 0 && is_i(t, "where") {
            saw_where = true;
        } else if angle <= 0 && t.kind == TokKind::Ident && !saw_where {
            if saw_for {
                after_for.push(t);
            } else {
                before_for.push(t);
            }
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    if saw_for {
        let ty = after_for.last()?.text.clone();
        let tr = before_for.last().map(|t| t.text.clone());
        Some((ty, tr, j))
    } else {
        let ty = before_for.last()?.text.clone();
        Some((ty, None, j))
    }
}

/// Parse one `fn` item starting at `at` (the `fn` token). Returns the
/// item and the token index to resume scanning at (just past the
/// signature — bodies are re-entered so nested fns are discovered).
fn parse_fn(
    toks: &[Tok],
    at: usize,
    file: usize,
    contexts: &[(String, Option<String>, bool, usize)],
) -> (FnItem, usize) {
    let name = toks[at + 1].text.clone();
    let line = toks[at].line;
    let in_test = toks[at].in_test;
    // Skip generics to the parameter list.
    let mut j = at + 2;
    let mut angle = 0i32;
    while j < toks.len() {
        if is_p(&toks[j], "<") {
            angle += 1;
        } else if is_p(&toks[j], ">") {
            angle -= 1;
        } else if is_p(&toks[j], "(") && angle <= 0 {
            break;
        }
        j += 1;
    }
    let params_open = j;
    let params_close = matching_delim(toks, params_open, "(", ")");
    let (params, has_self) = parse_params(&toks[params_open + 1..params_close.min(toks.len())]);
    // Return type and body.
    let mut returns_float = false;
    let mut returns_guard = false;
    let mut body = (0usize, 0usize);
    let mut k = params_close + 1;
    let mut after_arrow = false;
    while k < toks.len() {
        let t = &toks[k];
        if is_p(t, "->") {
            after_arrow = true;
        } else if is_p(t, "{") {
            let close = matching_brace(toks, k);
            body = (k, close);
            break;
        } else if is_p(t, ";") {
            break;
        } else if after_arrow && (is_i(t, "f64") || is_i(t, "f32")) {
            returns_float = true;
        } else if after_arrow
            && matches!(
                t.text.as_str(),
                "MutexGuard" | "RwLockReadGuard" | "RwLockWriteGuard"
            )
        {
            returns_guard = true;
        } else if is_i(t, "where") {
            after_arrow = false;
        }
        k += 1;
    }
    let ctx = contexts.last();
    let item = FnItem {
        name,
        self_type: ctx.map(|c| c.0.clone()),
        trait_name: ctx.and_then(|c| c.1.clone()),
        in_trait_decl: ctx.is_some_and(|c| c.2),
        file,
        line,
        body,
        in_test,
        params,
        has_self,
        returns_float,
        returns_guard,
    };
    (item, params_close.min(toks.len().saturating_sub(1)) + 1)
}

/// Index of the token matching an opening delimiter at `open`.
fn matching_delim(toks: &[Tok], open: usize, op: &str, cl: &str) -> usize {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if is_p(t, op) {
            depth += 1;
        } else if is_p(t, cl) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Parse a parameter list body (between the signature parens).
fn parse_params(toks: &[Tok]) -> (Vec<Param>, bool) {
    let mut params = Vec::new();
    let mut has_self = false;
    let mut depth = 0i32;
    let mut part: Vec<&Tok> = Vec::new();
    let flush = |part: &mut Vec<&Tok>, has_self: &mut bool, params: &mut Vec<Param>| {
        if part.iter().any(|t| is_i(t, "self")) {
            *has_self = true;
            part.clear();
            return;
        }
        // `name : type` — name is the last ident before the top-level `:`.
        let colon = part.iter().position(|t| is_p(t, ":"));
        if let Some(c) = colon {
            let name = part[..c]
                .iter()
                .rev()
                .find(|t| t.kind == TokKind::Ident && !is_i(t, "mut"))
                .map(|t| t.text.clone());
            if let Some(name) = name {
                let ty_idents = part[c + 1..]
                    .iter()
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone())
                    .collect();
                params.push(Param { name, ty_idents });
            }
        }
        part.clear();
    };
    for t in toks {
        if is_p(t, "(") || is_p(t, "[") || is_p(t, "{") || is_p(t, "<") {
            depth += 1;
        } else if is_p(t, ")") || is_p(t, "]") || is_p(t, "}") || is_p(t, ">") {
            depth -= 1;
        } else if depth <= 0 && is_p(t, ",") {
            flush(&mut part, &mut has_self, &mut params);
            continue;
        }
        part.push(t);
    }
    flush(&mut part, &mut has_self, &mut params);
    (params, has_self)
}

/// Top-level argument token ranges of the call whose `(` is at `open`
/// (ranges exclude the parens; empty list for `()`).
fn arg_ranges(toks: &[Tok], open: usize, limit: usize) -> Vec<(usize, usize)> {
    let close = matching_delim(toks, open, "(", ")").min(limit);
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = open + 1;
    let last = close.min(toks.len().saturating_sub(1));
    for (i, t) in toks.iter().enumerate().take(last + 1).skip(open) {
        if is_p(t, "(") || is_p(t, "[") || is_p(t, "{") {
            depth += 1;
        } else if is_p(t, ")") || is_p(t, "]") || is_p(t, "}") {
            depth -= 1;
            if depth == 0 {
                if i > start {
                    out.push((start, i));
                }
                break;
            }
        } else if depth == 1 && is_p(t, ",") {
            out.push((start, i));
            start = i + 1;
        }
    }
    out
}

/// The receiver chain's identity for a lock site: the last field or
/// binding name before the `.` at `dot` (`self.inner.lock()` → `inner`;
/// `slots[i].lock()` → `slots`).
fn receiver_identity(toks: &[Tok], dot: usize) -> String {
    let mut j = dot; // toks[dot] is the `.`
                     // Step back over an index group `[...]`.
    if j >= 1 && is_p(&toks[j - 1], "]") {
        let mut depth = 0i32;
        let mut k = j - 1;
        loop {
            if is_p(&toks[k], "]") {
                depth += 1;
            } else if is_p(&toks[k], "[") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if k == 0 {
                break;
            }
            k -= 1;
        }
        j = k;
    }
    if j >= 1 && toks[j - 1].kind == TokKind::Ident {
        toks[j - 1].text.clone()
    } else {
        "<expr>".to_string()
    }
}
