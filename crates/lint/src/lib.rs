#![forbid(unsafe_code)]
//! `charles-lint`: workspace static analysis for ChARLES's standing
//! invariants.
//!
//! The repo's architecture bet (PR 4–6) is that sharded, distributed, and
//! SIMD-blocked execution all stay `to_bits`-identical to the
//! single-threaded oracle. That contract is sampled by the differential
//! test harness, but a violation is cheap to *reintroduce* — one
//! hash-ordered fold or raw JSON float and the bits drift. This crate
//! checks the rules at the source level, on every build, with no
//! dependencies (the build environment is offline, so no `syn`): a
//! hand-rolled tokenizer (`token`) feeds a small statement-level rule
//! engine.
//!
//! Rules (scope in parentheses):
//!
//! - `float-fold-order` (everywhere except `numerics/src/kernels.rs`):
//!   no `.sum()` / `.fold()` / `+=`-loop reductions in statements that
//!   touch floats — float reductions must route through the fixed-fold-
//!   order kernels.
//! - `ordered-iteration` (everywhere): no `HashMap`/`HashSet` iteration
//!   feeding order-sensitive sinks (serialization, ranking, float or
//!   collection accumulation). Use `BTreeMap`/`BTreeSet` or sort in the
//!   same statement.
//! - `wire-float-exactness` (`proto.rs` / `remote.rs`): floats crossing
//!   the wire must use the `to_bits` hex helpers, never raw JSON
//!   numbers.
//! - `block-grid-literals` (everywhere): bare `128` block math must
//!   reference `GRAM_BLOCK_ROWS`.
//! - `no-panic-in-request-path` (`server/src`): no `unwrap()` /
//!   `expect()` / `panic!` in request-handling code — return a typed
//!   `ErrorEnvelope` instead.
//! - `lock-discipline` (`manager.rs` / `server.rs`): no acquiring a
//!   second lock (`.lock()` / `.read()` / `.write()` / `lock_*()`
//!   helpers) while a let-bound guard is still live, except against the
//!   documented lock order (suppress with a reason at the site).
//!
//! Suppressions: `// lint:allow(rule)` or `// lint:allow(rule: reason)`
//! on the finding's line, or on a standalone comment line directly above
//! it. Unused suppressions are themselves reported (rule
//! `unused-suppression`, not suppressible), so allows can't rot.
//!
//! `#[cfg(test)]` / `#[test]` items are skipped by every rule.

pub mod token;

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use token::{num_is_float, FileTokens, Tok, TokKind};

/// The enforceable rule names, as accepted by `lint:allow(...)`.
pub const RULES: [&str; 6] = [
    "float-fold-order",
    "ordered-iteration",
    "wire-float-exactness",
    "block-grid-literals",
    "no-panic-in-request-path",
    "lock-discipline",
];

/// Pseudo-rule under which stale/unknown suppressions are reported.
/// Deliberately not in [`RULES`]: it cannot itself be suppressed.
pub const UNUSED_SUPPRESSION: &str = "unused-suppression";

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (one of [`RULES`] or [`UNUSED_SUPPRESSION`]).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based source line of the triggering token.
    pub line: u32,
    /// Human-readable explanation with the expected fix.
    pub message: String,
}

/// Result of linting a tree: how much was scanned plus what was found.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of `.rs` files tokenized and checked.
    pub files_scanned: usize,
    /// All findings, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

/// Lint a single file's source under its workspace-relative path (the
/// path decides which rules are in scope). This is the seam the test
/// suite uses to run fixtures "as if" they lived at rule-scoped paths.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let ft = FileTokens::tokenize(source);
    let mut findings = run_rules(rel_path, &ft);
    apply_suppressions(rel_path, &ft, &mut findings);
    sort_dedupe(&mut findings);
    findings
}

/// Lint every `crates/*/src/**/*.rs` and `src/**/*.rs` file under
/// `root`. Vendored dependency stubs (`vendor/`) and test trees are out
/// of scope by construction.
pub fn lint_tree(root: &Path) -> io::Result<Report> {
    let mut files: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let src = dir.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    files.sort();

    let mut report = Report::default();
    for path in &files {
        let source = fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        report.findings.extend(lint_source(&rel, &source));
        report.files_scanned += 1;
    }
    sort_dedupe(&mut report.findings);
    Ok(report)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Render findings for humans: `path:line: [rule] message` per finding.
pub fn render_human(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.path, f.line, f.rule, f.message
        ));
    }
    out.push_str(&format!(
        "charles-lint: {} finding(s) across {} file(s) scanned\n",
        report.findings.len(),
        report.files_scanned
    ));
    out
}

/// Render findings as machine-readable JSON (stable key order).
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\"version\":1,\"files_scanned\":");
    out.push_str(&report.files_scanned.to_string());
    out.push_str(",\"findings\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"rule\":\"");
        out.push_str(&json_escape(f.rule));
        out.push_str("\",\"path\":\"");
        out.push_str(&json_escape(&f.path));
        out.push_str("\",\"line\":");
        out.push_str(&f.line.to_string());
        out.push_str(",\"message\":\"");
        out.push_str(&json_escape(&f.message));
        out.push_str("\"}");
    }
    out.push_str("]}");
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn sort_dedupe(findings: &mut Vec<Finding>) {
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule)
            .cmp(&(b.path.as_str(), b.line, b.rule))
            .then_with(|| a.message.cmp(&b.message))
    });
    findings.dedup_by(|a, b| a.rule == b.rule && a.path == b.path && a.line == b.line);
}

// ---------------------------------------------------------------------------
// Rule engine
// ---------------------------------------------------------------------------

fn is_p(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

fn is_i(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

/// Split the token stream into statement-ish runs at `;`, `{`, `}`
/// (terminator included in the run). Coarse, but enough: a `for` header
/// becomes its own run ending in `{`, a `let` binding ends at `;`.
fn split_stmts(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut stmts = Vec::new();
    let mut start = 0usize;
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}") {
            stmts.push((start, i + 1));
            start = i + 1;
        }
    }
    if start < toks.len() {
        stmts.push((start, toks.len()));
    }
    stmts
}

const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
];

/// Order-sensitive sinks for a hash-iteration chain statement.
const CHAIN_SINKS: [&str; 9] = [
    "sum",
    "fold",
    "collect",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "push",
    "extend",
];

/// Order-sensitive sinks scanned for inside a `for`-loop body.
const BODY_SINKS: [&str; 10] = [
    "push",
    "push_str",
    "extend",
    "write_all",
    "write_str",
    "write_fmt",
    "collect",
    "sum",
    "fold",
    "Json",
];

/// Sorting in the same statement re-establishes a deterministic order.
const SORTS: [&str; 6] = [
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

fn run_rules(rel: &str, ft: &FileTokens) -> Vec<Finding> {
    let toks = &ft.toks;
    let stmts = split_stmts(toks);
    let mut out = Vec::new();

    let fname = rel.rsplit('/').next().unwrap_or(rel);
    let float_fold_in_scope = !rel.ends_with("numerics/src/kernels.rs");
    let wire_in_scope = fname == "proto.rs" || fname == "remote.rs";
    let panic_in_scope = rel.contains("server/src");
    let lock_in_scope = fname == "manager.rs" || fname == "server.rs";

    let hash_idents = collect_hash_idents(toks);
    // Identifiers declared with a float type in the current function
    // (reset at each `fn`): `let mut acc = 0.0;` makes a later
    // `acc += x;` a float reduction even with no literal on that line.
    let mut float_decls: BTreeSet<String> = BTreeSet::new();

    for &(a, b) in &stmts {
        let s = &toks[a..b];
        if s.is_empty() {
            continue;
        }
        if s.iter().any(|t| t.in_test) {
            continue;
        }
        if s.iter().any(|t| is_i(t, "fn")) {
            float_decls.clear();
        }
        collect_float_decls(s, &mut float_decls);

        if float_fold_in_scope {
            float_fold_rule(rel, s, &float_decls, &mut out);
        }
        ordered_iteration_rule(rel, toks, (a, b), &hash_idents, &mut out);
        if wire_in_scope {
            wire_float_rule(rel, s, &mut out);
        }
        block_grid_rule(rel, s, &mut out);
        if panic_in_scope {
            no_panic_rule(rel, s, &mut out);
        }
    }

    if lock_in_scope {
        lock_discipline_rule(rel, toks, &stmts, &mut out);
    }
    out
}

/// Track identifiers bound or typed as floats: `let [mut] x = <float
/// expr>;`, `x: f64` in signatures/annotations, `|x: f64|` in closures.
fn collect_float_decls(s: &[Tok], decls: &mut BTreeSet<String>) {
    let float_typed = |toks: &[Tok]| toks.iter().any(|t| is_i(t, "f64") || is_i(t, "f32"));

    // `ident : ... f64 ...` up to the next `,` `)` `|` `=` `;` `{`.
    for i in 0..s.len() {
        if s[i].kind == TokKind::Ident && i + 1 < s.len() && is_p(&s[i + 1], ":") {
            let mut j = i + 2;
            while j < s.len()
                && !(s[j].kind == TokKind::Punct
                    && matches!(s[j].text.as_str(), "," | ")" | "|" | "=" | ";" | "{"))
            {
                j += 1;
            }
            if float_typed(&s[i + 2..j]) {
                decls.insert(s[i].text.clone());
            }
        }
    }

    // `let [mut] x = <rhs containing a float literal or f64 cast>;`
    if is_i(&s[0], "let") {
        let name_at = if s.len() > 1 && is_i(&s[1], "mut") {
            2
        } else {
            1
        };
        if let Some(name) = s.get(name_at) {
            if name.kind == TokKind::Ident {
                let rhs_float = s.iter().any(|t| {
                    (t.kind == TokKind::Num && num_is_float(&t.text))
                        || is_i(t, "f64")
                        || is_i(t, "f32")
                });
                if rhs_float {
                    decls.insert(name.text.clone());
                }
            }
        }
    }
}

/// Does this statement touch floats, as far as tokens can tell?
fn stmt_has_float_signal(s: &[Tok], decls: &BTreeSet<String>) -> bool {
    s.iter().any(|t| match t.kind {
        TokKind::Num => num_is_float(&t.text),
        TokKind::Ident => {
            matches!(t.text.as_str(), "f64" | "f32" | "powi" | "powf" | "sqrt")
                || decls.contains(&t.text)
        }
        _ => false,
    })
}

fn float_fold_rule(rel: &str, s: &[Tok], decls: &BTreeSet<String>, out: &mut Vec<Finding>) {
    let floaty = stmt_has_float_signal(s, decls);
    if !floaty {
        return;
    }
    for i in 0..s.len() {
        let trigger =
            if i > 0 && is_p(&s[i - 1], ".") && (is_i(&s[i], "sum") || is_i(&s[i], "fold")) {
                Some(format!(
                    "float reduction via `.{}()` has data-dependent fold order",
                    s[i].text
                ))
            } else if is_p(&s[i], "+=") {
                Some("raw `+=` float accumulation has loop-order-dependent rounding".to_string())
            } else {
                None
            };
        if let Some(what) = trigger {
            out.push(Finding {
                rule: "float-fold-order",
                path: rel.to_string(),
                line: s[i].line,
                message: format!(
                    "{what}; route float reductions through `charles_numerics::kernels` \
                     (fixed fold order) to keep shard/SIMD execution bit-identical"
                ),
            });
        }
    }
}

/// Identifiers declared (or typed, including struct fields) as
/// `HashMap`/`HashSet` anywhere in the file.
fn collect_hash_idents(toks: &[Tok]) -> BTreeSet<String> {
    let mut set = BTreeSet::new();
    for i in 0..toks.len() {
        if !(is_i(&toks[i], "HashMap") || is_i(&toks[i], "HashSet")) {
            continue;
        }
        // Walk back over a path (`std :: collections :: HashMap`) to the
        // token that introduced it.
        let mut j = i;
        while j > 0 && (is_p(&toks[j - 1], "::") || toks[j - 1].kind == TokKind::Ident) {
            j -= 1;
        }
        // A reference type still iterates in hash order: step over `&`,
        // `&&`, and lifetimes so `m: &HashMap<..>` binds `m` too.
        while j > 0
            && (is_p(&toks[j - 1], "&")
                || is_p(&toks[j - 1], "&&")
                || toks[j - 1].kind == TokKind::Lifetime)
        {
            j -= 1;
        }
        if j >= 2 && is_p(&toks[j - 1], ":") && toks[j - 2].kind == TokKind::Ident {
            // `name: HashMap<..>` — field, param, or annotated let.
            set.insert(toks[j - 2].text.clone());
        } else if j >= 2 && is_p(&toks[j - 1], "=") && toks[j - 2].kind == TokKind::Ident {
            // `let [mut] name = HashMap::new()`.
            set.insert(toks[j - 2].text.clone());
        }
    }
    set
}

fn ordered_iteration_rule(
    rel: &str,
    toks: &[Tok],
    (a, b): (usize, usize),
    hash_idents: &BTreeSet<String>,
    out: &mut Vec<Finding>,
) {
    if hash_idents.is_empty() {
        return;
    }
    let s = &toks[a..b];
    // A re-ordering step in the same statement makes the iteration safe.
    if s.iter().any(|t| {
        (t.kind == TokKind::Ident && SORTS.contains(&t.text.as_str()))
            || is_i(t, "BTreeMap")
            || is_i(t, "BTreeSet")
    }) {
        return;
    }

    // Find an iteration over a known hash container: `h.iter()` /
    // `h.values()` / … or a bare `for .. in [&]h`.
    let mut trigger: Option<(usize, String)> = None;
    for i in 0..s.len() {
        if s[i].kind == TokKind::Ident
            && hash_idents.contains(&s[i].text)
            && i + 2 < s.len()
            && is_p(&s[i + 1], ".")
            && s[i + 2].kind == TokKind::Ident
            && ITER_METHODS.contains(&s[i + 2].text.as_str())
        {
            trigger = Some((i + 2, s[i].text.clone()));
            break;
        }
    }
    let is_for = s.iter().any(|t| is_i(t, "for"));
    if trigger.is_none() && is_for {
        if let Some(in_at) = s.iter().position(|t| is_i(t, "in")) {
            for (i, t) in s.iter().enumerate().skip(in_at + 1) {
                if t.kind == TokKind::Ident && hash_idents.contains(&t.text) {
                    trigger = Some((i, t.text.clone()));
                    break;
                }
            }
        }
    }
    let Some((trig_at, name)) = trigger else {
        return;
    };

    // Only order-sensitive consumption is a finding.
    let sensitive = if is_for && s.last().is_some_and(|t| is_p(t, "{")) {
        // Scan the loop body (to the matching brace) for sinks.
        let mut depth = 1i32;
        let mut k = b;
        let mut hit = false;
        while k < toks.len() && depth > 0 {
            let t = &toks[k];
            if is_p(t, "{") {
                depth += 1;
            } else if is_p(t, "}") {
                depth -= 1;
            } else if is_p(t, "+=")
                || (t.kind == TokKind::Ident && BODY_SINKS.contains(&t.text.as_str()))
            {
                hit = true;
            }
            k += 1;
        }
        hit
    } else {
        s.iter().any(|t| {
            t.kind == TokKind::Ident && (CHAIN_SINKS.contains(&t.text.as_str()) || t.text == "Json")
        })
    };
    if !sensitive {
        return;
    }

    out.push(Finding {
        rule: "ordered-iteration",
        path: rel.to_string(),
        line: s[trig_at].line,
        message: format!(
            "iteration over hash-ordered `{name}` feeds an order-sensitive sink \
             (serialization, ranking, or accumulation); use BTreeMap/BTreeSet or \
             sort in the same statement"
        ),
    });
}

fn wire_float_rule(rel: &str, s: &[Tok], out: &mut Vec<Finding>) {
    let exact = s.iter().any(|t| {
        t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "f64_bits" | "f64_from_bits" | "to_bits" | "from_bits"
            )
    });
    if exact {
        return;
    }
    for i in 0..s.len().saturating_sub(2) {
        if is_i(&s[i], "Json") && is_p(&s[i + 1], "::") && is_i(&s[i + 2], "Num") {
            out.push(Finding {
                rule: "wire-float-exactness",
                path: rel.to_string(),
                line: s[i + 2].line,
                message: "raw JSON float on the wire; decimal round-trips are not \
                          bit-exact — use the `f64_bits`/`f64_from_bits` hex helpers \
                          (or suppress with a reason for human-facing decimals)"
                    .to_string(),
            });
        }
    }
}

fn block_grid_rule(rel: &str, s: &[Tok], out: &mut Vec<Finding>) {
    if s.iter().any(|t| is_i(t, "GRAM_BLOCK_ROWS")) {
        return;
    }
    for t in s {
        if t.kind == TokKind::Num && num_is_128(&t.text) {
            out.push(Finding {
                rule: "block-grid-literals",
                path: rel.to_string(),
                line: t.line,
                message: "bare `128` in block math; reference \
                          `charles_numerics::ols::GRAM_BLOCK_ROWS` so the canonical \
                          block grid has one definition"
                    .to_string(),
            });
        }
    }
}

/// Is this numeric literal the value 128 (any suffix, underscores ok)?
fn num_is_128(text: &str) -> bool {
    let digits: String = text
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '_')
        .collect();
    let rest = &text[digits.len()..];
    let digits: String = digits.chars().filter(|c| *c != '_').collect();
    digits == "128"
        && rest.chars().all(|c| c.is_alphanumeric())
        && !rest.starts_with(|c: char| c.is_ascii_digit())
}

fn no_panic_rule(rel: &str, s: &[Tok], out: &mut Vec<Finding>) {
    for i in 0..s.len() {
        let t = &s[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let method_call = i > 0
            && is_p(&s[i - 1], ".")
            && i + 1 < s.len()
            && is_p(&s[i + 1], "(")
            && matches!(t.text.as_str(), "unwrap" | "expect");
        let macro_call = i + 1 < s.len()
            && is_p(&s[i + 1], "!")
            && matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            );
        if method_call || macro_call {
            out.push(Finding {
                rule: "no-panic-in-request-path",
                path: rel.to_string(),
                line: t.line,
                message: format!(
                    "`{}` can take down a serving thread; return a typed \
                     `ErrorEnvelope` (stable code) or recover explicitly",
                    t.text
                ),
            });
        }
    }
}

/// Acquisition = `.lock()` / `.read()` / `.write()` with no arguments
/// (so `stream.read(&mut buf)` io calls don't match), or a call to a
/// project lock helper named `lock_*`.
fn stmt_acquisitions(s: &[Tok]) -> Vec<usize> {
    let mut hits = Vec::new();
    for i in 0..s.len() {
        let t = &s[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let guard_method = i > 0
            && is_p(&s[i - 1], ".")
            && matches!(t.text.as_str(), "lock" | "read" | "write")
            && i + 2 < s.len()
            && is_p(&s[i + 1], "(")
            && is_p(&s[i + 2], ")");
        let helper = t.text.starts_with("lock_") && i + 1 < s.len() && is_p(&s[i + 1], "(");
        if guard_method || helper {
            hits.push(i);
        }
    }
    hits
}

fn lock_discipline_rule(rel: &str, toks: &[Tok], stmts: &[(usize, usize)], out: &mut Vec<Finding>) {
    let mut depth = 0i32;
    // Live let-bound guards: (name, brace depth at binding).
    let mut guards: Vec<(String, i32)> = Vec::new();

    for &(a, b) in stmts {
        let s = &toks[a..b];
        if s.is_empty() {
            continue;
        }
        let skip = s.iter().any(|t| t.in_test);

        if !skip {
            if s.iter().any(|t| is_i(t, "fn")) {
                guards.clear();
            }
            // `drop(guard)` releases early.
            for i in 0..s.len().saturating_sub(2) {
                if is_i(&s[i], "drop") && is_p(&s[i + 1], "(") && s[i + 2].kind == TokKind::Ident {
                    let name = s[i + 2].text.clone();
                    guards.retain(|(g, _)| *g != name);
                }
            }
            let acquisitions = stmt_acquisitions(s);
            for &i in &acquisitions {
                if let Some((held, _)) = guards.first() {
                    out.push(Finding {
                        rule: "lock-discipline",
                        path: rel.to_string(),
                        line: s[i].line,
                        message: format!(
                            "acquiring `{}` while guard `{held}` is still held; nested \
                             locks deadlock under contention — drop the guard first, or \
                             suppress citing the documented lock order",
                            s[i].text
                        ),
                    });
                }
            }
            // A `let`-bound acquisition keeps its guard live to scope end.
            if !acquisitions.is_empty() && is_i(&s[0], "let") {
                let name_at = if s.len() > 1 && is_i(&s[1], "mut") {
                    2
                } else {
                    1
                };
                if let Some(name) = s.get(name_at) {
                    if name.kind == TokKind::Ident {
                        guards.push((name.text.clone(), depth));
                    }
                }
            }
        }

        // Track brace depth from the statement terminator (always the
        // last token of the run when it is `{` or `}`).
        if let Some(last) = s.last() {
            if is_p(last, "{") {
                depth += 1;
            } else if is_p(last, "}") {
                depth -= 1;
                guards.retain(|(_, d)| *d <= depth);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

struct Allow {
    rule: String,
    comment_line: u32,
    /// Inclusive line range covered: the comment's own line, or (for a
    /// standalone comment) the full span of the next statement, so one
    /// allow above a multi-line chain covers a trigger on any of its
    /// lines.
    lo: u32,
    hi: u32,
    used: bool,
}

fn apply_suppressions(rel: &str, ft: &FileTokens, findings: &mut Vec<Finding>) {
    let mut allows: Vec<Allow> = Vec::new();
    for c in &ft.comments {
        // Doc comments are documentation, not directives: an allow
        // marker quoted in rustdoc must not suppress anything.
        if c.text.starts_with("///")
            || c.text.starts_with("//!")
            || c.text.starts_with("/**")
            || c.text.starts_with("/*!")
        {
            continue;
        }
        let Some(start) = c.text.find("lint:allow(") else {
            continue;
        };
        let body = &c.text[start + "lint:allow(".len()..];
        let Some(end) = body.find(')') else {
            findings.push(Finding {
                rule: UNUSED_SUPPRESSION,
                path: rel.to_string(),
                line: c.line,
                message: "malformed `lint:allow(...)`: missing closing parenthesis".to_string(),
            });
            continue;
        };
        let (lo, hi) = if c.standalone {
            // A standalone comment suppresses the statement that starts
            // at the next code line.
            let next = ft
                .toks
                .iter()
                .position(|t| t.line >= c.line)
                .unwrap_or(ft.toks.len());
            let stmts = split_stmts(&ft.toks);
            stmts
                .iter()
                .find(|&&(a, b)| next >= a && next < b)
                .map_or((0, 0), |&(a, b)| {
                    let lines = ft.toks[a..b].iter().map(|t| t.line);
                    (lines.clone().min().unwrap_or(0), lines.max().unwrap_or(0))
                })
        } else {
            (c.line, c.line)
        };
        // One rule, or several comma-separated rules, optionally
        // followed by `: free-form reason` — rules before the first
        // `:`, reason (commas and colons allowed) after it.
        let inner = &body[..end];
        let rules_part = inner.split(':').next().unwrap_or(inner);
        for item in rules_part.split(',') {
            let rule = item.trim().to_string();
            if rule.is_empty() {
                continue;
            }
            if !RULES.contains(&rule.as_str()) {
                findings.push(Finding {
                    rule: UNUSED_SUPPRESSION,
                    path: rel.to_string(),
                    line: c.line,
                    message: format!("unknown rule `{rule}` in lint:allow"),
                });
                continue;
            }
            // Allows inside skipped test code are inert, not stale.
            let in_test_target = ft
                .toks
                .iter()
                .find(|t| t.line >= lo)
                .is_some_and(|t| t.in_test);
            allows.push(Allow {
                rule,
                comment_line: c.line,
                lo,
                hi,
                used: in_test_target,
            });
        }
    }

    findings.retain(|f| {
        if f.rule == UNUSED_SUPPRESSION {
            return true;
        }
        let mut suppressed = false;
        for a in &mut allows {
            if a.rule == f.rule && f.line >= a.lo && f.line <= a.hi {
                a.used = true;
                suppressed = true;
            }
        }
        !suppressed
    });

    for a in &allows {
        if !a.used {
            findings.push(Finding {
                rule: UNUSED_SUPPRESSION,
                path: rel.to_string(),
                line: a.comment_line,
                message: format!(
                    "suppression `lint:allow({})` matches no finding on lines {}-{}; remove it",
                    a.rule, a.lo, a.hi
                ),
            });
        }
    }
}
