#![forbid(unsafe_code)]
//! `charles-lint`: workspace static analysis for ChARLES's standing
//! invariants.
//!
//! The repo's architecture bet (PR 4–6) is that sharded, distributed, and
//! SIMD-blocked execution all stay `to_bits`-identical to the
//! single-threaded oracle. That contract is sampled by the differential
//! test harness, but a violation is cheap to *reintroduce* — one
//! hash-ordered fold or raw JSON float and the bits drift. This crate
//! checks the rules at the source level, on every build, with no
//! dependencies (the build environment is offline, so no `syn`): a
//! hand-rolled tokenizer (`token`) feeds a statement-level rule engine
//! plus a workspace-level interprocedural analyzer (`graph` builds the
//! symbol table and call graph; `reach`, `locks`, `taint`, `coherence`,
//! and `wire` are the passes that query it).
//!
//! Statement-level rules (scope in parentheses):
//!
//! - `float-fold-order` (everywhere except `numerics/src/kernels.rs`):
//!   no `.sum()` / `.fold()` / `+=`-loop reductions in statements that
//!   touch floats — float reductions must route through the fixed-fold-
//!   order kernels.
//! - `ordered-iteration` (everywhere): no `HashMap`/`HashSet` iteration
//!   feeding order-sensitive sinks (serialization, ranking, float or
//!   collection accumulation). Use `BTreeMap`/`BTreeSet` or sort in the
//!   same statement.
//! - `wire-float-exactness` (`proto.rs` / `remote.rs`): floats crossing
//!   the wire must use the `to_bits` hex helpers, never raw JSON
//!   numbers.
//! - `block-grid-literals` (everywhere): bare `128` block math must
//!   reference `GRAM_BLOCK_ROWS`.
//! - `lock-discipline` (`manager.rs` / `server.rs`): no acquiring a
//!   second lock (`.lock()` / `.read()` / `.write()` / `lock_*()`
//!   helpers) while a let-bound guard is still live, except against the
//!   documented lock order (suppress with a reason at the site).
//!
//! Interprocedural passes (workspace call graph; findings carry a
//! `call_chain`):
//!
//! - `no-panic-in-request-path`: every `unwrap`/`expect`/`panic!`-family
//!   /slice-indexing site in a function *transitively reachable* from
//!   the serving surface (any non-test `fn` in `crates/server/src`),
//!   with the seed → … → site chain in the finding. Indexing is scoped
//!   to the orchestration layer (see `reach`).
//! - `lock-order`: cycles and documented-order (`latch → registry`)
//!   reversals in the workspace lock graph, including holds that span
//!   calls and crates (see `locks`).
//! - `float-taint`: values from non-`kernels` float folds or hash-order
//!   iteration that reach wire serialization or ranking sinks in a
//!   *different* function (see `taint`).
//! - `cache-invalidation`: every function mutating state a cache/memo
//!   surface is derived from (fields of structs holding `OnceLock` or
//!   `Mutex`-guarded memo maps) must transitively reach the matching
//!   invalidation/reset, directly or through every caller (see
//!   `coherence`).
//! - `byte-accounting`: a function swapping an `Arc` buffer in a
//!   cache-bearing struct must be backed by an `approx_bytes`-style
//!   accounting method on that struct (see `coherence`).
//! - `wire-drift`: encode/decode symmetry over the protocol files —
//!   every emitted `op` has a decode arm and a dispatch arm, every
//!   written object key is read back (and vice versa; intentional
//!   asymmetries carry `wire:legacy-default(key: reason)`), error codes
//!   and the protocol version come from one registry (see `wire`).
//!
//! Suppressions: `// lint:allow(rule)` or `// lint:allow(rule: reason)`
//! on the finding's line, or on a standalone comment line directly above
//! it — above an `fn` header, the allow covers the whole function body
//! (for interprocedural findings whose root cause is the function, not
//! one line). Unused suppressions are themselves reported (rule
//! `unused-suppression`, not suppressible), so allows can't rot;
//! `--fix-suppressions` removes them mechanically.
//!
//! `#[cfg(test)]` / `#[test]` items are skipped by every rule. Files
//! under `tests/` and `examples/` are *relaxed*: discovered and scanned
//! for suppression hygiene, but no rules run and they stay out of the
//! call graph.

pub mod coherence;
pub mod graph;
pub mod locks;
pub mod reach;
pub mod taint;
pub mod token;
pub mod wire;

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use graph::{LintFile, Workspace};
use token::{num_is_float, FileTokens, Tok, TokKind};

/// The enforceable rule names, as accepted by `lint:allow(...)`.
pub const RULES: [&str; 11] = [
    "float-fold-order",
    "ordered-iteration",
    "wire-float-exactness",
    "block-grid-literals",
    "no-panic-in-request-path",
    "lock-discipline",
    "lock-order",
    "float-taint",
    "cache-invalidation",
    "byte-accounting",
    "wire-drift",
];

/// Pseudo-rule under which stale/unknown suppressions are reported.
/// Deliberately not in [`RULES`]: it cannot itself be suppressed.
pub const UNUSED_SUPPRESSION: &str = "unused-suppression";

/// Contract attached to every [`UNUSED_SUPPRESSION`] finding (shared by
/// the `lint:allow` machinery and the wire pass's legacy markers).
pub const SUPPRESSION_CONTRACT: &str = "every suppression matches a live finding";

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (one of [`RULES`] or [`UNUSED_SUPPRESSION`]).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based source line of the triggering token.
    pub line: u32,
    /// Human-readable explanation with the expected fix.
    pub message: String,
    /// The standing invariant the finding violates (one short clause,
    /// stable across message rewording; schema v3 emits it verbatim).
    pub contract: &'static str,
    /// For interprocedural findings: the seed → … → site function chain
    /// (display names). Empty for statement-level findings.
    pub call_chain: Vec<String>,
}

/// Result of linting a tree: how much was scanned plus what was found.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of `.rs` files tokenized and checked.
    pub files_scanned: usize,
    /// Number of `lint:allow` suppressions that matched a finding.
    pub suppressions_used: usize,
    /// All findings, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

/// Is this path a relaxed (tests/examples) context — suppression hygiene
/// only, no rules, no call-graph membership?
fn is_relaxed(rel: &str) -> bool {
    rel.split('/')
        .any(|seg| seg == "tests" || seg == "examples")
}

/// Lint a single file's source under its workspace-relative path (the
/// path decides which rules are in scope). This is the seam the test
/// suite uses to run fixtures "as if" they lived at rule-scoped paths.
/// Interprocedural passes run over the one-file "workspace".
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Finding> {
    lint_sources(vec![(rel_path.to_string(), source.to_string())]).findings
}

/// Lint a set of `(workspace-relative path, source)` pairs as one
/// workspace: statement rules per file, then the call graph and the
/// interprocedural passes across all of them, then suppressions.
pub fn lint_sources(inputs: Vec<(String, String)>) -> Report {
    let files: Vec<LintFile> = inputs
        .into_iter()
        .map(|(rel, src)| LintFile {
            relaxed: is_relaxed(&rel),
            ft: FileTokens::tokenize(&src),
            rel,
        })
        .collect();

    let mut per_file: Vec<Vec<Finding>> = files
        .iter()
        .map(|f| {
            if f.relaxed {
                Vec::new()
            } else {
                run_rules(&f.rel, &f.ft)
            }
        })
        .collect();

    let ws = Workspace::build(&files);
    let by_path: BTreeMap<&str, usize> = files
        .iter()
        .enumerate()
        .map(|(i, f)| (f.rel.as_str(), i))
        .collect();
    let inter = reach::panic_reachability(&ws, &files)
        .into_iter()
        .chain(locks::lock_order(&ws, &files))
        .chain(taint::float_taint(&ws, &files))
        .chain(coherence::mutation_coherence(&ws, &files))
        .chain(wire::wire_drift(&ws, &files));
    for f in inter {
        if let Some(&i) = by_path.get(f.path.as_str()) {
            per_file[i].push(f);
        }
    }

    let mut report = Report::default();
    for (i, file) in files.iter().enumerate() {
        let mut findings = std::mem::take(&mut per_file[i]);
        report.suppressions_used += apply_suppressions(&file.rel, &file.ft, &mut findings);
        report.findings.extend(findings);
        report.files_scanned += 1;
    }
    sort_dedupe(&mut report.findings);
    report
}

/// Lint the workspace under `root`: every `crates/*/src/**/*.rs` and
/// `src/**/*.rs` file with full rules, plus `crates/*/tests/**/*.rs`,
/// `crates/*/examples/*.rs`, `tests/**`, and `examples/**` in relaxed
/// mode (suppression hygiene only). `crates/lint/tests/**` is excluded
/// entirely — it is this linter's seeded-violation fixture corpus.
/// Vendored dependency stubs (`vendor/`) stay out of scope.
pub fn lint_tree(root: &Path) -> io::Result<Report> {
    let mut files: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let src = dir.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
            let is_lint = dir.file_name().is_some_and(|n| n == "lint");
            let tests = dir.join("tests");
            if tests.is_dir() && !is_lint {
                collect_rs(&tests, &mut files)?;
            }
            let examples = dir.join("examples");
            if examples.is_dir() {
                collect_rs(&examples, &mut files)?;
            }
        }
    }
    for sub in ["src", "tests", "examples"] {
        let d = root.join(sub);
        if d.is_dir() {
            collect_rs(&d, &mut files)?;
        }
    }
    files.sort();

    let mut inputs = Vec::with_capacity(files.len());
    for path in &files {
        let source = fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        inputs.push((rel, source));
    }
    Ok(lint_sources(inputs))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Render findings for humans: `path:line: [rule] message` per finding,
/// with the call chain (when present) on an indented continuation line.
pub fn render_human(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.path, f.line, f.rule, f.message
        ));
        if f.call_chain.len() > 1 {
            out.push_str(&format!("    call chain: {}\n", f.call_chain.join(" -> ")));
        }
    }
    out.push_str(&format!(
        "charles-lint: {} finding(s) across {} file(s) scanned\n",
        report.findings.len(),
        report.files_scanned
    ));
    out
}

/// Render findings as machine-readable JSON (stable key order).
/// Schema version 3: v2 added `call_chain` (array of display names,
/// empty for statement-level findings) and `suppressions_used`; v3 adds
/// a per-finding `contract` naming the violated invariant.
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\"version\":3,\"files_scanned\":");
    out.push_str(&report.files_scanned.to_string());
    out.push_str(",\"suppressions_used\":");
    out.push_str(&report.suppressions_used.to_string());
    out.push_str(",\"findings\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"rule\":\"");
        out.push_str(&json_escape(f.rule));
        out.push_str("\",\"path\":\"");
        out.push_str(&json_escape(&f.path));
        out.push_str("\",\"line\":");
        out.push_str(&f.line.to_string());
        out.push_str(",\"message\":\"");
        out.push_str(&json_escape(&f.message));
        out.push_str("\",\"contract\":\"");
        out.push_str(&json_escape(f.contract));
        out.push_str("\",\"call_chain\":[");
        for (j, c) in f.call_chain.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&json_escape(c));
            out.push('"');
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Restrict a report to findings in the files named by `list`
/// (comma-separated; each entry matches its exact workspace-relative
/// path, or any path with that basename). Reporting narrows, the
/// analysis that produced the report does not: callers lint the whole
/// tree first, so an edit in one file still surfaces contract breaks it
/// causes three crates away — those just anchor in the changed file's
/// findings via their call chains.
pub fn retain_changed_only(report: &mut Report, list: &str) {
    let wanted: Vec<&str> = list
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    report.findings.retain(|f| {
        wanted.iter().any(|w| {
            f.path == *w
                || f.path.ends_with(&format!("/{w}"))
                || w.ends_with(&format!("/{}", f.path))
        })
    });
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn sort_dedupe(findings: &mut Vec<Finding>) {
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule)
            .cmp(&(b.path.as_str(), b.line, b.rule))
            .then_with(|| a.message.cmp(&b.message))
    });
    findings.dedup_by(|a, b| a.rule == b.rule && a.path == b.path && a.line == b.line);
}

// ---------------------------------------------------------------------------
// Stale-suppression fixer
// ---------------------------------------------------------------------------

/// One mechanical edit removing a stale suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixEdit {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line the stale `lint:allow` comment sits on.
    pub line: u32,
    /// `None`: delete the whole line (standalone comment).
    /// `Some(new)`: replace the line (same-line comment stripped).
    pub replacement: Option<String>,
}

/// Strip a trailing `// lint:allow(...)` comment from one source line.
/// Returns `None` when the line is nothing but the comment (delete it),
/// `Some(stripped)` when code precedes the comment.
pub fn strip_suppression(line: &str) -> Option<String> {
    let at = line.find("// lint:allow(")?;
    if line[..at].trim().is_empty() {
        return None;
    }
    Some(line[..at].trim_end().to_string())
}

/// Compute the edits that remove the stale suppressions a lint run
/// reported (`unused-suppression` findings whose comment is removable —
/// stale or unknown-rule; malformed ones need a human).
pub fn stale_suppression_edits(
    report: &Report,
    sources: &BTreeMap<String, String>,
) -> Vec<FixEdit> {
    let mut edits = Vec::new();
    for f in &report.findings {
        if f.rule != UNUSED_SUPPRESSION || f.message.contains("malformed") {
            continue;
        }
        let Some(src) = sources.get(&f.path) else {
            continue;
        };
        let Some(line_text) = src.lines().nth(f.line as usize - 1) else {
            continue;
        };
        if !line_text.contains("lint:allow(") {
            continue;
        }
        edits.push(FixEdit {
            path: f.path.clone(),
            line: f.line,
            replacement: strip_suppression(line_text),
        });
    }
    edits
}

/// Apply [`FixEdit`]s to a single file's source.
pub fn apply_fix_edits(source: &str, edits: &[&FixEdit]) -> String {
    let drop_lines: BTreeSet<u32> = edits
        .iter()
        .filter(|e| e.replacement.is_none())
        .map(|e| e.line)
        .collect();
    let replace: BTreeMap<u32, &str> = edits
        .iter()
        .filter_map(|e| e.replacement.as_deref().map(|r| (e.line, r)))
        .collect();
    let mut out = String::with_capacity(source.len());
    for (i, line) in source.lines().enumerate() {
        let ln = i as u32 + 1;
        if drop_lines.contains(&ln) {
            continue;
        }
        match replace.get(&ln) {
            Some(r) => out.push_str(r),
            None => out.push_str(line),
        }
        out.push('\n');
    }
    out
}

/// Lint `root`, compute stale-suppression edits, and (when `apply`)
/// write them back. Returns the edits either way, so callers can render
/// a dry run.
pub fn fix_suppressions(root: &Path, apply: bool) -> io::Result<Vec<FixEdit>> {
    let report = lint_tree(root)?;
    let mut sources: BTreeMap<String, String> = BTreeMap::new();
    for f in &report.findings {
        if f.rule == UNUSED_SUPPRESSION && !sources.contains_key(&f.path) {
            let abs = root.join(&f.path);
            sources.insert(f.path.clone(), fs::read_to_string(&abs)?);
        }
    }
    let edits = stale_suppression_edits(&report, &sources);
    if apply {
        let mut by_file: BTreeMap<&str, Vec<&FixEdit>> = BTreeMap::new();
        for e in &edits {
            by_file.entry(e.path.as_str()).or_default().push(e);
        }
        for (path, file_edits) in by_file {
            let src = &sources[path];
            fs::write(root.join(path), apply_fix_edits(src, &file_edits))?;
        }
    }
    Ok(edits)
}

// ---------------------------------------------------------------------------
// Rule engine
// ---------------------------------------------------------------------------

fn is_p(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

fn is_i(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

/// Split the token stream into statement-ish runs at `;`, `{`, `}`
/// (terminator included in the run). Coarse, but enough: a `for` header
/// becomes its own run ending in `{`, a `let` binding ends at `;`.
fn split_stmts(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut stmts = Vec::new();
    let mut start = 0usize;
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}") {
            stmts.push((start, i + 1));
            start = i + 1;
        }
    }
    if start < toks.len() {
        stmts.push((start, toks.len()));
    }
    stmts
}

const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
];

/// Order-sensitive sinks for a hash-iteration chain statement.
const CHAIN_SINKS: [&str; 9] = [
    "sum",
    "fold",
    "collect",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "push",
    "extend",
];

/// Order-sensitive sinks scanned for inside a `for`-loop body.
const BODY_SINKS: [&str; 10] = [
    "push",
    "push_str",
    "extend",
    "write_all",
    "write_str",
    "write_fmt",
    "collect",
    "sum",
    "fold",
    "Json",
];

/// Sorting in the same statement re-establishes a deterministic order.
const SORTS: [&str; 6] = [
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

fn run_rules(rel: &str, ft: &FileTokens) -> Vec<Finding> {
    let toks = &ft.toks;
    let stmts = split_stmts(toks);
    let mut out = Vec::new();

    let fname = rel.rsplit('/').next().unwrap_or(rel);
    let float_fold_in_scope = !rel.ends_with("numerics/src/kernels.rs");
    let wire_in_scope = fname == "proto.rs" || fname == "remote.rs";
    let lock_in_scope = fname == "manager.rs" || fname == "server.rs";

    let hash_idents = collect_hash_idents(toks);
    // Identifiers declared with a float type in the current function
    // (reset at each `fn`): `let mut acc = 0.0;` makes a later
    // `acc += x;` a float reduction even with no literal on that line.
    let mut float_decls: BTreeSet<String> = BTreeSet::new();

    for &(a, b) in &stmts {
        let s = &toks[a..b];
        if s.is_empty() {
            continue;
        }
        if s.iter().any(|t| t.in_test) {
            continue;
        }
        if s.iter().any(|t| is_i(t, "fn")) {
            float_decls.clear();
        }
        collect_float_decls(s, &mut float_decls);

        if float_fold_in_scope {
            float_fold_rule(rel, s, &float_decls, &mut out);
        }
        ordered_iteration_rule(rel, toks, (a, b), &hash_idents, &mut out);
        if wire_in_scope {
            wire_float_rule(rel, s, &mut out);
        }
        block_grid_rule(rel, s, &mut out);
    }

    if lock_in_scope {
        lock_discipline_rule(rel, toks, &stmts, &mut out);
    }
    out
}

/// Track identifiers bound or typed as floats: `let [mut] x = <float
/// expr>;`, `x: f64` in signatures/annotations, `|x: f64|` in closures.
fn collect_float_decls(s: &[Tok], decls: &mut BTreeSet<String>) {
    let float_typed = |toks: &[Tok]| toks.iter().any(|t| is_i(t, "f64") || is_i(t, "f32"));

    // `ident : ... f64 ...` up to the next `,` `)` `|` `=` `;` `{`.
    for i in 0..s.len() {
        if s[i].kind == TokKind::Ident && i + 1 < s.len() && is_p(&s[i + 1], ":") {
            let mut j = i + 2;
            while j < s.len()
                && !(s[j].kind == TokKind::Punct
                    && matches!(s[j].text.as_str(), "," | ")" | "|" | "=" | ";" | "{"))
            {
                j += 1;
            }
            if float_typed(&s[i + 2..j]) {
                decls.insert(s[i].text.clone());
            }
        }
    }

    // `let [mut] x = <rhs containing a float literal or f64 cast>;`
    if is_i(&s[0], "let") {
        let name_at = if s.len() > 1 && is_i(&s[1], "mut") {
            2
        } else {
            1
        };
        if let Some(name) = s.get(name_at) {
            if name.kind == TokKind::Ident {
                let rhs_float = s.iter().any(|t| {
                    (t.kind == TokKind::Num && num_is_float(&t.text))
                        || is_i(t, "f64")
                        || is_i(t, "f32")
                });
                if rhs_float {
                    decls.insert(name.text.clone());
                }
            }
        }
    }
}

/// Does this statement touch floats, as far as tokens can tell?
fn stmt_has_float_signal(s: &[Tok], decls: &BTreeSet<String>) -> bool {
    s.iter().any(|t| match t.kind {
        TokKind::Num => num_is_float(&t.text),
        TokKind::Ident => {
            matches!(t.text.as_str(), "f64" | "f32" | "powi" | "powf" | "sqrt")
                || decls.contains(&t.text)
        }
        _ => false,
    })
}

fn float_fold_rule(rel: &str, s: &[Tok], decls: &BTreeSet<String>, out: &mut Vec<Finding>) {
    let floaty = stmt_has_float_signal(s, decls);
    if !floaty {
        return;
    }
    for i in 0..s.len() {
        let trigger =
            if i > 0 && is_p(&s[i - 1], ".") && (is_i(&s[i], "sum") || is_i(&s[i], "fold")) {
                Some(format!(
                    "float reduction via `.{}()` has data-dependent fold order",
                    s[i].text
                ))
            } else if is_p(&s[i], "+=") {
                Some("raw `+=` float accumulation has loop-order-dependent rounding".to_string())
            } else {
                None
            };
        if let Some(what) = trigger {
            out.push(Finding {
                rule: "float-fold-order",
                path: rel.to_string(),
                line: s[i].line,
                message: format!(
                    "{what}; route float reductions through `charles_numerics::kernels` \
                     (fixed fold order) to keep shard/SIMD execution bit-identical"
                ),
                contract: "float reductions use the kernels' fixed fold order",
                call_chain: Vec::new(),
            });
        }
    }
}

/// Identifiers declared (or typed, including struct fields) as
/// `HashMap`/`HashSet` anywhere in the file.
fn collect_hash_idents(toks: &[Tok]) -> BTreeSet<String> {
    let mut set = BTreeSet::new();
    for i in 0..toks.len() {
        if !(is_i(&toks[i], "HashMap") || is_i(&toks[i], "HashSet")) {
            continue;
        }
        // Walk back over a path (`std :: collections :: HashMap`) to the
        // token that introduced it.
        let mut j = i;
        while j > 0 && (is_p(&toks[j - 1], "::") || toks[j - 1].kind == TokKind::Ident) {
            j -= 1;
        }
        // A reference type still iterates in hash order: step over `&`,
        // `&&`, and lifetimes so `m: &HashMap<..>` binds `m` too.
        while j > 0
            && (is_p(&toks[j - 1], "&")
                || is_p(&toks[j - 1], "&&")
                || toks[j - 1].kind == TokKind::Lifetime)
        {
            j -= 1;
        }
        if j >= 2 && is_p(&toks[j - 1], ":") && toks[j - 2].kind == TokKind::Ident {
            // `name: HashMap<..>` — field, param, or annotated let.
            set.insert(toks[j - 2].text.clone());
        } else if j >= 2 && is_p(&toks[j - 1], "=") && toks[j - 2].kind == TokKind::Ident {
            // `let [mut] name = HashMap::new()`.
            set.insert(toks[j - 2].text.clone());
        }
    }
    set
}

fn ordered_iteration_rule(
    rel: &str,
    toks: &[Tok],
    (a, b): (usize, usize),
    hash_idents: &BTreeSet<String>,
    out: &mut Vec<Finding>,
) {
    if hash_idents.is_empty() {
        return;
    }
    let s = &toks[a..b];
    // A re-ordering step in the same statement makes the iteration safe.
    if s.iter().any(|t| {
        (t.kind == TokKind::Ident && SORTS.contains(&t.text.as_str()))
            || is_i(t, "BTreeMap")
            || is_i(t, "BTreeSet")
    }) {
        return;
    }

    // Find an iteration over a known hash container: `h.iter()` /
    // `h.values()` / … or a bare `for .. in [&]h`.
    let mut trigger: Option<(usize, String)> = None;
    for i in 0..s.len() {
        if s[i].kind == TokKind::Ident
            && hash_idents.contains(&s[i].text)
            && i + 2 < s.len()
            && is_p(&s[i + 1], ".")
            && s[i + 2].kind == TokKind::Ident
            && ITER_METHODS.contains(&s[i + 2].text.as_str())
        {
            trigger = Some((i + 2, s[i].text.clone()));
            break;
        }
    }
    let is_for = s.iter().any(|t| is_i(t, "for"));
    if trigger.is_none() && is_for {
        if let Some(in_at) = s.iter().position(|t| is_i(t, "in")) {
            for (i, t) in s.iter().enumerate().skip(in_at + 1) {
                if t.kind == TokKind::Ident && hash_idents.contains(&t.text) {
                    trigger = Some((i, t.text.clone()));
                    break;
                }
            }
        }
    }
    let Some((trig_at, name)) = trigger else {
        return;
    };

    // Only order-sensitive consumption is a finding.
    let sensitive = if is_for && s.last().is_some_and(|t| is_p(t, "{")) {
        // Scan the loop body (to the matching brace) for sinks.
        let mut depth = 1i32;
        let mut k = b;
        let mut hit = false;
        while k < toks.len() && depth > 0 {
            let t = &toks[k];
            if is_p(t, "{") {
                depth += 1;
            } else if is_p(t, "}") {
                depth -= 1;
            } else if is_p(t, "+=")
                || (t.kind == TokKind::Ident && BODY_SINKS.contains(&t.text.as_str()))
            {
                hit = true;
            }
            k += 1;
        }
        hit
    } else {
        s.iter().any(|t| {
            t.kind == TokKind::Ident && (CHAIN_SINKS.contains(&t.text.as_str()) || t.text == "Json")
        })
    };
    if !sensitive {
        return;
    }

    out.push(Finding {
        rule: "ordered-iteration",
        path: rel.to_string(),
        line: s[trig_at].line,
        message: format!(
            "iteration over hash-ordered `{name}` feeds an order-sensitive sink \
             (serialization, ranking, or accumulation); use BTreeMap/BTreeSet or \
             sort in the same statement"
        ),
        contract: "order-sensitive sinks consume deterministic iteration order",
        call_chain: Vec::new(),
    });
}

fn wire_float_rule(rel: &str, s: &[Tok], out: &mut Vec<Finding>) {
    let exact = s.iter().any(|t| {
        t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "f64_bits" | "f64_from_bits" | "to_bits" | "from_bits"
            )
    });
    if exact {
        return;
    }
    for i in 0..s.len().saturating_sub(2) {
        if is_i(&s[i], "Json") && is_p(&s[i + 1], "::") && is_i(&s[i + 2], "Num") {
            out.push(Finding {
                rule: "wire-float-exactness",
                path: rel.to_string(),
                line: s[i + 2].line,
                message: "raw JSON float on the wire; decimal round-trips are not \
                          bit-exact — use the `f64_bits`/`f64_from_bits` hex helpers \
                          (or suppress with a reason for human-facing decimals)"
                    .to_string(),
                contract: "floats cross the wire as to_bits hex, never decimals",
                call_chain: Vec::new(),
            });
        }
    }
}

fn block_grid_rule(rel: &str, s: &[Tok], out: &mut Vec<Finding>) {
    if s.iter().any(|t| is_i(t, "GRAM_BLOCK_ROWS")) {
        return;
    }
    for t in s {
        if t.kind == TokKind::Num && num_is_128(&t.text) {
            out.push(Finding {
                rule: "block-grid-literals",
                path: rel.to_string(),
                line: t.line,
                message: "bare `128` in block math; reference \
                          `charles_numerics::ols::GRAM_BLOCK_ROWS` so the canonical \
                          block grid has one definition"
                    .to_string(),
                contract: "the canonical block grid has one definition",
                call_chain: Vec::new(),
            });
        }
    }
}

/// Is this numeric literal the value 128 (any suffix, underscores ok)?
fn num_is_128(text: &str) -> bool {
    let digits: String = text
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '_')
        .collect();
    let rest = &text[digits.len()..];
    let digits: String = digits.chars().filter(|c| *c != '_').collect();
    digits == "128"
        && rest.chars().all(|c| c.is_alphanumeric())
        && !rest.starts_with(|c: char| c.is_ascii_digit())
}

/// Acquisition = `.lock()` / `.read()` / `.write()` with no arguments
/// (so `stream.read(&mut buf)` io calls don't match), or a call to a
/// project lock helper named `lock_*`.
fn stmt_acquisitions(s: &[Tok]) -> Vec<usize> {
    let mut hits = Vec::new();
    for i in 0..s.len() {
        let t = &s[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let guard_method = i > 0
            && is_p(&s[i - 1], ".")
            && matches!(t.text.as_str(), "lock" | "read" | "write")
            && i + 2 < s.len()
            && is_p(&s[i + 1], "(")
            && is_p(&s[i + 2], ")");
        let helper = t.text.starts_with("lock_") && i + 1 < s.len() && is_p(&s[i + 1], "(");
        if guard_method || helper {
            hits.push(i);
        }
    }
    hits
}

fn lock_discipline_rule(rel: &str, toks: &[Tok], stmts: &[(usize, usize)], out: &mut Vec<Finding>) {
    let mut depth = 0i32;
    // Live let-bound guards: (name, brace depth at binding).
    let mut guards: Vec<(String, i32)> = Vec::new();

    for &(a, b) in stmts {
        let s = &toks[a..b];
        if s.is_empty() {
            continue;
        }
        let skip = s.iter().any(|t| t.in_test);

        if !skip {
            if s.iter().any(|t| is_i(t, "fn")) {
                guards.clear();
            }
            // `drop(guard)` releases early.
            for i in 0..s.len().saturating_sub(2) {
                if is_i(&s[i], "drop") && is_p(&s[i + 1], "(") && s[i + 2].kind == TokKind::Ident {
                    let name = s[i + 2].text.clone();
                    guards.retain(|(g, _)| *g != name);
                }
            }
            let acquisitions = stmt_acquisitions(s);
            for &i in &acquisitions {
                if let Some((held, _)) = guards.first() {
                    out.push(Finding {
                        rule: "lock-discipline",
                        path: rel.to_string(),
                        line: s[i].line,
                        message: format!(
                            "acquiring `{}` while guard `{held}` is still held; nested \
                             locks deadlock under contention — drop the guard first, or \
                             suppress citing the documented lock order",
                            s[i].text
                        ),
                        contract: "nested lock acquisition follows the documented order",
                        call_chain: Vec::new(),
                    });
                }
            }
            // A `let`-bound acquisition keeps its guard live to scope end.
            if !acquisitions.is_empty() && is_i(&s[0], "let") {
                let name_at = if s.len() > 1 && is_i(&s[1], "mut") {
                    2
                } else {
                    1
                };
                if let Some(name) = s.get(name_at) {
                    if name.kind == TokKind::Ident {
                        guards.push((name.text.clone(), depth));
                    }
                }
            }
        }

        // Track brace depth from the statement terminator (always the
        // last token of the run when it is `{` or `}`).
        if let Some(last) = s.last() {
            if is_p(last, "{") {
                depth += 1;
            } else if is_p(last, "}") {
                depth -= 1;
                guards.retain(|(_, d)| *d <= depth);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

struct Allow {
    rule: String,
    comment_line: u32,
    /// Inclusive line range covered: the comment's own line, or (for a
    /// standalone comment) the full span of the next statement — and,
    /// when that statement is an `fn` header, the whole function body,
    /// so one allow above a signature covers interprocedural findings
    /// anywhere inside it.
    lo: u32,
    hi: u32,
    used: bool,
}

/// Apply `lint:allow` suppressions to `findings` in place; returns how
/// many distinct allows matched at least one finding.
fn apply_suppressions(rel: &str, ft: &FileTokens, findings: &mut Vec<Finding>) -> usize {
    let mut allows: Vec<Allow> = Vec::new();
    for c in &ft.comments {
        // Doc comments are documentation, not directives: an allow
        // marker quoted in rustdoc must not suppress anything.
        if c.text.starts_with("///")
            || c.text.starts_with("//!")
            || c.text.starts_with("/**")
            || c.text.starts_with("/*!")
        {
            continue;
        }
        let Some(start) = c.text.find("lint:allow(") else {
            continue;
        };
        let body = &c.text[start + "lint:allow(".len()..];
        let Some(end) = body.find(')') else {
            findings.push(Finding {
                rule: UNUSED_SUPPRESSION,
                path: rel.to_string(),
                line: c.line,
                message: "malformed `lint:allow(...)`: missing closing parenthesis".to_string(),
                contract: SUPPRESSION_CONTRACT,
                call_chain: Vec::new(),
            });
            continue;
        };
        let (lo, hi) = if c.standalone {
            // A standalone comment suppresses the statement that starts
            // at the next code line; above an `fn` header, the whole
            // function body.
            let next = ft
                .toks
                .iter()
                .position(|t| t.line >= c.line)
                .unwrap_or(ft.toks.len());
            let stmts = split_stmts(&ft.toks);
            stmts
                .iter()
                .find(|&&(a, b)| next >= a && next < b)
                .map_or((0, 0), |&(a, b)| {
                    let lines = ft.toks[a..b].iter().map(|t| t.line);
                    let lo = lines.clone().min().unwrap_or(0);
                    let mut hi = lines.max().unwrap_or(0);
                    let is_fn_header = ft.toks[a..b].iter().any(|t| is_i(t, "fn"))
                        && ft.toks[b - 1].kind == TokKind::Punct
                        && ft.toks[b - 1].text == "{";
                    if is_fn_header {
                        // Extend to the matching close brace.
                        let mut depth = 0i32;
                        for t in &ft.toks[b - 1..] {
                            if is_p(t, "{") {
                                depth += 1;
                            } else if is_p(t, "}") {
                                depth -= 1;
                                if depth == 0 {
                                    hi = t.line;
                                    break;
                                }
                            }
                        }
                    }
                    (lo, hi)
                })
        } else {
            (c.line, c.line)
        };
        // One rule, or several comma-separated rules, optionally
        // followed by `: free-form reason` — rules before the first
        // `:`, reason (commas and colons allowed) after it.
        let inner = &body[..end];
        let rules_part = inner.split(':').next().unwrap_or(inner);
        for item in rules_part.split(',') {
            let rule = item.trim().to_string();
            if rule.is_empty() {
                continue;
            }
            if !RULES.contains(&rule.as_str()) {
                findings.push(Finding {
                    rule: UNUSED_SUPPRESSION,
                    path: rel.to_string(),
                    line: c.line,
                    message: format!("unknown rule `{rule}` in lint:allow"),
                    contract: SUPPRESSION_CONTRACT,
                    call_chain: Vec::new(),
                });
                continue;
            }
            // Allows inside skipped test code are inert, not stale.
            let in_test_target = ft
                .toks
                .iter()
                .find(|t| t.line >= lo)
                .is_some_and(|t| t.in_test);
            allows.push(Allow {
                rule,
                comment_line: c.line,
                lo,
                hi,
                used: in_test_target,
            });
        }
    }

    findings.retain(|f| {
        if f.rule == UNUSED_SUPPRESSION {
            return true;
        }
        let mut suppressed = false;
        for a in &mut allows {
            if a.rule == f.rule && f.line >= a.lo && f.line <= a.hi {
                a.used = true;
                suppressed = true;
            }
        }
        !suppressed
    });

    let used = allows.iter().filter(|a| a.used).count();
    for a in &allows {
        if !a.used {
            findings.push(Finding {
                rule: UNUSED_SUPPRESSION,
                path: rel.to_string(),
                line: a.comment_line,
                message: format!(
                    "suppression `lint:allow({})` matches no finding on lines {}-{}; remove it",
                    a.rule, a.lo, a.hi
                ),
                contract: SUPPRESSION_CONTRACT,
                call_chain: Vec::new(),
            });
        }
    }
    used
}
