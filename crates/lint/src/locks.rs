//! Workspace lock-order analysis.
//!
//! The statement-level `lock-discipline` rule sees nested acquisitions
//! only when both sit in the same statement of `manager.rs`/`server.rs`.
//! The deadlocks that actually bite span functions and crates: a
//! registry guard from `lock_registry()` is alive in `manager.rs` while
//! the code calls into a session helper that takes the latch — an
//! inversion of the documented `latch → registry` order that no single
//! statement shows. This pass builds the workspace lock graph:
//!
//! - every direct acquisition (`recv.lock()` / `.read()` / `.write()`,
//!   argless) with its syntactic identity ([`LockSite::lock`]);
//! - per-function **transitive lock summaries** (which locks can a call
//!   into this function acquire, with a witness chain to the deep
//!   site), computed as a fixpoint over the call graph;
//! - **edges** `A → B` whenever `B` is acquired — directly or through a
//!   call — while a guard for `A` is held. Guard lifetimes are tracked
//!   syntactically: `let g = x.lock()…;` (with only poison-recovery
//!   adapters in the tail) binds a guard until scope exit or `drop(g)`;
//!   a lock consumed mid-expression is a temporary released at the end
//!   of its statement. Calls to guard-returning helpers
//!   (`-> MutexGuard<…>`) transfer the held lock to the caller.
//!
//! Findings (`lock-order`) are cycles in the edge graph (including
//! self-edges — re-acquiring a `Mutex` you already hold deadlocks) and
//! reversals of the documented order (`latch` before `registry`).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::graph::{LintFile, Workspace};
use crate::token::{Tok, TokKind};
use crate::Finding;

/// Documented acquisition order: lower rank must be taken first.
/// `latch`/`open_latch` (dataset open latches) before the manager
/// registry (`inner` field, `registry` bindings).
fn rank(lock: &str) -> Option<u32> {
    match lock {
        "latch" | "open_latch" => Some(0),
        "inner" | "registry" => Some(1),
        _ => None,
    }
}

/// Result/guard adapters that may trail an acquisition without consuming
/// the guard (`.lock().unwrap_or_else(PoisonError::into_inner)`).
const RECOVERY: [&str; 4] = ["unwrap", "expect", "unwrap_or_else", "unwrap_or_default"];

/// How a call into a function can end up holding a lock: the chain of
/// callees from the summarized function down to the acquiring one, plus
/// the deep acquisition site.
#[derive(Debug, Clone)]
struct Witness {
    via: Vec<usize>,
    file: usize,
    line: u32,
}

/// One `held → acquired` event, anchored where the holder can fix it.
#[derive(Debug, Clone)]
struct Edge {
    from: String,
    to: String,
    holder: usize,
    file: usize,
    line: u32,
    witness: Option<Witness>,
}

fn is_p(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

fn is_i(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

fn matching_paren(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if is_p(t, "(") {
            depth += 1;
        } else if is_p(t, ")") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Does the expression tail after the call closing at `close` end the
/// statement without consuming the guard? Recovery adapters and `?` are
/// transparent; any other method call means the guard is a temporary.
fn tail_is_binding(toks: &[Tok], close: usize) -> bool {
    let mut k = close + 1;
    loop {
        if k >= toks.len() {
            return false;
        }
        let t = &toks[k];
        if is_p(t, ";") {
            return true;
        }
        if is_p(t, "?") {
            k += 1;
            continue;
        }
        if is_p(t, ".")
            && k + 2 < toks.len()
            && toks[k + 1].kind == TokKind::Ident
            && RECOVERY.contains(&toks[k + 1].text.as_str())
            && is_p(&toks[k + 2], "(")
        {
            k = matching_paren(toks, k + 2) + 1;
            continue;
        }
        return false;
    }
}

/// Per-function transitive lock summaries: lock identity → witness.
fn summaries(ws: &Workspace) -> Vec<BTreeMap<String, Witness>> {
    let mut sums: Vec<BTreeMap<String, Witness>> = vec![BTreeMap::new(); ws.fns.len()];
    for (f, sites) in ws.lock_sites.iter().enumerate() {
        for s in sites {
            sums[f].entry(s.lock.clone()).or_insert(Witness {
                via: Vec::new(),
                file: ws.fns[f].file,
                line: s.line,
            });
        }
    }
    // Fixpoint: absorb callee summaries. Bounded by lock-identity count.
    for _ in 0..24 {
        let mut changed = false;
        for f in 0..ws.fns.len() {
            let mut add: Vec<(String, Witness)> = Vec::new();
            for call in &ws.calls[f] {
                for &c in &call.callees {
                    if ws.fns[c].in_test {
                        continue;
                    }
                    for (lock, w) in &sums[c] {
                        if !sums[f].contains_key(lock) {
                            let mut via = vec![c];
                            via.extend(w.via.iter().copied().take(7));
                            add.push((
                                lock.clone(),
                                Witness {
                                    via,
                                    file: w.file,
                                    line: w.line,
                                },
                            ));
                        }
                    }
                }
            }
            for (lock, w) in add {
                if sums[f].insert(lock, w).is_none() {
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    sums
}

/// A guard alive during the token walk.
struct HeldGuard {
    binding: Option<String>,
    locks: BTreeSet<String>,
    depth: i32,
    /// Temporary (mid-expression guard): released at the statement end.
    until_semi: bool,
}

/// Walk one function body tracking guard lifetimes; emit edges.
fn walk_fn(
    ws: &Workspace,
    files: &[LintFile],
    f: usize,
    sums: &[BTreeMap<String, Witness>],
    edges: &mut Vec<Edge>,
) {
    let item = &ws.fns[f];
    let (start, end) = item.body;
    if start >= end {
        return;
    }
    let toks = &files[item.file].ft.toks;
    let nested: Vec<(usize, usize)> = ws
        .fns
        .iter()
        .filter(|g| {
            g.file == item.file && g.body.0 > start && g.body.1 <= end && g.body.0 < g.body.1
        })
        .map(|g| g.body)
        .collect();
    let locks_by_tok: BTreeMap<usize, &crate::graph::LockSite> =
        ws.lock_sites[f].iter().map(|s| (s.tok, s)).collect();
    let calls_by_tok: BTreeMap<usize, &crate::graph::Call> =
        ws.calls[f].iter().map(|c| (c.tok, c)).collect();

    let mut held: Vec<HeldGuard> = Vec::new();
    let mut depth = 0i32;
    let mut stmt_let: Option<String> = None;
    let mut i = start + 1;
    while i < end {
        if let Some(&(_, b)) = nested.iter().find(|&&(a, b)| i > a && i < b) {
            i = b;
            continue;
        }
        let t = &toks[i];
        if is_p(t, "{") {
            depth += 1;
            stmt_let = None;
        } else if is_p(t, "}") {
            depth -= 1;
            held.retain(|h| h.depth <= depth);
            stmt_let = None;
        } else if is_p(t, ";") {
            held.retain(|h| !(h.until_semi && h.depth >= depth));
            stmt_let = None;
        } else if is_i(t, "let") {
            let name_at = if i + 1 < end && is_i(&toks[i + 1], "mut") {
                i + 2
            } else {
                i + 1
            };
            if name_at < end && toks[name_at].kind == TokKind::Ident {
                stmt_let = Some(toks[name_at].text.clone());
            }
        } else if is_i(t, "drop")
            && i + 3 < end
            && is_p(&toks[i + 1], "(")
            && toks[i + 2].kind == TokKind::Ident
            && is_p(&toks[i + 3], ")")
        {
            let name = &toks[i + 2].text;
            held.retain(|h| h.binding.as_deref() != Some(name.as_str()));
            i += 4;
            continue;
        } else if let Some(site) = locks_by_tok.get(&i) {
            for h in &held {
                for from in &h.locks {
                    edges.push(Edge {
                        from: from.clone(),
                        to: site.lock.clone(),
                        holder: f,
                        file: item.file,
                        line: site.line,
                        witness: None,
                    });
                }
            }
            let close = matching_paren(toks, i + 1);
            let binding = stmt_let.clone().filter(|_| tail_is_binding(toks, close));
            held.push(HeldGuard {
                until_semi: binding.is_none(),
                binding,
                locks: [site.lock.clone()].into(),
                depth,
            });
        } else if let Some(call) = calls_by_tok.get(&i) {
            let mut acquired: BTreeMap<String, Witness> = BTreeMap::new();
            let mut transfers = false;
            for &c in &call.callees {
                if ws.fns[c].in_test {
                    continue;
                }
                transfers |= ws.fns[c].returns_guard;
                for (lock, w) in &sums[c] {
                    acquired.entry(lock.clone()).or_insert_with(|| {
                        let mut via = vec![c];
                        via.extend(w.via.iter().copied().take(7));
                        Witness {
                            via,
                            file: w.file,
                            line: w.line,
                        }
                    });
                }
            }
            for h in &held {
                for from in &h.locks {
                    for (to, w) in &acquired {
                        edges.push(Edge {
                            from: from.clone(),
                            to: to.clone(),
                            holder: f,
                            file: item.file,
                            line: call.line,
                            witness: Some(w.clone()),
                        });
                    }
                }
            }
            if transfers && !acquired.is_empty() {
                let close = matching_paren(toks, i + 1);
                let binding = stmt_let.clone().filter(|_| tail_is_binding(toks, close));
                held.push(HeldGuard {
                    until_semi: binding.is_none(),
                    binding,
                    locks: acquired.keys().cloned().collect(),
                    depth,
                });
            }
        }
        i += 1;
    }
}

/// Shortest path `from → … → to` over the edge adjacency, if any.
fn path_between(adj: &BTreeMap<&str, BTreeSet<&str>>, from: &str, to: &str) -> Option<Vec<String>> {
    let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue: VecDeque<&str> = VecDeque::new();
    parent.insert(from, from);
    queue.push_back(from);
    while let Some(n) = queue.pop_front() {
        if n == to && parent.len() > 1 {
            break;
        }
        for &m in adj.get(n).into_iter().flatten() {
            if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(m) {
                e.insert(n);
                queue.push_back(m);
            }
        }
    }
    if !parent.contains_key(to) || (from == to && parent.len() == 1) {
        return None;
    }
    let mut rev = vec![to.to_string()];
    let mut cur = to;
    while cur != from || rev.len() == 1 {
        cur = parent.get(cur)?;
        rev.push(cur.to_string());
        if rev.len() > 64 {
            return None;
        }
    }
    rev.reverse();
    Some(rev)
}

/// Run the pass over the workspace.
pub fn lock_order(ws: &Workspace, files: &[LintFile]) -> Vec<Finding> {
    let sums = summaries(ws);
    let mut edges = Vec::new();
    for f in 0..ws.fns.len() {
        if ws.fns[f].in_test || files[ws.fns[f].file].relaxed {
            continue;
        }
        walk_fn(ws, files, f, &sums, &mut edges);
    }
    // First occurrence per (from, to) anchors the report.
    let mut first: BTreeMap<(String, String), &Edge> = BTreeMap::new();
    for e in &edges {
        first.entry((e.from.clone(), e.to.clone())).or_insert(e);
    }
    let adj: BTreeMap<&str, BTreeSet<&str>> = {
        let mut m: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for (from, to) in first.keys() {
            m.entry(from.as_str()).or_default().insert(to.as_str());
        }
        m
    };

    let mut out = Vec::new();
    let finding = |e: &Edge, msg: String| {
        let mut chain = vec![ws.display(e.holder, files)];
        if let Some(w) = &e.witness {
            chain.extend(w.via.iter().map(|&c| ws.display(c, files)));
        }
        Finding {
            rule: "lock-order",
            path: files[e.file].rel.clone(),
            line: e.line,
            message: msg,
            contract: "the workspace lock graph is acyclic in the documented order",
            call_chain: chain,
        }
    };
    let deep_site = |e: &Edge| -> String {
        match &e.witness {
            Some(w) => format!(" (deep acquisition at {}:{})", files[w.file].rel, w.line),
            None => String::new(),
        }
    };

    // Documented-order reversals.
    for e in first.values() {
        if let (Some(rf), Some(rt)) = (rank(&e.from), rank(&e.to)) {
            if rf > rt {
                out.push(finding(
                    e,
                    format!(
                        "lock `{}` acquired while `{}` is held{} — reverses the \
                         documented `latch -> registry` order and can deadlock \
                         against the open path",
                        e.to,
                        e.from,
                        deep_site(e)
                    ),
                ));
            }
        }
    }

    // Cycles (self-edges included).
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for ((from, to), e) in &first {
        let cycle = if from == to {
            Some(vec![from.clone(), to.clone()])
        } else {
            path_between(&adj, to, from).map(|mut p| {
                p.insert(0, from.clone());
                p
            })
        };
        let Some(cycle) = cycle else { continue };
        let mut key: Vec<String> = cycle.clone();
        key.sort_unstable();
        key.dedup();
        if !reported.insert(key) {
            continue;
        }
        let msg = if from == to {
            format!(
                "lock `{from}` re-acquired while already held{} — self-deadlock \
                 on a non-reentrant `Mutex`",
                deep_site(e)
            )
        } else {
            format!(
                "lock-order cycle `{}` — two threads interleaving these \
                 acquisitions deadlock{}",
                cycle.join(" -> "),
                deep_site(e)
            )
        };
        out.push(finding(e, msg));
    }
    out
}
