#![forbid(unsafe_code)]
//! `charles-lint` CLI: walk the workspace sources, print findings, exit
//! nonzero when any survive suppression.
//!
//! Usage: `charles-lint [--json] [ROOT]`
//!
//! - `ROOT` defaults to the current directory (CI runs
//!   `cargo run -p charles-lint` from the repo root).
//! - `--json` emits the machine-readable report instead of the
//!   `path:line: [rule] message` lines.
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    for arg in env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: charles-lint [--json] [ROOT]");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') && root.is_none() => {
                root = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("charles-lint: unknown argument `{other}`");
                eprintln!("usage: charles-lint [--json] [ROOT]");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));

    let report = match charles_lint::lint_tree(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("charles-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", charles_lint::render_json(&report));
    } else {
        print!("{}", charles_lint::render_human(&report));
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
