#![forbid(unsafe_code)]
//! `charles-lint` CLI: walk the workspace sources, print findings, exit
//! nonzero when any survive suppression.
//!
//! Usage: `charles-lint [--json] [--fix-suppressions [--apply]]
//!         [--bench-out PATH] [--max-seconds N] [--changed-only LIST]
//!         [ROOT]`
//!
//! - `ROOT` defaults to the current directory (CI runs
//!   `cargo run -p charles-lint` from the repo root).
//! - `--json` emits the machine-readable report (schema version 3)
//!   instead of the `path:line: [rule] message` lines.
//! - `--fix-suppressions` lists the stale `lint:allow` lines the
//!   `unused-suppression` pseudo-rule reports; `--apply` rewrites the
//!   files in place (without it, a dry run).
//! - `--bench-out PATH` writes wall-time and finding/suppression counts
//!   as JSON (the CI lint job records `BENCH_lint.json`).
//! - `--max-seconds N` fails (exit 1) if the pass took longer — the
//!   call graph must stay cheap enough to run on every PR.
//! - `--changed-only LIST` (comma-separated paths or basenames)
//!   restricts *reporting* to findings in the listed files. The whole
//!   workspace is still read and the full call graph built — an edit in
//!   `kernels.rs` can surface a stale cache three crates away, so the
//!   analysis itself never narrows; only the report does. Exit code 1
//!   still means "the listed files carry findings".
//!
//! Exit codes: 0 clean, 1 findings (or over time budget), 2 usage or
//! I/O error.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "usage: charles-lint [--json] [--fix-suppressions [--apply]] \
                     [--bench-out PATH] [--max-seconds N] [--changed-only LIST] [ROOT]";

const HELP: &str = "  --json                machine-readable report (schema version 3)
  --fix-suppressions    list stale lint:allow lines (--apply rewrites)
  --bench-out PATH      write wall-time + counts as JSON
  --max-seconds N       exit 1 if the pass took longer
  --changed-only LIST   comma-separated paths/basenames: report only
                        findings in those files (the full workspace
                        graph is still built and analyzed)

exit codes: 0 clean, 1 findings or over time budget, 2 usage/IO error";

fn main() -> ExitCode {
    let mut json = false;
    let mut fix = false;
    let mut apply = false;
    let mut bench_out: Option<PathBuf> = None;
    let mut max_seconds: Option<f64> = None;
    let mut changed_only: Option<String> = None;
    let mut root: Option<PathBuf> = None;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--fix-suppressions" => fix = true,
            "--apply" => apply = true,
            "--bench-out" => match args.next() {
                Some(p) => bench_out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("charles-lint: --bench-out needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--max-seconds" => match args.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(n) => max_seconds = Some(n),
                None => {
                    eprintln!("charles-lint: --max-seconds needs a number\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--changed-only" => match args.next() {
                Some(list) => changed_only = Some(list),
                None => {
                    eprintln!("charles-lint: --changed-only needs a file list\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}\n{HELP}");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') && root.is_none() => {
                root = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("charles-lint: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if apply && !fix {
        eprintln!("charles-lint: --apply only makes sense with --fix-suppressions\n{USAGE}");
        return ExitCode::from(2);
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));

    if fix {
        let edits = match charles_lint::fix_suppressions(&root, apply) {
            Ok(edits) => edits,
            Err(e) => {
                eprintln!("charles-lint: failed to fix suppressions: {e}");
                return ExitCode::from(2);
            }
        };
        for e in &edits {
            let action = match &e.replacement {
                None => "remove line".to_string(),
                Some(_) => "strip trailing allow".to_string(),
            };
            println!("{}:{}: {action}", e.path, e.line);
        }
        println!(
            "charles-lint: {} stale suppression(s) {}",
            edits.len(),
            if apply {
                "removed"
            } else {
                "found (dry run; pass --apply to write)"
            }
        );
        return ExitCode::SUCCESS;
    }

    let started = Instant::now();
    let mut report = match charles_lint::lint_tree(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("charles-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let wall = started.elapsed().as_secs_f64();
    if let Some(list) = &changed_only {
        charles_lint::retain_changed_only(&mut report, list);
    }

    if let Some(path) = &bench_out {
        let bench = format!(
            "{{\"version\":3,\"wall_seconds\":{wall:.3},\"files_scanned\":{},\"findings\":{},\
             \"suppressions_used\":{}}}\n",
            report.files_scanned,
            report.findings.len(),
            report.suppressions_used
        );
        if let Err(e) = std::fs::write(path, bench) {
            eprintln!("charles-lint: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if json {
        println!("{}", charles_lint::render_json(&report));
    } else {
        print!("{}", charles_lint::render_human(&report));
    }

    let mut failed = !report.findings.is_empty();
    if let Some(budget) = max_seconds {
        if wall > budget {
            eprintln!(
                "charles-lint: pass took {wall:.2}s, over the {budget:.2}s budget — \
                 the workspace gate must stay cheap enough for every PR"
            );
            failed = true;
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
