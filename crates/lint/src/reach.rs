//! Transitive panic-reachability from the serving surface.
//!
//! The statement-level ancestor of this pass scanned `crates/server/src`
//! for `unwrap`/`expect`/`panic!` — and stopped at the crate boundary,
//! while every route handler immediately calls into `charles_core`,
//! where a malformed dataset can still reach an unwrap and turn into a
//! 500 with no [`ErrorEnvelope`]. This pass seeds the call graph at the
//! server's request-handling functions (every non-test `fn` in
//! `crates/server/src` — `serve_connection`, `route`, `route_inner`,
//! `dispatch`, the worker/remote plumbing) and walks the workspace call
//! graph; every potential-panic site in a reachable function is a
//! finding, carrying the seed → … → site call chain so the report shows
//! *why* the site is on the request path.
//!
//! Site kinds: `.unwrap()`, `.expect(..)`, the `panic!`-family macros,
//! and slice/array indexing. Indexing is reported only in the
//! orchestration scope (the server crate plus `charles_core`'s
//! `session.rs` / `manager.rs` / `executor.rs`): hot numeric kernels
//! index on every line behind block-grid invariants the fixture-pinned
//! differential suite already exercises, and burying real findings in
//! thousands of loop-bound indexes would make the rule unenforceable.

use crate::graph::{LintFile, PanicKind, Workspace};
use crate::Finding;

/// Is this file a seed surface (the request path proper)?
fn is_seed_file(rel: &str) -> bool {
    rel.starts_with("crates/server/src")
}

/// Is slice indexing reported for this file?
fn index_in_scope(rel: &str) -> bool {
    rel.starts_with("crates/server/src")
        || rel.ends_with("core/src/session.rs")
        || rel.ends_with("core/src/manager.rs")
        || rel.ends_with("core/src/executor.rs")
}

/// Run the pass: panic sites in functions reachable from the serving
/// surface, each finding carrying its call chain.
pub fn panic_reachability(ws: &Workspace, files: &[LintFile]) -> Vec<Finding> {
    let seeds: Vec<usize> = ws
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.in_test && is_seed_file(&files[f.file].rel))
        .map(|(i, _)| i)
        .collect();
    if seeds.is_empty() {
        return Vec::new();
    }
    let parents = ws.reachable(&seeds);

    let mut out = Vec::new();
    for &fn_idx in parents.keys() {
        let item = &ws.fns[fn_idx];
        if item.in_test {
            continue;
        }
        let rel = &files[item.file].rel;
        let chain = ws.chain(&parents, fn_idx, files);
        for site in &ws.panic_sites[fn_idx] {
            if site.kind == PanicKind::SliceIndex && !index_in_scope(rel) {
                continue;
            }
            let what = match site.kind {
                PanicKind::Unwrap => "`unwrap()`".to_string(),
                PanicKind::Expect => "`expect(..)`".to_string(),
                PanicKind::Macro => format!("`{}!`", site.what),
                PanicKind::SliceIndex => "slice indexing".to_string(),
            };
            let via = if chain.len() > 1 {
                format!(" (request path: {})", chain.join(" -> "))
            } else {
                String::new()
            };
            out.push(Finding {
                rule: "no-panic-in-request-path",
                path: rel.clone(),
                line: site.line,
                message: format!(
                    "{what} is reachable from the serving surface{via}; a panic here \
                     takes down a serving thread mid-request — return a typed error \
                     (`CharlesError`/`QueryError` → `ErrorEnvelope`) or recover \
                     explicitly",
                ),
                contract: "no panics reachable from the serving surface",
                call_chain: chain.clone(),
            });
        }
    }
    out
}
