//! Interprocedural float-provenance taint.
//!
//! The bit-identity contract says every float that reaches the wire or a
//! ranking comparison was produced by a `kernels` fixed-order fold. The
//! statement-level rules check the two ends separately —
//! `float-fold-order` flags ad-hoc folds where they happen,
//! `wire-float-exactness` flags raw `Json::Num` in `proto.rs` — but
//! nothing connects them: a helper in `charles_core` can `.sum()` a
//! `HashMap`'s values (with a perfectly reasonable local `lint:allow`,
//! because the *local* use is fine), return the total, and three calls
//! later that value is serialized. A local allow justifies local use; it
//! does not certify cross-machine bit-identity on the wire.
//!
//! This pass marks **sources** — float folds outside
//! `numerics/src/kernels.rs` and hash-order iteration — and propagates
//! the taint through `let` bindings, call arguments (into the callee's
//! parameter), and float-returning calls (back into the caller), as a
//! fixpoint over the workspace call graph. A finding (`float-taint`)
//! fires when a tainted value reaches a **sink** — wire serialization
//! (`Json::Num`, `f64_bits*`) or a ranking comparison (the `sort_by`
//! family) — in a *different* function from the source, with the
//! provenance chain in the finding. `human_f64` is the sanctioned
//! display path and is not a sink.

use std::collections::BTreeMap;

use crate::graph::{LintFile, Workspace};
use crate::token::{num_is_float, Tok, TokKind};
use crate::Finding;

/// Where a tainted value came from and how it got here.
#[derive(Debug, Clone)]
struct Taint {
    /// Function containing the source expression.
    origin: usize,
    /// Source line in the origin function's file.
    line: u32,
    /// What the source was (for the message).
    kind: &'static str,
    /// Intermediate functions strictly between origin and the current
    /// holder, in flow order.
    via: Vec<usize>,
}

/// Per-function taint state, updated to fixpoint.
#[derive(Default, Clone)]
struct FnState {
    /// Tainted bindings (params seeded by callers, lets seeded locally).
    vars: BTreeMap<String, Taint>,
    /// The function can return a tainted float.
    ret: Option<Taint>,
}

fn is_p(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

fn is_i(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

const FOLDS: [&str; 3] = ["sum", "product", "fold"];
const HASH_ITERS: [&str; 6] = ["keys", "values", "iter", "into_iter", "drain", "values_mut"];
const SORT_SINKS: [&str; 5] = [
    "sort_by",
    "sort_unstable_by",
    "sort_by_key",
    "sort_unstable_by_key",
    "binary_search_by",
];
const WIRE_FNS: [&str; 3] = ["f64_bits", "f64_bits_arr", "f64_bits_field"];

/// Statement ranges of a function body, split at `;`/`{`/`}`, with
/// nested-fn spans removed.
fn stmts_of(
    toks: &[Tok],
    start: usize,
    end: usize,
    nested: &[(usize, usize)],
) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut a = start + 1;
    let mut i = start + 1;
    while i < end {
        if let Some(&(_, b)) = nested.iter().find(|&&(na, nb)| i > na && i < nb) {
            i = b;
            continue;
        }
        let t = &toks[i];
        if is_p(t, ";") || is_p(t, "{") || is_p(t, "}") {
            if i > a {
                out.push((a, i));
            }
            a = i + 1;
        }
        i += 1;
    }
    if end > a {
        out.push((a, end));
    }
    out
}

/// Does the statement contain float evidence (`f64`/`f32`, float literal)?
fn has_float_hint(toks: &[Tok], a: usize, b: usize) -> bool {
    toks[a..b].iter().any(|t| {
        is_i(t, "f64") || is_i(t, "f32") || (t.kind == TokKind::Num && num_is_float(&t.text))
    })
}

/// A taint source inside the statement: ad-hoc float fold or hash-order
/// iteration. `kernels.rs` is the one sanctioned fold site.
fn source_in(
    toks: &[Tok],
    a: usize,
    b: usize,
    rel: &str,
    returns_float: bool,
) -> Option<(u32, &'static str)> {
    let in_kernels = rel.ends_with("numerics/src/kernels.rs");
    let float_hint = has_float_hint(toks, a, b) || returns_float;
    let has_hash = toks[a..b]
        .iter()
        .any(|t| is_i(t, "HashMap") || is_i(t, "HashSet"));
    for i in a..b {
        let t = &toks[i];
        if t.kind != TokKind::Ident || i == a || !is_p(&toks[i - 1], ".") {
            continue;
        }
        if i + 1 < b && !is_p(&toks[i + 1], "(") {
            continue;
        }
        if !in_kernels && float_hint && FOLDS.contains(&t.text.as_str()) {
            return Some((t.line, "ad-hoc float fold"));
        }
        if has_hash && HASH_ITERS.contains(&t.text.as_str()) {
            return Some((t.line, "hash-order iteration"));
        }
    }
    None
}

/// A taint sink inside the statement: wire serialization or ranking.
fn sink_in(toks: &[Tok], a: usize, b: usize) -> Option<(u32, &'static str)> {
    for i in a..b {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let called = i + 1 < b && is_p(&toks[i + 1], "(");
        if t.text == "Num"
            && i >= 2
            && is_p(&toks[i - 1], "::")
            && is_i(&toks[i - 2], "Json")
            && called
        {
            return Some((t.line, "wire serialization (`Json::Num`)"));
        }
        if WIRE_FNS.contains(&t.text.as_str()) && called {
            return Some((t.line, "wire serialization (bit-exact encoder input)"));
        }
        if i > a && is_p(&toks[i - 1], ".") && SORT_SINKS.contains(&t.text.as_str()) && called {
            return Some((t.line, "ranking comparison"));
        }
    }
    None
}

/// First tainted binding mentioned in the statement.
fn mentioned_taint<'a>(
    toks: &[Tok],
    a: usize,
    b: usize,
    vars: &'a BTreeMap<String, Taint>,
) -> Option<&'a Taint> {
    toks[a..b]
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .find_map(|t| vars.get(&t.text))
}

/// Extend a taint's via-chain as the value moves out of `holder`.
fn flow_through(t: &Taint, holder: usize) -> Taint {
    let mut via = t.via.clone();
    if t.origin != holder && !via.contains(&holder) {
        via.push(holder);
        via.truncate(8);
    }
    Taint {
        origin: t.origin,
        line: t.line,
        kind: t.kind,
        via,
    }
}

/// Run the pass over the workspace.
pub fn float_taint(ws: &Workspace, files: &[LintFile]) -> Vec<Finding> {
    let n = ws.fns.len();
    let mut states: Vec<FnState> = vec![FnState::default(); n];
    // Precompute statement lists.
    let mut stmts: Vec<Vec<(usize, usize)>> = Vec::with_capacity(n);
    for (f, item) in ws.fns.iter().enumerate() {
        let toks = &files[item.file].ft.toks;
        let nested: Vec<(usize, usize)> = ws
            .fns
            .iter()
            .filter(|g| {
                g.file == item.file
                    && g.body.0 > item.body.0
                    && g.body.1 <= item.body.1
                    && g.body.0 < g.body.1
            })
            .map(|g| g.body)
            .collect();
        if item.in_test || files[item.file].relaxed || item.body.0 >= item.body.1 {
            stmts.push(Vec::new());
        } else {
            stmts.push(stmts_of(toks, item.body.0, item.body.1, &nested));
        }
        let _ = f;
    }

    // Fixpoint: propagate taint through lets, returns, and call args.
    for _ in 0..10 {
        let mut changed = false;
        for f in 0..n {
            let item = &ws.fns[f];
            let toks = &files[item.file].ft.toks;
            let rel = &files[item.file].rel;
            for &(a, b) in &stmts[f] {
                // Taint carried by this statement, if any.
                let mut t: Option<Taint> =
                    source_in(toks, a, b, rel, item.returns_float).map(|(line, kind)| Taint {
                        origin: f,
                        line,
                        kind,
                        via: Vec::new(),
                    });
                if t.is_none() {
                    t = mentioned_taint(toks, a, b, &states[f].vars).cloned();
                }
                if t.is_none() {
                    // A call returning taint poisons the statement.
                    for call in ws.calls[f].iter().filter(|c| c.tok >= a && c.tok < b) {
                        for &c in &call.callees {
                            if let Some(rt) = &states[c].ret {
                                t = Some(flow_through(rt, c));
                                break;
                            }
                        }
                        if t.is_some() {
                            break;
                        }
                    }
                }
                let Some(t) = t else { continue };
                // `let x = <tainted>` binds the taint.
                if is_i(&toks[a], "let") {
                    let name_at = if a + 1 < b && is_i(&toks[a + 1], "mut") {
                        a + 2
                    } else {
                        a + 1
                    };
                    if name_at < b && toks[name_at].kind == TokKind::Ident {
                        let name = toks[name_at].text.clone();
                        if let std::collections::btree_map::Entry::Vacant(e) =
                            states[f].vars.entry(name)
                        {
                            e.insert(t.clone());
                            changed = true;
                        }
                    }
                }
                // Float-returning function with a tainted statement can
                // return the taint.
                if item.returns_float && states[f].ret.is_none() {
                    states[f].ret = Some(t.clone());
                    changed = true;
                }
                // Tainted args seed the callee's parameter.
                let mut arg_taints: Vec<(usize, usize, Taint)> = Vec::new();
                for call in ws.calls[f].iter().filter(|c| c.tok >= a && c.tok < b) {
                    for (pos, &(ra, rb)) in call.args.iter().enumerate() {
                        let hit = source_in(toks, ra, rb, rel, false)
                            .map(|(line, kind)| Taint {
                                origin: f,
                                line,
                                kind,
                                via: Vec::new(),
                            })
                            .or_else(|| mentioned_taint(toks, ra, rb, &states[f].vars).cloned());
                        if let Some(ti) = hit {
                            for &c in &call.callees {
                                arg_taints.push((c, pos, ti.clone()));
                            }
                        }
                    }
                }
                for (c, pos, ti) in arg_taints {
                    if ws.fns[c].in_test {
                        continue;
                    }
                    let Some(param) = ws.fns[c].params.get(pos) else {
                        continue;
                    };
                    let pname = param.name.clone();
                    if let std::collections::btree_map::Entry::Vacant(e) =
                        states[c].vars.entry(pname)
                    {
                        e.insert(flow_through(&ti, f));
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Final pass: tainted statements hitting a sink in another function.
    let mut out = Vec::new();
    for f in 0..n {
        let item = &ws.fns[f];
        let toks = &files[item.file].ft.toks;
        let rel = &files[item.file].rel;
        for &(a, b) in &stmts[f] {
            let Some((line, sink)) = sink_in(toks, a, b) else {
                continue;
            };
            let mut t: Option<Taint> = mentioned_taint(toks, a, b, &states[f].vars).cloned();
            if t.is_none() {
                for call in ws.calls[f].iter().filter(|c| c.tok >= a && c.tok < b) {
                    for &c in &call.callees {
                        if let Some(rt) = &states[c].ret {
                            t = Some(flow_through(rt, c));
                            break;
                        }
                    }
                    if t.is_some() {
                        break;
                    }
                }
            }
            let Some(t) = t else { continue };
            if t.origin == f {
                continue; // same-function: the statement rules own this
            }
            let mut chain = vec![ws.display(t.origin, files)];
            chain.extend(t.via.iter().map(|&v| ws.display(v, files)));
            chain.push(ws.display(f, files));
            out.push(Finding {
                rule: "float-taint",
                path: rel.clone(),
                line,
                message: format!(
                    "value from {} in `{}` ({}:{}) reaches {} here — only \
                     `kernels` fixed-order folds are bit-identical across \
                     shards; recompute via `kernels` or keep this value off \
                     the wire/ranking path",
                    t.kind,
                    ws.display(t.origin, files),
                    files[ws.fns[t.origin].file].rel,
                    t.line,
                    sink,
                ),
                contract: "only kernels-computed floats reach wire and ranking sinks",
                call_chain: chain,
            });
        }
    }
    out
}
