//! A hand-rolled, comment- and string-literal-aware Rust tokenizer.
//!
//! This is *not* a parser: the rule engine only needs a faithful token
//! stream where code is distinguished from comments and literals — a rule
//! needle like `.sum()` appearing inside a string literal or a doc
//! comment must never fire. The tokenizer therefore handles the full
//! lexical surface that matters for that guarantee:
//!
//! - line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`), collected separately so suppression markers can be
//!   read back out;
//! - string literals with escapes, byte strings, and raw strings with any
//!   number of `#`s (`r"…"`, `r#"…"#`, `br##"…"##`);
//! - char literals vs. lifetimes (`'a'` vs `'a`), including escaped chars
//!   (`'\''`, `'\u{1F600}'`);
//! - numeric literals with underscores, radix prefixes, exponents, and
//!   type suffixes (`1_000`, `0xFF`, `1.5e-3`, `0.0f64`), kept as one
//!   token so float-ness is decidable from the text;
//! - raw identifiers (`r#match`) and multi-char operators (`+=`, `::`,
//!   `..`, `->`, …).
//!
//! A post-pass marks every token inside a `#[cfg(test)]` or `#[test]`
//! item (attribute through the matching close brace) with `in_test`, so
//! rules can skip test code without a real parse.

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `views`, `f64`, `r#match`).
    Ident,
    /// Numeric literal, suffix included (`128`, `0.0f64`, `1e-9`).
    Num,
    /// String literal of any flavor (contents preserved in `text`,
    /// delimiters and `r#`/`b` prefixes stripped, escapes verbatim).
    Str,
    /// Char literal (`'a'`, `'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Punctuation / operator, possibly multi-char (`+=`, `::`, `{`).
    Punct,
}

/// One token with its source position and test-code marking.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Verbatim source text. For `Str` the delimiters are stripped and
    /// the body kept with escapes verbatim — the wire-drift pass reads
    /// object keys and `op` strings out of literals; statement rules
    /// still never match needles inside them (the kind gates that).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// Whether the token sits inside a `#[cfg(test)]`/`#[test]` item.
    pub in_test: bool,
}

/// One comment: its starting line, verbatim text (markers included), and
/// whether it was the only thing on its line (a *standalone* comment,
/// which suppresses the next code line instead of its own).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line of the `//` or `/*`.
    pub line: u32,
    /// Full comment text, `//`/`/*` markers included.
    pub text: String,
    /// True when nothing but whitespace precedes the comment on its line.
    pub standalone: bool,
}

/// A tokenized file: the code token stream plus the comment stream.
#[derive(Debug, Default)]
pub struct FileTokens {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

impl FileTokens {
    /// Tokenize `source`. Never fails: unterminated literals simply run to
    /// end of input (the lint must not crash on in-progress code).
    pub fn tokenize(source: &str) -> FileTokens {
        let mut lx = Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            line_has_code: false,
            out: FileTokens::default(),
        };
        lx.run();
        mark_test_items(&mut lx.out.toks);
        lx.out
    }
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    /// Whether any code token has been emitted on the current line (used
    /// to classify comments as standalone).
    line_has_code: bool,
    out: FileTokens,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
                self.line_has_code = false;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.line_has_code = true;
        self.out.toks.push(Tok {
            kind,
            text,
            line,
            in_test: false,
        });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            match c {
                ' ' | '\t' | '\r' | '\n' => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                '\'' => self.char_or_lifetime(),
                'r' | 'b' if self.raw_or_byte_string() => {}
                c if c.is_ascii_digit() => self.number(),
                c if c.is_alphabetic() || c == '_' => self.ident(),
                _ => self.punct(),
            }
        }
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let standalone = !self.line_has_code;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            line,
            text,
            standalone,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let standalone = !self.line_has_code;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment {
            line,
            text,
            standalone,
        });
    }

    /// Cooked string: `"…"` with `\` escapes; multi-line allowed. The
    /// body (escapes verbatim, quotes stripped) becomes the token text.
    fn string(&mut self) {
        let line = self.line;
        let mut text = String::new();
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '\\' {
                text.push(c);
                if let Some(e) = self.bump() {
                    text.push(e); // whatever is escaped, including `"` and `\`
                }
            } else if c == '"' {
                break;
            } else {
                text.push(c);
            }
        }
        self.push(TokKind::Str, text, line);
    }

    /// Handle `r"…"`, `r#"…"#`, `b"…"`, `br##"…"##`, and raw identifiers
    /// (`r#match`). Returns false when the `r`/`b` is an ordinary ident
    /// start (the caller then lexes it as an identifier).
    fn raw_or_byte_string(&mut self) -> bool {
        let line = self.line;
        let first = self.peek(0).unwrap_or(' ');
        let mut i = 1;
        if first == 'b' && self.peek(i) == Some('r') {
            i += 1;
        }
        let mut hashes = 0usize;
        while self.peek(i) == Some('#') {
            hashes += 1;
            i += 1;
        }
        if self.peek(i) != Some('"') {
            // `r#ident` raw identifier: consume `r#` and lex the ident.
            if first == 'r' && hashes == 1 {
                if let Some(c) = self.peek(2) {
                    if c.is_alphabetic() || c == '_' {
                        self.bump();
                        self.bump();
                        self.ident();
                        return true;
                    }
                }
            }
            if first == 'b' && hashes == 0 && self.peek(1) == Some('\'') {
                // byte char literal b'x'
                self.bump();
                self.char_or_lifetime();
                return true;
            }
            return false; // plain identifier starting with r/b
        }
        // Raw (or byte) string: consume prefix, hashes, and the body up to
        // `"` followed by the same number of `#`s. No escapes in raw
        // strings; `b"…"` (hashes = 0) still has escapes, but skipping
        // them only risks ending early at an escaped quote — byte strings
        // with escaped quotes don't appear in rule-relevant positions, and
        // cooked handling is done in `string()`.
        if hashes == 0 && first == 'b' && self.peek(1) == Some('"') {
            self.bump(); // b
            self.string();
            return true;
        }
        for _ in 0..i + 1 {
            self.bump(); // prefix + hashes + opening quote
        }
        let mut text = String::new();
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut closing = 0usize;
                while closing < hashes && self.peek(0) == Some('#') {
                    closing += 1;
                    self.bump();
                }
                if closing == hashes {
                    break;
                }
                text.push('"');
                for _ in 0..closing {
                    text.push('#');
                }
            } else {
                text.push(c);
            }
        }
        self.push(TokKind::Str, text, line);
        true
    }

    /// `'a'` (char, incl. escapes) vs `'a` / `'static` (lifetime).
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        self.bump(); // the quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume to the closing quote.
                self.bump();
                self.bump(); // escaped char (or `u`)
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokKind::Char, String::new(), line);
            }
            Some(c) if c.is_alphanumeric() || c == '_' => {
                let mut text = String::new();
                while let Some(c) = self.peek(0) {
                    if c.is_alphanumeric() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if self.peek(0) == Some('\'') {
                    self.bump();
                    self.push(TokKind::Char, text, line);
                } else {
                    self.push(TokKind::Lifetime, text, line);
                }
            }
            _ => {
                // `'('`-style punctuation char literal.
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokKind::Char, String::new(), line);
            }
        }
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let radix_prefixed = self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'));
        if radix_prefixed {
            text.push(self.bump().unwrap_or('0'));
            text.push(self.bump().unwrap_or('x'));
            while let Some(c) = self.peek(0) {
                if c.is_ascii_hexdigit() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        } else {
            while let Some(c) = self.peek(0) {
                if c.is_ascii_digit() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            // Fraction — but `1..10` is a range, not a float.
            if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
                text.push('.');
                self.bump();
                while let Some(c) = self.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            } else if self.peek(0) == Some('.')
                && !self
                    .peek(1)
                    .is_some_and(|c| c == '.' || c.is_alphabetic() || c == '_')
            {
                // Trailing-dot float like `1.` (not `1..` or `1.method()`).
                text.push('.');
                self.bump();
            }
            // Exponent.
            if matches!(self.peek(0), Some('e' | 'E')) {
                let sign = matches!(self.peek(1), Some('+' | '-'));
                let digit_at = if sign { 2 } else { 1 };
                if self.peek(digit_at).is_some_and(|c| c.is_ascii_digit()) {
                    text.push(self.bump().unwrap_or('e'));
                    if sign {
                        text.push(self.bump().unwrap_or('+'));
                    }
                    while let Some(c) = self.peek(0) {
                        if c.is_ascii_digit() || c == '_' {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
            }
        }
        // Type suffix (`usize`, `f64`, `u32`, …).
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Num, text, line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line);
    }

    fn punct(&mut self) {
        let line = self.line;
        let c = self.bump().unwrap_or(' ');
        let two = self.peek(0).map(|n| {
            let mut s = String::new();
            s.push(c);
            s.push(n);
            s
        });
        const OPS: [&str; 14] = [
            "+=", "-=", "*=", "/=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..",
        ];
        if let Some(two) = two {
            if OPS.contains(&two.as_str()) {
                self.bump();
                self.push(TokKind::Punct, two, line);
                return;
            }
        }
        self.push(TokKind::Punct, c.to_string(), line);
    }
}

/// Whether a numeric literal token is a float (decides if a reduction
/// statement "touches floats"). Handles radix prefixes (`0xE1` is not an
/// exponent) and integer type suffixes (`123usize` contains an `e` but is
/// not a float).
pub fn num_is_float(text: &str) -> bool {
    let t = text.as_bytes();
    if t.len() >= 2 && t[0] == b'0' && matches!(t[1], b'x' | b'X' | b'o' | b'O' | b'b' | b'B') {
        return false;
    }
    let mut i = 0;
    while i < t.len() && (t[i].is_ascii_digit() || t[i] == b'_') {
        i += 1;
    }
    if i < t.len() && t[i] == b'.' {
        return true;
    }
    if i < t.len() && (t[i] == b'e' || t[i] == b'E') {
        let j = if i + 1 < t.len() && (t[i + 1] == b'+' || t[i + 1] == b'-') {
            i + 2
        } else {
            i + 1
        };
        if j < t.len() && t[j].is_ascii_digit() {
            return true;
        }
    }
    // `1f64` / `1f32` suffix floats.
    text[i.min(text.len())..].starts_with("f64") || text[i.min(text.len())..].starts_with("f32")
}

/// Mark every token belonging to a `#[cfg(test)]` or `#[test]` item: from
/// the attribute through the matching close brace of the item body (or
/// the terminating `;` for brace-less items).
fn mark_test_items(toks: &mut [Tok]) {
    let mut i = 0;
    while i < toks.len() {
        if let Some(attr_len) = test_attribute_at(toks, i) {
            // Find the item body: the first `{` before any same-depth `;`.
            let mut j = i + attr_len;
            let mut end = toks.len();
            let mut depth = 0i32;
            while j < toks.len() {
                let text = toks[j].text.as_str();
                if toks[j].kind == TokKind::Punct {
                    match text {
                        "{" => {
                            depth += 1;
                        }
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                end = j + 1;
                                break;
                            }
                        }
                        ";" if depth == 0 => {
                            end = j + 1;
                            break;
                        }
                        _ => {}
                    }
                }
                // `(`/`[` in fn signatures don't use brace depth; only
                // braces decide the item extent.
                j += 1;
            }
            for tok in &mut toks[i..end] {
                tok.in_test = true;
            }
            i = end;
        } else {
            i += 1;
        }
    }
}

/// If `toks[i..]` starts a `#[cfg(test)]`/`#[cfg(all(test, …))]`/`#[test]`
/// attribute, return its token length.
fn test_attribute_at(toks: &[Tok], i: usize) -> Option<usize> {
    if toks.get(i)?.text != "#" || toks.get(i + 1)?.text != "[" {
        return None;
    }
    // Scan to the matching `]`, looking for the `test` / cfg(test) shape.
    let mut depth = 1i32;
    let mut j = i + 2;
    let mut saw_test = false;
    let head_is_cfg_or_test = matches!(toks.get(i + 2).map(|t| t.text.as_str()), Some("cfg"))
        || matches!(
            (
                toks.get(i + 2).map(|t| t.text.as_str()),
                toks.get(i + 3).map(|t| t.text.as_str())
            ),
            (Some("test"), Some("]"))
        );
    while j < toks.len() && depth > 0 {
        match toks[j].text.as_str() {
            "[" => depth += 1,
            "]" => depth -= 1,
            "test" => saw_test = true,
            _ => {}
        }
        j += 1;
    }
    (head_is_cfg_or_test && saw_test).then_some(j - i)
}
