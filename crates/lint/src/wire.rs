//! Protocol-drift analysis over the wire surface.
//!
//! The protocol lives in four files — `proto.rs` (types + JSON codecs),
//! `server.rs` (routes + `/v1/rpc` dispatch), `client.rs`, `remote.rs`
//! (the coordinator's worker client) — and nothing but convention keeps
//! them in step: an encoder can grow a key no decoder reads, an `op`
//! can gain an encode arm with no dispatch arm, an error-code string
//! can fork between server and client. Schema-evolution tooling calls
//! this IDL drift; this pass pins the repo's hand-rolled protocol the
//! same way, from the token stream:
//!
//! - **op coverage**: every `Request::Variant => "op"` arm in `fn op`
//!   must have a decode arm (`"op" =>`) in `Request::from_json` *and* a
//!   `Request::Variant` arm in `fn dispatch`; decode arms for ops no
//!   encoder emits are drift too.
//! - **key symmetry**: for each type with both `to_json` and
//!   `from_json` (or `encode`/`decode`), every object key written
//!   (`("key", ..)` / `("key".into(), ..)` pairs) must be read
//!   (`need_str(v, "key")` / `.get("key")`) and vice versa. Intentional
//!   asymmetries — a key kept for old readers, a default-on-absence —
//!   carry a `// wire:legacy-default(key: reason)` marker in the same
//!   file; stale markers are reported like stale `lint:allow`s.
//! - **registry checks**: error-code strings at `ErrorEnvelope::new(..)`
//!   and in `from_charles`'s status table must come from the single
//!   embedded registry below, and the `"v"` protocol-version key must
//!   be handled via the `PROTOCOL_VERSION` constant (itself pinned to
//!   the registry value) — no hard-coded version literals.
//!
//! Findings are `wire-drift` (suppressible with `lint:allow` like any
//! rule); the pass reads string-literal contents, which is why the
//! tokenizer preserves them.

use std::collections::{BTreeMap, BTreeSet};

use crate::graph::{LintFile, Workspace};
use crate::token::{Tok, TokKind};
use crate::{Finding, SUPPRESSION_CONTRACT, UNUSED_SUPPRESSION};

/// The one protocol version in flight (`"v": 1` on every request).
const WIRE_VERSION: &str = "1";

/// Every error code the protocol may put in an `ErrorEnvelope`. Adding a
/// code is a protocol change: extend this table in the same PR so server
/// and client cannot fork silently.
const ERROR_CODES: [&str; 13] = [
    "unknown_dataset",
    "unknown_target",
    "bad_query",
    "bad_config",
    "no_candidates",
    "bad_data",
    "internal",
    "worker_unavailable",
    "bad_request",
    "overloaded",
    "dataset_unavailable",
    "method_not_allowed",
    "not_found",
];

fn is_p(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

fn is_wire_file(rel: &str) -> bool {
    let base = rel.rsplit('/').next().unwrap_or(rel);
    matches!(base, "proto.rs" | "server.rs" | "client.rs" | "remote.rs")
}

/// Keys and error codes are identifier-shaped; anything else (format
/// strings, messages) is not a wire token.
fn ident_like(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// First occurrence per key: key → line.
type KeyLines = BTreeMap<String, u32>;

/// Collected encode/decode surface of one type.
#[derive(Default)]
struct Codec {
    /// File index of the encoder (for anchoring and allow lookup).
    enc_file: Option<usize>,
    dec_file: Option<usize>,
    writes: KeyLines,
    reads: KeyLines,
}

/// A `wire:legacy-default(key: reason)` marker.
struct LegacyDefault {
    file: usize,
    key: String,
    line: u32,
    used: bool,
}

/// Object keys *written* in an encoder body: a `Str` opening a pair —
/// preceded by `(` and followed by `,` (a `("key", value)` tuple) or by
/// `.` (`"key".into()` / `"key".to_string()`).
fn collect_write_keys(toks: &[Tok], body: (usize, usize), out: &mut KeyLines) {
    let (start, end) = body;
    for i in start + 1..end {
        let t = &toks[i];
        if t.kind != TokKind::Str || !ident_like(&t.text) {
            continue;
        }
        let prev_open = i > 0 && is_p(&toks[i - 1], "(");
        let next = toks.get(i + 1);
        let opens_pair = next.is_some_and(|n| is_p(n, ",") || is_p(n, "."));
        if prev_open && opens_pair {
            out.entry(t.text.clone()).or_insert(t.line);
        }
    }
}

/// Object keys *read* in a decoder body: a `Str` closing an argument
/// list — followed by `)` and preceded by `(` or `,` (`.get("key")`,
/// `need_str(value, "key")`).
fn collect_read_keys(toks: &[Tok], body: (usize, usize), out: &mut KeyLines) {
    let (start, end) = body;
    for i in start + 1..end {
        let t = &toks[i];
        if t.kind != TokKind::Str || !ident_like(&t.text) {
            continue;
        }
        let prev = i > 0 && (is_p(&toks[i - 1], "(") || is_p(&toks[i - 1], ","));
        let next_close = toks.get(i + 1).is_some_and(|n| is_p(n, ")"));
        if prev && next_close {
            out.entry(t.text.clone()).or_insert(t.line);
        }
    }
}

/// Match-arm strings in a decoder body: a `Str` followed by `=>` or `|`.
fn collect_arm_strings(toks: &[Tok], body: (usize, usize), out: &mut KeyLines) {
    let (start, end) = body;
    for i in start + 1..end {
        let t = &toks[i];
        if t.kind != TokKind::Str || !ident_like(&t.text) {
            continue;
        }
        if toks
            .get(i + 1)
            .is_some_and(|n| is_p(n, "=>") || is_p(n, "|"))
        {
            out.entry(t.text.clone()).or_insert(t.line);
        }
    }
}

/// `Request::Variant { .. } => "op"` pairs in `fn op`.
fn collect_op_map(toks: &[Tok], body: (usize, usize), out: &mut Vec<(String, String, u32)>) {
    let (start, end) = body;
    let mut i = start + 1;
    while i + 2 < end {
        let variant = (toks[i].kind == TokKind::Ident
            && (toks[i].text == "Request" || toks[i].text == "Self")
            && is_p(&toks[i + 1], "::")
            && toks[i + 2].kind == TokKind::Ident
            && toks[i + 2]
                .text
                .chars()
                .next()
                .is_some_and(char::is_uppercase))
        .then(|| toks[i + 2].text.clone());
        if let Some(v) = variant {
            // Scan forward to the arm's `=>`, then the op string.
            let mut j = i + 3;
            while j < end && !is_p(&toks[j], "=>") {
                j += 1;
            }
            if j + 1 < end && toks[j + 1].kind == TokKind::Str {
                out.push((v, toks[j + 1].text.clone(), toks[j + 1].line));
                i = j + 2;
                continue;
            }
        }
        i += 1;
    }
}

/// `Request::Variant` patterns in `fn dispatch`.
fn collect_dispatch_variants(toks: &[Tok], body: (usize, usize), out: &mut BTreeSet<String>) {
    let (start, end) = body;
    for i in start + 1..end.saturating_sub(2) {
        if toks[i].kind == TokKind::Ident
            && (toks[i].text == "Request" || toks[i].text == "Self")
            && is_p(&toks[i + 1], "::")
            && toks[i + 2].kind == TokKind::Ident
            && toks[i + 2]
                .text
                .chars()
                .next()
                .is_some_and(char::is_uppercase)
        {
            out.insert(toks[i + 2].text.clone());
        }
    }
}

/// Run the pass over the workspace.
pub fn wire_drift(ws: &Workspace, files: &[LintFile]) -> Vec<Finding> {
    let wire_files: BTreeSet<usize> = files
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.relaxed && is_wire_file(&f.rel))
        .map(|(i, _)| i)
        .collect();
    if wire_files.is_empty() {
        return Vec::new();
    }

    // Legacy-default markers, per wire file.
    let mut legacy: Vec<LegacyDefault> = Vec::new();
    for &fi in &wire_files {
        for c in &files[fi].ft.comments {
            if c.text.starts_with("///") || c.text.starts_with("//!") {
                continue; // documentation may quote the marker
            }
            let Some(at) = c.text.find("wire:legacy-default(") else {
                continue;
            };
            let body = &c.text[at + "wire:legacy-default(".len()..];
            let Some(close) = body.find(')') else {
                continue;
            };
            let key = body[..close].split(':').next().unwrap_or("").trim();
            if !key.is_empty() {
                legacy.push(LegacyDefault {
                    file: fi,
                    key: key.to_string(),
                    line: c.line,
                    used: false,
                });
            }
        }
    }

    let mut codecs: BTreeMap<String, Codec> = BTreeMap::new();
    let mut op_map: Vec<(String, String, u32)> = Vec::new();
    let mut op_file: Option<usize> = None;
    let mut decode_ops: KeyLines = BTreeMap::new();
    let mut decode_file: Option<usize> = None;
    let mut dispatch_variants: BTreeSet<String> = BTreeSet::new();
    let mut dispatch_at: Option<(usize, u32)> = None;
    let mut out = Vec::new();

    for (idx, f) in ws.fns.iter().enumerate() {
        if f.in_test || !wire_files.contains(&f.file) {
            continue;
        }
        let toks = &files[f.file].ft.toks;
        let ty = f.self_type.clone().unwrap_or_default();
        match f.name.as_str() {
            "to_json" | "encode" if !ty.is_empty() => {
                let c = codecs.entry(ty.clone()).or_default();
                c.enc_file = Some(f.file);
                collect_write_keys(toks, f.body, &mut c.writes);
            }
            "from_json" | "decode" if !ty.is_empty() => {
                {
                    let c = codecs.entry(ty.clone()).or_default();
                    c.dec_file = Some(f.file);
                    collect_read_keys(toks, f.body, &mut c.reads);
                }
                if ty == "Request" {
                    collect_arm_strings(toks, f.body, &mut decode_ops);
                    decode_file = Some(f.file);
                }
            }
            "op" if ty == "Request" => {
                collect_op_map(toks, f.body, &mut op_map);
                op_file = Some(f.file);
            }
            "dispatch" => {
                collect_dispatch_variants(toks, f.body, &mut dispatch_variants);
                dispatch_at = Some((f.file, f.line));
            }
            _ => {}
        }

        // Error-code registry: `ErrorEnvelope::new("code", ..)` sites and
        // the `(status, "code")` tuples in `from_charles`.
        let (start, end) = f.body;
        let mut i = start + 1;
        while i + 3 < end {
            if toks[i].kind == TokKind::Ident
                && toks[i].text == "ErrorEnvelope"
                && is_p(&toks[i + 1], "::")
                && toks[i + 2].text == "new"
                && is_p(&toks[i + 3], "(")
                && toks.get(i + 4).is_some_and(|t| t.kind == TokKind::Str)
            {
                check_error_code(&toks[i + 4], &files[f.file].rel, &mut out);
                i += 5;
                continue;
            }
            if f.name == "from_charles"
                && is_p(&toks[i], "(")
                && toks[i + 1].kind == TokKind::Num
                && is_p(&toks[i + 2], ",")
                && toks[i + 3].kind == TokKind::Str
            {
                check_error_code(&toks[i + 3], &files[f.file].rel, &mut out);
                i += 4;
                continue;
            }
            i += 1;
        }

        // Version handling: any codec fn touching the `"v"` key must
        // reference PROTOCOL_VERSION rather than a literal.
        if matches!(
            f.name.as_str(),
            "to_json" | "from_json" | "encode" | "decode"
        ) {
            let v_key = toks[start + 1..end]
                .iter()
                .find(|t| t.kind == TokKind::Str && t.text == "v");
            if let Some(v) = v_key {
                let has_const = toks[start + 1..end]
                    .iter()
                    .any(|t| t.kind == TokKind::Ident && t.text == "PROTOCOL_VERSION");
                if !has_const {
                    out.push(Finding {
                        rule: "wire-drift",
                        path: files[f.file].rel.clone(),
                        line: v.line,
                        message: format!(
                            "`{}::{}` handles the protocol-version key \"v\" without \
                             referencing `PROTOCOL_VERSION` — hard-coded version \
                             literals fork the protocol; route the check through the \
                             one constant",
                            ty, f.name
                        ),
                        contract: "the protocol version has one definition",
                        call_chain: vec![ws.display(idx, files)],
                    });
                }
            }
        }
    }

    // PROTOCOL_VERSION constant pinned to the registry value.
    for &fi in &wire_files {
        let toks = &files[fi].ft.toks;
        for i in 0..toks.len().saturating_sub(2) {
            if toks[i].kind == TokKind::Ident
                && toks[i].text == "PROTOCOL_VERSION"
                && !toks[i].in_test
            {
                // `const PROTOCOL_VERSION: usize = 1;` — find the `=`,
                // then the literal.
                let mut j = i + 1;
                while j < toks.len() && !is_p(&toks[j], "=") && !is_p(&toks[j], ";") {
                    j += 1;
                }
                if j + 1 < toks.len() && is_p(&toks[j], "=") && toks[j + 1].kind == TokKind::Num {
                    let lit = &toks[j + 1];
                    if lit.text != WIRE_VERSION {
                        out.push(Finding {
                            rule: "wire-drift",
                            path: files[fi].rel.clone(),
                            line: lit.line,
                            message: format!(
                                "`PROTOCOL_VERSION` is `{}` but the embedded wire \
                                 registry pins version {WIRE_VERSION}; a version bump \
                                 is a protocol change — update the registry in \
                                 charles-lint's wire pass in the same PR",
                                lit.text
                            ),
                            contract: "the protocol version has one definition",
                            call_chain: Vec::new(),
                        });
                    }
                }
            }
        }
    }

    // Op coverage: encode → decode and encode → dispatch.
    if let Some(of) = op_file {
        let ops_encoded: BTreeSet<&str> = op_map.iter().map(|(_, op, _)| op.as_str()).collect();
        if decode_file.is_some() {
            for (variant, op, line) in &op_map {
                if !decode_ops.contains_key(op) {
                    out.push(Finding {
                        rule: "wire-drift",
                        path: files[of].rel.clone(),
                        line: *line,
                        message: format!(
                            "op \"{op}\" (`Request::{variant}`) is encoded but \
                             `Request::from_json` has no \"{op}\" decode arm — a \
                             client emitting it gets `unknown op` back; add the \
                             decode arm or retire the variant"
                        ),
                        contract: "every encoded op has a decode arm",
                        call_chain: Vec::new(),
                    });
                }
            }
            for (op, line) in &decode_ops {
                if !ops_encoded.contains(op.as_str()) {
                    out.push(Finding {
                        rule: "wire-drift",
                        path: files[decode_file.unwrap_or(of)].rel.clone(),
                        line: *line,
                        message: format!(
                            "decode arm for op \"{op}\" that no encoder emits — \
                             dead protocol surface drifts silently; wire it into \
                             `fn op` or delete the arm"
                        ),
                        contract: "every decode arm has an encoder",
                        call_chain: Vec::new(),
                    });
                }
            }
        }
        if let Some((df, dline)) = dispatch_at {
            for (variant, op, _) in &op_map {
                if !dispatch_variants.contains(variant) {
                    out.push(Finding {
                        rule: "wire-drift",
                        path: files[df].rel.clone(),
                        line: dline,
                        message: format!(
                            "op \"{op}\" (`Request::{variant}`) decodes but `dispatch` \
                             has no `Request::{variant}` arm — the `/v1/rpc` surface \
                             would reject a valid request; add the dispatch arm"
                        ),
                        contract: "every op has a dispatch arm",
                        call_chain: Vec::new(),
                    });
                }
            }
        }
    }

    // Key symmetry per codec with both sides present.
    for (ty, codec) in &codecs {
        let (Some(ef), Some(df)) = (codec.enc_file, codec.dec_file) else {
            continue;
        };
        for (key, line) in &codec.writes {
            if codec.reads.contains_key(key) {
                continue;
            }
            if allow_legacy(&mut legacy, &[ef, df], key) {
                continue;
            }
            out.push(Finding {
                rule: "wire-drift",
                path: files[ef].rel.clone(),
                line: *line,
                message: format!(
                    "`{ty}` encodes key \"{key}\" but its decoder never reads it — \
                     the field is dead on arrival; read it back, or mark the \
                     asymmetry `wire:legacy-default({key}: reason)`"
                ),
                contract: "every encoded key is decoded",
                call_chain: Vec::new(),
            });
        }
        for (key, line) in &codec.reads {
            if codec.writes.contains_key(key) {
                continue;
            }
            if allow_legacy(&mut legacy, &[ef, df], key) {
                continue;
            }
            out.push(Finding {
                rule: "wire-drift",
                path: files[df].rel.clone(),
                line: *line,
                message: format!(
                    "`{ty}` reads key \"{key}\" its encoder never writes — the \
                     decoder depends on a phantom field; write it, or mark the \
                     default-on-absence `wire:legacy-default({key}: reason)`"
                ),
                contract: "every decoded key is encoded",
                call_chain: Vec::new(),
            });
        }
    }

    // Stale legacy markers rot like stale lint:allows.
    for l in &legacy {
        if !l.used {
            out.push(Finding {
                rule: UNUSED_SUPPRESSION,
                path: files[l.file].rel.clone(),
                line: l.line,
                message: format!(
                    "marker `wire:legacy-default({})` matches no encode/decode \
                     asymmetry; remove it",
                    l.key
                ),
                contract: SUPPRESSION_CONTRACT,
                call_chain: Vec::new(),
            });
        }
    }
    out
}

/// Consume a legacy-default marker for `key` in any of `files_in_play`.
fn allow_legacy(legacy: &mut [LegacyDefault], files_in_play: &[usize], key: &str) -> bool {
    let mut hit = false;
    for l in legacy.iter_mut() {
        if l.key == key && files_in_play.contains(&l.file) {
            l.used = true;
            hit = true;
        }
    }
    hit
}

fn check_error_code(tok: &Tok, rel: &str, out: &mut Vec<Finding>) {
    if !ident_like(&tok.text) {
        return;
    }
    if !ERROR_CODES.contains(&tok.text.as_str()) {
        out.push(Finding {
            rule: "wire-drift",
            path: rel.to_string(),
            line: tok.line,
            message: format!(
                "error code \"{}\" is not in the embedded wire registry — codes \
                 fork silently between server and client; add it to `ERROR_CODES` \
                 in charles-lint's wire pass (a protocol change) or fix the typo",
                tok.text
            ),
            contract: "error codes come from one registry",
            call_chain: Vec::new(),
        });
    }
}
