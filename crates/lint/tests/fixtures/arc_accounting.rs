//! Fixture for `byte-accounting`: two memo-bearing stores that swap an
//! `Arc` buffer; one has no `approx_bytes`-style accounting (finding),
//! the other does (clean). Both clear their memo on the swap, so the
//! `cache-invalidation` rule stays quiet.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

pub struct Store {
    buf: Arc<Vec<u8>>,
    memo: Mutex<HashMap<u64, u64>>,
}

impl Store {
    pub fn swap_buf(&mut self, data: Vec<u8>) {
        self.buf = Arc::new(data);
        self.memo.lock().unwrap().clear();
    }
}

pub struct Tracked {
    buf: Arc<Vec<u8>>,
    memo: Mutex<HashMap<u64, u64>>,
}

impl Tracked {
    pub fn swap_buf(&mut self, data: Vec<u8>) {
        self.buf = Arc::new(data);
        self.memo.lock().unwrap().clear();
    }

    pub fn approx_bytes(&self) -> usize {
        self.buf.len()
    }
}
