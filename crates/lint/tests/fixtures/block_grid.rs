// Seeded violations for the block-grid-literals rule.

pub fn bare_block_rows(rows: usize) -> usize {
    rows.div_ceil(128)
}

pub fn named_constant_is_fine(rows: usize) -> usize {
    rows.div_ceil(GRAM_BLOCK_ROWS)
}

pub fn other_literals_are_fine(rows: usize) -> usize {
    rows.div_ceil(127) + 1280
}
