//! Fixture for `cache-invalidation`: a memo-bearing plane with one
//! mutation path that never reaches the reset (three hops deep), one
//! that resets inline, and one suppressed with a reasoned allow.

use std::collections::HashMap;
use std::sync::Mutex;

pub struct Plane {
    rows: Vec<u64>,
    tag: u64,
    memo: Mutex<HashMap<u64, u64>>,
}

impl Plane {
    /// Public entry: three hops above the actual write, none of which
    /// reset `memo` — the pass must report the full chain.
    pub fn append_rows(&mut self, more: &[u64]) {
        self.stage(more);
    }

    fn stage(&mut self, more: &[u64]) {
        self.commit(more);
    }

    fn commit(&mut self, more: &[u64]) {
        self.rows.extend_from_slice(more);
    }

    /// Clean mutator: the memo is cleared on the same path.
    pub fn retag(&mut self, tag: u64) {
        self.tag = tag;
        self.memo.lock().unwrap().clear();
    }

    // lint:allow(cache-invalidation: callers rebuild the plane right after, so the memo never serves across this write)
    pub fn replace_rows(&mut self, rows: Vec<u64>) {
        self.rows = rows;
    }
}
