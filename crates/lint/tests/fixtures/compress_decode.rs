// A compress-style block decode path: the shapes the compressed column
// plane (crates/relation/src/compress.rs) is built from, seeded with the
// two mistakes its rules exist to catch.

/// Decodes one block the WRONG ways: bare grid literal, ad-hoc float fold.
pub fn decode_block_bad(packed: &[u64], out: &mut Vec<f64>) -> f64 {
    let blocks = packed.len().div_ceil(128); // block-grid-literals
    let mut checksum = 0.0f64;
    for &word in packed.iter().take(blocks) {
        let v = f64::from_bits(word);
        checksum += v; // float-fold-order
        out.push(v);
    }
    checksum
}

/// The same decode done right: the named grid constant, and the reduction
/// left to the fixed-order kernels.
pub fn decode_block_good(packed: &[u64], out: &mut Vec<f64>) {
    let blocks = packed.len().div_ceil(GRAM_BLOCK_ROWS);
    for &word in packed.iter().take(blocks) {
        out.push(f64::from_bits(word));
    }
}

/// Integer bit-unpacking may accumulate freely: no float signal, no
/// finding.
pub fn unpack_widths(packed: &[u64]) -> u64 {
    let mut total = 0u64;
    for &word in packed {
        total += word.count_ones() as u64;
    }
    total
}
