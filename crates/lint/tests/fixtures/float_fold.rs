// Seeded violations for the float-fold-order rule. Never compiled; this
// file is tokenized by the test suite under a synthetic workspace path.

pub fn iterator_sum(xs: &[f64]) -> f64 {
    xs.iter().sum()
}

pub fn explicit_fold(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0, |acc, x| acc + x)
}

pub fn loop_accumulate(xs: &[f64]) -> f64 {
    let mut total = 0.0;
    for x in xs {
        total += x;
    }
    total
}

pub fn integer_sum_is_fine(xs: &[u64]) -> u64 {
    xs.iter().sum()
}
