// Seeded violations for the lock-discipline rule. Linted under a
// synthetic manager.rs path so the rule is in scope.

use std::sync::Mutex;

pub fn nested_guards(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let first = a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let second = b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *first + *second
}

pub fn scope_released_is_fine(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let first = {
        let guard = a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *guard
    };
    let second = b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    first + *second
}

pub fn explicit_drop_is_fine(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let first = a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let x = *first;
    drop(first);
    let second = b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    x + *second
}
