// Seeded violations for the ordered-iteration rule.

use std::collections::{BTreeMap, HashMap, HashSet};

pub fn hash_keys_collected(m: &HashMap<String, u64>) -> Vec<String> {
    m.keys().cloned().collect()
}

pub fn hash_values_summed(m: &HashMap<String, f64>) -> f64 {
    let mut total = 0.0;
    for v in m.values() {
        total += v;
    }
    total
}

pub fn set_extend(s: &HashSet<u32>, out: &mut Vec<u32>) {
    out.extend(s.iter().copied());
}

pub fn sorted_after_with_allow(m: &HashMap<String, u64>) -> Vec<String> {
    // lint:allow(ordered-iteration: hash order is erased by the sort on the next line)
    let mut keys: Vec<String> = m.keys().cloned().collect();
    keys.sort();
    keys
}

// Note: the ident set is file-global, so this param must not reuse a
// name already bound to a HashMap above.
pub fn btree_is_fine(sorted_map: &BTreeMap<String, u64>) -> Vec<String> {
    sorted_map.keys().cloned().collect()
}
