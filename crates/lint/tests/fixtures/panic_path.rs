// Seeded violations for the no-panic-in-request-path rule. Linted under
// a synthetic crates/server/src path so the rule is in scope.

pub fn handle(req: Option<u32>) -> u32 {
    req.unwrap()
}

pub fn handle_expect(req: Option<u32>) -> u32 {
    req.expect("request payload missing")
}

pub fn handle_macro(ok: bool) {
    if !ok {
        panic!("bad request");
    }
}

pub fn typed_error_is_fine(req: Option<u32>) -> Result<u32, String> {
    req.ok_or_else(|| "request payload missing".to_string())
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
