//! Wire fixture, protocol half: a two-op request codec where the
//! encoder emits an op (`halt`) the decoder never learned, and a key
//! (`extra`) no reader consumes. Version handling goes through
//! `PROTOCOL_VERSION`, so the version rule stays quiet.

pub const PROTOCOL_VERSION: u64 = 1;

pub enum Request {
    Ping { n: u64 },
    Halt,
}

impl Request {
    pub fn op(&self) -> &'static str {
        match self {
            Request::Ping { .. } => "ping",
            Request::Halt => "halt",
        }
    }

    pub fn to_json(&self) -> String {
        let mut obj = Vec::new();
        obj.push(("v", PROTOCOL_VERSION.to_string()));
        obj.push(("op", self.op().to_string()));
        obj.push(("extra", String::new()));
        match self {
            Request::Ping { n } => obj.push(("n", n.to_string())),
            Request::Halt => {}
        }
        render(&obj)
    }

    pub fn from_json(doc: &str) -> Option<Request> {
        check_version(need(doc, "v")?, PROTOCOL_VERSION)?;
        match need(doc, "op")?.as_str() {
            "ping" => Some(Request::Ping {
                n: parse(need(doc, "n")?)?,
            }),
            _ => None,
        }
    }
}

fn render(obj: &[(&str, String)]) -> String {
    let mut out = String::new();
    for (k, v) in obj {
        out.push_str(k);
        out.push_str(v);
    }
    out
}

fn need(doc: &str, key: &str) -> Option<String> {
    doc.split(key).nth(1).map(str::to_string)
}

fn parse(s: String) -> Option<u64> {
    s.parse().ok()
}

fn check_version(v: String, expect: u64) -> Option<()> {
    (v == expect.to_string()).then_some(())
}
