//! Wire fixture, serving half: `dispatch` handles `Ping` but not
//! `Halt`, and one error site uses a code outside the embedded
//! registry (a typo of `bad_request`).

use crate::proto::Request;

pub struct Reply {
    pub body: String,
}

pub struct ErrorEnvelope;

impl ErrorEnvelope {
    pub fn new(code: &str, msg: String) -> Reply {
        Reply {
            body: format!("{code} {msg}"),
        }
    }
}

pub fn dispatch(req: &Request) -> Reply {
    match req {
        Request::Ping { n } => Reply { body: n.to_string() },
        _ => Reply {
            body: String::new(),
        },
    }
}

pub fn reject() -> Reply {
    ErrorEnvelope::new("bad_request", String::from("nope"))
}

pub fn reject_typo() -> Reply {
    ErrorEnvelope::new("bad_reqest", String::from("typo"))
}
