// Seeded violations for the wire-float-exactness rule. Linted under a
// synthetic proto.rs path so the rule is in scope.

pub fn raw_float_on_wire(score: f64) -> Json {
    Json::Num(score)
}

pub fn bits_helper_is_fine(score: f64) -> Json {
    Json::Str(f64_bits(score))
}

pub fn explicit_to_bits_is_fine(score: f64) -> Json {
    Json::Num(f64::from_bits(score.to_bits()))
}
