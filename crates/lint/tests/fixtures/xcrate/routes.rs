//! Cross-crate fixture: the serving surface. Linted as
//! `crates/server/src/routes.rs`, so every non-test `fn` here is a
//! panic-reachability seed.

pub struct Router {
    store: Store,
}

impl Router {
    /// Request entry: three hops to `fetch_raw`'s unwrap in the core
    /// fixture (`handle` → `Store::lookup` → `fetch_raw`).
    pub fn handle(&self, name: &str) -> f64 {
        self.store.lookup(name)
    }

    /// Serializes a value a core helper folded ad hoc — the fold's own
    /// line carries a (locally justified) allow, but the value must not
    /// reach the wire.
    pub fn emit_total(&self, xs: &[f64]) -> Json {
        Json::Num(blended_total(xs))
    }
}
