//! Cross-crate fixture: linted as `crates/core/src/stats.rs`. The
//! ad-hoc fold here is locally allowed (the statement rule is silenced),
//! but its *return value* is serialized by `routes.rs` — the taint pass
//! must still connect the two. `rebalance` inverts the documented
//! `latch → registry` order across two files.

/// Returns an ad-hoc float fold — tainted at the fold, flagged where the
/// value hits the wire.
pub fn blended_total(xs: &[f64]) -> f64 {
    // lint:allow(float-fold-order: local blend for a summary line)
    xs.iter().sum()
}

/// Takes the registry, then calls a helper that takes the latch:
/// `registry → latch`, reversing the documented order and closing a
/// cycle with `Store::refresh`.
pub fn rebalance(store: &Store) {
    let reg = store.registry.lock().unwrap_or_else(PoisonError::into_inner);
    store.relatch();
    drop(reg);
}
