//! Cross-crate fixture: the core-side store. Linted as
//! `crates/core/src/store.rs`. `lookup` → `fetch_raw` is the deep half
//! of the 3-hop panic chain; `refresh` holds the documented
//! `latch → registry` order (the inversion lives in `stats.rs`).

pub struct Store {
    latch: Mutex<()>,
    registry: Mutex<Vec<String>>,
}

impl Store {
    /// Hop 2 of the panic chain.
    pub fn lookup(&self, name: &str) -> f64 {
        fetch_raw(name)
    }

    /// Documented order: latch first, registry (through a call) second.
    pub fn refresh(&self) {
        let held = self.latch.lock().unwrap_or_else(PoisonError::into_inner);
        self.registry_sync();
        drop(held);
    }

    pub fn registry_sync(&self) {
        let mut reg = self.registry.lock().unwrap_or_else(PoisonError::into_inner);
        reg.clear();
    }

    pub fn relatch(&self) {
        let gate = self.latch.lock().unwrap_or_else(PoisonError::into_inner);
        drop(gate);
    }
}

/// Hop 3: the panic site itself.
fn fetch_raw(name: &str) -> f64 {
    name.parse().unwrap()
}
