//! Integration suite for `charles-lint`.
//!
//! Each fixture under `tests/fixtures/` seeds violations for exactly one
//! rule; [`charles_lint::lint_source`] runs it under a synthetic
//! workspace path that puts the rule in scope. The final test lints the
//! real workspace tree and requires it to be clean — the same gate CI
//! enforces.

use std::collections::BTreeMap;

use charles_lint::token::{FileTokens, TokKind};
use charles_lint::{
    apply_fix_edits, lint_source, lint_sources, lint_tree, render_json, stale_suppression_edits,
    Finding, RULES, UNUSED_SUPPRESSION,
};

fn lines_for(findings: &[Finding], rule: &str) -> Vec<u32> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

// ---------------------------------------------------------------------------
// One fixture per rule: the rule fires on the seeded lines and nowhere else.
// ---------------------------------------------------------------------------

#[test]
fn float_fold_order_catches_fixture() {
    let src = include_str!("fixtures/float_fold.rs");
    let findings = lint_source("crates/core/src/fixture.rs", src);
    let lines = lines_for(&findings, "float-fold-order");
    assert_eq!(lines.len(), 3, "sum, fold, and += loop: {findings:?}");
    // The u64 sum at the end must not fire.
    assert!(findings.iter().all(|f| f.rule == "float-fold-order"));
}

#[test]
fn float_fold_order_exempts_kernels() {
    let src = include_str!("fixtures/float_fold.rs");
    let findings = lint_source("crates/numerics/src/kernels.rs", src);
    assert!(
        lines_for(&findings, "float-fold-order").is_empty(),
        "kernels.rs is the one place float folds are defined: {findings:?}"
    );
}

#[test]
fn ordered_iteration_catches_fixture() {
    let src = include_str!("fixtures/ordered_iter.rs");
    let findings = lint_source("crates/core/src/fixture.rs", src);
    let lines = lines_for(&findings, "ordered-iteration");
    assert_eq!(
        lines.len(),
        3,
        "keys().collect(), for-values +=, and extend: {findings:?}"
    );
    // The allow-suppressed sort-after site and the BTreeMap site are clean,
    // and the in-fixture allow is consumed (no unused-suppression report).
    assert!(
        lines_for(&findings, UNUSED_SUPPRESSION).is_empty(),
        "{findings:?}"
    );
}

#[test]
fn wire_float_exactness_catches_fixture() {
    let src = include_str!("fixtures/wire_float.rs");
    let findings = lint_source("crates/server/src/proto.rs", src);
    let lines = lines_for(&findings, "wire-float-exactness");
    assert_eq!(lines.len(), 1, "only the raw Json::Num site: {findings:?}");
}

#[test]
fn wire_float_exactness_out_of_scope_elsewhere() {
    let src = include_str!("fixtures/wire_float.rs");
    let findings = lint_source("crates/core/src/fixture.rs", src);
    assert!(lines_for(&findings, "wire-float-exactness").is_empty());
}

#[test]
fn block_grid_literals_catches_fixture() {
    let src = include_str!("fixtures/block_grid.rs");
    let findings = lint_source("crates/numerics/src/fixture.rs", src);
    let lines = lines_for(&findings, "block-grid-literals");
    assert_eq!(lines.len(), 1, "only the bare 128: {findings:?}");
}

#[test]
fn compress_decode_paths_stay_in_lint_scope() {
    // The compressed column plane added block-decode hot paths to the
    // relation crate; this pins that code shaped like them stays covered:
    // bare grid literals and ad-hoc float folds in decode loops must keep
    // firing, while the GRAM_BLOCK_ROWS-referencing twin stays clean.
    let src = include_str!("fixtures/compress_decode.rs");
    let findings = lint_source("crates/relation/src/fixture.rs", src);
    assert_eq!(
        lines_for(&findings, "block-grid-literals").len(),
        1,
        "only the bare 128 in the bad decode: {findings:?}"
    );
    assert_eq!(
        lines_for(&findings, "float-fold-order").len(),
        1,
        "only the ad-hoc float checksum: {findings:?}"
    );
    // The u64 bit-unpacking accumulator has no float signal.
    assert!(
        findings
            .iter()
            .all(|f| f.rule == "block-grid-literals" || f.rule == "float-fold-order"),
        "{findings:?}"
    );
}

#[test]
fn no_panic_catches_fixture_outside_tests() {
    let src = include_str!("fixtures/panic_path.rs");
    let findings = lint_source("crates/server/src/fixture.rs", src);
    let lines = lines_for(&findings, "no-panic-in-request-path");
    assert_eq!(
        lines.len(),
        3,
        "unwrap, expect, and panic! — but not the #[cfg(test)] unwrap: {findings:?}"
    );
}

#[test]
fn no_panic_out_of_scope_outside_server() {
    let src = include_str!("fixtures/panic_path.rs");
    let findings = lint_source("crates/core/src/fixture.rs", src);
    assert!(lines_for(&findings, "no-panic-in-request-path").is_empty());
}

#[test]
fn lock_discipline_catches_fixture() {
    let src = include_str!("fixtures/lock_nesting.rs");
    let findings = lint_source("crates/core/src/manager.rs", src);
    let lines = lines_for(&findings, "lock-discipline");
    assert_eq!(
        lines.len(),
        1,
        "only the nested pair; scope release and drop() are clean: {findings:?}"
    );
}

// ---------------------------------------------------------------------------
// Interprocedural passes over the multi-file xcrate fixture workspace
// ---------------------------------------------------------------------------

/// The three xcrate fixture files as one synthetic workspace: a server
/// routes file (seed surface), a core store (deep panic + one half of
/// the lock order), and a core stats helper (tainted fold + the lock
/// inversion).
fn xcrate_workspace() -> charles_lint::Report {
    lint_sources(vec![
        (
            "crates/server/src/routes.rs".to_string(),
            include_str!("fixtures/xcrate/routes.rs").to_string(),
        ),
        (
            "crates/core/src/store.rs".to_string(),
            include_str!("fixtures/xcrate/store.rs").to_string(),
        ),
        (
            "crates/core/src/stats.rs".to_string(),
            include_str!("fixtures/xcrate/stats.rs").to_string(),
        ),
    ])
}

#[test]
fn xcrate_panic_reachability_crosses_crates_with_three_hop_chain() {
    let report = xcrate_workspace();
    let panics: Vec<&Finding> = report
        .findings
        .iter()
        .filter(|f| f.rule == "no-panic-in-request-path")
        .collect();
    assert_eq!(
        panics.len(),
        1,
        "only fetch_raw's unwrap: {:?}",
        report.findings
    );
    let f = panics[0];
    assert_eq!(f.path, "crates/core/src/store.rs");
    assert_eq!(
        f.call_chain,
        vec![
            "routes.rs::Router::handle".to_string(),
            "store.rs::Store::lookup".to_string(),
            "store.rs::fetch_raw".to_string(),
        ],
        "seed -> method-through-field -> free fn, across files: {f:?}"
    );
    assert!(f.message.contains("request path:"), "{f:?}");
}

#[test]
fn xcrate_lock_order_detects_cross_file_inversion_and_cycle() {
    let report = xcrate_workspace();
    let locks: Vec<&Finding> = report
        .findings
        .iter()
        .filter(|f| f.rule == "lock-order")
        .collect();
    assert_eq!(
        locks.len(),
        2,
        "one reversal, one cycle: {:?}",
        report.findings
    );
    let reversal = locks
        .iter()
        .find(|f| f.message.contains("reverses the documented"))
        .expect("reversal finding");
    // Anchored where the holder can fix it: `rebalance` holds the
    // registry and calls into the latch-taking helper in the other file.
    assert_eq!(reversal.path, "crates/core/src/stats.rs");
    assert!(
        reversal
            .message
            .contains("deep acquisition at crates/core/src/store.rs"),
        "witness must point at the deep latch site: {reversal:?}"
    );
    let cycle = locks
        .iter()
        .find(|f| f.message.contains("lock-order cycle"))
        .expect("cycle finding");
    assert!(
        cycle.message.contains("latch") && cycle.message.contains("registry"),
        "{cycle:?}"
    );
}

#[test]
fn xcrate_float_taint_follows_returned_value_to_wire() {
    let report = xcrate_workspace();
    let taints: Vec<&Finding> = report
        .findings
        .iter()
        .filter(|f| f.rule == "float-taint")
        .collect();
    assert_eq!(taints.len(), 1, "{:?}", report.findings);
    let f = taints[0];
    // Flagged at the sink (the server file), not at the fold.
    assert_eq!(f.path, "crates/server/src/routes.rs");
    assert!(f.message.contains("ad-hoc float fold"), "{f:?}");
    assert_eq!(
        f.call_chain,
        vec![
            "stats.rs::blended_total".to_string(),
            "routes.rs::Router::emit_total".to_string(),
        ],
        "{f:?}"
    );
    // The fold's own local allow silenced the statement rule without
    // certifying the wire path — and is therefore *used*, not stale.
    assert!(
        report
            .findings
            .iter()
            .all(|f| f.rule != "float-fold-order" && f.rule != UNUSED_SUPPRESSION),
        "{:?}",
        report.findings
    );
    assert!(report.suppressions_used >= 1);
}

#[test]
fn relaxed_test_files_get_suppression_hygiene_but_no_rules() {
    // A tests/ file may fold floats freely (it is not served), but a
    // stale allow in it is still reported — and it must not contribute
    // call-graph edges that would put core helpers on the request path.
    let report = lint_sources(vec![(
        "crates/core/tests/bench_helper.rs".to_string(),
        "pub fn naive_mean(xs: &[f64]) -> f64 {\n    \
         xs.iter().sum::<f64>() / xs.len() as f64\n}\n\n\
         pub fn unused_allow() -> u64 {\n    \
         // lint:allow(float-fold-order: nothing folds here)\n    7\n}\n"
            .to_string(),
    )]);
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    assert_eq!(rules, vec![UNUSED_SUPPRESSION], "{:?}", report.findings);
}

// ---------------------------------------------------------------------------
// Mutation-coherence pass
// ---------------------------------------------------------------------------

#[test]
fn cache_invalidation_reports_three_hop_mutator_chain() {
    let src = include_str!("fixtures/cache_coherence.rs");
    let findings = lint_source("crates/core/src/fixture.rs", src);
    let stale: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == "cache-invalidation")
        .collect();
    assert_eq!(
        stale.len(),
        1,
        "only the commit path; retag resets inline and replace_rows is allowed: {findings:?}"
    );
    let f = stale[0];
    assert!(
        f.message.contains("`Plane::commit` mutates `Plane.rows`"),
        "{f:?}"
    );
    assert_eq!(
        f.call_chain,
        vec![
            "fixture.rs::Plane::append_rows".to_string(),
            "fixture.rs::Plane::stage".to_string(),
            "fixture.rs::Plane::commit".to_string(),
            "[stale cache: Plane.`memo`]".to_string(),
        ],
        "root caller -> ... -> mutator -> stale surface: {f:?}"
    );
    assert_eq!(
        f.contract,
        "every cache mutator reaches the matching invalidation"
    );
    // The reasoned allow on replace_rows is consumed, not stale.
    assert!(
        lines_for(&findings, UNUSED_SUPPRESSION).is_empty(),
        "{findings:?}"
    );
}

#[test]
fn byte_accounting_requires_approx_bytes_for_arc_swaps() {
    let src = include_str!("fixtures/arc_accounting.rs");
    let findings = lint_source("crates/relation/src/fixture.rs", src);
    let swaps: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == "byte-accounting")
        .collect();
    assert_eq!(
        swaps.len(),
        1,
        "Store is blind, Tracked has approx_bytes: {findings:?}"
    );
    assert!(
        swaps[0].message.contains("`Store::swap_buf`"),
        "{:?}",
        swaps[0]
    );
    // Both swap paths clear their memo, so no cache-invalidation noise.
    assert!(
        findings.iter().all(|f| f.rule == "byte-accounting"),
        "{findings:?}"
    );
}

// ---------------------------------------------------------------------------
// Wire-drift pass over the two-file wire fixture workspace
// ---------------------------------------------------------------------------

fn wire_workspace(proto_prefix: &str) -> charles_lint::Report {
    lint_sources(vec![
        (
            "crates/server/src/proto.rs".to_string(),
            format!("{proto_prefix}{}", include_str!("fixtures/wire/proto.rs")),
        ),
        (
            "crates/server/src/server.rs".to_string(),
            include_str!("fixtures/wire/server.rs").to_string(),
        ),
    ])
}

#[test]
fn wire_drift_catches_decode_gap_key_asymmetry_dispatch_gap_and_code_typo() {
    let report = wire_workspace("");
    let wire: Vec<&Finding> = report
        .findings
        .iter()
        .filter(|f| f.rule == "wire-drift")
        .collect();
    assert_eq!(wire.len(), 4, "{:?}", report.findings);
    assert!(
        wire.iter().any(|f| f.path.ends_with("proto.rs")
            && f.message.contains("op \"halt\"")
            && f.message.contains("no \"halt\" decode arm")),
        "encoded op without a decode arm: {wire:?}"
    );
    assert!(
        wire.iter().any(|f| f.path.ends_with("proto.rs")
            && f.message.contains("encodes key \"extra\"")
            && f.message.contains("never reads it")),
        "write-only key: {wire:?}"
    );
    assert!(
        wire.iter().any(|f| f.path.ends_with("server.rs")
            && f.message.contains("`dispatch` has no `Request::Halt` arm")),
        "op without a dispatch arm, anchored at dispatch: {wire:?}"
    );
    assert!(
        wire.iter()
            .any(|f| f.path.ends_with("server.rs")
                && f.message.contains("error code \"bad_reqest\"")),
        "unregistered error code: {wire:?}"
    );
    // The symmetric keys (v, op, n), the decoded op, the in-registry
    // code, and PROTOCOL_VERSION handling all stay quiet.
    assert!(
        report.findings.iter().all(|f| f.rule == "wire-drift"),
        "{:?}",
        report.findings
    );
}

#[test]
fn wire_legacy_default_marker_allows_key_asymmetry_once() {
    let report = wire_workspace("// wire:legacy-default(extra: kept for 0.x readers)\n");
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.message.contains("encodes key \"extra\"")),
        "marked asymmetry must not be reported: {:?}",
        report.findings
    );
    // The used marker is not reported stale either.
    assert!(
        lines_for(&report.findings, UNUSED_SUPPRESSION).is_empty(),
        "{:?}",
        report.findings
    );
    assert_eq!(
        report
            .findings
            .iter()
            .filter(|f| f.rule == "wire-drift")
            .count(),
        3,
        "{:?}",
        report.findings
    );
}

#[test]
fn stale_wire_legacy_default_marker_is_reported() {
    let report = wire_workspace("// wire:legacy-default(ghost: never existed)\n");
    let stale: Vec<&Finding> = report
        .findings
        .iter()
        .filter(|f| f.rule == UNUSED_SUPPRESSION)
        .collect();
    assert_eq!(stale.len(), 1, "{:?}", report.findings);
    assert!(
        stale[0].message.contains("wire:legacy-default(ghost)"),
        "{:?}",
        stale[0]
    );
    assert_eq!(stale[0].line, 1);
}

#[test]
fn hard_coded_version_literal_is_reported() {
    let src = "impl Frame {\n    \
               pub fn to_json(&self) -> String {\n        \
               render(&[(\"v\", String::from(\"1\"))])\n    }\n}\n\
               fn render(_obj: &[(&str, String)]) -> String {\n    String::new()\n}\n";
    let findings = lint_source("crates/server/src/proto.rs", src);
    let wire = lines_for(&findings, "wire-drift");
    assert_eq!(wire.len(), 1, "{findings:?}");
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("without referencing `PROTOCOL_VERSION`")),
        "{findings:?}"
    );
}

#[test]
fn wire_rules_stay_out_of_non_wire_files() {
    let src = include_str!("fixtures/wire/proto.rs");
    let findings = lint_source("crates/core/src/fixture.rs", src);
    assert!(
        lines_for(&findings, "wire-drift").is_empty(),
        "wire contracts only bind the protocol files: {findings:?}"
    );
}

// ---------------------------------------------------------------------------
// Suppression machinery
// ---------------------------------------------------------------------------

#[test]
fn used_suppression_silences_and_is_not_reported() {
    let src = "pub fn total(xs: &[f64]) -> f64 {\n    \
               // lint:allow(float-fold-order: scalar reference, fixed row order)\n    \
               xs.iter().sum()\n}\n";
    let findings = lint_source("crates/core/src/fixture.rs", src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn same_line_suppression_works() {
    let src = "pub fn total(xs: &[f64]) -> f64 {\n    \
               xs.iter().sum() // lint:allow(float-fold-order: pinned scalar order)\n}\n";
    let findings = lint_source("crates/core/src/fixture.rs", src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn standalone_suppression_covers_multiline_statement() {
    let src = "pub fn keys(m: &std::collections::HashMap<String, u64>) -> Vec<String> {\n    \
               // lint:allow(ordered-iteration: sorted by the caller)\n    \
               let v: Vec<String> = m\n        \
               .keys()\n        \
               .cloned()\n        \
               .collect();\n    \
               v\n}\n";
    let findings = lint_source("crates/core/src/fixture.rs", src);
    assert!(
        findings.is_empty(),
        "allow must cover the whole chain: {findings:?}"
    );
}

#[test]
fn unused_suppression_is_reported() {
    let src = "pub fn clean() -> u64 {\n    \
               // lint:allow(float-fold-order: nothing here actually folds)\n    \
               7\n}\n";
    let findings = lint_source("crates/core/src/fixture.rs", src);
    let lines = lines_for(&findings, UNUSED_SUPPRESSION);
    assert_eq!(lines, vec![2], "{findings:?}");
}

#[test]
fn unknown_rule_in_suppression_is_reported() {
    let src = "pub fn clean() -> u64 {\n    \
               // lint:allow(made-up-rule)\n    \
               7\n}\n";
    let findings = lint_source("crates/core/src/fixture.rs", src);
    assert_eq!(
        lines_for(&findings, UNUSED_SUPPRESSION),
        vec![2],
        "{findings:?}"
    );
}

#[test]
fn suppression_reason_may_contain_commas() {
    let src = "pub fn total(xs: &[f64]) -> f64 {\n    \
               // lint:allow(float-fold-order: fixed order, bench-only, not served)\n    \
               xs.iter().sum()\n}\n";
    let findings = lint_source("crates/core/src/fixture.rs", src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn doc_comments_never_act_as_suppressions() {
    // A rustdoc line quoting the marker must not suppress the real finding
    // below it — and must not be reported as an unused suppression either.
    let src = "/// Write `// lint:allow(float-fold-order)` to suppress.\n\
               pub fn total(xs: &[f64]) -> f64 {\n    \
               xs.iter().sum()\n}\n";
    let findings = lint_source("crates/core/src/fixture.rs", src);
    assert_eq!(
        lines_for(&findings, "float-fold-order"),
        vec![3],
        "{findings:?}"
    );
    assert!(
        lines_for(&findings, UNUSED_SUPPRESSION).is_empty(),
        "{findings:?}"
    );
}

// ---------------------------------------------------------------------------
// Tokenizer edge cases: rule needles inside strings/comments are inert.
// ---------------------------------------------------------------------------

#[test]
fn needles_inside_string_literals_are_inert() {
    let src = r##"pub fn describe() -> &'static str {
    "HashMap .keys() .sum() unwrap() Json::Num 128 a.lock() b.lock()"
}
"##;
    for path in [
        "crates/core/src/fixture.rs",
        "crates/server/src/proto.rs",
        "crates/core/src/manager.rs",
    ] {
        let findings = lint_source(path, src);
        assert!(findings.is_empty(), "{path}: {findings:?}");
    }
}

#[test]
fn needles_inside_raw_strings_are_inert() {
    let src = "pub fn template() -> &'static str {\n    \
               r#\"{\"alpha\": Json::Num(0.5), \"n\": 128}\"#\n}\n";
    let findings = lint_source("crates/server/src/proto.rs", src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn needles_inside_nested_block_comments_are_inert() {
    let src = "/* outer /* xs.iter().sum() over f64 */ still comment 128 */\n\
               pub fn clean() -> u64 { 7 }\n";
    let findings = lint_source("crates/core/src/fixture.rs", src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn tokenizer_separates_chars_from_lifetimes() {
    let src = "fn f<'a>(x: &'a str) -> char { let c = 'a'; let _ = x; c }\n";
    let ft = FileTokens::tokenize(src);
    let chars: Vec<_> = ft.toks.iter().filter(|t| t.kind == TokKind::Char).collect();
    let lifetimes: Vec<_> = ft
        .toks
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .collect();
    assert_eq!(chars.len(), 1, "{chars:?}");
    assert_eq!(lifetimes.len(), 2, "{lifetimes:?}");
}

#[test]
fn tokenizer_handles_float_vs_range() {
    let ft = FileTokens::tokenize("let a = 1.5; for i in 1..10 { let b = 2.; }");
    let nums: Vec<&str> = ft
        .toks
        .iter()
        .filter(|t| t.kind == TokKind::Num)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(nums, vec!["1.5", "1", "10", "2."]);
}

// ---------------------------------------------------------------------------
// Whole-workspace gate and output formats
// ---------------------------------------------------------------------------

#[test]
fn workspace_tree_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let report = lint_tree(&root).expect("walk workspace tree");
    assert!(
        report.files_scanned > 50,
        "scanned {}",
        report.files_scanned
    );
    assert!(
        report.findings.is_empty(),
        "workspace must lint clean:\n{}",
        charles_lint::render_human(&report)
    );
}

#[test]
fn json_output_is_stable_and_escaped() {
    let src = "pub fn total(xs: &[f64]) -> f64 {\n    xs.iter().sum()\n}\n";
    let findings = lint_source("crates/core/src/fixture.rs", src);
    let report = charles_lint::Report {
        files_scanned: 1,
        suppressions_used: 0,
        findings,
    };
    let json = render_json(&report);
    assert!(json.contains("\"version\":3"), "{json}");
    assert!(json.contains("\"rule\":\"float-fold-order\""), "{json}");
    assert!(json.contains("\"files_scanned\":1"), "{json}");
    assert!(json.contains("\"suppressions_used\":0"), "{json}");
    assert!(
        json.contains("\"contract\":\"float reductions use the kernels' fixed fold order\""),
        "{json}"
    );
    assert!(json.contains("\"call_chain\":["), "{json}");
    // Messages quote backticked identifiers; the output must stay valid JSON
    // (no raw control characters, quotes escaped).
    assert!(!json.chars().any(|c| c.is_control() && c != '\n'), "{json}");
}

#[test]
fn reports_are_deterministic_byte_for_byte() {
    // Findings are sorted by (path, line, rule) and every pass iterates
    // ordered structures, so two runs over identical inputs must render
    // identical bytes — CI diffs BENCH artifacts across runs.
    let inputs = || {
        vec![
            (
                "crates/server/src/proto.rs".to_string(),
                include_str!("fixtures/wire/proto.rs").to_string(),
            ),
            (
                "crates/server/src/server.rs".to_string(),
                include_str!("fixtures/wire/server.rs").to_string(),
            ),
            (
                "crates/core/src/plane.rs".to_string(),
                include_str!("fixtures/cache_coherence.rs").to_string(),
            ),
            (
                "crates/relation/src/store.rs".to_string(),
                include_str!("fixtures/arc_accounting.rs").to_string(),
            ),
        ]
    };
    let a = render_json(&lint_sources(inputs()));
    let b = render_json(&lint_sources(inputs()));
    assert!(
        !a.contains("\"findings\":[]"),
        "fixture set must find things"
    );
    assert_eq!(a, b, "same inputs must render the same bytes");
    // And the ordering invariant itself: (path, line) pairs ascend.
    let report = lint_sources(inputs());
    let keys: Vec<(String, u32, &str)> = report
        .findings
        .iter()
        .map(|f| (f.path.clone(), f.line, f.rule))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(
        keys, sorted,
        "findings must be sorted by (path, line, rule)"
    );
}

#[test]
fn changed_only_restricts_reporting_not_analysis() {
    let mut report = lint_sources(vec![
        (
            "crates/server/src/proto.rs".to_string(),
            include_str!("fixtures/wire/proto.rs").to_string(),
        ),
        (
            "crates/server/src/server.rs".to_string(),
            include_str!("fixtures/wire/server.rs").to_string(),
        ),
    ]);
    let all = report.findings.len();
    assert!(all >= 4, "{:?}", report.findings);
    // Restricting to server.rs keeps the dispatch-gap and error-code
    // findings — including the dispatch gap *caused* by proto.rs's op
    // table, because the whole workspace was analyzed first.
    charles_lint::retain_changed_only(&mut report, "server.rs");
    assert!(
        !report.findings.is_empty() && report.findings.len() < all,
        "{:?}",
        report.findings
    );
    assert!(
        report
            .findings
            .iter()
            .all(|f| f.path.ends_with("server.rs")),
        "{:?}",
        report.findings
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.message.contains("`dispatch` has no `Request::Halt` arm")),
        "cross-file consequence must survive the filter: {:?}",
        report.findings
    );
    // Exact relative paths and comma-separated lists match too.
    let mut again = lint_sources(vec![(
        "crates/server/src/proto.rs".to_string(),
        include_str!("fixtures/wire/proto.rs").to_string(),
    )]);
    charles_lint::retain_changed_only(&mut again, "crates/server/src/proto.rs,unrelated.rs");
    assert!(
        again
            .findings
            .iter()
            .all(|f| f.path == "crates/server/src/proto.rs"),
        "{:?}",
        again.findings
    );
}

#[test]
fn json_call_chain_carries_interprocedural_path() {
    let report = xcrate_workspace();
    let json = render_json(&report);
    assert!(
        json.contains("\"call_chain\":[\"routes.rs::Router::handle\",\"store.rs::Store::lookup\",\"store.rs::fetch_raw\"]"),
        "{json}"
    );
}

// ---------------------------------------------------------------------------
// Stale-suppression fixer
// ---------------------------------------------------------------------------

#[test]
fn fix_suppressions_removes_stale_allows_and_keeps_used_ones() {
    // Line 2: used standalone allow (stays). Line 5: stale standalone
    // allow (whole line removed). Line 7: stale trailing allow (comment
    // stripped, code kept).
    let src = "pub fn total(xs: &[f64]) -> f64 {\n    \
               // lint:allow(float-fold-order: pinned scalar order)\n    \
               xs.iter().sum()\n}\n\
               // lint:allow(float-fold-order: stale, nothing folds below)\n\
               pub fn seven() -> u64 {\n    \
               7 // lint:allow(block-grid-literals: stale too)\n}\n";
    let path = "crates/core/src/fixture.rs";
    let report = lint_sources(vec![(path.to_string(), src.to_string())]);
    assert!(
        report.findings.iter().all(|f| f.rule == UNUSED_SUPPRESSION),
        "{:?}",
        report.findings
    );
    assert_eq!(report.findings.len(), 2, "{:?}", report.findings);

    let sources: BTreeMap<String, String> = [(path.to_string(), src.to_string())].into();
    let edits = stale_suppression_edits(&report, &sources);
    assert_eq!(edits.len(), 2, "{edits:?}");
    assert_eq!(edits[0].line, 5);
    assert_eq!(edits[0].replacement, None, "standalone: drop the line");
    assert_eq!(edits[1].line, 7);
    assert_eq!(
        edits[1].replacement.as_deref(),
        Some("    7"),
        "trailing: keep the code"
    );

    let fixed = apply_fix_edits(src, &edits.iter().collect::<Vec<_>>());
    assert!(!fixed.contains("stale"), "{fixed}");
    assert!(
        fixed.contains("lint:allow(float-fold-order: pinned scalar order)"),
        "used allow must survive: {fixed}"
    );
    // The fixed source lints clean (used allow still consumed).
    let after = lint_sources(vec![(path.to_string(), fixed)]);
    assert!(after.findings.is_empty(), "{:?}", after.findings);
}

#[test]
fn malformed_allow_is_reported_but_not_auto_fixed() {
    let src = "pub fn seven() -> u64 {\n    \
               // lint:allow(float-fold-order missing close\n    7\n}\n";
    let path = "crates/core/src/fixture.rs";
    let report = lint_sources(vec![(path.to_string(), src.to_string())]);
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert!(report.findings[0].message.contains("malformed"));
    let sources: BTreeMap<String, String> = [(path.to_string(), src.to_string())].into();
    assert!(
        stale_suppression_edits(&report, &sources).is_empty(),
        "malformed allows need a human"
    );
}

#[test]
fn rule_registry_is_distinct_and_excludes_pseudo_rule() {
    let mut names = RULES.to_vec();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), RULES.len(), "duplicate rule name in registry");
    assert!(!RULES.contains(&UNUSED_SUPPRESSION));
}
