//! Integration suite for `charles-lint`.
//!
//! Each fixture under `tests/fixtures/` seeds violations for exactly one
//! rule; [`charles_lint::lint_source`] runs it under a synthetic
//! workspace path that puts the rule in scope. The final test lints the
//! real workspace tree and requires it to be clean — the same gate CI
//! enforces.

use charles_lint::token::{FileTokens, TokKind};
use charles_lint::{lint_source, lint_tree, render_json, Finding, RULES, UNUSED_SUPPRESSION};

fn lines_for(findings: &[Finding], rule: &str) -> Vec<u32> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

// ---------------------------------------------------------------------------
// One fixture per rule: the rule fires on the seeded lines and nowhere else.
// ---------------------------------------------------------------------------

#[test]
fn float_fold_order_catches_fixture() {
    let src = include_str!("fixtures/float_fold.rs");
    let findings = lint_source("crates/core/src/fixture.rs", src);
    let lines = lines_for(&findings, "float-fold-order");
    assert_eq!(lines.len(), 3, "sum, fold, and += loop: {findings:?}");
    // The u64 sum at the end must not fire.
    assert!(findings.iter().all(|f| f.rule == "float-fold-order"));
}

#[test]
fn float_fold_order_exempts_kernels() {
    let src = include_str!("fixtures/float_fold.rs");
    let findings = lint_source("crates/numerics/src/kernels.rs", src);
    assert!(
        lines_for(&findings, "float-fold-order").is_empty(),
        "kernels.rs is the one place float folds are defined: {findings:?}"
    );
}

#[test]
fn ordered_iteration_catches_fixture() {
    let src = include_str!("fixtures/ordered_iter.rs");
    let findings = lint_source("crates/core/src/fixture.rs", src);
    let lines = lines_for(&findings, "ordered-iteration");
    assert_eq!(
        lines.len(),
        3,
        "keys().collect(), for-values +=, and extend: {findings:?}"
    );
    // The allow-suppressed sort-after site and the BTreeMap site are clean,
    // and the in-fixture allow is consumed (no unused-suppression report).
    assert!(
        lines_for(&findings, UNUSED_SUPPRESSION).is_empty(),
        "{findings:?}"
    );
}

#[test]
fn wire_float_exactness_catches_fixture() {
    let src = include_str!("fixtures/wire_float.rs");
    let findings = lint_source("crates/server/src/proto.rs", src);
    let lines = lines_for(&findings, "wire-float-exactness");
    assert_eq!(lines.len(), 1, "only the raw Json::Num site: {findings:?}");
}

#[test]
fn wire_float_exactness_out_of_scope_elsewhere() {
    let src = include_str!("fixtures/wire_float.rs");
    let findings = lint_source("crates/core/src/fixture.rs", src);
    assert!(lines_for(&findings, "wire-float-exactness").is_empty());
}

#[test]
fn block_grid_literals_catches_fixture() {
    let src = include_str!("fixtures/block_grid.rs");
    let findings = lint_source("crates/numerics/src/fixture.rs", src);
    let lines = lines_for(&findings, "block-grid-literals");
    assert_eq!(lines.len(), 1, "only the bare 128: {findings:?}");
}

#[test]
fn no_panic_catches_fixture_outside_tests() {
    let src = include_str!("fixtures/panic_path.rs");
    let findings = lint_source("crates/server/src/fixture.rs", src);
    let lines = lines_for(&findings, "no-panic-in-request-path");
    assert_eq!(
        lines.len(),
        3,
        "unwrap, expect, and panic! — but not the #[cfg(test)] unwrap: {findings:?}"
    );
}

#[test]
fn no_panic_out_of_scope_outside_server() {
    let src = include_str!("fixtures/panic_path.rs");
    let findings = lint_source("crates/core/src/fixture.rs", src);
    assert!(lines_for(&findings, "no-panic-in-request-path").is_empty());
}

#[test]
fn lock_discipline_catches_fixture() {
    let src = include_str!("fixtures/lock_nesting.rs");
    let findings = lint_source("crates/core/src/manager.rs", src);
    let lines = lines_for(&findings, "lock-discipline");
    assert_eq!(
        lines.len(),
        1,
        "only the nested pair; scope release and drop() are clean: {findings:?}"
    );
}

// ---------------------------------------------------------------------------
// Suppression machinery
// ---------------------------------------------------------------------------

#[test]
fn used_suppression_silences_and_is_not_reported() {
    let src = "pub fn total(xs: &[f64]) -> f64 {\n    \
               // lint:allow(float-fold-order: scalar reference, fixed row order)\n    \
               xs.iter().sum()\n}\n";
    let findings = lint_source("crates/core/src/fixture.rs", src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn same_line_suppression_works() {
    let src = "pub fn total(xs: &[f64]) -> f64 {\n    \
               xs.iter().sum() // lint:allow(float-fold-order: pinned scalar order)\n}\n";
    let findings = lint_source("crates/core/src/fixture.rs", src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn standalone_suppression_covers_multiline_statement() {
    let src = "pub fn keys(m: &std::collections::HashMap<String, u64>) -> Vec<String> {\n    \
               // lint:allow(ordered-iteration: sorted by the caller)\n    \
               let v: Vec<String> = m\n        \
               .keys()\n        \
               .cloned()\n        \
               .collect();\n    \
               v\n}\n";
    let findings = lint_source("crates/core/src/fixture.rs", src);
    assert!(
        findings.is_empty(),
        "allow must cover the whole chain: {findings:?}"
    );
}

#[test]
fn unused_suppression_is_reported() {
    let src = "pub fn clean() -> u64 {\n    \
               // lint:allow(float-fold-order: nothing here actually folds)\n    \
               7\n}\n";
    let findings = lint_source("crates/core/src/fixture.rs", src);
    let lines = lines_for(&findings, UNUSED_SUPPRESSION);
    assert_eq!(lines, vec![2], "{findings:?}");
}

#[test]
fn unknown_rule_in_suppression_is_reported() {
    let src = "pub fn clean() -> u64 {\n    \
               // lint:allow(made-up-rule)\n    \
               7\n}\n";
    let findings = lint_source("crates/core/src/fixture.rs", src);
    assert_eq!(
        lines_for(&findings, UNUSED_SUPPRESSION),
        vec![2],
        "{findings:?}"
    );
}

#[test]
fn suppression_reason_may_contain_commas() {
    let src = "pub fn total(xs: &[f64]) -> f64 {\n    \
               // lint:allow(float-fold-order: fixed order, bench-only, not served)\n    \
               xs.iter().sum()\n}\n";
    let findings = lint_source("crates/core/src/fixture.rs", src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn doc_comments_never_act_as_suppressions() {
    // A rustdoc line quoting the marker must not suppress the real finding
    // below it — and must not be reported as an unused suppression either.
    let src = "/// Write `// lint:allow(float-fold-order)` to suppress.\n\
               pub fn total(xs: &[f64]) -> f64 {\n    \
               xs.iter().sum()\n}\n";
    let findings = lint_source("crates/core/src/fixture.rs", src);
    assert_eq!(
        lines_for(&findings, "float-fold-order"),
        vec![3],
        "{findings:?}"
    );
    assert!(
        lines_for(&findings, UNUSED_SUPPRESSION).is_empty(),
        "{findings:?}"
    );
}

// ---------------------------------------------------------------------------
// Tokenizer edge cases: rule needles inside strings/comments are inert.
// ---------------------------------------------------------------------------

#[test]
fn needles_inside_string_literals_are_inert() {
    let src = r##"pub fn describe() -> &'static str {
    "HashMap .keys() .sum() unwrap() Json::Num 128 a.lock() b.lock()"
}
"##;
    for path in [
        "crates/core/src/fixture.rs",
        "crates/server/src/proto.rs",
        "crates/core/src/manager.rs",
    ] {
        let findings = lint_source(path, src);
        assert!(findings.is_empty(), "{path}: {findings:?}");
    }
}

#[test]
fn needles_inside_raw_strings_are_inert() {
    let src = "pub fn template() -> &'static str {\n    \
               r#\"{\"alpha\": Json::Num(0.5), \"n\": 128}\"#\n}\n";
    let findings = lint_source("crates/server/src/proto.rs", src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn needles_inside_nested_block_comments_are_inert() {
    let src = "/* outer /* xs.iter().sum() over f64 */ still comment 128 */\n\
               pub fn clean() -> u64 { 7 }\n";
    let findings = lint_source("crates/core/src/fixture.rs", src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn tokenizer_separates_chars_from_lifetimes() {
    let src = "fn f<'a>(x: &'a str) -> char { let c = 'a'; let _ = x; c }\n";
    let ft = FileTokens::tokenize(src);
    let chars: Vec<_> = ft.toks.iter().filter(|t| t.kind == TokKind::Char).collect();
    let lifetimes: Vec<_> = ft
        .toks
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .collect();
    assert_eq!(chars.len(), 1, "{chars:?}");
    assert_eq!(lifetimes.len(), 2, "{lifetimes:?}");
}

#[test]
fn tokenizer_handles_float_vs_range() {
    let ft = FileTokens::tokenize("let a = 1.5; for i in 1..10 { let b = 2.; }");
    let nums: Vec<&str> = ft
        .toks
        .iter()
        .filter(|t| t.kind == TokKind::Num)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(nums, vec!["1.5", "1", "10", "2."]);
}

// ---------------------------------------------------------------------------
// Whole-workspace gate and output formats
// ---------------------------------------------------------------------------

#[test]
fn workspace_tree_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let report = lint_tree(&root).expect("walk workspace tree");
    assert!(
        report.files_scanned > 50,
        "scanned {}",
        report.files_scanned
    );
    assert!(
        report.findings.is_empty(),
        "workspace must lint clean:\n{}",
        charles_lint::render_human(&report)
    );
}

#[test]
fn json_output_is_stable_and_escaped() {
    let src = "pub fn total(xs: &[f64]) -> f64 {\n    xs.iter().sum()\n}\n";
    let findings = lint_source("crates/core/src/fixture.rs", src);
    let report = charles_lint::Report {
        files_scanned: 1,
        findings,
    };
    let json = render_json(&report);
    assert!(json.contains("\"version\":1"), "{json}");
    assert!(json.contains("\"rule\":\"float-fold-order\""), "{json}");
    assert!(json.contains("\"files_scanned\":1"), "{json}");
    // Messages quote backticked identifiers; the output must stay valid JSON
    // (no raw control characters, quotes escaped).
    assert!(!json.chars().any(|c| c.is_control() && c != '\n'), "{json}");
}

#[test]
fn rule_registry_is_distinct_and_excludes_pseudo_rule() {
    let mut names = RULES.to_vec();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), RULES.len(), "duplicate rule name in registry");
    assert!(!RULES.contains(&UNUSED_SUPPRESSION));
}
