//! Correlation measures used by the ChARLES setup assistant.
//!
//! The assistant shortlists condition/transformation attributes whose
//! association with the target attribute exceeds a threshold (0.5 in the
//! paper). Numeric attributes use Pearson/Spearman; categorical attributes
//! use the correlation ratio (η), which plays the same role for
//! nominal → numeric association.

use crate::error::{NumericsError, Result};
use crate::kernels;
use crate::stats::{mean, ranks};

/// Pearson product-moment correlation in [-1, 1].
///
/// Returns 0.0 when either side has zero variance (no linear association
/// measurable) — the convenient convention for attribute screening.
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64> {
    if x.len() != y.len() {
        return Err(NumericsError::DimensionMismatch {
            expected: format!("{} elements", x.len()),
            found: format!("{} elements", y.len()),
        });
    }
    if x.len() < 2 {
        return Err(NumericsError::InsufficientData {
            needed: 2,
            got: x.len(),
        });
    }
    let mx = mean(x)?;
    let my = mean(y)?;
    // Center once, then reduce through the fixed-fold-order kernels so
    // this screening statistic is bit-stable however the caller shards.
    let dx: Vec<f64> = x.iter().map(|&a| a - mx).collect();
    let dy: Vec<f64> = y.iter().map(|&b| b - my).collect();
    let sxy = kernels::dot(&dx, &dy);
    let sxx = kernels::dot(&dx, &dx);
    let syy = kernels::dot(&dy, &dy);
    if sxx == 0.0 || syy == 0.0 {
        return Ok(0.0);
    }
    Ok((sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0))
}

/// Spearman rank correlation in [-1, 1]: Pearson over average ranks, so it
/// captures monotone (not just linear) association and resists outliers.
pub fn spearman(x: &[f64], y: &[f64]) -> Result<f64> {
    if x.len() != y.len() {
        return Err(NumericsError::DimensionMismatch {
            expected: format!("{} elements", x.len()),
            found: format!("{} elements", y.len()),
        });
    }
    pearson(&ranks(x), &ranks(y))
}

/// Correlation ratio η ∈ [0, 1]: how much of the variance of `y` is
/// explained by the grouping `labels` (η² = SS_between / SS_total).
///
/// `labels[i]` is an arbitrary group id (e.g. a dictionary code) for
/// observation `i`.
pub fn correlation_ratio(labels: &[u32], y: &[f64]) -> Result<f64> {
    if labels.len() != y.len() {
        return Err(NumericsError::DimensionMismatch {
            expected: format!("{} elements", labels.len()),
            found: format!("{} elements", y.len()),
        });
    }
    if y.len() < 2 {
        return Err(NumericsError::InsufficientData {
            needed: 2,
            got: y.len(),
        });
    }
    let grand_mean = mean(y)?;
    let ss_total = kernels::sum_sq_dev(y, grand_mean);
    if ss_total == 0.0 {
        return Ok(0.0);
    }
    // Group in label order (BTreeMap), then reduce the per-group terms
    // through the fixed-fold-order kernel: hash-ordered accumulation
    // here made η's low bits vary run to run, which is exactly the kind
    // of drift the bit-identity contract forbids.
    let mut sums: std::collections::BTreeMap<u32, (f64, usize)> = std::collections::BTreeMap::new();
    for (&l, &v) in labels.iter().zip(y.iter()) {
        let (sum_acc, count) = sums.entry(l).or_insert((0.0, 0));
        // Per-group partial sums accumulate in row order, fixed by the
        // input slice — not hash order.
        *sum_acc += v;
        *count += 1;
    }
    let terms: Vec<f64> = sums
        .values()
        .map(|&(s, n)| {
            let gm = s / n as f64;
            n as f64 * (gm - grand_mean).powi(2)
        })
        .collect();
    let ss_between = kernels::sum(&terms);
    Ok((ss_between / ss_total).clamp(0.0, 1.0).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_linear() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v - 1.0).collect();
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let y_neg: Vec<f64> = x.iter().map(|v| -2.0 * v).collect();
        assert!((pearson(&x, &y_neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_zero_variance_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).unwrap(), 0.0);
    }

    #[test]
    fn pearson_uncorrelated_near_zero() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, -1.0, 1.0, -1.0];
        assert!(pearson(&x, &y).unwrap().abs() < 0.5);
    }

    #[test]
    fn pearson_errors() {
        assert!(pearson(&[1.0], &[1.0]).is_err());
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_err());
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let x: [f64; 5] = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v| v.exp()).collect(); // nonlinear but monotone
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        // Pearson is below 1 for the same data.
        assert!(pearson(&x, &y).unwrap() < 1.0);
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [10.0, 20.0, 20.0, 30.0];
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_ratio_separated_groups() {
        // Group 0 clustered at 10, group 1 clustered at 20: eta near 1.
        let labels = [0, 0, 0, 1, 1, 1];
        let y = [10.0, 10.1, 9.9, 20.0, 20.1, 19.9];
        let eta = correlation_ratio(&labels, &y).unwrap();
        assert!(eta > 0.99, "eta = {eta}");
    }

    #[test]
    fn correlation_ratio_uninformative_groups() {
        let labels = [0, 1, 0, 1];
        let y = [1.0, 1.0, 3.0, 3.0];
        let eta = correlation_ratio(&labels, &y).unwrap();
        assert!(eta < 1e-9, "eta = {eta}");
    }

    #[test]
    fn correlation_ratio_constant_y() {
        assert_eq!(correlation_ratio(&[0, 1], &[5.0, 5.0]).unwrap(), 0.0);
    }

    #[test]
    fn correlation_ratio_errors() {
        assert!(correlation_ratio(&[0], &[1.0]).is_err());
        assert!(correlation_ratio(&[0, 1], &[1.0]).is_err());
    }
}
