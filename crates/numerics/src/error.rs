//! Error types for numeric routines.

use std::fmt;

/// Errors produced by linear algebra and statistics routines.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericsError {
    /// Matrix/vector dimensions are incompatible for the operation.
    DimensionMismatch {
        /// Description of the expected shape.
        expected: String,
        /// Description of the offending shape.
        found: String,
    },
    /// A linear system was singular (or numerically so) and could not be
    /// solved even with regularization.
    Singular(String),
    /// An operation needs more data points than were provided.
    InsufficientData {
        /// Minimum number of observations required.
        needed: usize,
        /// Number of observations provided.
        got: usize,
    },
    /// Generic invalid-argument error.
    InvalidArgument(String),
}

impl fmt::Display for NumericsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericsError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            NumericsError::Singular(msg) => write!(f, "singular system: {msg}"),
            NumericsError::InsufficientData { needed, got } => {
                write!(
                    f,
                    "insufficient data: needed {needed} observations, got {got}"
                )
            }
            NumericsError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for NumericsError {}

/// Convenience result alias for the numerics crate.
pub type Result<T> = std::result::Result<T, NumericsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = NumericsError::InsufficientData { needed: 3, got: 1 };
        assert!(e.to_string().contains("needed 3"));
        let e = NumericsError::Singular("rank deficient".into());
        assert!(e.to_string().contains("rank deficient"));
    }
}
