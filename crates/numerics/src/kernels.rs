//! Blocked, autovectorizer-friendly statistics kernels.
//!
//! Every reduction here is written the same way: a fixed number of
//! independent lane accumulators ([`LANES`]) fed in stride, folded in a
//! **fixed order** once the main loop ends, with the sub-lane tail added
//! last. The shape matters twice over:
//!
//! - **Speed.** A single scalar accumulator serializes the whole loop on
//!   add/FMA latency. [`LANES`] independent accumulators with no
//!   cross-iteration dependency are exactly what LLVM's loop vectorizer
//!   turns into packed multiply-adds (SSE2 on the x86-64 baseline, AVX/FMA
//!   under `-C target-cpu=native`), and what superscalar cores pipeline
//!   even in scalar form.
//! - **Determinism.** Floating-point addition is not associative, so the
//!   *order* of a fold is part of its result. Each kernel commits to one
//!   canonical order (lane-strided accumulation, pairwise lane fold, tail
//!   last) that depends only on the input slice — never on threads, shard
//!   layouts, or call sites. Two calls on bit-identical slices return
//!   bit-identical results on every backend.
//!
//! The OLS pipeline ([`crate::ols`]) builds its per-block Gram statistics
//! from [`dot`] over pre-scaled column windows, which is what makes the
//! blocked fold the *one* canonical kernel for local, sharded, and
//! distributed execution alike.
//!
//! Reductions that are exact regardless of order (`max`, `&&`) also use
//! lanes ([`max_abs_finite`]) purely for speed: associativity makes any
//! fold order bit-identical to the scalar one.

/// Number of independent accumulator lanes. Eight `f64` lanes fill one
/// AVX-512 register, two AVX registers, or four SSE2 registers — and give
/// scalar fallback code an 8-deep dependency break. [`crate::ols::GRAM_BLOCK_ROWS`]
/// is a multiple of this, so full canonical blocks have no tail.
pub const LANES: usize = 8;

/// Fold eight lane accumulators in the canonical (pairwise) order.
#[inline(always)]
fn fold_lanes(acc: [f64; LANES]) -> f64 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// Run one lane-accumulated reduction: `step` feeds each lane, the lanes
/// fold pairwise, and `tail` values are added last in element order.
#[inline(always)]
fn lane_reduce<T: Copy, S, U>(xs: &[T], step: S, tail_term: U) -> f64
where
    S: Fn(usize, &[T]) -> f64,
    U: Fn(T) -> f64,
{
    let split = (xs.len() / LANES) * LANES;
    let (main, tail) = xs.split_at(split);
    let mut acc = [0.0f64; LANES];
    for chunk in main.chunks_exact(LANES) {
        for (l, slot) in acc.iter_mut().enumerate() {
            *slot += step(l, chunk);
        }
    }
    let mut total = fold_lanes(acc);
    for &x in tail {
        total += tail_term(x);
    }
    total
}

/// Lane-accumulated sum of `xs`.
#[inline]
pub fn sum(xs: &[f64]) -> f64 {
    lane_reduce(xs, |l, c| c[l], |x| x)
}

/// Lane-accumulated sum of `|x|`.
#[inline]
pub fn sum_abs(xs: &[f64]) -> f64 {
    lane_reduce(xs, |l, c| c[l].abs(), |x| x.abs())
}

/// Lane-accumulated dot product `Σ a_i·b_i`. Slices must be equal length.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot over ragged slices");
    let split = (a.len() / LANES) * LANES;
    let (a_main, a_tail) = a.split_at(split);
    let (b_main, b_tail) = b.split_at(split);
    let mut acc = [0.0f64; LANES];
    for (ca, cb) in a_main.chunks_exact(LANES).zip(b_main.chunks_exact(LANES)) {
        for (l, slot) in acc.iter_mut().enumerate() {
            *slot += ca[l] * cb[l];
        }
    }
    let mut total = fold_lanes(acc);
    for (&x, &y) in a_tail.iter().zip(b_tail.iter()) {
        total += x * y;
    }
    total
}

/// Lane-accumulated `Σ |a_i − b_i|` (the L1 distance of the scoring
/// accuracy term). Slices must be equal length.
#[inline]
pub fn sum_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "sum_abs_diff over ragged slices");
    let split = (a.len() / LANES) * LANES;
    let (a_main, a_tail) = a.split_at(split);
    let (b_main, b_tail) = b.split_at(split);
    let mut acc = [0.0f64; LANES];
    for (ca, cb) in a_main.chunks_exact(LANES).zip(b_main.chunks_exact(LANES)) {
        for (l, slot) in acc.iter_mut().enumerate() {
            *slot += (ca[l] - cb[l]).abs();
        }
    }
    let mut total = fold_lanes(acc);
    for (&x, &y) in a_tail.iter().zip(b_tail.iter()) {
        total += (x - y).abs();
    }
    total
}

/// Lane-accumulated `Σ (a_i − b_i)²` (residual sum of squares). Slices
/// must be equal length.
#[inline]
pub fn sum_sq_diff(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "sum_sq_diff over ragged slices");
    let split = (a.len() / LANES) * LANES;
    let (a_main, a_tail) = a.split_at(split);
    let (b_main, b_tail) = b.split_at(split);
    let mut acc = [0.0f64; LANES];
    for (ca, cb) in a_main.chunks_exact(LANES).zip(b_main.chunks_exact(LANES)) {
        for (l, slot) in acc.iter_mut().enumerate() {
            let d = ca[l] - cb[l];
            *slot += d * d;
        }
    }
    let mut total = fold_lanes(acc);
    for (&x, &y) in a_tail.iter().zip(b_tail.iter()) {
        let d = x - y;
        total += d * d;
    }
    total
}

/// Lane-accumulated `Σ (x_i − center)²` (total sum of squares around a
/// fixed center, e.g. the mean).
#[inline]
pub fn sum_sq_dev(xs: &[f64], center: f64) -> f64 {
    lane_reduce(
        xs,
        |l, c| {
            let d = c[l] - center;
            d * d
        },
        |x| {
            let d = x - center;
            d * d
        },
    )
}

/// Fused single-pass max-|x| and finiteness of a slice.
///
/// `max` is associative and commutative (and Rust's [`f64::max`] ignores
/// `NaN` operands, exactly like the scalar fold this replaces), so the
/// lane fold is **exact** — bit-identical to a left-to-right scalar fold
/// for any input. Finiteness is the branchless `|x| < ∞`, which is false
/// for `±∞` and for `NaN`.
#[inline]
pub fn max_abs_finite(xs: &[f64]) -> (f64, bool) {
    let split = (xs.len() / LANES) * LANES;
    let (main, tail) = xs.split_at(split);
    let mut max = [0.0f64; LANES];
    let mut fin = [true; LANES];
    for chunk in main.chunks_exact(LANES) {
        for l in 0..LANES {
            let a = chunk[l].abs();
            max[l] = max[l].max(a);
            fin[l] &= a < f64::INFINITY;
        }
    }
    let mut m = max.iter().fold(0.0f64, |x, &y| x.max(y));
    let mut finite = fin.iter().all(|&f| f);
    for &x in tail {
        let a = x.abs();
        m = m.max(a);
        finite &= a < f64::INFINITY;
    }
    (m, finite)
}

/// Elementwise `out_i += c·x_i` over dense slices — the vectorizable
/// column-at-a-time prediction update. Per-element operations are
/// unchanged from a scalar loop, so results are bit-identical to one.
#[inline]
pub fn axpy(out: &mut [f64], c: f64, xs: &[f64]) {
    debug_assert_eq!(out.len(), xs.len(), "axpy over ragged slices");
    for (o, &x) in out.iter_mut().zip(xs.iter()) {
        *o += c * x;
    }
}

/// Elementwise `dst_i = src_i / scale` — the conditioning pre-scale of one
/// column's block window. Division is loop-invariant in `scale`, so the
/// autovectorizer emits packed divides; per-element results are
/// bit-identical to a scalar loop.
#[inline]
pub fn scale_into(dst: &mut [f64], src: &[f64], scale: f64) {
    debug_assert_eq!(dst.len(), src.len(), "scale_into over ragged slices");
    for (d, &x) in dst.iter_mut().zip(src.iter()) {
        *d = x / scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 200.0 - 100.0
            })
            .collect()
    }

    #[test]
    fn reductions_match_naive_within_tolerance() {
        for n in [0usize, 1, 7, 8, 9, 127, 128, 129, 1000] {
            let a = data(n, 3);
            let b = data(n, 17);
            let naive_sum: f64 = a.iter().sum();
            assert!((sum(&a) - naive_sum).abs() <= 1e-9 * (1.0 + naive_sum.abs()));
            let naive_dot: f64 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
            assert!((dot(&a, &b) - naive_dot).abs() <= 1e-9 * (1.0 + naive_dot.abs()));
            let naive_l1: f64 = a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum();
            assert!((sum_abs_diff(&a, &b) - naive_l1).abs() <= 1e-9 * (1.0 + naive_l1));
            let naive_ss: f64 = a.iter().zip(b.iter()).map(|(x, y)| (x - y).powi(2)).sum();
            assert!((sum_sq_diff(&a, &b) - naive_ss).abs() <= 1e-9 * (1.0 + naive_ss));
            let naive_abs: f64 = a.iter().map(|x| x.abs()).sum();
            assert!((sum_abs(&a) - naive_abs).abs() <= 1e-9 * (1.0 + naive_abs));
            let naive_dev: f64 = a.iter().map(|x| (x - 2.5).powi(2)).sum();
            assert!((sum_sq_dev(&a, 2.5) - naive_dev).abs() <= 1e-9 * (1.0 + naive_dev));
        }
    }

    #[test]
    fn kernels_are_deterministic() {
        let a = data(1001, 5);
        let b = data(1001, 9);
        assert_eq!(dot(&a, &b).to_bits(), dot(&a, &b).to_bits());
        assert_eq!(sum(&a).to_bits(), sum(&a).to_bits());
        // Determinism holds under slicing too: the same window is the
        // same fold.
        assert_eq!(dot(&a[..960], &b[..960]).to_bits(), {
            let (ac, bc) = (a[..960].to_vec(), b[..960].to_vec());
            dot(&ac, &bc).to_bits()
        });
    }

    #[test]
    fn max_abs_finite_is_exact_and_fused() {
        for n in [0usize, 5, 8, 127, 128, 129, 513] {
            let a = data(n, 21);
            let scalar_max = a.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            let scalar_finite = a.iter().all(|v| v.is_finite());
            let (m, fin) = max_abs_finite(&a);
            assert_eq!(m.to_bits(), scalar_max.to_bits(), "n={n}");
            assert_eq!(fin, scalar_finite);
        }
        let (m, fin) = max_abs_finite(&[1.0, f64::NAN, 3.0]);
        assert_eq!(m, 3.0, "NaN is ignored by max, exactly like the fold");
        assert!(!fin);
        let (m, fin) = max_abs_finite(&[1.0, f64::NEG_INFINITY]);
        assert_eq!(m, f64::INFINITY);
        assert!(!fin);
        let (m, fin) = max_abs_finite(&[]);
        assert_eq!(m, 0.0);
        assert!(fin);
    }

    #[test]
    fn axpy_and_scale_match_scalar_bits() {
        let xs = data(100, 7);
        let mut blocked = vec![1.5f64; 100];
        let mut scalar = vec![1.5f64; 100];
        axpy(&mut blocked, -2.25, &xs);
        for (o, &x) in scalar.iter_mut().zip(xs.iter()) {
            *o += -2.25 * x;
        }
        for (a, b) in blocked.iter().zip(scalar.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let mut dst = vec![0.0; 100];
        scale_into(&mut dst, &xs, 3.0);
        for (d, &x) in dst.iter().zip(xs.iter()) {
            assert_eq!(d.to_bits(), (x / 3.0).to_bits());
        }
    }
}
