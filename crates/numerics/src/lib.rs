//! # charles-numerics
//!
//! Linear algebra and statistics substrate for
//! [ChARLES](https://arxiv.org/abs/2409.18386): dense matrices, least
//! squares (with ridge fallback), descriptive statistics, the correlation
//! measures behind the setup assistant, and the constant-*normality*
//! machinery behind interpretable transformation coefficients.
//!
//! Everything here is dependency-free and sized for ChARLES's workloads:
//! regressions with a handful of predictors over 10²–10⁵ rows.
//!
//! ## Example: recovering the paper's rule R1
//!
//! ```
//! use charles_numerics::ols::fit_ols;
//!
//! // bonus2017 = 1.05 × bonus2016 + 1000 (paper Example 1, rule R1)
//! let bonus2016 = vec![23_000.0, 25_000.0, 21_000.0];
//! let bonus2017: Vec<f64> = bonus2016.iter().map(|b| 1.05 * b + 1000.0).collect();
//! let fit = fit_ols(&[bonus2016], &bonus2017).unwrap();
//! assert!((fit.coefficients[0] - 1.05).abs() < 1e-9);
//! assert!((fit.intercept - 1000.0).abs() < 1e-4);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod corr;
pub mod error;
pub mod kernels;
pub mod matrix;
pub mod normality;
pub mod ols;
pub mod solve;
pub mod stats;

pub use corr::{correlation_ratio, pearson, spearman};
pub use error::{NumericsError, Result};
pub use matrix::Matrix;
pub use normality::{mean_roundness, roundness, snap_candidates};
pub use ols::{fit_constant, fit_ols, fit_ols_cols, r_squared, LinearFit};
pub use solve::{solve_cholesky, solve_gaussian};
pub use stats::{mad, mean, mean_abs_diff, median, quantile, ranks, std_dev, variance};
