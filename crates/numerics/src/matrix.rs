//! Dense row-major matrices — just enough linear algebra for least squares.

use crate::error::{NumericsError, Result};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from row-major data.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(NumericsError::DimensionMismatch {
                expected: format!("{rows}×{cols} = {} elements", rows * cols),
                found: format!("{} elements", data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Build from a slice of row vectors (must be rectangular).
    pub fn from_row_slices(rows: &[Vec<f64>]) -> Result<Self> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            if r.len() != ncols {
                return Err(NumericsError::DimensionMismatch {
                    expected: format!("{ncols} columns"),
                    found: format!("{} columns", r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Build a design matrix from column vectors, optionally prepending an
    /// all-ones intercept column.
    pub fn design(columns: &[Vec<f64>], intercept: bool) -> Result<Self> {
        let n = columns.first().map_or(0, Vec::len);
        for c in columns {
            if c.len() != n {
                return Err(NumericsError::DimensionMismatch {
                    expected: format!("{n} rows"),
                    found: format!("{} rows", c.len()),
                });
            }
        }
        let extra = usize::from(intercept);
        let mut m = Matrix::zeros(n, columns.len() + extra);
        for i in 0..n {
            if intercept {
                m[(i, 0)] = 1.0;
            }
            for (j, col) in columns.iter().enumerate() {
                m[(i, j + extra)] = col[i];
            }
        }
        Ok(m)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self × other`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(NumericsError::DimensionMismatch {
                expected: format!("{} rows on rhs", self.cols),
                found: format!("{} rows", other.rows),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order: streams through `other` row-wise for locality.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(orow.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(NumericsError::DimensionMismatch {
                expected: format!("vector of length {}", self.cols),
                found: format!("length {}", v.len()),
            });
        }
        // lint:allow(float-fold-order: dense row-order dot in the scalar solver; order fixed by the matrix layout)
        Ok((0..self.rows)
            .map(|i| self.row(i).iter().zip(v.iter()).map(|(&a, &b)| a * b).sum())
            .collect())
    }

    /// Gram matrix `Aᵀ A` computed without materializing the transpose.
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..self.cols {
                let a = row[i];
                if a == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    g[(i, j)] += a * row[j];
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..self.cols {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// `Aᵀ y` without materializing the transpose.
    pub fn t_matvec(&self, y: &[f64]) -> Result<Vec<f64>> {
        if self.rows != y.len() {
            return Err(NumericsError::DimensionMismatch {
                expected: format!("vector of length {}", self.rows),
                found: format!("length {}", y.len()),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (r, &yr) in y.iter().enumerate() {
            if yr == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(r).iter()) {
                *o += a * yr;
            }
        }
        Ok(out)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.6}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert!(Matrix::from_rows(2, 2, vec![1.0]).is_err());
    }

    #[test]
    fn identity_and_matmul() {
        let m = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i).unwrap(), m);
        let sq = m.matmul(&m).unwrap();
        assert_eq!(
            sq,
            Matrix::from_rows(2, 2, vec![7.0, 10.0, 15.0, 22.0]).unwrap()
        );
    }

    #[test]
    fn matmul_dimension_check() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matvec() {
        let m = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn gram_equals_explicit_transpose_product() {
        let m = Matrix::from_rows(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let explicit = m.transpose().matmul(&m).unwrap();
        assert_eq!(m.gram(), explicit);
    }

    #[test]
    fn t_matvec_equals_explicit() {
        let m = Matrix::from_rows(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let y = vec![1.0, -1.0, 2.0];
        let explicit = m.transpose().matvec(&y).unwrap();
        assert_eq!(m.t_matvec(&y).unwrap(), explicit);
    }

    #[test]
    fn design_matrix_with_intercept() {
        let x1 = vec![1.0, 2.0];
        let x2 = vec![10.0, 20.0];
        let d = Matrix::design(&[x1, x2], true).unwrap();
        assert_eq!(d.rows(), 2);
        assert_eq!(d.cols(), 3);
        assert_eq!(d.row(1), &[1.0, 2.0, 20.0]);
        let d0 = Matrix::design(&[vec![1.0], vec![2.0]], false).unwrap();
        assert_eq!(d0.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn design_rejects_ragged() {
        assert!(Matrix::design(&[vec![1.0, 2.0], vec![1.0]], true).is_err());
    }
}
