//! Normality ("roundness") of numeric constants.
//!
//! The paper prefers summaries whose constants look like numbers a human
//! policy would contain: *"the condition `Age > 25` is more normal than
//! `Age > 23.796`, and 5% for a salary increase is more normal than
//! 2.479%"*. This module quantifies that preference and generates nearby
//! round candidates for snapping regression coefficients.

/// Number of significant decimal digits needed to write `x` exactly
/// (up to `max_digits`, relative tolerance 1e-9).
pub fn significant_digits(x: f64, max_digits: u32) -> u32 {
    if x == 0.0 || !x.is_finite() {
        return 1;
    }
    for d in 1..=max_digits {
        if round_to_significant(x, d) == x || ((round_to_significant(x, d) - x) / x).abs() < 1e-9 {
            return d;
        }
    }
    max_digits + 1
}

/// Round `x` to `digits` significant decimal digits.
pub fn round_to_significant(x: f64, digits: u32) -> f64 {
    if x == 0.0 || !x.is_finite() {
        return x;
    }
    let magnitude = x.abs().log10().floor();
    let factor = 10f64.powf(digits as f64 - 1.0 - magnitude);
    (x * factor).round() / factor
}

/// Normality score in [0, 1]: 1.0 for maximally round constants (single
/// significant digit, like 5% or $1000), decaying with every extra digit
/// of precision required. Constants needing more than 6 significant digits
/// score 0.
///
/// ```
/// use charles_numerics::normality::roundness;
/// assert!(roundness(25.0) > roundness(23.796));
/// assert!(roundness(0.05) > roundness(0.02479));
/// assert_eq!(roundness(1000.0), 1.0);
/// ```
pub fn roundness(x: f64) -> f64 {
    if !x.is_finite() {
        return 0.0;
    }
    if x == 0.0 {
        return 1.0;
    }
    const SCORES: [f64; 7] = [1.0, 0.85, 0.65, 0.4, 0.2, 0.1, 0.0];
    let d = significant_digits(x, 7) as usize;
    let base = SCORES[(d - 1).min(6)];
    // A trailing significant digit of 5 reads "half a digit rounder":
    // 25 beats 26, 1.05 beats 1.04 (quarter-steps and nickel-steps are
    // what human policies use).
    if (2..=7).contains(&d) && trailing_significant_digit(x, d as u32) == 5 {
        let prev = SCORES[d - 2];
        return (prev + base) / 2.0;
    }
    base
}

/// The last significant decimal digit of `x` when written with `digits`
/// significant digits.
fn trailing_significant_digit(x: f64, digits: u32) -> u8 {
    let magnitude = x.abs().log10().floor();
    let scaled = (x.abs() * 10f64.powf(digits as f64 - 1.0 - magnitude)).round();
    (scaled % 10.0) as u8
}

/// Mean roundness over a set of constants (1.0 for the empty set: an
/// expression with no constants has nothing un-normal about it).
pub fn mean_roundness(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    // lint:allow(float-fold-order: interpretability heuristic over a handful of constants, order fixed by the slice)
    xs.iter().map(|&x| roundness(x)).sum::<f64>() / xs.len() as f64
}

/// Nearby "nice" values for `x`, ordered by distance from `x`
/// (deduplicated; always non-empty; includes `x` itself last so callers can
/// fall back to the raw value).
///
/// Candidates: roundings to 1–3 significant digits, plus roundings to
/// human-scale grids appropriate to the magnitude of `x` (e.g. multiples of
/// 0.005 for percent-like values, multiples of 50/100/500/1000 for
/// dollar-like values).
pub fn snap_candidates(x: f64) -> Vec<f64> {
    if !x.is_finite() {
        return vec![x];
    }
    let mut cands: Vec<f64> = Vec::new();
    for d in 1..=3 {
        cands.push(round_to_significant(x, d));
    }
    let magnitude = if x == 0.0 {
        0.0
    } else {
        x.abs().log10().floor()
    };
    // Human-scale grid steps by magnitude: 1.05 snaps on 0.005/0.01/0.025;
    // 997.3 snaps on 5/10/25/50/...
    let grids: &[f64] = if magnitude < 1.0 {
        &[0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5]
    } else if magnitude < 3.0 {
        &[0.25, 0.5, 1.0, 5.0, 10.0, 25.0, 50.0, 100.0]
    } else {
        &[10.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 5000.0]
    };
    for &g in grids {
        cands.push((x / g).round() * g);
    }
    cands.push(x);
    // Deduplicate (bitwise; fine for candidate pruning) keeping stable
    // distance order after the sort below.
    cands.sort_by(|a, b| {
        (a - x)
            .abs()
            .total_cmp(&(b - x).abs())
            .then(roundness(*b).total_cmp(&roundness(*a)))
    });
    let mut seen = std::collections::HashSet::new();
    cands.retain(|c| seen.insert(c.to_bits()));
    cands
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn significant_digit_counting() {
        assert_eq!(significant_digits(1000.0, 7), 1);
        assert_eq!(significant_digits(0.05, 7), 1);
        assert_eq!(significant_digits(25.0, 7), 2);
        assert_eq!(significant_digits(1.05, 7), 3);
        assert_eq!(significant_digits(23.796, 7), 5);
        assert_eq!(significant_digits(0.0, 7), 1);
    }

    #[test]
    fn rounding_to_significant() {
        assert_eq!(round_to_significant(23.796, 2), 24.0);
        assert_eq!(round_to_significant(23.796, 1), 20.0);
        assert_eq!(round_to_significant(0.02479, 1), 0.02);
        assert_eq!(round_to_significant(-1234.0, 2), -1200.0);
        assert_eq!(round_to_significant(0.0, 3), 0.0);
    }

    #[test]
    fn paper_examples_ordering() {
        // "Age > 25" more normal than "Age > 23.796".
        assert!(roundness(25.0) > roundness(23.796));
        // 5% more normal than 2.479%.
        assert!(roundness(0.05) > roundness(0.02479));
        // 1.05 (the R1 coefficient) is decently normal; 1.0497213 is not.
        assert!(roundness(1.05) > roundness(1.049_721_3));
    }

    #[test]
    fn roundness_bounds() {
        for &x in &[0.0, 1.0, -5.0, 1.05, 23.796, 0.02479, 1e308, f64::NAN] {
            let r = roundness(x);
            assert!((0.0..=1.0).contains(&r), "roundness({x}) = {r}");
        }
        assert_eq!(roundness(f64::NAN), 0.0);
        assert_eq!(roundness(0.0), 1.0);
    }

    #[test]
    fn mean_roundness_empty_is_one() {
        assert_eq!(mean_roundness(&[]), 1.0);
        assert!(mean_roundness(&[1000.0, 0.05]) > 0.9);
    }

    #[test]
    fn snap_candidates_contain_obvious_targets() {
        let cands = snap_candidates(1.0497);
        assert!(
            cands.iter().any(|&c| (c - 1.05).abs() < 1e-12),
            "1.05 missing from {cands:?}"
        );
        let cands = snap_candidates(997.3);
        assert!(cands.contains(&1000.0), "1000 missing from {cands:?}");
        let cands = snap_candidates(0.0397);
        assert!(cands.iter().any(|&c| (c - 0.04).abs() < 1e-12));
    }

    #[test]
    fn snap_candidates_ordered_by_distance() {
        let x = 812.0;
        let cands = snap_candidates(x);
        for w in cands.windows(2) {
            assert!(
                (w[0] - x).abs() <= (w[1] - x).abs() + 1e-9,
                "candidates out of order: {cands:?}"
            );
        }
        // Raw value is always available.
        assert!(cands.contains(&x));
    }

    #[test]
    fn snap_candidates_nonfinite_passthrough() {
        assert_eq!(snap_candidates(f64::NAN).len(), 1);
    }
}
