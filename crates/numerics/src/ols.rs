//! Ordinary least squares — the workhorse of ChARLES transformation
//! discovery.
//!
//! Fits `y ≈ β₀ + β₁x₁ + … + βₚxₚ` by solving the normal equations with
//! Cholesky; if the Gram matrix is (near-)singular — common on tiny
//! partitions or collinear predictors — retries with ridge regularization,
//! escalating λ until the system solves.

use crate::error::{NumericsError, Result};
use crate::matrix::Matrix;
use crate::solve::solve_cholesky;

/// A fitted linear model `y = intercept + Σ coef[i]·x[i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearFit {
    /// Intercept term β₀.
    pub intercept: f64,
    /// Slope coefficients β₁..βₚ, one per predictor column.
    pub coefficients: Vec<f64>,
    /// Coefficient of determination on the training data (1 = perfect;
    /// may be negative for pathological fits on ridge fallback).
    pub r_squared: f64,
    /// Training residuals `y_i − ŷ_i` in input order.
    pub residuals: Vec<f64>,
    /// Ridge λ that was needed (0.0 = plain OLS succeeded).
    pub ridge_lambda: f64,
}

impl LinearFit {
    /// Predict for one observation (`x.len()` must equal predictor count).
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.intercept
            + self
                .coefficients
                .iter()
                .zip(x.iter())
                .map(|(&c, &v)| c * v)
                .sum::<f64>()
    }

    /// Predict for columns of predictor data.
    pub fn predict_columns(&self, columns: &[Vec<f64>]) -> Result<Vec<f64>> {
        let cols: Vec<&[f64]> = columns.iter().map(Vec::as_slice).collect();
        self.predict_cols(&cols)
    }

    /// Slice-of-slices variant of [`LinearFit::predict_columns`].
    pub fn predict_cols(&self, columns: &[&[f64]]) -> Result<Vec<f64>> {
        if columns.len() != self.coefficients.len() {
            return Err(NumericsError::DimensionMismatch {
                expected: format!("{} predictor columns", self.coefficients.len()),
                found: format!("{}", columns.len()),
            });
        }
        let n = columns.first().map_or(0, |c| c.len());
        let mut out = vec![self.intercept; n];
        for (c, col) in self.coefficients.iter().zip(columns.iter()) {
            if col.len() != n {
                return Err(NumericsError::DimensionMismatch {
                    expected: format!("{n} rows"),
                    found: format!("{} rows", col.len()),
                });
            }
            for (o, &v) in out.iter_mut().zip(col.iter()) {
                *o += c * v;
            }
        }
        Ok(out)
    }

    /// Mean absolute residual (L1 error / n) on training data.
    pub fn mean_abs_error(&self) -> f64 {
        if self.residuals.is_empty() {
            return 0.0;
        }
        self.residuals.iter().map(|r| r.abs()).sum::<f64>() / self.residuals.len() as f64
    }

    /// Maximum absolute residual on training data.
    pub fn max_abs_error(&self) -> f64 {
        self.residuals.iter().fold(0.0, |m, r| m.max(r.abs()))
    }
}

/// Compute R² of predictions against observations.
pub fn r_squared(y: &[f64], y_hat: &[f64]) -> f64 {
    let n = y.len();
    if n == 0 {
        return 1.0;
    }
    let mean = y.iter().sum::<f64>() / n as f64;
    let ss_tot: f64 = y.iter().map(|v| (v - mean).powi(2)).sum();
    let ss_res: f64 = y
        .iter()
        .zip(y_hat.iter())
        .map(|(a, b)| (a - b).powi(2))
        .sum();
    if ss_tot == 0.0 {
        // Constant target: perfect iff we predict the constant.
        return if ss_res < 1e-18 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

/// Escalating ridge penalties tried after plain OLS fails.
const RIDGE_LADDER: [f64; 4] = [1e-8, 1e-4, 1e-1, 1.0];

/// Fit `y` on predictor columns with an intercept.
///
/// Requires at least `p + 1` observations for `p` predictors (otherwise the
/// system is underdetermined even with the intercept).
pub fn fit_ols(columns: &[Vec<f64>], y: &[f64]) -> Result<LinearFit> {
    let cols: Vec<&[f64]> = columns.iter().map(Vec::as_slice).collect();
    fit_ols_cols(&cols, y)
}

/// Slice-of-slices variant of [`fit_ols`] — the zero-copy entry point: the
/// search hot path hands borrowed column views straight in, without
/// cloning whole columns per candidate.
pub fn fit_ols_cols(columns: &[&[f64]], y: &[f64]) -> Result<LinearFit> {
    let n = y.len();
    let p = columns.len();
    for c in columns {
        if c.len() != n {
            return Err(NumericsError::DimensionMismatch {
                expected: format!("{n} rows"),
                found: format!("{} rows", c.len()),
            });
        }
    }
    if n < p + 1 {
        return Err(NumericsError::InsufficientData {
            needed: p + 1,
            got: n,
        });
    }
    if y.iter().any(|v| !v.is_finite())
        || columns
            .iter()
            .flat_map(|c| c.iter())
            .any(|v| !v.is_finite())
    {
        return Err(NumericsError::InvalidArgument(
            "non-finite value in regression input".to_string(),
        ));
    }

    // Scale columns to unit max-abs for conditioning; fold scales back into
    // the returned coefficients. (Salary-scale predictors otherwise push
    // the Gram matrix towards singularity in f64.)
    let mut scaled: Vec<Vec<f64>> = Vec::with_capacity(p);
    let mut scales = Vec::with_capacity(p);
    for c in columns {
        let max_abs = c.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let s = if max_abs > 0.0 { max_abs } else { 1.0 };
        scales.push(s);
        scaled.push(c.iter().map(|v| v / s).collect());
    }

    let x = Matrix::design(&scaled, true)?;
    let gram = x.gram();
    let xty = x.t_matvec(y)?;

    let mut beta: Option<Vec<f64>> = None;
    let mut used_lambda = 0.0;
    match solve_cholesky(&gram, &xty) {
        Ok(b) => beta = Some(b),
        Err(_) => {
            for &lambda in &RIDGE_LADDER {
                let mut g = gram.clone();
                // Regularize slopes only; leave the intercept unpenalized.
                for i in 1..g.rows() {
                    g[(i, i)] += lambda;
                }
                if let Ok(b) = solve_cholesky(&g, &xty) {
                    beta = Some(b);
                    used_lambda = lambda;
                    break;
                }
            }
        }
    }
    let beta = beta.ok_or_else(|| {
        NumericsError::Singular("normal equations unsolvable even with ridge".to_string())
    })?;

    let intercept = beta[0];
    let coefficients: Vec<f64> = beta[1..]
        .iter()
        .zip(scales.iter())
        .map(|(&b, &s)| b / s)
        .collect();

    let fit = LinearFit {
        intercept,
        coefficients,
        r_squared: 0.0,
        residuals: Vec::new(),
        ridge_lambda: used_lambda,
    };
    let y_hat = fit.predict_cols(columns)?;
    let residuals: Vec<f64> = y.iter().zip(y_hat.iter()).map(|(a, b)| a - b).collect();
    let r2 = r_squared(y, &y_hat);
    Ok(LinearFit {
        residuals,
        r_squared: r2,
        ..fit
    })
}

/// Fit a constant model `y = c` (no predictors): `c` is the mean of `y`.
/// This is the degenerate transformation "set everything to c" and also the
/// fallback when no transformation attributes are available.
pub fn fit_constant(y: &[f64]) -> Result<LinearFit> {
    if y.is_empty() {
        return Err(NumericsError::InsufficientData { needed: 1, got: 0 });
    }
    let mean = y.iter().sum::<f64>() / y.len() as f64;
    let residuals: Vec<f64> = y.iter().map(|v| v - mean).collect();
    let y_hat = vec![mean; y.len()];
    Ok(LinearFit {
        intercept: mean,
        coefficients: Vec::new(),
        r_squared: r_squared(y, &y_hat),
        residuals,
        ridge_lambda: 0.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_affine_relation() {
        // The paper's R1: y = 1.05 x + 1000, exactly.
        let x: Vec<f64> = vec![23_000.0, 25_000.0, 21_000.0, 18_000.0];
        let y: Vec<f64> = x.iter().map(|v| 1.05 * v + 1000.0).collect();
        let fit = fit_ols(&[x], &y).unwrap();
        assert!((fit.coefficients[0] - 1.05).abs() < 1e-9);
        assert!((fit.intercept - 1000.0).abs() < 1e-4);
        assert!(fit.r_squared > 0.999_999);
        assert!(fit.max_abs_error() < 1e-6);
        assert_eq!(fit.ridge_lambda, 0.0);
    }

    #[test]
    fn recovers_two_predictor_relation() {
        // y = 0.1·salary + 200·exp + 50
        let salary = vec![230_000.0, 250_000.0, 160_000.0, 130_000.0, 110_000.0];
        let exp = vec![2.0, 3.0, 5.0, 1.0, 2.0];
        let y: Vec<f64> = salary
            .iter()
            .zip(exp.iter())
            .map(|(&s, &e)| 0.1 * s + 200.0 * e + 50.0)
            .collect();
        let fit = fit_ols(&[salary, exp], &y).unwrap();
        assert!((fit.coefficients[0] - 0.1).abs() < 1e-9);
        assert!((fit.coefficients[1] - 200.0).abs() < 1e-6);
        assert!((fit.intercept - 50.0).abs() < 1e-4);
    }

    #[test]
    fn predict_matches_formula() {
        let fit = LinearFit {
            intercept: 10.0,
            coefficients: vec![2.0, -1.0],
            r_squared: 1.0,
            residuals: vec![],
            ridge_lambda: 0.0,
        };
        assert_eq!(fit.predict(&[3.0, 4.0]), 10.0 + 6.0 - 4.0);
        let cols = vec![vec![3.0, 0.0], vec![4.0, 0.0]];
        assert_eq!(fit.predict_columns(&cols).unwrap(), vec![12.0, 10.0]);
        assert!(fit.predict_columns(&[vec![1.0]]).is_err());
    }

    #[test]
    fn insufficient_data_rejected() {
        assert!(matches!(
            fit_ols(&[vec![1.0]], &[2.0]).unwrap_err(),
            NumericsError::InsufficientData { needed: 2, got: 1 }
        ));
    }

    #[test]
    fn collinear_predictors_fall_back_to_ridge() {
        let x1 = vec![1.0, 2.0, 3.0, 4.0];
        let x2 = vec![2.0, 4.0, 6.0, 8.0]; // exactly 2·x1
        let y = vec![3.0, 6.0, 9.0, 12.0];
        let fit = fit_ols(&[x1.clone(), x2], &y).unwrap();
        assert!(fit.ridge_lambda > 0.0, "expected ridge fallback");
        // The fit should still predict well.
        let y_hat = fit
            .predict_columns(&[x1.clone(), x1.iter().map(|v| 2.0 * v).collect()])
            .unwrap();
        for (a, b) in y.iter().zip(y_hat.iter()) {
            assert!((a - b).abs() < 0.2, "{a} vs {b}");
        }
    }

    #[test]
    fn constant_column_handled() {
        // A predictor with zero variance is collinear with the intercept.
        let x = vec![5.0, 5.0, 5.0];
        let y = vec![1.0, 2.0, 3.0];
        let fit = fit_ols(&[x], &y).unwrap();
        assert!((fit.predict(&[5.0]) - 2.0).abs() < 0.5);
    }

    #[test]
    fn non_finite_input_rejected() {
        assert!(fit_ols(&[vec![1.0, f64::NAN, 3.0]], &[1.0, 2.0, 3.0]).is_err());
        assert!(fit_ols(&[vec![1.0, 2.0, 3.0]], &[1.0, f64::INFINITY, 3.0]).is_err());
    }

    #[test]
    fn constant_fit_is_mean() {
        let fit = fit_constant(&[2.0, 4.0, 6.0]).unwrap();
        assert_eq!(fit.intercept, 4.0);
        assert!(fit.coefficients.is_empty());
        assert_eq!(fit.predict(&[]), 4.0);
        assert!(fit_constant(&[]).is_err());
    }

    #[test]
    fn r_squared_edge_cases() {
        assert_eq!(r_squared(&[], &[]), 1.0);
        // Constant target predicted perfectly.
        assert_eq!(r_squared(&[3.0, 3.0], &[3.0, 3.0]), 1.0);
        // Constant target predicted wrongly.
        assert_eq!(r_squared(&[3.0, 3.0], &[1.0, 1.0]), 0.0);
        // Perfect fit.
        assert_eq!(r_squared(&[1.0, 2.0], &[1.0, 2.0]), 1.0);
    }

    #[test]
    fn mean_abs_error_empty_residuals() {
        let fit = LinearFit {
            intercept: 0.0,
            coefficients: vec![],
            r_squared: 1.0,
            residuals: vec![],
            ridge_lambda: 0.0,
        };
        assert_eq!(fit.mean_abs_error(), 0.0);
        assert_eq!(fit.max_abs_error(), 0.0);
    }

    #[test]
    fn large_scale_predictors_conditioned() {
        // Salary-scale values: conditioning via column scaling must cope.
        let x: Vec<f64> = (0..100).map(|i| 100_000.0 + 1_000.0 * i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 0.1 * v + 12_345.0).collect();
        let fit = fit_ols(&[x], &y).unwrap();
        assert!((fit.coefficients[0] - 0.1).abs() < 1e-8);
        assert!((fit.intercept - 12_345.0).abs() < 1e-3);
    }
}
