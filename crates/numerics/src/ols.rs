//! Ordinary least squares — the workhorse of ChARLES transformation
//! discovery.
//!
//! Fits `y ≈ β₀ + β₁x₁ + … + βₚxₚ` by solving the normal equations with
//! Cholesky; if the Gram matrix is (near-)singular — common on tiny
//! partitions or collinear predictors — retries with ridge regularization,
//! escalating λ until the system solves.
//!
//! ## Mergeable sufficient statistics
//!
//! The fit is factored through *sufficient statistics* so it can be
//! computed over row-range **shards** with bit-identical results:
//!
//! 1. [`column_moments`] — row count, per-column max-|x|, finiteness.
//!    Merging ([`ColumnMoments::merge`]) uses only `max`/`+`/`&&`, which
//!    are exact regardless of how rows were split.
//! 2. [`gram_partial`] — `XᵀX` and `Xᵀy` of the scaled design, accumulated
//!    per **canonical block** of [`GRAM_BLOCK_ROWS`] rows. The block grid
//!    is anchored at absolute row 0 and independent of any sharding, so a
//!    shard whose boundaries sit on the grid produces exactly the block
//!    sums the unsharded pass produces. [`fit_from_parts`] folds block
//!    sums in block order — the same floating-point operations in the same
//!    order no matter how many shards computed them.
//!
//! [`fit_ols_cols`] itself is the one-shard instance of this pipeline,
//! which is what makes "sharded search is byte-identical to unsharded"
//! a theorem about this module rather than a tolerance.
//!
//! ## Blocked kernels
//!
//! Since PR 6 the per-block accumulation is a cache-blocked, lane-wide
//! kernel ([`crate::kernels`]): each canonical block's column windows are
//! pre-scaled once into a column-major stage, and every `XᵀX`/`Xᵀy` entry
//! is a [`crate::kernels::dot`] over two staged columns — [`LANES`]
//! independent partial sums folded in a fixed order at block end, which
//! the autovectorizer turns into packed FMAs instead of the old scalar
//! triangle walk. The kernel's fold order differs from the pre-PR-6
//! scalar row walk (floating-point addition is not associative), so the
//! blocked kernel is THE canonical accumulation everywhere — local,
//! sharded, and distributed execution all call this one function on the
//! same canonical blocks, keeping the bit-identical merge contract true
//! by construction. The retained [`gram_partial_scalar`] /
//! [`column_moments_scalar`] are the pre-kernel reference used by benches
//! and differential tests (agreement within tolerance, not bits).

use crate::error::{NumericsError, Result};
use crate::kernels;
use crate::matrix::Matrix;
use crate::solve::solve_cholesky;

/// Rows per canonical accumulation block of the Gram statistics. Shard
/// boundaries must be multiples of this (see
/// `charles_relation::RowRange::split_aligned`) for bit-exact merges.
/// A multiple of [`kernels::LANES`], so full blocks have no sub-lane tail.
///
/// The relation plane's compressed column blocks
/// (`charles_relation::GRAM_BLOCK_ROWS`) sit on the *same* 128-row grid:
/// sealed columns decode per block, zone maps prune per block, and shard
/// boundaries land on block edges — so a sharded fit over sealed columns
/// folds exactly the bytes the unsharded raw fit folds. The two constants
/// are pinned equal by a compile-time assert in `charles-core`.
pub const GRAM_BLOCK_ROWS: usize = 128;

const _: () = assert!(GRAM_BLOCK_ROWS.is_multiple_of(kernels::LANES));

/// A fitted linear model `y = intercept + Σ coef[i]·x[i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearFit {
    /// Intercept term β₀.
    pub intercept: f64,
    /// Slope coefficients β₁..βₚ, one per predictor column.
    pub coefficients: Vec<f64>,
    /// Coefficient of determination on the training data (1 = perfect;
    /// may be negative for pathological fits on ridge fallback).
    pub r_squared: f64,
    /// Training residuals `y_i − ŷ_i` in input order.
    pub residuals: Vec<f64>,
    /// Ridge λ that was needed (0.0 = plain OLS succeeded).
    pub ridge_lambda: f64,
}

impl LinearFit {
    /// Predict for one observation (`x.len()` must equal predictor count).
    pub fn predict(&self, x: &[f64]) -> f64 {
        // lint:allow(float-fold-order: row-order scalar dot is the pinned prediction semantics; input order is fixed by the slice)
        self.intercept
            + self
                .coefficients
                .iter()
                .zip(x.iter())
                .map(|(&c, &v)| c * v)
                .sum::<f64>()
    }

    /// Predict for columns of predictor data.
    pub fn predict_columns(&self, columns: &[Vec<f64>]) -> Result<Vec<f64>> {
        let cols: Vec<&[f64]> = columns.iter().map(Vec::as_slice).collect();
        self.predict_cols(&cols)
    }

    /// Slice-of-slices variant of [`LinearFit::predict_columns`].
    pub fn predict_cols(&self, columns: &[&[f64]]) -> Result<Vec<f64>> {
        if columns.len() != self.coefficients.len() {
            return Err(NumericsError::DimensionMismatch {
                expected: format!("{} predictor columns", self.coefficients.len()),
                found: format!("{}", columns.len()),
            });
        }
        let n = columns.first().map_or(0, |c| c.len());
        let mut out = vec![self.intercept; n];
        for (&c, col) in self.coefficients.iter().zip(columns.iter()) {
            if col.len() != n {
                return Err(NumericsError::DimensionMismatch {
                    expected: format!("{n} rows"),
                    found: format!("{} rows", col.len()),
                });
            }
            kernels::axpy(&mut out, c, col);
        }
        Ok(out)
    }

    /// Mean absolute residual (L1 error / n) on training data.
    pub fn mean_abs_error(&self) -> f64 {
        if self.residuals.is_empty() {
            return 0.0;
        }
        // lint:allow(float-fold-order: residuals are in canonical row order; sequential sum is the pinned scalar semantics)
        self.residuals.iter().map(|r| r.abs()).sum::<f64>() / self.residuals.len() as f64
    }

    /// Maximum absolute residual on training data.
    pub fn max_abs_error(&self) -> f64 {
        // lint:allow(float-fold-order: max-fold is order-insensitive for the finite residuals it sees)
        self.residuals.iter().fold(0.0, |m, r| m.max(r.abs()))
    }
}

/// Compute R² of predictions against observations (lane-accumulated
/// sums; see [`crate::kernels`]).
pub fn r_squared(y: &[f64], y_hat: &[f64]) -> f64 {
    let n = y.len();
    if n == 0 {
        return 1.0;
    }
    let mean = kernels::sum(y) / n as f64;
    let ss_tot = kernels::sum_sq_dev(y, mean);
    let ss_res = kernels::sum_sq_diff(y, y_hat);
    if ss_tot == 0.0 {
        // Constant target: perfect iff we predict the constant.
        return if ss_res < 1e-18 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

/// Escalating ridge penalties tried after plain OLS fails.
const RIDGE_LADDER: [f64; 4] = [1e-8, 1e-4, 1e-1, 1.0];

/// Fit `y` on predictor columns with an intercept.
///
/// Requires at least `p + 1` observations for `p` predictors (otherwise the
/// system is underdetermined even with the intercept).
pub fn fit_ols(columns: &[Vec<f64>], y: &[f64]) -> Result<LinearFit> {
    let cols: Vec<&[f64]> = columns.iter().map(Vec::as_slice).collect();
    fit_ols_cols(&cols, y)
}

/// Slice-of-slices variant of [`fit_ols`] — the zero-copy entry point: the
/// search hot path hands borrowed column views straight in, without
/// cloning whole columns per candidate.
///
/// Internally this is exactly the sharded pipeline with a single shard:
/// [`column_moments`] → [`gram_partial`] over the whole range →
/// [`fit_from_parts`].
pub fn fit_ols_cols(columns: &[&[f64]], y: &[f64]) -> Result<LinearFit> {
    let moments = column_moments(columns, y)?;
    let scales = moments.validated_scales(columns.len())?;
    let part = gram_partial(columns, y, &scales, 0);
    fit_from_parts(vec![part], &scales, columns, y)
}

/// Phase-A sufficient statistics of one row range: row count, per-column
/// max-|x| (conditioning scales are derived from these), and whether every
/// value is finite. All three merge exactly: `+` on disjoint counts, `max`
/// (associative, commutative, 0-identity over absolute values), and `&&`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnMoments {
    /// Rows covered.
    pub rows: usize,
    /// Per-column maximum absolute value over the covered rows.
    pub max_abs: Vec<f64>,
    /// Whether every covered value (columns and y) is finite.
    pub finite: bool,
}

impl ColumnMoments {
    /// Merge statistics of disjoint row ranges (order-insensitive: every
    /// combining operation here is exact).
    pub fn merge(parts: &[ColumnMoments]) -> ColumnMoments {
        let p = parts.first().map_or(0, |m| m.max_abs.len());
        let mut out = ColumnMoments {
            rows: 0,
            max_abs: vec![0.0; p],
            finite: true,
        };
        for part in parts {
            out.rows += part.rows;
            out.finite &= part.finite;
            for (m, v) in out.max_abs.iter_mut().zip(part.max_abs.iter()) {
                *m = m.max(*v);
            }
        }
        out
    }

    /// Validate the merged statistics exactly as [`fit_ols_cols`] does
    /// (enough rows, all finite) and derive the conditioning scales
    /// (max-|x|, with 1.0 for all-zero columns).
    pub fn validated_scales(&self, p: usize) -> Result<Vec<f64>> {
        if self.rows < p + 1 {
            return Err(NumericsError::InsufficientData {
                needed: p + 1,
                got: self.rows,
            });
        }
        if !self.finite {
            return Err(NumericsError::InvalidArgument(
                "non-finite value in regression input".to_string(),
            ));
        }
        Ok(self
            .max_abs
            .iter()
            .map(|&m| if m > 0.0 { m } else { 1.0 })
            .collect())
    }
}

/// Compute [`ColumnMoments`] over one row range (`columns` and `y` are the
/// range's slices). Errors on ragged column lengths.
///
/// Each column is read **once**: max-|x| and finiteness come out of one
/// fused lane-accumulated pass ([`kernels::max_abs_finite`]). Because
/// `max` and `&&` are exact under any fold order, the result is
/// bit-identical to the retained scalar reference
/// ([`column_moments_scalar`]) on every input.
pub fn column_moments(columns: &[&[f64]], y: &[f64]) -> Result<ColumnMoments> {
    let n = y.len();
    for c in columns {
        if c.len() != n {
            return Err(NumericsError::DimensionMismatch {
                expected: format!("{n} rows"),
                found: format!("{} rows", c.len()),
            });
        }
    }
    let (_, mut finite) = kernels::max_abs_finite(y);
    let max_abs: Vec<f64> = columns
        .iter()
        .map(|c| {
            let (m, fin) = kernels::max_abs_finite(c);
            finite &= fin;
            m
        })
        .collect();
    Ok(ColumnMoments {
        rows: n,
        max_abs,
        finite,
    })
}

/// The pre-kernel scalar reference for [`column_moments`]: separate
/// max-fold and finiteness passes per column. Retained for the
/// differential bench (`bench_search`'s kernel section) and the property
/// suite; agreement with the fused kernel is **exact** (bit-identical) —
/// both reductions are order-insensitive.
pub fn column_moments_scalar(columns: &[&[f64]], y: &[f64]) -> Result<ColumnMoments> {
    let n = y.len();
    for c in columns {
        if c.len() != n {
            return Err(NumericsError::DimensionMismatch {
                expected: format!("{n} rows"),
                found: format!("{} rows", c.len()),
            });
        }
    }
    // lint:allow(float-fold-order: scalar bit-reference for kernels::column_moments; max-fold is order-insensitive)
    let max_abs: Vec<f64> = columns
        .iter()
        .map(|c| c.iter().fold(0.0f64, |m, v| m.max(v.abs())))
        .collect();
    let finite =
        y.iter().all(|v| v.is_finite()) && columns.iter().all(|c| c.iter().all(|v| v.is_finite()));
    Ok(ColumnMoments {
        rows: n,
        max_abs,
        finite,
    })
}

/// One canonical block's share of the normal equations: `XᵀX` (row-major,
/// `d × d` with `d = p + 1` for the intercept) and `Xᵀy` of the scaled
/// design over up to [`GRAM_BLOCK_ROWS`] rows.
#[derive(Debug, Clone, PartialEq)]
pub struct GramBlock {
    xtx: Vec<f64>,
    xty: Vec<f64>,
}

impl GramBlock {
    /// Reassemble a block from its raw sums — the deserialization entry
    /// point for shard statistics that crossed a process or machine
    /// boundary. The caller is responsible for having round-tripped the
    /// floats exactly (`f64::to_bits`); any rounding here would break the
    /// bit-identical merge contract.
    pub fn new(xtx: Vec<f64>, xty: Vec<f64>) -> Self {
        GramBlock { xtx, xty }
    }

    /// Row-major upper-triangular `XᵀX` sums of this block.
    pub fn xtx(&self) -> &[f64] {
        &self.xtx
    }

    /// `Xᵀy` sums of this block.
    pub fn xty(&self) -> &[f64] {
        &self.xty
    }
}

/// Phase-B sufficient statistics of one row range: its canonical blocks,
/// tagged with the absolute index of the first one.
#[derive(Debug, Clone, PartialEq)]
pub struct GramPartial {
    /// Absolute block index (`range.start / GRAM_BLOCK_ROWS`) of
    /// `blocks[0]`.
    pub first_block: usize,
    blocks: Vec<GramBlock>,
}

impl GramPartial {
    /// Reassemble a partial from deserialized blocks (see
    /// [`GramBlock::new`]).
    pub fn new(first_block: usize, blocks: Vec<GramBlock>) -> Self {
        GramPartial {
            first_block,
            blocks,
        }
    }

    /// The canonical blocks, in block order.
    pub fn blocks(&self) -> &[GramBlock] {
        &self.blocks
    }
}

/// Accumulate the blocked Gram statistics of one row range. The range must
/// start on the canonical grid: `first_block` is its absolute start row
/// divided by [`GRAM_BLOCK_ROWS`]. Within each block:
///
/// 1. every design column's window — the intercept's ones and each
///    predictor pre-scaled by its conditioning scale — is staged **once**
///    into a column-major scratch (one divide per value, then the value
///    is reused across every Gram entry that reads it);
/// 2. each upper-triangle `XᵀX` entry and each `Xᵀy` entry is one
///    [`kernels::dot`] over two staged windows: [`kernels::LANES`]-wide
///    partial sums folded in a fixed order at block end.
///
/// The accumulation order inside a block depends only on the block's
/// data — never on the caller — so a shard whose boundaries sit on the
/// canonical grid produces exactly the block sums the unsharded pass
/// produces, kernel or not. ([`gram_partial_scalar`] keeps the pre-kernel
/// row-walk order as a tolerance reference.)
pub fn gram_partial(
    columns: &[&[f64]],
    y: &[f64],
    scales: &[f64],
    first_block: usize,
) -> GramPartial {
    let n = y.len();
    let d = columns.len() + 1;
    let mut blocks = Vec::with_capacity(n.div_ceil(GRAM_BLOCK_ROWS));
    // Column-major block stage: window `i` of the scaled design lives at
    // `stage[i * GRAM_BLOCK_ROWS..][..len]`. Window 0 (the intercept's
    // ones) is written once and never overwritten — trailing rows of a
    // short final block are simply not read.
    let mut stage = vec![0.0f64; d * GRAM_BLOCK_ROWS];
    stage[..GRAM_BLOCK_ROWS].fill(1.0);
    let mut lo = 0usize;
    while lo < n {
        let hi = (lo + GRAM_BLOCK_ROWS).min(n);
        let len = hi - lo;
        let (_ones, predictors) = stage.split_at_mut(GRAM_BLOCK_ROWS);
        for (dst, (c, &s)) in predictors
            .chunks_exact_mut(GRAM_BLOCK_ROWS)
            .zip(columns.iter().zip(scales.iter()))
        {
            kernels::scale_into(&mut dst[..len], &c[lo..hi], s);
        }
        let mut block = GramBlock {
            xtx: vec![0.0; d * d],
            xty: vec![0.0; d],
        };
        let yb = &y[lo..hi];
        // Upper triangle only; mirrored once after the global fold.
        for i in 0..d {
            let ci = &stage[i * GRAM_BLOCK_ROWS..i * GRAM_BLOCK_ROWS + len];
            for j in i..d {
                let cj = &stage[j * GRAM_BLOCK_ROWS..j * GRAM_BLOCK_ROWS + len];
                block.xtx[i * d + j] = kernels::dot(ci, cj);
            }
            block.xty[i] = kernels::dot(ci, yb);
        }
        blocks.push(block);
        lo = hi;
    }
    GramPartial {
        first_block,
        blocks,
    }
}

/// The pre-kernel scalar reference for [`gram_partial`]: a per-row
/// `x_row` staging pass feeding a scalar triangle walk with zero-skip
/// branches. Retained for the differential bench (`bench_search`'s
/// kernel section asserts the blocked kernel's speedup over this) and
/// for the property suite's tolerance comparison — the kernel folds each
/// block's terms in a different (but equally fixed) order, so agreement
/// on finite data is within rounding, not bit-exact.
pub fn gram_partial_scalar(
    columns: &[&[f64]],
    y: &[f64],
    scales: &[f64],
    first_block: usize,
) -> GramPartial {
    let n = y.len();
    let d = columns.len() + 1;
    let mut blocks = Vec::with_capacity(n.div_ceil(GRAM_BLOCK_ROWS));
    let mut x_row = vec![0.0f64; d];
    let mut lo = 0usize;
    while lo < n {
        let hi = (lo + GRAM_BLOCK_ROWS).min(n);
        let mut block = GramBlock {
            xtx: vec![0.0; d * d],
            xty: vec![0.0; d],
        };
        for r in lo..hi {
            x_row[0] = 1.0;
            for (slot, (c, &s)) in x_row[1..].iter_mut().zip(columns.iter().zip(scales.iter())) {
                *slot = c[r] / s;
            }
            for i in 0..d {
                let a = x_row[i];
                if a == 0.0 {
                    continue;
                }
                let row = &mut block.xtx[i * d..(i + 1) * d];
                for j in i..d {
                    // lint:allow(float-fold-order: scalar bit-reference implementation the blocked gram kernel is tested against)
                    row[j] += a * x_row[j];
                }
            }
            let yr = y[r];
            if yr != 0.0 {
                for (o, &a) in block.xty.iter_mut().zip(x_row.iter()) {
                    *o += a * yr;
                }
            }
        }
        blocks.push(block);
        lo = hi;
    }
    GramPartial {
        first_block,
        blocks,
    }
}

/// Solve the merged normal equations and finish the fit: fold every block
/// in absolute block order (parts are sorted here, so hand them over in any
/// order), Cholesky with the ridge ladder, unscale the coefficients, and
/// compute residuals/R² over the full columns.
///
/// `columns`/`y` are the **full** (unsharded) data — residual computation
/// is elementwise, so it needs no blocking to stay exact.
pub fn fit_from_parts(
    mut parts: Vec<GramPartial>,
    scales: &[f64],
    columns: &[&[f64]],
    y: &[f64],
) -> Result<LinearFit> {
    let d = columns.len() + 1;
    parts.sort_by_key(|p| p.first_block);
    // Merged partials must tile the block grid: each non-empty partial
    // picks up exactly where the previous one ended. An overlap or a
    // duplicate would silently double-count its rows in the fold below.
    debug_assert!(
        parts
            .iter()
            .filter(|p| !p.blocks.is_empty())
            .try_fold(None::<usize>, |prev_end, p| match prev_end {
                Some(end) if p.first_block != end => None,
                _ => Some(Some(p.first_block + p.blocks.len())),
            })
            .is_some(),
        "merged GramPartials must cover disjoint, contiguous block ranges"
    );
    let mut xtx = vec![0.0f64; d * d];
    let mut xty = vec![0.0f64; d];
    for part in &parts {
        for block in &part.blocks {
            for (acc, v) in xtx.iter_mut().zip(block.xtx.iter()) {
                *acc += v;
            }
            for (acc, v) in xty.iter_mut().zip(block.xty.iter()) {
                *acc += v;
            }
        }
    }
    // Mirror the upper triangle.
    for i in 0..d {
        for j in 0..i {
            xtx[i * d + j] = xtx[j * d + i];
        }
    }
    let gram = Matrix::from_rows(d, d, xtx)?;

    let mut beta: Option<Vec<f64>> = None;
    let mut used_lambda = 0.0;
    match solve_cholesky(&gram, &xty) {
        Ok(b) => beta = Some(b),
        Err(_) => {
            for &lambda in &RIDGE_LADDER {
                let mut g = gram.clone();
                // Regularize slopes only; leave the intercept unpenalized.
                for i in 1..g.rows() {
                    g[(i, i)] += lambda;
                }
                if let Ok(b) = solve_cholesky(&g, &xty) {
                    beta = Some(b);
                    used_lambda = lambda;
                    break;
                }
            }
        }
    }
    let beta = beta.ok_or_else(|| {
        NumericsError::Singular("normal equations unsolvable even with ridge".to_string())
    })?;

    let intercept = beta[0];
    let coefficients: Vec<f64> = beta[1..]
        .iter()
        .zip(scales.iter())
        .map(|(&b, &s)| b / s)
        .collect();

    let fit = LinearFit {
        intercept,
        coefficients,
        r_squared: 0.0,
        residuals: Vec::new(),
        ridge_lambda: used_lambda,
    };
    let y_hat = fit.predict_cols(columns)?;
    let residuals: Vec<f64> = y.iter().zip(y_hat.iter()).map(|(a, b)| a - b).collect();
    let r2 = r_squared(y, &y_hat);
    Ok(LinearFit {
        residuals,
        r_squared: r2,
        ..fit
    })
}

/// Fit a constant model `y = c` (no predictors): `c` is the mean of `y`.
/// This is the degenerate transformation "set everything to c" and also the
/// fallback when no transformation attributes are available.
pub fn fit_constant(y: &[f64]) -> Result<LinearFit> {
    if y.is_empty() {
        return Err(NumericsError::InsufficientData { needed: 1, got: 0 });
    }
    // lint:allow(float-fold-order: sequential row-order sum is the pinned constant-fit semantics)
    let mean = y.iter().sum::<f64>() / y.len() as f64;
    let residuals: Vec<f64> = y.iter().map(|v| v - mean).collect();
    let y_hat = vec![mean; y.len()];
    Ok(LinearFit {
        intercept: mean,
        coefficients: Vec::new(),
        r_squared: r_squared(y, &y_hat),
        residuals,
        ridge_lambda: 0.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_affine_relation() {
        // The paper's R1: y = 1.05 x + 1000, exactly.
        let x: Vec<f64> = vec![23_000.0, 25_000.0, 21_000.0, 18_000.0];
        let y: Vec<f64> = x.iter().map(|v| 1.05 * v + 1000.0).collect();
        let fit = fit_ols(&[x], &y).unwrap();
        assert!((fit.coefficients[0] - 1.05).abs() < 1e-9);
        assert!((fit.intercept - 1000.0).abs() < 1e-4);
        assert!(fit.r_squared > 0.999_999);
        assert!(fit.max_abs_error() < 1e-6);
        assert_eq!(fit.ridge_lambda, 0.0);
    }

    #[test]
    fn recovers_two_predictor_relation() {
        // y = 0.1·salary + 200·exp + 50
        let salary = vec![230_000.0, 250_000.0, 160_000.0, 130_000.0, 110_000.0];
        let exp = vec![2.0, 3.0, 5.0, 1.0, 2.0];
        let y: Vec<f64> = salary
            .iter()
            .zip(exp.iter())
            .map(|(&s, &e)| 0.1 * s + 200.0 * e + 50.0)
            .collect();
        let fit = fit_ols(&[salary, exp], &y).unwrap();
        assert!((fit.coefficients[0] - 0.1).abs() < 1e-9);
        assert!((fit.coefficients[1] - 200.0).abs() < 1e-6);
        assert!((fit.intercept - 50.0).abs() < 1e-4);
    }

    #[test]
    fn predict_matches_formula() {
        let fit = LinearFit {
            intercept: 10.0,
            coefficients: vec![2.0, -1.0],
            r_squared: 1.0,
            residuals: vec![],
            ridge_lambda: 0.0,
        };
        assert_eq!(fit.predict(&[3.0, 4.0]), 10.0 + 6.0 - 4.0);
        let cols = vec![vec![3.0, 0.0], vec![4.0, 0.0]];
        assert_eq!(fit.predict_columns(&cols).unwrap(), vec![12.0, 10.0]);
        assert!(fit.predict_columns(&[vec![1.0]]).is_err());
    }

    #[test]
    fn insufficient_data_rejected() {
        assert!(matches!(
            fit_ols(&[vec![1.0]], &[2.0]).unwrap_err(),
            NumericsError::InsufficientData { needed: 2, got: 1 }
        ));
    }

    #[test]
    fn collinear_predictors_fall_back_to_ridge() {
        let x1 = vec![1.0, 2.0, 3.0, 4.0];
        let x2 = vec![2.0, 4.0, 6.0, 8.0]; // exactly 2·x1
        let y = vec![3.0, 6.0, 9.0, 12.0];
        let fit = fit_ols(&[x1.clone(), x2], &y).unwrap();
        assert!(fit.ridge_lambda > 0.0, "expected ridge fallback");
        // The fit should still predict well.
        let y_hat = fit
            .predict_columns(&[x1.clone(), x1.iter().map(|v| 2.0 * v).collect()])
            .unwrap();
        for (a, b) in y.iter().zip(y_hat.iter()) {
            assert!((a - b).abs() < 0.2, "{a} vs {b}");
        }
    }

    #[test]
    fn constant_column_handled() {
        // A predictor with zero variance is collinear with the intercept.
        let x = vec![5.0, 5.0, 5.0];
        let y = vec![1.0, 2.0, 3.0];
        let fit = fit_ols(&[x], &y).unwrap();
        assert!((fit.predict(&[5.0]) - 2.0).abs() < 0.5);
    }

    #[test]
    fn non_finite_input_rejected() {
        assert!(fit_ols(&[vec![1.0, f64::NAN, 3.0]], &[1.0, 2.0, 3.0]).is_err());
        assert!(fit_ols(&[vec![1.0, 2.0, 3.0]], &[1.0, f64::INFINITY, 3.0]).is_err());
    }

    #[test]
    fn constant_fit_is_mean() {
        let fit = fit_constant(&[2.0, 4.0, 6.0]).unwrap();
        assert_eq!(fit.intercept, 4.0);
        assert!(fit.coefficients.is_empty());
        assert_eq!(fit.predict(&[]), 4.0);
        assert!(fit_constant(&[]).is_err());
    }

    #[test]
    fn r_squared_edge_cases() {
        assert_eq!(r_squared(&[], &[]), 1.0);
        // Constant target predicted perfectly.
        assert_eq!(r_squared(&[3.0, 3.0], &[3.0, 3.0]), 1.0);
        // Constant target predicted wrongly.
        assert_eq!(r_squared(&[3.0, 3.0], &[1.0, 1.0]), 0.0);
        // Perfect fit.
        assert_eq!(r_squared(&[1.0, 2.0], &[1.0, 2.0]), 1.0);
    }

    #[test]
    fn mean_abs_error_empty_residuals() {
        let fit = LinearFit {
            intercept: 0.0,
            coefficients: vec![],
            r_squared: 1.0,
            residuals: vec![],
            ridge_lambda: 0.0,
        };
        assert_eq!(fit.mean_abs_error(), 0.0);
        assert_eq!(fit.max_abs_error(), 0.0);
    }

    /// Deterministic pseudo-random data without external crates.
    fn lcg_data(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2_000.0 - 1_000.0
            })
            .collect()
    }

    #[test]
    fn sharded_sufficient_statistics_are_bit_identical() {
        // Splitting the rows at any set of block-aligned boundaries and
        // merging the per-shard statistics must reproduce the unsharded
        // fit to the last bit — coefficients, residuals, R², λ.
        for n in [5usize, 127, 128, 129, 400, 1000, 4097] {
            let x1 = lcg_data(n, 7);
            let x2 = lcg_data(n, 99);
            let y: Vec<f64> = x1
                .iter()
                .zip(x2.iter())
                .zip(lcg_data(n, 5).iter())
                .map(|((a, b), e)| 1.05 * a - 3.0 * b + 40.0 + 0.01 * e)
                .collect();
            let cols: Vec<&[f64]> = vec![&x1, &x2];
            let central = fit_ols_cols(&cols, &y).unwrap();

            for shards in [1usize, 2, 3, 7, 64] {
                // Block-aligned boundaries, mirroring RowRange::split_aligned.
                let n_blocks = n.div_ceil(GRAM_BLOCK_ROWS);
                let bounds: Vec<(usize, usize)> = (0..shards)
                    .map(|i| {
                        let lo = (i * n_blocks / shards) * GRAM_BLOCK_ROWS;
                        let hi = (((i + 1) * n_blocks / shards) * GRAM_BLOCK_ROWS).min(n);
                        (lo.min(n), hi.max(lo.min(n)))
                    })
                    .collect();
                let moments: Vec<ColumnMoments> = bounds
                    .iter()
                    .map(|&(lo, hi)| {
                        let sliced: Vec<&[f64]> = cols.iter().map(|c| &c[lo..hi]).collect();
                        column_moments(&sliced, &y[lo..hi]).unwrap()
                    })
                    .collect();
                let merged = ColumnMoments::merge(&moments);
                assert_eq!(merged.rows, n);
                let scales = merged.validated_scales(cols.len()).unwrap();
                let parts: Vec<GramPartial> = bounds
                    .iter()
                    .map(|&(lo, hi)| {
                        let sliced: Vec<&[f64]> = cols.iter().map(|c| &c[lo..hi]).collect();
                        gram_partial(&sliced, &y[lo..hi], &scales, lo / GRAM_BLOCK_ROWS)
                    })
                    .collect();
                let sharded = fit_from_parts(parts, &scales, &cols, &y).unwrap();

                assert_eq!(sharded.intercept.to_bits(), central.intercept.to_bits());
                for (a, b) in sharded.coefficients.iter().zip(central.coefficients.iter()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "n={n} shards={shards}");
                }
                for (a, b) in sharded.residuals.iter().zip(central.residuals.iter()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "n={n} shards={shards}");
                }
                assert_eq!(sharded.r_squared.to_bits(), central.r_squared.to_bits());
                assert_eq!(sharded.ridge_lambda, central.ridge_lambda);
            }
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "disjoint, contiguous block ranges")]
    fn overlapping_gram_partials_are_rejected() {
        // Feeding the same shard's statistics twice would double-count
        // its rows; fit_from_parts traps this in debug builds.
        let x = lcg_data(256, 11);
        let y = lcg_data(256, 13);
        let cols: Vec<&[f64]> = vec![&x];
        let scales = column_moments(&cols, &y)
            .unwrap()
            .validated_scales(1)
            .unwrap();
        let part = gram_partial(&cols, &y, &scales, 0);
        let _ = fit_from_parts(vec![part.clone(), part], &scales, &cols, &y);
    }

    #[test]
    fn merged_moments_reproduce_validation_errors() {
        // Merged statistics must fail in exactly the cases the central
        // path fails: too few rows, non-finite values.
        let short = column_moments(&[&[1.0][..]], &[2.0]).unwrap();
        assert!(matches!(
            ColumnMoments::merge(&[short])
                .validated_scales(1)
                .unwrap_err(),
            NumericsError::InsufficientData { needed: 2, got: 1 }
        ));
        let a = column_moments(&[&[1.0, 2.0][..]], &[1.0, 2.0]).unwrap();
        let b = column_moments(&[&[f64::NAN][..]], &[3.0]).unwrap();
        assert!(!b.finite);
        assert!(ColumnMoments::merge(&[a, b]).validated_scales(1).is_err());
    }

    #[test]
    fn large_scale_predictors_conditioned() {
        // Salary-scale values: conditioning via column scaling must cope.
        let x: Vec<f64> = (0..100).map(|i| 100_000.0 + 1_000.0 * i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 0.1 * v + 12_345.0).collect();
        let fit = fit_ols(&[x], &y).unwrap();
        assert!((fit.coefficients[0] - 0.1).abs() < 1e-8);
        assert!((fit.intercept - 12_345.0).abs() < 1e-3);
    }
}
