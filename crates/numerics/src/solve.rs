//! Direct solvers for small dense linear systems.
//!
//! ChARLES fits regressions over data partitions with at most a handful of
//! predictors (the paper's `t` parameter is 2 in the demo), so the systems
//! solved here are tiny (`p ≤ ~10`). We provide Cholesky for the
//! symmetric-positive-definite normal equations and Gaussian elimination
//! with partial pivoting as the general fallback.

use crate::error::{NumericsError, Result};
use crate::matrix::Matrix;

/// Solve `A x = b` for symmetric positive-definite `A` via Cholesky
/// (`A = L Lᵀ`). Errors if `A` is not SPD within tolerance.
pub fn solve_cholesky(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let n = a.rows();
    if a.cols() != n {
        return Err(NumericsError::DimensionMismatch {
            expected: "square matrix".to_string(),
            found: format!("{}×{}", a.rows(), a.cols()),
        });
    }
    if b.len() != n {
        return Err(NumericsError::DimensionMismatch {
            expected: format!("rhs of length {n}"),
            found: format!("length {}", b.len()),
        });
    }
    // Decompose.
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return Err(NumericsError::Singular(format!(
                        "non-positive pivot {sum:.3e} at index {i}"
                    )));
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    // Forward substitution: L z = b.
    let mut z = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[(i, k)] * z[k];
        }
        z[i] = sum / l[(i, i)];
    }
    // Back substitution: Lᵀ x = z.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = z[i];
        for k in (i + 1)..n {
            sum -= l[(k, i)] * x[k];
        }
        x[i] = sum / l[(i, i)];
    }
    Ok(x)
}

/// Solve `A x = b` by Gaussian elimination with partial pivoting.
pub fn solve_gaussian(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let n = a.rows();
    if a.cols() != n {
        return Err(NumericsError::DimensionMismatch {
            expected: "square matrix".to_string(),
            found: format!("{}×{}", a.rows(), a.cols()),
        });
    }
    if b.len() != n {
        return Err(NumericsError::DimensionMismatch {
            expected: format!("rhs of length {n}"),
            found: format!("length {}", b.len()),
        });
    }
    // Augmented working copy.
    let mut m = a.clone();
    let mut rhs = b.to_vec();
    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        let mut best = m[(col, col)].abs();
        for r in (col + 1)..n {
            let v = m[(r, col)].abs();
            if v > best {
                best = v;
                pivot = r;
            }
        }
        if best < 1e-12 {
            return Err(NumericsError::Singular(format!(
                "pivot {best:.3e} below tolerance at column {col}"
            )));
        }
        if pivot != col {
            for c in 0..n {
                let tmp = m[(col, c)];
                m[(col, c)] = m[(pivot, c)];
                m[(pivot, c)] = tmp;
            }
            rhs.swap(col, pivot);
        }
        // Eliminate below.
        for r in (col + 1)..n {
            let factor = m[(r, col)] / m[(col, col)];
            if factor == 0.0 {
                continue;
            }
            for c in col..n {
                m[(r, c)] -= factor * m[(col, c)];
            }
            rhs[r] -= factor * rhs[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = rhs[i];
        for c in (i + 1)..n {
            sum -= m[(i, c)] * x[c];
        }
        x[i] = sum / m[(i, i)];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: &[f64], b: &[f64], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < tol)
    }

    #[test]
    fn cholesky_solves_spd() {
        // SPD matrix: [[4,2],[2,3]], b = [10, 8] -> x = [1.75, 1.5]
        let a = Matrix::from_rows(2, 2, vec![4.0, 2.0, 2.0, 3.0]).unwrap();
        let x = solve_cholesky(&a, &[10.0, 8.0]).unwrap();
        assert!(approx_eq(&x, &[1.75, 1.5], 1e-12));
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        assert!(matches!(
            solve_cholesky(&a, &[1.0, 1.0]).unwrap_err(),
            NumericsError::Singular(_)
        ));
    }

    #[test]
    fn gaussian_solves_general() {
        // Non-symmetric system.
        let a =
            Matrix::from_rows(3, 3, vec![0.0, 2.0, 1.0, 1.0, -1.0, 0.0, 3.0, 0.0, -2.0]).unwrap();
        let x_true = vec![1.0, 2.0, -1.0];
        let b = a.matvec(&x_true).unwrap();
        let x = solve_gaussian(&a, &b).unwrap();
        assert!(approx_eq(&x, &x_true, 1e-10));
    }

    #[test]
    fn gaussian_detects_singular() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert!(solve_gaussian(&a, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn solvers_agree_on_spd() {
        let a = Matrix::from_rows(3, 3, vec![6.0, 2.0, 1.0, 2.0, 5.0, 2.0, 1.0, 2.0, 4.0]).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let x1 = solve_cholesky(&a, &b).unwrap();
        let x2 = solve_gaussian(&a, &b).unwrap();
        assert!(approx_eq(&x1, &x2, 1e-10));
    }

    #[test]
    fn dimension_errors() {
        let a = Matrix::zeros(2, 3);
        assert!(solve_cholesky(&a, &[1.0, 2.0]).is_err());
        let a = Matrix::identity(2);
        assert!(solve_cholesky(&a, &[1.0]).is_err());
        assert!(solve_gaussian(&a, &[1.0]).is_err());
    }
}
