//! Descriptive statistics over `f64` slices.
//!
//! The dense reductions (sum, variance, mean absolute difference) ride
//! the lane-accumulated kernels in [`crate::kernels`]: deterministic
//! fixed-order folds that autovectorize.

use crate::error::{NumericsError, Result};
use crate::kernels;

/// Sum of values (lane-accumulated, fixed fold order).
pub fn sum(xs: &[f64]) -> f64 {
    kernels::sum(xs)
}

/// Arithmetic mean; errors on empty input.
pub fn mean(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(NumericsError::InsufficientData { needed: 1, got: 0 });
    }
    Ok(sum(xs) / xs.len() as f64)
}

/// Population variance; errors on empty input.
pub fn variance(xs: &[f64]) -> Result<f64> {
    let m = mean(xs)?;
    Ok(kernels::sum_sq_dev(xs, m) / xs.len() as f64)
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> Result<f64> {
    Ok(variance(xs)?.sqrt())
}

/// Minimum (NaN-free input assumed); errors on empty input.
pub fn min(xs: &[f64]) -> Result<f64> {
    xs.iter()
        .copied()
        .reduce(f64::min)
        .ok_or(NumericsError::InsufficientData { needed: 1, got: 0 })
}

/// Maximum; errors on empty input.
pub fn max(xs: &[f64]) -> Result<f64> {
    xs.iter()
        .copied()
        .reduce(f64::max)
        .ok_or(NumericsError::InsufficientData { needed: 1, got: 0 })
}

/// `q`-quantile (0 ≤ q ≤ 1) with linear interpolation between order
/// statistics, matching the common "type 7" definition.
pub fn quantile(xs: &[f64], q: f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(NumericsError::InsufficientData { needed: 1, got: 0 });
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(NumericsError::InvalidArgument(format!(
            "quantile q={q} outside [0, 1]"
        )));
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        return Ok(sorted[lo]);
    }
    let frac = pos - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (0.5-quantile).
pub fn median(xs: &[f64]) -> Result<f64> {
    quantile(xs, 0.5)
}

/// Median absolute deviation (robust spread).
pub fn mad(xs: &[f64]) -> Result<f64> {
    let med = median(xs)?;
    let dev: Vec<f64> = xs.iter().map(|x| (x - med).abs()).collect();
    median(&dev)
}

/// Mean absolute difference between paired slices (L1 distance / n).
pub fn mean_abs_diff(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(NumericsError::DimensionMismatch {
            expected: format!("{} elements", a.len()),
            found: format!("{} elements", b.len()),
        });
    }
    if a.is_empty() {
        return Ok(0.0);
    }
    Ok(kernels::sum_abs_diff(a, b) / a.len() as f64)
}

/// Ranks of values (average ranks for ties), 1-based — the transform behind
/// Spearman correlation.
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        // Average rank for the tie group [i, j].
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            out[idx] = avg;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs).unwrap(), 5.0);
        assert_eq!(variance(&xs).unwrap(), 4.0);
        assert_eq!(std_dev(&xs).unwrap(), 2.0);
        assert_eq!(min(&xs).unwrap(), 2.0);
        assert_eq!(max(&xs).unwrap(), 9.0);
        assert!(mean(&[]).is_err());
        assert!(min(&[]).is_err());
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 4.0);
        assert_eq!(median(&xs).unwrap(), 2.5);
        assert_eq!(quantile(&xs, 0.25).unwrap(), 1.75);
        assert!(quantile(&xs, 1.5).is_err());
        assert!(quantile(&[], 0.5).is_err());
    }

    #[test]
    fn median_odd_length() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
    }

    #[test]
    fn mad_robust() {
        let xs = [1.0, 1.0, 2.0, 2.0, 4.0, 6.0, 9.0];
        assert_eq!(mad(&xs).unwrap(), 1.0);
    }

    #[test]
    fn mean_abs_diff_pairs() {
        assert_eq!(mean_abs_diff(&[1.0, 2.0], &[2.0, 4.0]).unwrap(), 1.5);
        assert_eq!(mean_abs_diff(&[], &[]).unwrap(), 0.0);
        assert!(mean_abs_diff(&[1.0], &[]).is_err());
    }

    #[test]
    fn ranks_with_ties() {
        // [10, 20, 20, 30] -> ranks [1, 2.5, 2.5, 4]
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
        // Already sorted distinct values are 1..n.
        assert_eq!(ranks(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
        // Reverse order.
        assert_eq!(ranks(&[3.0, 2.0, 1.0]), vec![3.0, 2.0, 1.0]);
        assert!(ranks(&[]).is_empty());
    }
}
