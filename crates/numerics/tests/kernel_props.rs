//! Property tests for the blocked statistics kernels (PR 6).
//!
//! Three contracts, mirroring the module docs in `ols.rs`:
//!
//! 1. **Kernel vs itself, across shard splits: bit-identical.** Splitting
//!    the rows at any block-aligned boundary and concatenating the
//!    per-shard `GramPartial` blocks must reproduce the unsharded blocks
//!    to the last bit — and the merged fit must match the central fit on
//!    `f64::to_bits`. This is the repo's distributed-equivalence contract.
//! 2. **Moments kernel vs the retained scalar reference: bit-identical on
//!    every input**, including NaN/∞ and all-zero columns — `max` and `&&`
//!    are exact under any fold order.
//! 3. **Gram kernel vs the retained scalar reference: within documented
//!    tolerance on finite data.** The blocked kernel folds each block's
//!    products in a different (fixed) order than the scalar row walk, so
//!    sums agree to rounding, not bits. The bound below is the standard
//!    `n·ε·Σ|terms|` backward-error envelope with slack.

use charles_numerics::ols::{
    column_moments, column_moments_scalar, fit_from_parts, gram_partial, gram_partial_scalar,
    ColumnMoments, GramPartial, GRAM_BLOCK_ROWS,
};
use proptest::prelude::*;

/// Deterministic pseudo-random data without external crates.
fn lcg_data(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2_000.0 - 1_000.0
        })
        .collect()
}

/// Row counts that straddle the canonical block grid.
fn row_count() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(127usize),
        Just(128usize),
        Just(129usize),
        Just(4097usize),
        9usize..400,
    ]
}

/// Block-aligned shard bounds, mirroring `RowRange::split_aligned`.
fn aligned_bounds(n: usize, shards: usize) -> Vec<(usize, usize)> {
    let n_blocks = n.div_ceil(GRAM_BLOCK_ROWS);
    (0..shards)
        .map(|i| {
            let lo = ((i * n_blocks / shards) * GRAM_BLOCK_ROWS).min(n);
            let hi = (((i + 1) * n_blocks / shards) * GRAM_BLOCK_ROWS)
                .min(n)
                .max(lo);
            (lo, hi)
        })
        .collect()
}

fn make_design(n: usize, p: usize, seed: u64, zero_col: bool) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut cols: Vec<Vec<f64>> = (0..p).map(|j| lcg_data(n, seed ^ (j as u64 + 1))).collect();
    if zero_col {
        cols[0] = vec![0.0; n];
    }
    let y = lcg_data(n, seed ^ 0xABCD);
    (cols, y)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gram_bit_identical_across_block_aligned_splits(
        n in row_count(),
        p in 1usize..=8,
        shards in 1usize..=7,
        seed in 0u64..1_000_000,
        zero_col in any::<bool>(),
    ) {
        let (cols, y) = make_design(n, p, seed, zero_col);
        let col_refs: Vec<&[f64]> = cols.iter().map(Vec::as_slice).collect();
        let moments = column_moments(&col_refs, &y).unwrap();
        prop_assume!(n > p);
        let scales = moments.validated_scales(p).unwrap();

        let full = gram_partial(&col_refs, &y, &scales, 0);
        let bounds = aligned_bounds(n, shards);

        // Per-shard moments merge to the central moments exactly.
        let shard_moments: Vec<ColumnMoments> = bounds
            .iter()
            .map(|&(lo, hi)| {
                let sliced: Vec<&[f64]> = col_refs.iter().map(|c| &c[lo..hi]).collect();
                column_moments(&sliced, &y[lo..hi]).unwrap()
            })
            .collect();
        let merged = ColumnMoments::merge(&shard_moments);
        prop_assert_eq!(merged.rows, moments.rows);
        for (a, b) in merged.max_abs.iter().zip(moments.max_abs.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }

        // Per-shard Gram blocks, concatenated in range order, ARE the
        // unsharded blocks — same bits, not just close.
        let parts: Vec<GramPartial> = bounds
            .iter()
            .map(|&(lo, hi)| {
                let sliced: Vec<&[f64]> = col_refs.iter().map(|c| &c[lo..hi]).collect();
                gram_partial(&sliced, &y[lo..hi], &scales, lo / GRAM_BLOCK_ROWS)
            })
            .collect();
        let concat: Vec<_> = parts.iter().flat_map(|p| p.blocks().iter()).collect();
        prop_assert_eq!(concat.len(), full.blocks().len());
        for (sharded, central) in concat.iter().zip(full.blocks().iter()) {
            for (a, b) in sharded.xtx().iter().zip(central.xtx().iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "n={} p={} shards={}", n, p, shards);
            }
            for (a, b) in sharded.xty().iter().zip(central.xty().iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "n={} p={} shards={}", n, p, shards);
            }
        }

        // And the merged fit equals the central fit on to_bits (when the
        // system is solvable at all — a singular design fails both ways).
        let central_fit = fit_from_parts(vec![full], &scales, &col_refs, &y);
        let sharded_fit = fit_from_parts(parts, &scales, &col_refs, &y);
        match (central_fit, sharded_fit) {
            (Ok(c), Ok(s)) => {
                prop_assert_eq!(c.intercept.to_bits(), s.intercept.to_bits());
                for (a, b) in c.coefficients.iter().zip(s.coefficients.iter()) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
                for (a, b) in c.residuals.iter().zip(s.residuals.iter()) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
                prop_assert_eq!(c.r_squared.to_bits(), s.r_squared.to_bits());
                prop_assert_eq!(c.ridge_lambda.to_bits(), s.ridge_lambda.to_bits());
            }
            (Err(_), Err(_)) => {}
            (c, s) => prop_assert!(false, "solvability diverged: {:?} vs {:?}", c, s),
        }
    }

    #[test]
    fn moments_kernel_matches_scalar_bitwise(
        n in row_count(),
        p in 1usize..=8,
        seed in 0u64..1_000_000,
        zero_col in any::<bool>(),
        poison in prop_oneof![
            Just(None),
            Just(Some(f64::NAN)),
            Just(Some(f64::INFINITY)),
            Just(Some(f64::NEG_INFINITY)),
        ],
        poison_pos in 0usize..4096,
    ) {
        let (mut cols, mut y) = make_design(n, p, seed, zero_col);
        if let Some(v) = poison {
            // Poison either a predictor cell or a y cell.
            if poison_pos % 2 == 0 {
                let c = &mut cols[poison_pos % p];
                let i = poison_pos % c.len();
                c[i] = v;
            } else {
                let i = poison_pos % y.len();
                y[i] = v;
            }
        }
        let col_refs: Vec<&[f64]> = cols.iter().map(Vec::as_slice).collect();
        let kernel = column_moments(&col_refs, &y).unwrap();
        let scalar = column_moments_scalar(&col_refs, &y).unwrap();
        prop_assert_eq!(kernel.rows, scalar.rows);
        prop_assert_eq!(kernel.finite, scalar.finite);
        for (a, b) in kernel.max_abs.iter().zip(scalar.max_abs.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "poison={:?}", poison);
        }
    }

    #[test]
    fn gram_kernel_within_tolerance_of_scalar(
        n in row_count(),
        p in 1usize..=8,
        seed in 0u64..1_000_000,
        zero_col in any::<bool>(),
    ) {
        let (cols, y) = make_design(n, p, seed, zero_col);
        let col_refs: Vec<&[f64]> = cols.iter().map(Vec::as_slice).collect();
        prop_assume!(n > p);
        let scales = column_moments(&col_refs, &y)
            .unwrap()
            .validated_scales(p)
            .unwrap();
        let kernel = gram_partial(&col_refs, &y, &scales, 0);
        let scalar = gram_partial_scalar(&col_refs, &y, &scales, 0);
        prop_assert_eq!(kernel.blocks().len(), scalar.blocks().len());
        // Scaled design values satisfy |x| ≤ 1, so each XᵀX entry is a sum
        // of ≤ GRAM_BLOCK_ROWS values in [-1, 1]; Xᵀy terms carry max|y|.
        let max_y = y.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let tol_xtx = 1e-12 * GRAM_BLOCK_ROWS as f64;
        let tol_xty = 1e-12 * GRAM_BLOCK_ROWS as f64 * max_y.max(1.0);
        for (kb, sb) in kernel.blocks().iter().zip(scalar.blocks().iter()) {
            for (a, b) in kb.xtx().iter().zip(sb.xtx().iter()) {
                prop_assert!((a - b).abs() <= tol_xtx, "xtx {a} vs {b}");
            }
            for (a, b) in kb.xty().iter().zip(sb.xty().iter()) {
                prop_assert!((a - b).abs() <= tol_xty, "xty {a} vs {b}");
            }
        }
    }
}
