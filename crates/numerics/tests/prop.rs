//! Property-based tests for the numeric substrate.

use charles_numerics::normality::{round_to_significant, roundness, snap_candidates};
use charles_numerics::ols::{fit_ols, r_squared};
use charles_numerics::stats::{mean, quantile, ranks};
use charles_numerics::{pearson, spearman};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ols_recovers_exact_affine(
        xs in proptest::collection::vec(-1e5f64..1e5, 3..40),
        slope in -100.0f64..100.0,
        intercept in -1e5f64..1e5,
    ) {
        // Require variance in x so the relation is identifiable.
        let mx = mean(&xs).unwrap();
        prop_assume!(xs.iter().any(|v| (v - mx).abs() > 1.0));
        let y: Vec<f64> = xs.iter().map(|&x| slope * x + intercept).collect();
        let fit = fit_ols(std::slice::from_ref(&xs), &y).unwrap();
        let scale = slope.abs().max(1.0);
        prop_assert!(
            (fit.coefficients[0] - slope).abs() < 1e-6 * scale,
            "slope {} vs {}", fit.coefficients[0], slope
        );
        prop_assert!(fit.r_squared > 1.0 - 1e-6);
    }

    #[test]
    fn ols_residuals_sum_to_zero(
        xs in proptest::collection::vec(-1e4f64..1e4, 4..30),
        ys in proptest::collection::vec(-1e4f64..1e4, 4..30),
    ) {
        let n = xs.len().min(ys.len());
        let xs = &xs[..n];
        let ys = &ys[..n];
        let mx = mean(xs).unwrap();
        prop_assume!(xs.iter().any(|v| (v - mx).abs() > 1.0));
        let fit = fit_ols(&[xs.to_vec()], ys).unwrap();
        // With an intercept, OLS residuals are mean-zero.
        let mean_resid = fit.residuals.iter().sum::<f64>() / n as f64;
        let scale = ys.iter().map(|v| v.abs()).fold(1.0, f64::max);
        prop_assert!(mean_resid.abs() < 1e-6 * scale, "mean residual {mean_resid}");
    }

    #[test]
    fn quantile_within_bounds(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..50),
        q in 0.0f64..=1.0,
    ) {
        let v = quantile(&xs, q).unwrap();
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
        // Monotone in q.
        let v2 = quantile(&xs, (q + 0.1).min(1.0)).unwrap();
        prop_assert!(v2 >= v - 1e-12);
    }

    #[test]
    fn ranks_are_valid(xs in proptest::collection::vec(-1e6f64..1e6, 0..50)) {
        let r = ranks(&xs);
        prop_assert_eq!(r.len(), xs.len());
        if !xs.is_empty() {
            let n = xs.len() as f64;
            // Ranks sum to n(n+1)/2 regardless of ties.
            let sum: f64 = r.iter().sum();
            prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
            for &v in &r {
                prop_assert!((1.0..=n).contains(&v));
            }
        }
    }

    #[test]
    fn pearson_symmetric_and_bounded(
        xs in proptest::collection::vec(-1e4f64..1e4, 2..40),
        ys in proptest::collection::vec(-1e4f64..1e4, 2..40),
    ) {
        let n = xs.len().min(ys.len());
        let (xs, ys) = (&xs[..n], &ys[..n]);
        let a = pearson(xs, ys).unwrap();
        let b = pearson(ys, xs).unwrap();
        prop_assert!((a - b).abs() < 1e-12);
        prop_assert!((-1.0..=1.0).contains(&a));
        let s = spearman(xs, ys).unwrap();
        prop_assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    fn roundness_bounded_and_rounding_helps(x in -1e9f64..1e9) {
        let r = roundness(x);
        prop_assert!((0.0..=1.0).contains(&r));
        let rounded = round_to_significant(x, 1);
        prop_assert!(roundness(rounded) >= r - 1e-12,
            "rounding {x} to {rounded} lowered roundness");
    }

    #[test]
    fn snap_candidates_always_contain_raw(x in -1e9f64..1e9) {
        let cands = snap_candidates(x);
        prop_assert!(!cands.is_empty());
        prop_assert!(cands.contains(&x));
    }

    #[test]
    fn r_squared_at_most_one(
        ys in proptest::collection::vec(-1e4f64..1e4, 1..30),
    ) {
        // Perfect predictions give exactly 1.
        prop_assert!((r_squared(&ys, &ys) - 1.0).abs() < 1e-12);
    }
}
