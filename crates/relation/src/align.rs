//! Snapshot alignment: pairing each entity's source row with its target row.
//!
//! ChARLES assumes both snapshots describe the same entities (no inserts or
//! deletes) over an identical schema. [`SnapshotPair`] validates those
//! assumptions once and precomputes the row correspondence so downstream
//! passes (diffing, regression) can use plain index arithmetic.

use crate::error::{RelationError, Result};
use crate::index::KeyIndex;
use crate::table::Table;
use crate::value::Value;
use crate::view::NumericView;

/// A validated, aligned pair of snapshots.
#[derive(Debug, Clone)]
pub struct SnapshotPair {
    source: Table,
    target: Table,
    /// `target_row_of[i]` = target row holding the same entity as source
    /// row `i`.
    target_row_of: Vec<usize>,
    key_attr: Option<String>,
    /// Whether `target_row_of` is the identity permutation — the common
    /// case (same row order in both snapshots), where target columns can be
    /// viewed zero-copy instead of gathered.
    identity_aligned: bool,
}

impl SnapshotPair {
    /// Align by the tables' declared key column. Schemas must be identical
    /// and key sets must match exactly.
    pub fn align(source: Table, target: Table) -> Result<Self> {
        source.schema().ensure_same(target.schema())?;
        let key_attr = match (source.key_name(), target.key_name()) {
            (Some(a), Some(b)) if a == b => Some(a.to_string()),
            (None, None) => None,
            (a, b) => {
                return Err(RelationError::SchemaMismatch(format!(
                    "key declarations differ: {a:?} vs {b:?}"
                )))
            }
        };
        match &key_attr {
            Some(attr) => Self::align_by_key(source, target, attr.clone()),
            None => Self::align_by_position(source, target),
        }
    }

    /// Align by an explicit key attribute (tables need not have declared it).
    pub fn align_on(source: Table, target: Table, key_attr: &str) -> Result<Self> {
        source.schema().ensure_same(target.schema())?;
        Self::align_by_key(source, target, key_attr.to_string())
    }

    fn align_by_key(source: Table, target: Table, key_attr: String) -> Result<Self> {
        let src_idx = KeyIndex::build(&source, &key_attr)?;
        let tgt_idx = KeyIndex::build(&target, &key_attr)?;
        let missing = src_idx.keys_missing_from(&tgt_idx);
        if let Some(k) = missing.first() {
            return Err(RelationError::KeyNotFound(format!(
                "entity {k} exists in source but not target (ChARLES assumes no deletions)"
            )));
        }
        let extra = tgt_idx.keys_missing_from(&src_idx);
        if let Some(k) = extra.first() {
            return Err(RelationError::KeyNotFound(format!(
                "entity {k} exists in target but not source (ChARLES assumes no insertions)"
            )));
        }
        let key_col = source.column_by_name(&key_attr)?;
        let mut target_row_of = Vec::with_capacity(source.height());
        for i in 0..source.height() {
            let key = key_col.get(i);
            target_row_of.push(tgt_idx.require(&key)?);
        }
        let identity_aligned = target_row_of.iter().enumerate().all(|(i, &t)| i == t);
        Ok(SnapshotPair {
            source,
            target,
            target_row_of,
            key_attr: Some(key_attr),
            identity_aligned,
        })
    }

    fn align_by_position(source: Table, target: Table) -> Result<Self> {
        if source.height() != target.height() {
            return Err(RelationError::LengthMismatch {
                expected: source.height(),
                found: target.height(),
            });
        }
        let target_row_of = (0..source.height()).collect();
        Ok(SnapshotPair {
            source,
            target,
            target_row_of,
            key_attr: None,
            identity_aligned: true,
        })
    }

    /// A sealed copy of this pair: both snapshots compressed into
    /// per-block encodings (see [`Table::sealed`]) with the precomputed
    /// alignment carried over verbatim — no re-validation, since sealing
    /// preserves every cell bit-for-bit.
    pub fn sealed(&self) -> SnapshotPair {
        SnapshotPair {
            source: self.source.sealed(),
            target: self.target.sealed(),
            target_row_of: self.target_row_of.clone(),
            key_attr: self.key_attr.clone(),
            identity_aligned: self.identity_aligned,
        }
    }

    /// The source snapshot.
    pub fn source(&self) -> &Table {
        &self.source
    }

    /// The target snapshot.
    pub fn target(&self) -> &Table {
        &self.target
    }

    /// The key attribute used for alignment, if any.
    pub fn key_attr(&self) -> Option<&str> {
        self.key_attr.as_deref()
    }

    /// Number of aligned entities.
    pub fn len(&self) -> usize {
        self.target_row_of.len()
    }

    /// Whether the pair is empty.
    pub fn is_empty(&self) -> bool {
        self.target_row_of.is_empty()
    }

    /// The target row index aligned with source row `i`.
    pub fn target_row(&self, source_row: usize) -> usize {
        self.target_row_of[source_row]
    }

    /// Whether the alignment is the identity permutation (source row `i`
    /// pairs with target row `i`). When true, target columns in source
    /// order are just the target's own columns.
    pub fn is_identity_aligned(&self) -> bool {
        self.identity_aligned
    }

    /// The key value of source row `i` (or `Int(i)` for positional pairs).
    pub fn key_of(&self, source_row: usize) -> Result<Value> {
        match &self.key_attr {
            Some(attr) => self.source.value(source_row, attr),
            None => Ok(Value::Int(source_row as i64)),
        }
    }

    /// Target attribute values, reordered into **source row order** — i.e.
    /// element `i` is the target value for the entity in source row `i`.
    /// This is the y-vector for all of ChARLES's regressions.
    pub fn target_numeric_aligned(&self, attr: &str) -> Result<Vec<f64>> {
        let col = self.target.column_by_name(attr)?;
        let mut out = Vec::with_capacity(self.len());
        for (i, &t) in self.target_row_of.iter().enumerate() {
            match col.get_f64(t) {
                Some(v) => out.push(v),
                None => {
                    return Err(RelationError::Eval(format!(
                        "target attribute {attr:?} is null/non-numeric for entity at source row {i}"
                    )))
                }
            }
        }
        Ok(out)
    }

    /// [`Self::target_numeric_aligned`] as a shared [`NumericView`].
    ///
    /// For identity-aligned pairs over null-free `Float64` columns this is
    /// **zero-copy** — the view aliases the target table's own buffer;
    /// otherwise the gather happens once and the result is `Arc`-shared.
    /// This is the pair-level plane accessor long-lived sessions cache.
    pub fn target_numeric_view(&self, attr: &str) -> Result<NumericView> {
        if self.identity_aligned {
            self.target.numeric_view(attr)
        } else {
            Ok(NumericView::new(self.target_numeric_aligned(attr)?))
        }
    }

    /// A new pair restricted to the source rows in `rows` (alignment is
    /// preserved; useful for partition-local work).
    pub fn restrict(&self, rows: &[usize]) -> SnapshotPair {
        let source = self.source.take(rows);
        let tgt_rows: Vec<usize> = rows.iter().map(|&r| self.target_row_of[r]).collect();
        let target = self.target.take(&tgt_rows);
        SnapshotPair {
            source,
            target,
            target_row_of: (0..rows.len()).collect(),
            key_attr: self.key_attr.clone(),
            identity_aligned: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TableBuilder;

    fn src() -> Table {
        TableBuilder::new("s")
            .str_col("name", &["Anne", "Bob", "Cathy"])
            .float_col("bonus", &[23_000.0, 25_000.0, 11_000.0])
            .key("name")
            .build()
            .unwrap()
    }

    /// Target with rows shuffled relative to source.
    fn tgt_shuffled() -> Table {
        TableBuilder::new("t")
            .str_col("name", &["Cathy", "Anne", "Bob"])
            .float_col("bonus", &[11_000.0, 25_150.0, 27_250.0])
            .key("name")
            .build()
            .unwrap()
    }

    #[test]
    fn aligns_shuffled_rows_by_key() {
        let pair = SnapshotPair::align(src(), tgt_shuffled()).unwrap();
        assert_eq!(pair.len(), 3);
        assert_eq!(pair.target_row(0), 1); // Anne
        assert_eq!(pair.target_row(1), 2); // Bob
        assert_eq!(pair.target_row(2), 0); // Cathy
        assert_eq!(
            pair.target_numeric_aligned("bonus").unwrap(),
            vec![25_150.0, 27_250.0, 11_000.0]
        );
        assert_eq!(pair.key_attr(), Some("name"));
        assert_eq!(pair.key_of(1).unwrap(), Value::str("Bob"));
    }

    #[test]
    fn positional_alignment_without_keys() {
        let s = TableBuilder::new("s")
            .float_col("x", &[1.0, 2.0])
            .build()
            .unwrap();
        let t = TableBuilder::new("t")
            .float_col("x", &[10.0, 20.0])
            .build()
            .unwrap();
        let pair = SnapshotPair::align(s, t).unwrap();
        assert_eq!(pair.target_row(1), 1);
        assert_eq!(pair.key_of(1).unwrap(), Value::Int(1));
        assert_eq!(pair.key_attr(), None);
    }

    #[test]
    fn schema_mismatch_rejected() {
        let s = TableBuilder::new("s")
            .float_col("x", &[1.0])
            .build()
            .unwrap();
        let t = TableBuilder::new("t").int_col("x", &[1]).build().unwrap();
        assert!(matches!(
            SnapshotPair::align(s, t).unwrap_err(),
            RelationError::SchemaMismatch(_)
        ));
    }

    #[test]
    fn entity_set_mismatch_rejected() {
        let t = TableBuilder::new("t")
            .str_col("name", &["Anne", "Bob", "Zoe"])
            .float_col("bonus", &[1.0, 2.0, 3.0])
            .key("name")
            .build()
            .unwrap();
        let err = SnapshotPair::align(src(), t).unwrap_err();
        assert!(err.to_string().contains("Cathy") || err.to_string().contains("Zoe"));
    }

    #[test]
    fn height_mismatch_positional_rejected() {
        let s = TableBuilder::new("s")
            .float_col("x", &[1.0, 2.0])
            .build()
            .unwrap();
        let t = TableBuilder::new("t")
            .float_col("x", &[1.0])
            .build()
            .unwrap();
        assert!(SnapshotPair::align(s, t).is_err());
    }

    #[test]
    fn align_on_undeclared_key() {
        let s = TableBuilder::new("s")
            .str_col("name", &["a", "b"])
            .float_col("x", &[1.0, 2.0])
            .build()
            .unwrap();
        let t = TableBuilder::new("t")
            .str_col("name", &["b", "a"])
            .float_col("x", &[20.0, 10.0])
            .build()
            .unwrap();
        let pair = SnapshotPair::align_on(s, t, "name").unwrap();
        assert_eq!(pair.target_numeric_aligned("x").unwrap(), vec![10.0, 20.0]);
    }

    #[test]
    fn identity_alignment_detected() {
        // Shuffled keys: not identity.
        let shuffled = SnapshotPair::align(src(), tgt_shuffled()).unwrap();
        assert!(!shuffled.is_identity_aligned());
        // Same order: identity, and the view is zero-copy.
        let same_order = TableBuilder::new("t")
            .str_col("name", &["Anne", "Bob", "Cathy"])
            .float_col("bonus", &[25_150.0, 27_250.0, 11_000.0])
            .key("name")
            .build()
            .unwrap();
        let pair = SnapshotPair::align(src(), same_order).unwrap();
        assert!(pair.is_identity_aligned());
        let view = pair.target_numeric_view("bonus").unwrap();
        let direct = pair.target().numeric_view("bonus").unwrap();
        assert!(std::sync::Arc::ptr_eq(view.shared(), direct.shared()));
        // Positional pairs are identity by construction.
        let s = TableBuilder::new("s")
            .float_col("x", &[1.0, 2.0])
            .build()
            .unwrap();
        let t = TableBuilder::new("t")
            .float_col("x", &[10.0, 20.0])
            .build()
            .unwrap();
        assert!(SnapshotPair::align(s, t).unwrap().is_identity_aligned());
    }

    #[test]
    fn target_numeric_view_matches_aligned_vec() {
        let pair = SnapshotPair::align(src(), tgt_shuffled()).unwrap();
        let view = pair.target_numeric_view("bonus").unwrap();
        assert_eq!(
            view.as_slice(),
            pair.target_numeric_aligned("bonus").unwrap().as_slice()
        );
    }

    #[test]
    fn restrict_preserves_alignment() {
        let pair = SnapshotPair::align(src(), tgt_shuffled()).unwrap();
        let sub = pair.restrict(&[1, 2]);
        assert_eq!(sub.len(), 2);
        assert_eq!(
            sub.target_numeric_aligned("bonus").unwrap(),
            vec![27_250.0, 11_000.0]
        );
        assert_eq!(sub.source().value(0, "name").unwrap(), Value::str("Bob"));
    }
}
