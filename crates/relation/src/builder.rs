//! Ergonomic row- and column-wise table construction.

use crate::column::Column;
use crate::error::Result;
use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::value::{DataType, Value};
use std::sync::Arc;

/// Builds a [`Table`] column by column with type inference from Rust types.
///
/// ```
/// use charles_relation::TableBuilder;
/// let table = TableBuilder::new("emp")
///     .str_col("name", &["Anne", "Bob"])
///     .int_col("exp", &[2, 3])
///     .float_col("salary", &[230_000.0, 250_000.0])
///     .build()
///     .unwrap();
/// assert_eq!(table.height(), 2);
/// ```
#[derive(Debug, Default)]
pub struct TableBuilder {
    name: String,
    fields: Vec<Field>,
    columns: Vec<Column>,
    key: Option<String>,
}

impl TableBuilder {
    /// Start building a table with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        TableBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Add a Utf8 column.
    pub fn str_col<S: AsRef<str>>(mut self, name: &str, values: &[S]) -> Self {
        self.fields.push(Field::new(name, DataType::Utf8));
        self.columns.push(Column::from_strs(values));
        self
    }

    /// Add an Int64 column.
    pub fn int_col(mut self, name: &str, values: &[i64]) -> Self {
        self.fields.push(Field::new(name, DataType::Int64));
        self.columns.push(Column::from_i64(values.to_vec()));
        self
    }

    /// Add a Float64 column.
    pub fn float_col(mut self, name: &str, values: &[f64]) -> Self {
        self.fields.push(Field::new(name, DataType::Float64));
        self.columns.push(Column::from_f64(values.to_vec()));
        self
    }

    /// Add a Bool column.
    pub fn bool_col(mut self, name: &str, values: &[bool]) -> Self {
        self.fields.push(Field::new(name, DataType::Bool));
        self.columns.push(Column::Bool {
            values: std::sync::Arc::new(values.to_vec()),
            validity: None,
        });
        self
    }

    /// Add a column of dynamically-typed values with an explicit type.
    pub fn value_col(mut self, name: &str, dtype: DataType, values: &[Value]) -> Result<Self> {
        self.fields.push(Field::new(name, dtype));
        self.columns.push(Column::from_values(dtype, values)?);
        Ok(self)
    }

    /// Declare the key column (validated at `build`).
    pub fn key(mut self, name: &str) -> Self {
        self.key = Some(name.to_string());
        self
    }

    /// Finish, validating shape and key uniqueness.
    pub fn build(self) -> Result<Table> {
        let schema = Schema::new(self.fields)?;
        let mut table = Table::new(schema, self.columns)?.with_name(self.name);
        if let Some(key) = self.key {
            table = table.with_key(&key)?;
        }
        Ok(table)
    }
}

/// Builds a [`Table`] row by row against a fixed schema.
#[derive(Debug)]
pub struct RowBuilder {
    table: Table,
}

impl RowBuilder {
    /// Start with a schema.
    pub fn new(schema: Arc<Schema>) -> Self {
        RowBuilder {
            table: Table::empty(schema),
        }
    }

    /// Append one row in schema order.
    pub fn push(&mut self, values: Vec<Value>) -> Result<&mut Self> {
        self.table.push_row(values)?;
        Ok(self)
    }

    /// Finish building.
    pub fn build(self) -> Table {
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_typed_table() {
        let t = TableBuilder::new("t")
            .str_col("s", &["x", "y"])
            .int_col("i", &[1, 2])
            .float_col("f", &[0.5, 1.5])
            .bool_col("b", &[true, false])
            .build()
            .unwrap();
        assert_eq!(t.width(), 4);
        assert_eq!(t.height(), 2);
        assert_eq!(t.schema().dtype_of("b").unwrap(), DataType::Bool);
    }

    #[test]
    fn builder_key_validation() {
        let err = TableBuilder::new("t")
            .int_col("k", &[1, 1])
            .key("k")
            .build();
        assert!(err.is_err());
        let ok = TableBuilder::new("t")
            .int_col("k", &[1, 2])
            .key("k")
            .build()
            .unwrap();
        assert_eq!(ok.key_name(), Some("k"));
    }

    #[test]
    fn builder_rejects_ragged_columns() {
        let err = TableBuilder::new("t")
            .int_col("a", &[1, 2])
            .int_col("b", &[1])
            .build();
        assert!(err.is_err());
    }

    #[test]
    fn value_col_with_nulls() {
        let t = TableBuilder::new("t")
            .value_col(
                "v",
                DataType::Float64,
                &[Value::Float(1.0), Value::Null, Value::Int(3)],
            )
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(t.column_by_name("v").unwrap().null_count(), 1);
        assert_eq!(t.value(2, "v").unwrap(), Value::Float(3.0));
    }

    #[test]
    fn row_builder_roundtrip() {
        let schema = Schema::from_pairs([("a", DataType::Int64), ("s", DataType::Utf8)]).unwrap();
        let mut rb = RowBuilder::new(schema);
        rb.push(vec![Value::Int(1), Value::str("one")]).unwrap();
        rb.push(vec![Value::Int(2), Value::str("two")]).unwrap();
        let t = rb.build();
        assert_eq!(t.height(), 2);
        assert_eq!(t.value(1, "s").unwrap(), Value::str("two"));
    }
}
