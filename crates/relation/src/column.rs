//! Typed columnar storage.
//!
//! Each [`Column`] stores one attribute's values contiguously. Strings are
//! dictionary-encoded: the column holds `u32` codes into a deduplicated
//! string pool, which keeps categorical attributes (the typical *condition*
//! attributes in ChARLES) compact and makes group-by-value operations cheap.
//! Nulls are tracked with an optional validity mask; the mask is only
//! materialized when a null is actually present.
//!
//! Storage buffers are `Arc`-shared: cloning a column (or taking a
//! [`crate::view::ColumnView`] over it) is O(1) and aliases the same
//! backing vectors. Mutation goes through [`Arc::make_mut`], i.e. columns
//! are copy-on-write — many concurrent readers can scan the same buffers
//! while a writer evolves its own logical copy.

use crate::compress::CompressedColumn;
use crate::error::{RelationError, Result};
use crate::value::{DataType, Value};
use crate::view::{CodeGroups, CodesView, ColumnView, NumericView};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A deduplicating pool of strings for dictionary encoding.
#[derive(Debug, Clone, Default)]
pub struct StrDict {
    values: Vec<Arc<str>>,
    lookup: HashMap<Arc<str>, u32>,
}

impl StrDict {
    /// Create an empty dictionary.
    pub fn new() -> Self {
        StrDict::default()
    }

    /// Intern a string, returning its code.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&code) = self.lookup.get(s) {
            return code;
        }
        let code = self.values.len() as u32;
        let arc: Arc<str> = Arc::from(s);
        self.values.push(arc.clone());
        self.lookup.insert(arc, code);
        code
    }

    /// Resolve a code back to its string.
    pub fn resolve(&self, code: u32) -> &Arc<str> {
        &self.values[code as usize]
    }

    /// Look up the code of a string if it is interned.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.lookup.get(s).copied()
    }

    /// Number of distinct strings.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Approximate resident bytes of the pool (string payloads plus the
    /// per-entry pointer overhead of the vector and lookup map). Used by
    /// memory-budgeted caches; not an exact allocator measurement.
    pub fn approx_bytes(&self) -> usize {
        let payload: usize = self.values.iter().map(|s| s.len()).sum();
        // One Arc in `values`, one Arc + u32 in `lookup`, per entry.
        payload + self.values.len() * (2 * std::mem::size_of::<usize>() + 4)
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// A single typed column of values with `Arc`-shared (copy-on-write)
/// storage.
#[derive(Debug, Clone)]
pub enum Column {
    /// 64-bit integers with optional validity mask.
    Int64 {
        /// Raw values; entries where the mask is false are meaningless.
        values: Arc<Vec<i64>>,
        /// `Some(mask)` iff at least one null exists; `mask[i]` = valid.
        validity: Option<Arc<Vec<bool>>>,
    },
    /// 64-bit floats with optional validity mask.
    Float64 {
        /// Raw values.
        values: Arc<Vec<f64>>,
        /// Validity mask, see [`Column::Int64`].
        validity: Option<Arc<Vec<bool>>>,
    },
    /// Dictionary-encoded UTF-8 strings.
    Utf8 {
        /// The shared string pool.
        dict: Arc<StrDict>,
        /// Per-row dictionary codes.
        codes: Arc<Vec<u32>>,
        /// Validity mask, see [`Column::Int64`].
        validity: Option<Arc<Vec<bool>>>,
    },
    /// Booleans with optional validity mask.
    Bool {
        /// Raw values.
        values: Arc<Vec<bool>>,
        /// Validity mask, see [`Column::Int64`].
        validity: Option<Arc<Vec<bool>>>,
    },
    /// A sealed column whose value buffer lives as per-block encodings
    /// with zone maps (see [`crate::compress`]). Decoding reproduces the
    /// raw buffer bit-for-bit; the validity mask stays raw alongside.
    /// Mutation ([`Column::push`]/[`Column::set`]) transparently decodes
    /// back to the raw representation first.
    Compressed {
        /// Encoded blocks, zone maps, and lazily decoded caches.
        data: Arc<CompressedColumn>,
        /// Validity mask, see [`Column::Int64`].
        validity: Option<Arc<Vec<bool>>>,
    },
}

impl Column {
    /// An empty column of the given type.
    pub fn empty(dtype: DataType) -> Self {
        match dtype {
            DataType::Int64 => Column::Int64 {
                values: Arc::new(Vec::new()),
                validity: None,
            },
            DataType::Float64 => Column::Float64 {
                values: Arc::new(Vec::new()),
                validity: None,
            },
            DataType::Utf8 => Column::Utf8 {
                dict: Arc::new(StrDict::new()),
                codes: Arc::new(Vec::new()),
                validity: None,
            },
            DataType::Bool => Column::Bool {
                values: Arc::new(Vec::new()),
                validity: None,
            },
        }
    }

    /// Build a column of `dtype` from dynamically typed values.
    pub fn from_values(dtype: DataType, values: &[Value]) -> Result<Self> {
        let mut col = Column::empty(dtype);
        for v in values {
            col.push(v.clone())?;
        }
        Ok(col)
    }

    /// Convenience: a non-null Int64 column.
    pub fn from_i64(values: Vec<i64>) -> Self {
        Column::Int64 {
            values: Arc::new(values),
            validity: None,
        }
    }

    /// Convenience: a non-null Float64 column.
    pub fn from_f64(values: Vec<f64>) -> Self {
        Column::Float64 {
            values: Arc::new(values),
            validity: None,
        }
    }

    /// Convenience: a non-null Utf8 column.
    pub fn from_strs<S: AsRef<str>>(values: &[S]) -> Self {
        let mut dict = StrDict::new();
        let codes = values.iter().map(|s| dict.intern(s.as_ref())).collect();
        Column::Utf8 {
            dict: Arc::new(dict),
            codes: Arc::new(codes),
            validity: None,
        }
    }

    /// The column's data type.
    pub fn dtype(&self) -> DataType {
        match self {
            Column::Int64 { .. } => DataType::Int64,
            Column::Float64 { .. } => DataType::Float64,
            Column::Utf8 { .. } => DataType::Utf8,
            Column::Bool { .. } => DataType::Bool,
            Column::Compressed { data, .. } => data.dtype(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int64 { values, .. } => values.len(),
            Column::Float64 { values, .. } => values.len(),
            Column::Utf8 { codes, .. } => codes.len(),
            Column::Bool { values, .. } => values.len(),
            Column::Compressed { data, .. } => data.len(),
        }
    }

    /// Approximate resident bytes of the column's storage (values,
    /// dictionary, and validity mask). `Arc`-shared buffers are counted
    /// **once per allocation** within this call (a column aliasing its own
    /// buffers is not inflated); to deduplicate across several holders —
    /// tables of an aligned pair, shards of a split — thread one seen-set
    /// through [`Column::approx_bytes_dedup`] instead.
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes_dedup(&mut HashSet::new())
    }

    /// [`Column::approx_bytes`] with deduplication by allocation identity:
    /// each `Arc` buffer is charged only the first time its address enters
    /// `seen`, so holders sharing storage (aligned snapshots, shards,
    /// views) sum to the true resident footprint instead of a multiple of
    /// it. Not an exact allocator measurement.
    pub fn approx_bytes_dedup(&self, seen: &mut HashSet<usize>) -> usize {
        fn note<T>(seen: &mut HashSet<usize>, arc: &Arc<T>, bytes: usize) -> usize {
            if seen.insert(Arc::as_ptr(arc) as usize) {
                bytes
            } else {
                0
            }
        }
        let mask_bytes = |seen: &mut HashSet<usize>, validity: &Option<Arc<Vec<bool>>>| {
            validity.as_ref().map_or(0, |m| note(seen, m, m.len()))
        };
        match self {
            Column::Int64 { values, validity } => {
                note(seen, values, values.len() * 8) + mask_bytes(seen, validity)
            }
            Column::Float64 { values, validity } => {
                note(seen, values, values.len() * 8) + mask_bytes(seen, validity)
            }
            Column::Utf8 {
                dict,
                codes,
                validity,
            } => {
                note(seen, dict, dict.approx_bytes())
                    + note(seen, codes, codes.len() * 4)
                    + mask_bytes(seen, validity)
            }
            Column::Bool { values, validity } => {
                note(seen, values, values.len()) + mask_bytes(seen, validity)
            }
            Column::Compressed { data, validity } => {
                data.approx_bytes_dedup(seen) + mask_bytes(seen, validity)
            }
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn validity(&self) -> Option<&Vec<bool>> {
        match self {
            Column::Int64 { validity, .. }
            | Column::Float64 { validity, .. }
            | Column::Utf8 { validity, .. }
            | Column::Bool { validity, .. }
            | Column::Compressed { validity, .. } => validity.as_deref(),
        }
    }

    fn validity_arc(&self) -> Option<&Arc<Vec<bool>>> {
        match self {
            Column::Int64 { validity, .. }
            | Column::Float64 { validity, .. }
            | Column::Utf8 { validity, .. }
            | Column::Bool { validity, .. }
            | Column::Compressed { validity, .. } => validity.as_ref(),
        }
    }

    /// The materialized dictionary of a compressed `Utf8` column's sealed
    /// pool. The payload is built in-process by sealing, so decoding it
    /// cannot fail.
    fn sealed_dict(data: &CompressedColumn) -> Arc<StrDict> {
        match data.dict() {
            Some(Ok(dict)) => dict.clone(),
            // lint:allow(no-panic-in-request-path: sealed payloads are produced by SealedDict::seal in-process; decoding our own stream cannot fail)
            _ => unreachable!("sealed dictionary decodes"),
        }
    }

    /// Whether row `i` holds a non-null value.
    pub fn is_valid(&self, i: usize) -> bool {
        self.validity().is_none_or(|m| m[i])
    }

    /// Number of null entries.
    pub fn null_count(&self) -> usize {
        self.validity()
            .map_or(0, |m| m.iter().filter(|&&v| !v).count())
    }

    /// Get the value at row `i`.
    pub fn get(&self, i: usize) -> Value {
        if !self.is_valid(i) {
            return Value::Null;
        }
        match self {
            Column::Int64 { values, .. } => Value::Int(values[i]),
            Column::Float64 { values, .. } => Value::Float(values[i]),
            Column::Utf8 { dict, codes, .. } => Value::Str(dict.resolve(codes[i]).clone()),
            Column::Bool { values, .. } => Value::Bool(values[i]),
            Column::Compressed { data, .. } => match data.dtype() {
                DataType::Int64 => Value::Int(data.int_slot(i)),
                DataType::Float64 => Value::Float(data.float_slot(i)),
                // Only Utf8 remains: compressed planes are never Bool.
                _ => Value::Str(Self::sealed_dict(data).resolve(data.code_slot(i)).clone()),
            },
        }
    }

    /// Numeric view of row `i` (`None` for nulls and non-numeric columns).
    pub fn get_f64(&self, i: usize) -> Option<f64> {
        if !self.is_valid(i) {
            return None;
        }
        match self {
            Column::Int64 { values, .. } => Some(values[i] as f64),
            Column::Float64 { values, .. } => Some(values[i]),
            Column::Bool { values, .. } => Some(if values[i] { 1.0 } else { 0.0 }),
            Column::Utf8 { .. } => None,
            Column::Compressed { data, .. } => match data.dtype() {
                DataType::Int64 => Some(data.int_slot(i) as f64),
                DataType::Float64 => Some(data.float_slot(i)),
                _ => None,
            },
        }
    }

    fn push_null(&mut self) {
        let len = self.len();
        let push_invalid = |validity: &mut Option<Arc<Vec<bool>>>| {
            Arc::make_mut(validity.get_or_insert_with(|| Arc::new(vec![true; len]))).push(false);
        };
        match self {
            Column::Int64 { values, validity } => {
                Arc::make_mut(values).push(0);
                push_invalid(validity);
            }
            Column::Float64 { values, validity } => {
                Arc::make_mut(values).push(0.0);
                push_invalid(validity);
            }
            Column::Utf8 {
                codes, validity, ..
            } => {
                Arc::make_mut(codes).push(0);
                push_invalid(validity);
            }
            Column::Bool { values, validity } => {
                Arc::make_mut(values).push(false);
                push_invalid(validity);
            }
            Column::Compressed { .. } => {
                *self = self.decompress();
                self.push_null();
            }
        }
    }

    fn push_valid_mark(validity: &mut Option<Arc<Vec<bool>>>) {
        if let Some(mask) = validity {
            Arc::make_mut(mask).push(true);
        }
    }

    /// Append a value; `Int -> Float64` widening is performed implicitly.
    pub fn push(&mut self, value: Value) -> Result<()> {
        if value.is_null() {
            self.push_null();
            return Ok(());
        }
        let mismatch = |col: &Column, value: &Value| RelationError::TypeMismatch {
            expected: col.dtype().name().to_string(),
            found: value
                .dtype()
                .map_or("Null".to_string(), |t| t.name().to_string()),
        };
        match self {
            Column::Int64 { values, validity } => match value {
                Value::Int(v) => {
                    Arc::make_mut(values).push(v);
                    Self::push_valid_mark(validity);
                    Ok(())
                }
                other => Err(mismatch(self, &other)),
            },
            Column::Float64 { values, validity } => match value {
                Value::Float(v) => {
                    Arc::make_mut(values).push(v);
                    Self::push_valid_mark(validity);
                    Ok(())
                }
                Value::Int(v) => {
                    Arc::make_mut(values).push(v as f64);
                    Self::push_valid_mark(validity);
                    Ok(())
                }
                other => Err(mismatch(self, &other)),
            },
            Column::Utf8 {
                dict,
                codes,
                validity,
            } => match value {
                Value::Str(s) => {
                    let code = Arc::make_mut(dict).intern(&s);
                    Arc::make_mut(codes).push(code);
                    Self::push_valid_mark(validity);
                    Ok(())
                }
                other => Err(mismatch(self, &other)),
            },
            Column::Bool { values, validity } => match value {
                Value::Bool(b) => {
                    Arc::make_mut(values).push(b);
                    Self::push_valid_mark(validity);
                    Ok(())
                }
                other => Err(mismatch(self, &other)),
            },
            Column::Compressed { .. } => {
                *self = self.decompress();
                self.push(value)
            }
        }
    }

    /// Overwrite the value at row `i`.
    pub fn set(&mut self, i: usize, value: Value) -> Result<()> {
        let height = self.len();
        if i >= height {
            return Err(RelationError::RowIndexOutOfBounds { index: i, height });
        }
        if let Column::Compressed { .. } = self {
            // Mutation breaks the seal: decode back to raw storage first.
            *self = self.decompress();
        }
        if value.is_null() {
            match self {
                Column::Int64 { validity, .. }
                | Column::Float64 { validity, .. }
                | Column::Utf8 { validity, .. }
                | Column::Bool { validity, .. }
                | Column::Compressed { validity, .. } => {
                    Arc::make_mut(validity.get_or_insert_with(|| Arc::new(vec![true; height])))
                        [i] = false;
                }
            }
            return Ok(());
        }
        let mark_valid = |validity: &mut Option<Arc<Vec<bool>>>| {
            if let Some(mask) = validity {
                Arc::make_mut(mask)[i] = true;
            }
        };
        let expected = self.dtype();
        let found = value
            .dtype()
            .map_or("Null".to_string(), |t| t.name().to_string());
        match self {
            Column::Int64 { values, validity } => {
                if let Value::Int(v) = value {
                    Arc::make_mut(values)[i] = v;
                    mark_valid(validity);
                    return Ok(());
                }
            }
            Column::Float64 { values, validity } => match value {
                Value::Float(v) => {
                    Arc::make_mut(values)[i] = v;
                    mark_valid(validity);
                    return Ok(());
                }
                Value::Int(v) => {
                    Arc::make_mut(values)[i] = v as f64;
                    mark_valid(validity);
                    return Ok(());
                }
                _ => {}
            },
            Column::Utf8 {
                dict,
                codes,
                validity,
            } => {
                if let Value::Str(s) = value {
                    let code = Arc::make_mut(dict).intern(&s);
                    Arc::make_mut(codes)[i] = code;
                    mark_valid(validity);
                    return Ok(());
                }
            }
            Column::Bool { values, validity } => {
                if let Value::Bool(b) = value {
                    Arc::make_mut(values)[i] = b;
                    mark_valid(validity);
                    return Ok(());
                }
            }
            // Decompressed above; kept for match exhaustiveness.
            Column::Compressed { .. } => {}
        }
        Err(RelationError::TypeMismatch {
            expected: expected.name().to_string(),
            found,
        })
    }

    /// A new column containing rows at `indices` (in that order).
    pub fn take(&self, indices: &[usize]) -> Column {
        let take_mask = |validity: &Option<Arc<Vec<bool>>>| {
            validity
                .as_ref()
                .map(|m| Arc::new(indices.iter().map(|&i| m[i]).collect()))
        };
        match self {
            Column::Int64 { values, validity } => Column::Int64 {
                values: Arc::new(indices.iter().map(|&i| values[i]).collect()),
                validity: take_mask(validity),
            },
            Column::Float64 { values, validity } => Column::Float64 {
                values: Arc::new(indices.iter().map(|&i| values[i]).collect()),
                validity: take_mask(validity),
            },
            Column::Utf8 {
                dict,
                codes,
                validity,
            } => Column::Utf8 {
                dict: dict.clone(),
                codes: Arc::new(indices.iter().map(|&i| codes[i]).collect()),
                validity: take_mask(validity),
            },
            Column::Bool { values, validity } => Column::Bool {
                values: Arc::new(indices.iter().map(|&i| values[i]).collect()),
                validity: take_mask(validity),
            },
            Column::Compressed { .. } => self.decompress().take(indices),
        }
    }

    /// All values as `f64`, or an error naming `attr` if the column is not
    /// numeric or contains nulls. The fast path for regression inputs.
    pub fn to_f64_vec(&self, attr: &str) -> Result<Vec<f64>> {
        if self.null_count() > 0 {
            return Err(RelationError::Eval(format!(
                "attribute {attr:?} contains nulls; cannot use as numeric input"
            )));
        }
        match self {
            Column::Int64 { values, .. } => Ok(values.iter().map(|&v| v as f64).collect()),
            Column::Float64 { values, .. } => Ok(values.as_ref().clone()),
            Column::Bool { values, .. } => {
                Ok(values.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect())
            }
            Column::Utf8 { .. } => Err(RelationError::TypeMismatch {
                expected: "numeric".to_string(),
                found: format!("Utf8 (attribute {attr:?})"),
            }),
            Column::Compressed { data, .. } => {
                if let Some(buf) = data.decode_floats() {
                    Ok(buf.as_ref().clone())
                } else if let Some(buf) = data.decode_ints() {
                    Ok(buf.iter().map(|&v| v as f64).collect())
                } else {
                    Err(RelationError::TypeMismatch {
                        expected: "numeric".to_string(),
                        found: format!("Utf8 (attribute {attr:?})"),
                    })
                }
            }
        }
    }

    /// A shared, dense `f64` view of a numeric column. For a null-free
    /// `Float64` column this is **zero-copy** (the view aliases the
    /// column's own buffer); `Int64`/`Bool` columns are widened into a
    /// fresh shared buffer once. Errors mirror [`Column::to_f64_vec`].
    pub fn numeric_view(&self, attr: &str) -> Result<NumericView> {
        if self.null_count() > 0 {
            return Err(RelationError::Eval(format!(
                "attribute {attr:?} contains nulls; cannot use as numeric input"
            )));
        }
        match self {
            Column::Float64 { values, .. } => Ok(NumericView::from_arc(values.clone())),
            Column::Int64 { values, .. } => {
                Ok(NumericView::new(values.iter().map(|&v| v as f64).collect()))
            }
            Column::Bool { values, .. } => Ok(NumericView::new(
                values.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect(),
            )),
            Column::Utf8 { .. } => Err(RelationError::TypeMismatch {
                expected: "numeric".to_string(),
                found: format!("Utf8 (attribute {attr:?})"),
            }),
            // Blocks decode once into a shared buffer; repeated views alias
            // the same allocation, so downstream reductions fold identical
            // bytes to the raw path.
            Column::Compressed { data, .. } => {
                if let Some(buf) = data.decode_floats() {
                    Ok(NumericView::from_arc(buf.clone()))
                } else if let Some(buf) = data.decode_ints() {
                    Ok(NumericView::new(buf.iter().map(|&v| v as f64).collect()))
                } else {
                    Err(RelationError::TypeMismatch {
                        expected: "numeric".to_string(),
                        found: format!("Utf8 (attribute {attr:?})"),
                    })
                }
            }
        }
    }

    /// A zero-copy dictionary-code view of a `Utf8` column (`None` for
    /// other types).
    pub fn codes_view(&self) -> Option<CodesView> {
        match self {
            Column::Utf8 {
                dict,
                codes,
                validity,
            } => Some(CodesView::new(
                dict.clone(),
                codes.clone(),
                validity.clone(),
            )),
            Column::Compressed { data, validity } => data.decode_codes().map(|codes| {
                CodesView::new(Self::sealed_dict(data), codes.clone(), validity.clone())
            }),
            _ => None,
        }
    }

    /// A typed zero-copy view of this column: dictionary codes for `Utf8`,
    /// dense `f64` for numeric and boolean columns (which must be
    /// null-free — see [`Column::numeric_view`]).
    pub fn view(&self, attr: &str) -> Result<ColumnView> {
        match self.codes_view() {
            Some(codes) => Ok(ColumnView::Codes(codes)),
            None => Ok(ColumnView::Numeric(self.numeric_view(attr)?)),
        }
    }

    /// Group rows directly by dictionary code — no string materialization
    /// or hashing. Supported for `Utf8` (by code) and `Bool` (false/true)
    /// columns; `None` for numeric columns. Null rows form their own
    /// group. Group order is deterministic: first row of appearance.
    pub fn group_codes(&self) -> Option<CodeGroups> {
        match self {
            Column::Utf8 {
                dict,
                codes,
                validity,
            } => Some(CodeGroups::from_codes(
                codes,
                dict.len(),
                validity.as_deref().map(Vec::as_slice),
            )),
            Column::Bool { values, validity } => {
                let codes: Vec<u32> = values.iter().map(|&b| u32::from(b)).collect();
                Some(CodeGroups::from_codes(
                    &codes,
                    2,
                    validity.as_deref().map(Vec::as_slice),
                ))
            }
            Column::Compressed { data, validity } => data.decode_codes().map(|codes| {
                CodeGroups::from_codes(
                    codes,
                    data.dict_entries().unwrap_or(0),
                    validity.as_deref().map(Vec::as_slice),
                )
            }),
            _ => None,
        }
    }

    /// The validity mask shared as an `Arc`, if any null exists.
    pub fn validity_mask(&self) -> Option<&Arc<Vec<bool>>> {
        self.validity_arc()
    }

    /// Iterate values as `Value`s.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Number of distinct non-null values.
    pub fn distinct_count(&self) -> usize {
        match self {
            Column::Utf8 {
                dict,
                codes,
                validity,
            } => {
                // Fast path: count distinct codes actually used.
                let mut seen = vec![false; dict.len()];
                let mut n = 0;
                for (i, &c) in codes.iter().enumerate() {
                    if validity.as_ref().is_none_or(|m| m[i]) && !seen[c as usize] {
                        seen[c as usize] = true;
                        n += 1;
                    }
                }
                n
            }
            _ => {
                let mut seen: std::collections::HashSet<Value> = std::collections::HashSet::new();
                for i in 0..self.len() {
                    if self.is_valid(i) {
                        seen.insert(self.get(i));
                    }
                }
                seen.len()
            }
        }
    }

    /// Seal this column into its per-block compressed representation (see
    /// [`crate::compress`]). `Bool` columns (already one byte per row) and
    /// already-compressed columns are returned as cheap clones. The
    /// encoding is lossless on `f64::to_bits` over the full slot buffer,
    /// so [`Column::decompress`] reproduces the raw column bit-for-bit.
    pub fn compress(&self) -> Column {
        match self {
            Column::Int64 { values, validity } => Column::Compressed {
                data: Arc::new(CompressedColumn::from_ints(
                    values,
                    validity.as_deref().map(Vec::as_slice),
                )),
                validity: validity.clone(),
            },
            Column::Float64 { values, validity } => Column::Compressed {
                data: Arc::new(CompressedColumn::from_floats(
                    values,
                    validity.as_deref().map(Vec::as_slice),
                )),
                validity: validity.clone(),
            },
            Column::Utf8 {
                dict,
                codes,
                validity,
            } => Column::Compressed {
                data: Arc::new(CompressedColumn::from_codes(
                    dict,
                    codes,
                    validity.as_deref().map(Vec::as_slice),
                )),
                validity: validity.clone(),
            },
            Column::Bool { .. } | Column::Compressed { .. } => self.clone(),
        }
    }

    /// Decode a compressed column back to its raw representation (other
    /// columns are returned as cheap clones). The decoded buffers are the
    /// column's shared caches, so this is O(1) after the first decode.
    pub fn decompress(&self) -> Column {
        match self {
            Column::Compressed { data, validity } => {
                if let Some(buf) = data.decode_floats() {
                    Column::Float64 {
                        values: buf.clone(),
                        validity: validity.clone(),
                    }
                } else if let Some(buf) = data.decode_ints() {
                    Column::Int64 {
                        values: buf.clone(),
                        validity: validity.clone(),
                    }
                } else if let Some(codes) = data.decode_codes() {
                    Column::Utf8 {
                        dict: Self::sealed_dict(data),
                        codes: codes.clone(),
                        validity: validity.clone(),
                    }
                } else {
                    self.clone()
                }
            }
            other => other.clone(),
        }
    }

    /// Whether this column is stored in compressed block form.
    pub fn is_compressed(&self) -> bool {
        matches!(self, Column::Compressed { .. })
    }

    /// The compressed payload, when this column is sealed (`None`
    /// otherwise). Exposes zone-map skip/scan statistics and byte
    /// accounting to callers.
    pub fn compressed_data(&self) -> Option<&Arc<CompressedColumn>> {
        match self {
            Column::Compressed { data, .. } => Some(data),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dict_interning_dedupes() {
        let mut d = StrDict::new();
        let a = d.intern("PhD");
        let b = d.intern("MS");
        let a2 = d.intern("PhD");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
        assert_eq!(&**d.resolve(a), "PhD");
        assert_eq!(d.code_of("MS"), Some(b));
        assert_eq!(d.code_of("BS"), None);
    }

    #[test]
    fn push_and_get_roundtrip() {
        let mut col = Column::empty(DataType::Float64);
        col.push(Value::Float(1.5)).unwrap();
        col.push(Value::Int(2)).unwrap(); // widening
        col.push(Value::Null).unwrap();
        assert_eq!(col.len(), 3);
        assert_eq!(col.get(0), Value::Float(1.5));
        assert_eq!(col.get(1), Value::Float(2.0));
        assert_eq!(col.get(2), Value::Null);
        assert_eq!(col.null_count(), 1);
    }

    #[test]
    fn push_type_mismatch() {
        let mut col = Column::empty(DataType::Int64);
        let err = col.push(Value::str("x")).unwrap_err();
        assert!(matches!(err, RelationError::TypeMismatch { .. }));
        // Float into Int64 is NOT silently narrowed.
        assert!(col.push(Value::Float(1.5)).is_err());
    }

    #[test]
    fn validity_mask_lazy() {
        let mut col = Column::from_i64(vec![1, 2, 3]);
        assert_eq!(col.null_count(), 0);
        col.push(Value::Null).unwrap();
        assert_eq!(col.null_count(), 1);
        assert!(col.is_valid(0));
        assert!(!col.is_valid(3));
        col.push(Value::Int(5)).unwrap();
        assert!(col.is_valid(4));
    }

    #[test]
    fn set_overwrites_and_revalidates() {
        let mut col = Column::from_f64(vec![1.0, 2.0]);
        col.set(0, Value::Null).unwrap();
        assert_eq!(col.get(0), Value::Null);
        col.set(0, Value::Float(9.0)).unwrap();
        assert_eq!(col.get(0), Value::Float(9.0));
        assert_eq!(col.null_count(), 0);
        assert!(col.set(5, Value::Float(0.0)).is_err());
        assert!(col.set(1, Value::str("no")).is_err());
    }

    #[test]
    fn take_reorders_and_preserves_nulls() {
        let mut col = Column::from_strs(&["a", "b", "c"]);
        col.push(Value::Null).unwrap();
        let taken = col.take(&[3, 1, 1]);
        assert_eq!(taken.len(), 3);
        assert_eq!(taken.get(0), Value::Null);
        assert_eq!(taken.get(1), Value::str("b"));
        assert_eq!(taken.get(2), Value::str("b"));
    }

    #[test]
    fn to_f64_vec_paths() {
        assert_eq!(
            Column::from_i64(vec![1, 2]).to_f64_vec("x").unwrap(),
            vec![1.0, 2.0]
        );
        assert!(Column::from_strs(&["a"]).to_f64_vec("s").is_err());
        let mut withnull = Column::from_f64(vec![1.0]);
        withnull.push(Value::Null).unwrap();
        assert!(withnull.to_f64_vec("x").is_err());
    }

    #[test]
    fn distinct_counts() {
        let col = Column::from_strs(&["a", "b", "a", "a"]);
        assert_eq!(col.distinct_count(), 2);
        let col = Column::from_i64(vec![5, 5, 6]);
        assert_eq!(col.distinct_count(), 2);
        let mut col = Column::from_i64(vec![5]);
        col.push(Value::Null).unwrap();
        assert_eq!(col.distinct_count(), 1);
    }

    #[test]
    fn from_values_builds_typed() {
        let col = Column::from_values(
            DataType::Utf8,
            &[Value::str("x"), Value::Null, Value::str("x")],
        )
        .unwrap();
        assert_eq!(col.dtype(), DataType::Utf8);
        assert_eq!(col.len(), 3);
        assert_eq!(col.null_count(), 1);
    }

    #[test]
    fn float_view_is_zero_copy() {
        let col = Column::from_f64(vec![1.0, 2.0, 3.0]);
        let view = col.numeric_view("x").unwrap();
        assert_eq!(&*view, &[1.0, 2.0, 3.0]);
        if let Column::Float64 { values, .. } = &col {
            assert!(Arc::ptr_eq(values, view.shared()));
        } else {
            unreachable!()
        }
        // Cloning the view is O(1) aliasing, not a copy.
        let clone = view.clone();
        assert!(Arc::ptr_eq(view.shared(), clone.shared()));
    }

    #[test]
    fn int_and_bool_views_widen() {
        assert_eq!(
            &*Column::from_i64(vec![2, 3]).numeric_view("x").unwrap(),
            &[2.0, 3.0]
        );
        let col =
            Column::from_values(DataType::Bool, &[Value::Bool(true), Value::Bool(false)]).unwrap();
        assert_eq!(&*col.numeric_view("b").unwrap(), &[1.0, 0.0]);
        assert!(Column::from_strs(&["s"]).numeric_view("s").is_err());
    }

    #[test]
    fn copy_on_write_isolates_mutation() {
        let a = Column::from_f64(vec![1.0, 2.0]);
        let view = a.numeric_view("x").unwrap();
        let mut b = a.clone();
        b.set(0, Value::Float(99.0)).unwrap();
        // The original column and its outstanding view are untouched.
        assert_eq!(a.get(0), Value::Float(1.0));
        assert_eq!(view[0], 1.0);
        assert_eq!(b.get(0), Value::Float(99.0));
    }

    #[test]
    fn group_codes_partitions_rows() {
        let mut col = Column::from_strs(&["a", "b", "a", "c", "b"]);
        col.push(Value::Null).unwrap();
        let groups = col.group_codes().unwrap();
        assert_eq!(groups.n_groups(), 4); // a, b, c, null
                                          // First-appearance order, rows in row order.
        assert_eq!(groups.groups[0].1, vec![0, 2]);
        assert_eq!(groups.groups[1].1, vec![1, 4]);
        assert_eq!(groups.groups[2].1, vec![3]);
        assert_eq!(groups.groups[3].0, None); // null group
        assert_eq!(groups.groups[3].1, vec![5]);
        assert_eq!(groups.labels, vec![0, 1, 0, 2, 1, 3]);
        // Numeric columns have no code grouping.
        assert!(Column::from_f64(vec![1.0]).group_codes().is_none());
    }

    #[test]
    fn group_codes_bool() {
        let col = Column::from_values(
            DataType::Bool,
            &[Value::Bool(true), Value::Bool(false), Value::Bool(true)],
        )
        .unwrap();
        let groups = col.group_codes().unwrap();
        assert_eq!(groups.n_groups(), 2);
        assert_eq!(groups.groups[0].1, vec![0, 2]);
        assert_eq!(groups.groups[1].1, vec![1]);
    }
}
